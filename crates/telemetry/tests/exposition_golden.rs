//! Golden-file round-trip of the Prometheus exposition format.
//!
//! A hand-populated [`MetricsSnapshot`] must render byte-for-byte to the
//! checked-in `tests/golden/metrics.prom`, and survive a JSON round-trip
//! (snapshot → JSON → snapshot → exposition) unchanged — the contract
//! the ops endpoint and `tools/promcheck` both rely on.

use telemetry::registry::{HistogramSnapshot, MetricsSnapshot};
use telemetry::render_snapshot;

fn populated_snapshot() -> MetricsSnapshot {
    let mut snap = MetricsSnapshot {
        // Deliberately unsorted: `sort()` must restore the registry's
        // sorted-by-name invariant before rendering.
        counters: vec![
            ("net.results.accepted".into(), 1234),
            ("net.conns.opened".into(), 42),
        ],
        gauges: vec![("wu.inflight".into(), 17)],
        histograms: vec![HistogramSnapshot {
            name: "net.req.latency_us".into(),
            count: 10,
            sum: 23,
            p50: 1,
            p99: 7,
            max: 6,
            buckets: vec![(0, 5), (1, 3), (7, 2)],
        }],
    };
    snap.sort();
    snap
}

#[test]
fn snapshot_renders_to_the_golden_file() {
    let golden = include_str!("golden/metrics.prom");
    let rendered = render_snapshot(&populated_snapshot());
    assert_eq!(
        rendered, golden,
        "exposition output drifted from tests/golden/metrics.prom"
    );
}

#[test]
fn snapshot_survives_a_json_round_trip() {
    let snap = populated_snapshot();
    let json = serde_json::to_string(&snap).unwrap();
    let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
    assert_eq!(render_snapshot(&back), render_snapshot(&snap));
}

//! The lock-free metrics registry.
//!
//! Metrics are interned by name: the first [`counter`]/[`gauge`]/
//! [`histogram`] call for a name allocates the metric and leaks it, so
//! every handle is `&'static` and updates are single relaxed atomic
//! operations — no lock is ever taken on the hot path. Call sites that
//! update inside tight loops (the event loop, the docking kernel) should
//! still resolve the handle once and cache it; resolution itself takes a
//! short registry lock.
//!
//! When the `enabled` feature is off, the same API compiles to zero-sized
//! no-ops.

use serde::{Deserialize, Serialize};

/// Point-in-time copy of every registered metric, serializable for run
/// manifests and round-trip tests.
///
/// Ordering is part of the contract: counters, gauges and histograms are
/// each sorted by name (byte order), so two snapshots of the same state
/// render identically — the Prometheus exposition built on top of this
/// ([`crate::exposition`]) is diff-able across scrapes and in CI.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Counter values by name (sorted).
    pub counters: Vec<(String, u64)>,
    /// Gauge values by name (sorted).
    pub gauges: Vec<(String, i64)>,
    /// Histogram summaries by name (sorted).
    pub histograms: Vec<HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Restores the sorted-by-name invariant. The registry produces
    /// sorted snapshots already; snapshots assembled by hand (tests,
    /// external tooling) call this before rendering.
    pub fn sort(&mut self) {
        self.counters.sort_by(|a, b| a.0.cmp(&b.0));
        self.gauges.sort_by(|a, b| a.0.cmp(&b.0));
        self.histograms.sort_by(|a, b| a.name.cmp(&b.name));
    }
}

/// Summary of one histogram's state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Metric name.
    pub name: String,
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Estimated 50th percentile (upper bound of the median's bucket).
    pub p50: u64,
    /// Estimated 99th percentile (upper bound of the bucket).
    pub p99: u64,
    /// Largest recorded value's bucket upper bound.
    pub max: u64,
    /// Occupied log₂ buckets as `(inclusive upper bound, count)` pairs,
    /// sorted by bound. Non-cumulative; the Prometheus exposition
    /// cumulates them into `_bucket{le=...}` series. Empty on snapshots
    /// taken before this field existed (the serde default).
    #[serde(default)]
    pub buckets: Vec<(u64, u64)>,
}

#[cfg(feature = "enabled")]
mod imp {
    use super::{HistogramSnapshot, MetricsSnapshot};
    use std::collections::BTreeMap;
    use std::sync::atomic::{AtomicI64, AtomicU64, Ordering::Relaxed};
    use std::sync::Mutex;

    /// A monotonically increasing event count.
    #[derive(Debug, Default)]
    pub struct Counter(AtomicU64);

    impl Counter {
        /// Adds one.
        #[inline]
        pub fn inc(&self) {
            self.0.fetch_add(1, Relaxed);
        }

        /// Adds `n`.
        #[inline]
        pub fn add(&self, n: u64) {
            self.0.fetch_add(n, Relaxed);
        }

        /// Current value.
        pub fn get(&self) -> u64 {
            self.0.load(Relaxed)
        }

        /// Resets to zero (tests/benches).
        pub fn reset(&self) {
            self.0.store(0, Relaxed);
        }
    }

    /// A signed instantaneous value (population size, queue depth, ...).
    #[derive(Debug, Default)]
    pub struct Gauge(AtomicI64);

    impl Gauge {
        /// Overwrites the value.
        #[inline]
        pub fn set(&self, v: i64) {
            self.0.store(v, Relaxed);
        }

        /// Raises the value to at least `v` (peak tracking).
        #[inline]
        pub fn record_max(&self, v: i64) {
            self.0.fetch_max(v, Relaxed);
        }

        /// Current value.
        pub fn get(&self) -> i64 {
            self.0.load(Relaxed)
        }

        /// Resets to zero (tests/benches).
        pub fn reset(&self) {
            self.0.store(0, Relaxed);
        }
    }

    /// Power-of-two bucket count: value `v` lands in bucket
    /// `bit_width(v)`, i.e. bucket `k` covers `[2^(k-1), 2^k)`.
    const BUCKETS: usize = 65;

    /// A fixed-bucket (log₂) histogram of `u64` samples.
    #[derive(Debug)]
    pub struct Histogram {
        buckets: [AtomicU64; BUCKETS],
        count: AtomicU64,
        sum: AtomicU64,
    }

    impl Default for Histogram {
        fn default() -> Self {
            Self {
                buckets: [0u64; BUCKETS].map(AtomicU64::new),
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
            }
        }
    }

    impl Histogram {
        /// Records one sample.
        #[inline]
        pub fn record(&self, v: u64) {
            let bucket = (u64::BITS - v.leading_zeros()) as usize;
            self.buckets[bucket].fetch_add(1, Relaxed);
            self.count.fetch_add(1, Relaxed);
            self.sum.fetch_add(v, Relaxed);
        }

        /// Records a duration as whole microseconds.
        #[inline]
        pub fn record_seconds(&self, seconds: f64) {
            self.record((seconds.max(0.0) * 1e6) as u64);
        }

        /// Number of recorded samples.
        pub fn count(&self) -> u64 {
            self.count.load(Relaxed)
        }

        /// Sum of recorded samples.
        pub fn sum(&self) -> u64 {
            self.sum.load(Relaxed)
        }

        /// Upper bound of the bucket containing quantile `q` (0..=1).
        pub fn quantile_bound(&self, q: f64) -> u64 {
            let total = self.count();
            if total == 0 {
                return 0;
            }
            let target = ((total as f64) * q.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
            let mut seen = 0;
            for (k, b) in self.buckets.iter().enumerate() {
                seen += b.load(Relaxed);
                if seen >= target {
                    return bucket_bound(k);
                }
            }
            bucket_bound(BUCKETS - 1)
        }

        /// Resets all buckets (tests/benches).
        pub fn reset(&self) {
            for b in &self.buckets {
                b.store(0, Relaxed);
            }
            self.count.store(0, Relaxed);
            self.sum.store(0, Relaxed);
        }

        fn snapshot(&self, name: &str) -> HistogramSnapshot {
            let max = self
                .buckets
                .iter()
                .enumerate()
                .rev()
                .find(|(_, b)| b.load(Relaxed) > 0)
                .map_or(0, |(k, _)| bucket_bound(k));
            let buckets = self
                .buckets
                .iter()
                .enumerate()
                .filter_map(|(k, b)| {
                    let n = b.load(Relaxed);
                    (n > 0).then(|| (bucket_bound(k), n))
                })
                .collect();
            HistogramSnapshot {
                name: name.to_string(),
                count: self.count(),
                sum: self.sum(),
                p50: self.quantile_bound(0.5),
                p99: self.quantile_bound(0.99),
                max,
                buckets,
            }
        }
    }

    /// Inclusive upper bound of bucket `k` (`2^k - 1`; bucket 0 holds 0).
    fn bucket_bound(k: usize) -> u64 {
        if k >= 64 {
            u64::MAX
        } else {
            (1u64 << k) - 1
        }
    }

    struct Registry {
        counters: BTreeMap<&'static str, &'static Counter>,
        gauges: BTreeMap<&'static str, &'static Gauge>,
        histograms: BTreeMap<&'static str, &'static Histogram>,
    }

    fn registry() -> &'static Mutex<Registry> {
        static REGISTRY: std::sync::OnceLock<Mutex<Registry>> = std::sync::OnceLock::new();
        REGISTRY.get_or_init(|| {
            Mutex::new(Registry {
                counters: BTreeMap::new(),
                gauges: BTreeMap::new(),
                histograms: BTreeMap::new(),
            })
        })
    }

    /// Interns the counter `name`, creating it on first use.
    pub fn counter(name: &'static str) -> &'static Counter {
        let mut r = registry().lock().unwrap();
        r.counters
            .entry(name)
            .or_insert_with(|| Box::leak(Box::new(Counter::default())))
    }

    /// Interns the gauge `name`, creating it on first use.
    pub fn gauge(name: &'static str) -> &'static Gauge {
        let mut r = registry().lock().unwrap();
        r.gauges
            .entry(name)
            .or_insert_with(|| Box::leak(Box::new(Gauge::default())))
    }

    /// Interns the histogram `name`, creating it on first use.
    pub fn histogram(name: &'static str) -> &'static Histogram {
        let mut r = registry().lock().unwrap();
        r.histograms
            .entry(name)
            .or_insert_with(|| Box::leak(Box::new(Histogram::default())))
    }

    /// Copies every registered metric.
    pub fn snapshot() -> MetricsSnapshot {
        let r = registry().lock().unwrap();
        MetricsSnapshot {
            counters: r
                .counters
                .iter()
                .map(|(n, c)| (n.to_string(), c.get()))
                .collect(),
            gauges: r
                .gauges
                .iter()
                .map(|(n, g)| (n.to_string(), g.get()))
                .collect(),
            histograms: r.histograms.iter().map(|(n, h)| h.snapshot(n)).collect(),
        }
    }

    /// Zeroes every registered metric (tests/benches; handles stay valid).
    pub fn reset() {
        let r = registry().lock().unwrap();
        for c in r.counters.values() {
            c.reset();
        }
        for g in r.gauges.values() {
            g.reset();
        }
        for h in r.histograms.values() {
            h.reset();
        }
    }
}

#[cfg(not(feature = "enabled"))]
mod imp {
    use super::MetricsSnapshot;

    /// No-op counter (telemetry disabled).
    #[derive(Debug, Default)]
    pub struct Counter;

    impl Counter {
        /// No-op.
        #[inline(always)]
        pub fn inc(&self) {}
        /// No-op.
        #[inline(always)]
        pub fn add(&self, _n: u64) {}
        /// Always zero.
        #[inline(always)]
        pub fn get(&self) -> u64 {
            0
        }
        /// No-op.
        pub fn reset(&self) {}
    }

    /// No-op gauge (telemetry disabled).
    #[derive(Debug, Default)]
    pub struct Gauge;

    impl Gauge {
        /// No-op.
        #[inline(always)]
        pub fn set(&self, _v: i64) {}
        /// No-op.
        #[inline(always)]
        pub fn record_max(&self, _v: i64) {}
        /// Always zero.
        #[inline(always)]
        pub fn get(&self) -> i64 {
            0
        }
        /// No-op.
        pub fn reset(&self) {}
    }

    /// No-op histogram (telemetry disabled).
    #[derive(Debug, Default)]
    pub struct Histogram;

    impl Histogram {
        /// No-op.
        #[inline(always)]
        pub fn record(&self, _v: u64) {}
        /// No-op.
        #[inline(always)]
        pub fn record_seconds(&self, _seconds: f64) {}
        /// Always zero.
        pub fn count(&self) -> u64 {
            0
        }
        /// Always zero.
        pub fn sum(&self) -> u64 {
            0
        }
        /// Always zero.
        pub fn quantile_bound(&self, _q: f64) -> u64 {
            0
        }
        /// No-op.
        pub fn reset(&self) {}
    }

    static NOOP_COUNTER: Counter = Counter;
    static NOOP_GAUGE: Gauge = Gauge;
    static NOOP_HISTOGRAM: Histogram = Histogram;

    /// Returns the shared no-op counter.
    #[inline(always)]
    pub fn counter(_name: &'static str) -> &'static Counter {
        &NOOP_COUNTER
    }

    /// Returns the shared no-op gauge.
    #[inline(always)]
    pub fn gauge(_name: &'static str) -> &'static Gauge {
        &NOOP_GAUGE
    }

    /// Returns the shared no-op histogram.
    #[inline(always)]
    pub fn histogram(_name: &'static str) -> &'static Histogram {
        &NOOP_HISTOGRAM
    }

    /// Empty snapshot (telemetry disabled).
    pub fn snapshot() -> MetricsSnapshot {
        MetricsSnapshot::default()
    }

    /// No-op.
    pub fn reset() {}
}

pub use imp::{counter, gauge, histogram, reset, snapshot, Counter, Gauge, Histogram};

/// Renders every registered metric as a human-readable table (used by the
/// `full_report` binary's observability appendix).
pub fn summary() -> String {
    let snap = snapshot();
    let mut out = String::new();
    out.push_str("telemetry summary\n");
    if !crate::ENABLED {
        out.push_str("  (disabled: build with `--features telemetry`)\n");
        return out;
    }
    if snap.counters.is_empty() && snap.gauges.is_empty() && snap.histograms.is_empty() {
        out.push_str("  (no metrics recorded)\n");
        return out;
    }
    if !snap.counters.is_empty() {
        out.push_str("  counters\n");
        for (name, v) in &snap.counters {
            out.push_str(&format!("    {name:<44} {v:>14}\n"));
        }
    }
    if !snap.gauges.is_empty() {
        out.push_str("  gauges\n");
        for (name, v) in &snap.gauges {
            out.push_str(&format!("    {name:<44} {v:>14}\n"));
        }
    }
    if !snap.histograms.is_empty() {
        out.push_str("  histograms (log2 buckets; bounds are bucket tops)\n");
        out.push_str(&format!(
            "    {:<32} {:>10} {:>12} {:>12} {:>12}\n",
            "name", "count", "p50<=", "p99<=", "max<="
        ));
        for h in &snap.histograms {
            out.push_str(&format!(
                "    {:<32} {:>10} {:>12} {:>12} {:>12}\n",
                h.name, h.count, h.p50, h.p99, h.max
            ));
        }
    }
    out
}

#[cfg(all(test, feature = "enabled"))]
mod tests {
    use super::*;

    #[test]
    fn counters_count() {
        let c = counter("test.registry.counter");
        c.reset();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Interning returns the same handle.
        assert!(std::ptr::eq(c, counter("test.registry.counter")));
    }

    #[test]
    fn gauges_set_and_peak() {
        let g = gauge("test.registry.gauge");
        g.reset();
        g.set(7);
        g.record_max(3);
        assert_eq!(g.get(), 7);
        g.record_max(11);
        assert_eq!(g.get(), 11);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = histogram("test.registry.hist");
        h.reset();
        for v in [0u64, 1, 1, 2, 3, 100, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.sum(), 1107);
        // Median sample is 2 → bucket [2,4) → bound 3.
        assert_eq!(h.quantile_bound(0.5), 3);
        assert!(h.quantile_bound(1.0) >= 1000);
    }

    #[test]
    fn snapshot_contains_registered_metrics() {
        counter("test.registry.snap").inc();
        let s = snapshot();
        assert!(s.counters.iter().any(|(n, _)| n == "test.registry.snap"));
    }

    #[test]
    fn summary_renders() {
        counter("test.registry.summary").inc();
        let s = summary();
        assert!(s.contains("test.registry.summary"));
    }

    #[test]
    fn concurrent_updates_do_not_lose_counts() {
        let c = counter("test.registry.concurrent");
        c.reset();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 40_000);
    }
}

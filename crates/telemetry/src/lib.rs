//! Structured observability for the HCMD reproduction: live counters,
//! a JSONL event log, and per-run manifests.
//!
//! The paper's campaign was operated blind in places — §6 reconstructs
//! redundancy and speed-down factors from server-side accounting after
//! the fact. This crate gives the *simulated* campaign the observability
//! the real one lacked, in three layers:
//!
//! * [`registry`] — a lock-free metrics registry (atomic counters, gauges
//!   and fixed-bucket histograms). Handles are `&'static`; the hot path is
//!   one relaxed atomic RMW, cheap enough for the gridsim event loop and
//!   the rayon-parallel docking paths.
//! * [`events`] — a structured JSONL event log with dual timestamps
//!   (wall-clock milliseconds and, where meaningful, simulation seconds),
//!   covering the workunit lifecycle (packaged → issued → dispatched →
//!   result returned → validated / reissued with cause) and campaign
//!   phase spans.
//! * [`manifest`] — per-run manifests: seed, scale divisor, git revision,
//!   wall-clock, events processed, peak event-queue depth, results/sec —
//!   written next to the figure JSON each bench binary produces.
//!
//! # Zero cost when disabled
//!
//! Everything is gated on this crate's `enabled` cargo feature.
//! Instrumented crates (gridsim, maxdo, workunit, bench) depend on
//! `hcmd-telemetry` unconditionally and expose a `telemetry = `
//! `["hcmd-telemetry/enabled"]` passthrough feature; without it, metric
//! handles are zero-sized, [`ENABLED`] is `false`, and every call inlines
//! to nothing. The `telemetry_overhead` criterion bench in `hcmd-bench`
//! measures the *enabled* cost on the event loop (< 2 %).

/// Whether instrumentation is compiled in (`enabled` cargo feature).
pub const ENABLED: bool = cfg!(feature = "enabled");

pub mod events;
pub mod exposition;
pub mod manifest;
pub mod registry;

pub use events::{
    emit, install_jsonl, install_jsonl_with_cap, shutdown, Event, IssueCause, Record,
    DEFAULT_MAX_BYTES,
};
pub use exposition::{render_snapshot, MetricKind, TextRenderer};
pub use manifest::{git_revision, RunManifest};
pub use registry::{
    counter, gauge, histogram, reset, snapshot, summary, Counter, Gauge, Histogram,
    HistogramSnapshot, MetricsSnapshot,
};

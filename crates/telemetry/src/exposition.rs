//! Prometheus text-exposition rendering of a [`MetricsSnapshot`].
//!
//! The live server's `/metrics` endpoint (netgrid's `ops` module) is a
//! plain-text Prometheus scrape target. This module owns the format:
//! metric-name sanitisation, `HELP`/label escaping, `# TYPE` headers,
//! and the mapping from the registry's log₂ histograms to cumulative
//! `_bucket{le="..."}` series with the mandatory `+Inf` terminal bucket.
//!
//! Output is deterministic: [`MetricsSnapshot`] is sorted by name, and
//! [`TextRenderer`] emits families in call order with labels rendered
//! exactly as given — two scrapes of the same state are byte-identical,
//! which is what makes the format lintable (`tools/promcheck`) and
//! diff-able in CI.
//!
//! Reference: the Prometheus exposition format spec. Names must match
//! `[a-zA-Z_:][a-zA-Z0-9_:]*` (our dotted registry names are mapped
//! `.` → `_`), label names `[a-zA-Z_][a-zA-Z0-9_]*`, and label values /
//! help text escape `\`, `"` (values only) and newlines.

use crate::registry::{HistogramSnapshot, MetricsSnapshot};

/// Metric kind for the `# TYPE` header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically increasing.
    Counter,
    /// Instantaneous value.
    Gauge,
    /// Cumulative-bucket histogram.
    Histogram,
}

impl MetricKind {
    fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// Maps an arbitrary metric name onto the Prometheus name alphabet:
/// every character outside `[a-zA-Z0-9_:]` becomes `_`, and a leading
/// digit gets a `_` prefix. Registry names like `net.results.accepted`
/// render as `net_results_accepted`.
pub fn sanitize_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        if i == 0 && c.is_ascii_digit() {
            out.push('_');
            out.push(c);
        } else if ok {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Escapes a `# HELP` text: `\` → `\\`, newline → `\n`.
pub fn escape_help(text: &str) -> String {
    text.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Escapes a label value: `\` → `\\`, `"` → `\"`, newline → `\n`.
pub fn escape_label_value(value: &str) -> String {
    value
        .replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Formats a sample value. Integral values render without a fractional
/// part (`17`, not `17.0`), infinities as `+Inf`/`-Inf`.
fn format_value(v: f64) -> String {
    if v.is_infinite() {
        return if v > 0.0 {
            "+Inf".into()
        } else {
            "-Inf".into()
        };
    }
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Streaming builder for one exposition document.
///
/// Call [`Self::family`] once per metric, then [`Self::sample`] (or
/// [`Self::histogram`]) for its series. The builder sanitises names and
/// escapes help/label text so callers can pass raw strings.
#[derive(Debug, Default)]
pub struct TextRenderer {
    out: String,
}

impl TextRenderer {
    /// An empty document.
    pub fn new() -> Self {
        Self::default()
    }

    /// Emits the `# HELP` / `# TYPE` header pair for `name` and returns
    /// the sanitised name (reuse it for the family's samples).
    pub fn family(&mut self, name: &str, kind: MetricKind, help: &str) -> String {
        let name = sanitize_name(name);
        self.out
            .push_str(&format!("# HELP {name} {}\n", escape_help(help)));
        self.out
            .push_str(&format!("# TYPE {name} {}\n", kind.as_str()));
        name
    }

    /// Emits one sample line. `labels` are `(name, value)` pairs; label
    /// names are sanitised, values escaped.
    pub fn sample(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        self.out.push_str(&sanitize_name(name));
        if !labels.is_empty() {
            self.out.push('{');
            for (i, (k, v)) in labels.iter().enumerate() {
                if i > 0 {
                    self.out.push(',');
                }
                self.out.push_str(&format!(
                    "{}=\"{}\"",
                    sanitize_name(k),
                    escape_label_value(v)
                ));
            }
            self.out.push('}');
        }
        self.out.push(' ');
        self.out.push_str(&format_value(value));
        self.out.push('\n');
    }

    /// Emits one registry histogram as a conventional Prometheus
    /// histogram: cumulative `_bucket{le="..."}` series over the log₂
    /// bucket bounds, a `+Inf` terminal bucket, `_sum` and `_count`.
    pub fn histogram(&mut self, h: &HistogramSnapshot, help: &str) {
        let name = self.family(&h.name, MetricKind::Histogram, help);
        let mut cumulative = 0u64;
        for &(bound, count) in &h.buckets {
            cumulative += count;
            self.sample(
                &format!("{name}_bucket"),
                &[("le", bound.to_string().as_str())],
                cumulative as f64,
            );
        }
        self.sample(&format!("{name}_bucket"), &[("le", "+Inf")], h.count as f64);
        self.sample(&format!("{name}_sum"), &[], h.sum as f64);
        self.sample(&format!("{name}_count"), &[], h.count as f64);
    }

    /// The finished document.
    pub fn finish(self) -> String {
        self.out
    }
}

/// Renders every metric of a snapshot: counters, gauges, histograms, in
/// the snapshot's (sorted) order.
pub fn render_snapshot(snap: &MetricsSnapshot) -> String {
    let mut r = TextRenderer::new();
    for (name, v) in &snap.counters {
        let n = r.family(name, MetricKind::Counter, "hcmd registry counter");
        r.sample(&n, &[], *v as f64);
    }
    for (name, v) in &snap.gauges {
        let n = r.family(name, MetricKind::Gauge, "hcmd registry gauge");
        r.sample(&n, &[], *v as f64);
    }
    for h in &snap.histograms {
        r.histogram(h, "hcmd registry histogram (log2 buckets)");
    }
    r.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_sanitized_onto_the_prometheus_alphabet() {
        assert_eq!(
            sanitize_name("net.results.accepted"),
            "net_results_accepted"
        );
        assert_eq!(sanitize_name("sim.queue.depth"), "sim_queue_depth");
        assert_eq!(sanitize_name("already_fine:name"), "already_fine:name");
        assert_eq!(sanitize_name("9starts.with.digit"), "_9starts_with_digit");
        assert_eq!(sanitize_name("dash-and space"), "dash_and_space");
        assert_eq!(sanitize_name(""), "_");
    }

    #[test]
    fn help_and_label_values_escape_specials() {
        assert_eq!(escape_help("a\\b\nc"), "a\\\\b\\nc");
        assert_eq!(
            escape_label_value("say \"hi\"\n\\"),
            "say \\\"hi\\\"\\n\\\\"
        );
    }

    #[test]
    fn integral_values_render_without_fraction() {
        assert_eq!(format_value(17.0), "17");
        assert_eq!(format_value(0.5), "0.5");
        assert_eq!(format_value(f64::INFINITY), "+Inf");
        assert_eq!(format_value(f64::NEG_INFINITY), "-Inf");
    }

    #[test]
    fn histogram_buckets_are_cumulative_monotone_with_inf_terminal() {
        let h = HistogramSnapshot {
            name: "req.latency".into(),
            count: 7,
            sum: 1107,
            p50: 3,
            p99: 1023,
            max: 1023,
            buckets: vec![(0, 1), (1, 2), (3, 2), (127, 1), (1023, 1)],
        };
        let mut r = TextRenderer::new();
        r.histogram(&h, "test");
        let text = r.finish();
        // Extract the bucket series in order and check both le bounds
        // and cumulative counts are monotone non-decreasing.
        let mut last_le = -1.0f64;
        let mut last_cum = 0.0f64;
        let mut saw_inf = false;
        for line in text.lines().filter(|l| l.contains("_bucket")) {
            assert!(!saw_inf, "+Inf must be the terminal bucket");
            let le = line
                .split("le=\"")
                .nth(1)
                .unwrap()
                .split('"')
                .next()
                .unwrap();
            let value: f64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            let le_v = if le == "+Inf" {
                saw_inf = true;
                f64::INFINITY
            } else {
                le.parse().unwrap()
            };
            assert!(le_v > last_le, "le bounds must increase: {text}");
            assert!(
                value >= last_cum,
                "bucket counts must be cumulative: {text}"
            );
            last_le = le_v;
            last_cum = value;
        }
        assert!(saw_inf, "terminal +Inf bucket missing:\n{text}");
        assert_eq!(last_cum, 7.0, "+Inf bucket equals the sample count");
        assert!(text.contains("req_latency_sum 1107"));
        assert!(text.contains("req_latency_count 7"));
    }

    #[test]
    fn empty_histogram_still_has_the_inf_bucket() {
        let h = HistogramSnapshot {
            name: "empty".into(),
            count: 0,
            sum: 0,
            p50: 0,
            p99: 0,
            max: 0,
            buckets: Vec::new(),
        };
        let mut r = TextRenderer::new();
        r.histogram(&h, "test");
        let text = r.finish();
        assert!(text.contains("empty_bucket{le=\"+Inf\"} 0"));
        assert!(text.contains("empty_count 0"));
    }

    #[test]
    fn labels_render_escaped_and_sorted_as_given() {
        let mut r = TextRenderer::new();
        let n = r.family("wu.states", MetricKind::Gauge, "workunit states");
        r.sample(&n, &[("state", "in-flight"), ("shard", "a\"b")], 3.0);
        let text = r.finish();
        assert!(
            text.contains("wu_states{state=\"in-flight\",shard=\"a\\\"b\"} 3"),
            "{text}"
        );
    }

    #[test]
    fn snapshot_rendering_is_deterministic() {
        let mut snap = MetricsSnapshot {
            counters: vec![("b.two".into(), 2), ("a.one".into(), 1)],
            gauges: vec![("z.gauge".into(), -4)],
            histograms: Vec::new(),
        };
        snap.sort();
        let first = render_snapshot(&snap);
        let second = render_snapshot(&snap);
        assert_eq!(first, second);
        let a = first.find("a_one").unwrap();
        let b = first.find("b_two").unwrap();
        assert!(a < b, "families follow the sorted snapshot order");
        assert!(first.contains("z_gauge -4"));
    }
}

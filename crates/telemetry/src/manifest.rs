//! Per-run manifests.
//!
//! Every bench binary writes one [`RunManifest`] next to its figure JSON:
//! enough provenance (seed, scale, git revision) and enough outcome
//! summary (wall-clock, events processed, peak queue depth, results/sec)
//! to tell two runs apart six months later without rerunning either.

use serde::{Deserialize, Serialize};

/// Provenance and outcome summary for one bench/example run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunManifest {
    /// Binary name (e.g. `fig6_campaign`).
    pub bin: String,
    /// RNG seed for the run.
    pub seed: u64,
    /// Campaign scale divisor (1 = full paper scale).
    pub scale_divisor: u64,
    /// Git revision of the working tree, or `"unknown"`.
    pub git_rev: String,
    /// Whether the `telemetry` feature was compiled in.
    pub telemetry_enabled: bool,
    /// Total wall-clock for the run in seconds.
    pub wall_seconds: f64,
    /// Simulator events processed (0 for non-simulating runs).
    pub events_processed: u64,
    /// Peak simulator event-queue depth (0 for non-simulating runs).
    pub peak_queue_depth: u64,
    /// Validated results per wall-clock second (0 when not applicable).
    pub results_per_second: f64,
    /// Final metric values at the end of the run.
    pub metrics: crate::MetricsSnapshot,
}

impl RunManifest {
    /// Starts a manifest for `bin` with provenance filled in and outcome
    /// fields zeroed; callers set outcomes before [`write`](Self::write).
    pub fn new(bin: &str, seed: u64, scale_divisor: u64) -> Self {
        Self {
            bin: bin.to_string(),
            seed,
            scale_divisor,
            git_rev: git_revision(),
            telemetry_enabled: crate::ENABLED,
            wall_seconds: 0.0,
            events_processed: 0,
            peak_queue_depth: 0,
            results_per_second: 0.0,
            metrics: crate::MetricsSnapshot::default(),
        }
    }

    /// Serializes to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).unwrap_or_default()
    }

    /// Writes the manifest as pretty JSON to `path`, creating parent
    /// directories.
    pub fn write(&self, path: &std::path::Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.to_json())
    }
}

/// Best-effort git revision of the repository containing the current
/// directory: reads `.git/HEAD` and resolves one level of symbolic ref
/// through loose refs and `packed-refs`. Returns `"unknown"` if anything
/// is missing — never shells out, never fails.
pub fn git_revision() -> String {
    fn read_rev() -> Option<String> {
        let mut dir = std::env::current_dir().ok()?;
        let git = loop {
            let candidate = dir.join(".git");
            if candidate.is_dir() {
                break candidate;
            }
            if !dir.pop() {
                return None;
            }
        };
        let head = std::fs::read_to_string(git.join("HEAD")).ok()?;
        let head = head.trim();
        let Some(refname) = head.strip_prefix("ref: ") else {
            // Detached HEAD: the line is the hash itself.
            return Some(head.to_string());
        };
        if let Ok(loose) = std::fs::read_to_string(git.join(refname)) {
            return Some(loose.trim().to_string());
        }
        let packed = std::fs::read_to_string(git.join("packed-refs")).ok()?;
        packed.lines().find_map(|line| {
            let (hash, name) = line.split_once(' ')?;
            (name == refname).then(|| hash.to_string())
        })
    }
    read_rev()
        .filter(|r| !r.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::{Deserialize, Serialize};

    #[test]
    fn manifest_round_trips() {
        let mut m = RunManifest::new("fig6_campaign", 2007, 10);
        m.wall_seconds = 1.25;
        m.events_processed = 123_456;
        m.peak_queue_depth = 998;
        m.results_per_second = 321.5;
        let back = RunManifest::from_value(&m.to_value()).unwrap();
        assert_eq!(back, m);
        let back2: RunManifest = serde_json::from_str(&m.to_json()).unwrap();
        assert_eq!(back2, m);
    }

    #[test]
    fn manifest_records_build_facts() {
        let m = RunManifest::new("x", 1, 1);
        assert_eq!(m.telemetry_enabled, crate::ENABLED);
        assert!(!m.git_rev.is_empty());
    }

    #[test]
    fn git_revision_is_hex_or_unknown() {
        let rev = git_revision();
        assert!(rev == "unknown" || rev.chars().all(|c| c.is_ascii_hexdigit()));
    }
}

//! The structured JSONL event log.
//!
//! Events cover the workunit lifecycle the paper's server-side accounting
//! tracked (packaged → issued → dispatched → result returned → validated /
//! reissued with cause) plus campaign phase spans and per-day summaries.
//! Each record carries a wall-clock timestamp (milliseconds since the log
//! was installed) and, where the event originates inside the simulator, a
//! simulation timestamp in seconds.
//!
//! Emission is opt-in twice over: the `enabled` cargo feature compiles the
//! machinery in, and [`install_jsonl`] must be called to open a sink.
//! Until both happen, [`emit`] is a no-op — when the feature is off it
//! const-folds away (the event-constructing closure is never called), and
//! when no sink is installed it is a single relaxed atomic load.
//!
//! Full-scale campaigns touch hundreds of thousands of workunits, far too
//! many to log one line each; instrumented call sites sample the
//! per-workunit lifecycle events (see `gridsim`'s `telemetry` docs) while
//! low-volume events (phases, day summaries) are always emitted.
//!
//! # Size cap / rotation
//!
//! Even sampled, a 26-week campaign writes an unbounded log. The sink
//! therefore enforces a size cap: once the current file would exceed it,
//! the file is rotated to `<path>.1` (replacing any previous rotation)
//! and a fresh file opened at `<path>`, so the log holds at most two
//! generations ≈ 2 × cap bytes. The default cap is 64 MiB; override it
//! with the `HCMD_EVENTS_MAX_BYTES` environment variable (a cap of `0`
//! disables rotation) or programmatically via
//! [`install_jsonl_with_cap`].

use serde::{Deserialize, Serialize};

/// Why a workunit instance was (re)issued.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum IssueCause {
    /// First issue of the initial redundancy batch.
    Initial,
    /// Reissued because the quorum could not be met from live instances.
    Quorum,
    /// Reissued because an instance passed its deadline.
    Timeout,
    /// Reissued because an instance returned a compute error.
    Error,
}

/// One structured telemetry event.
///
/// Externally tagged in JSON: `{"PhaseStart":{"name":"packaging"}}`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Event {
    /// A bench binary or example started a run.
    RunStart {
        /// Binary name (e.g. `fig6_campaign`).
        bin: String,
        /// RNG seed for the run.
        seed: u64,
        /// Campaign scale divisor (1 = full paper scale).
        scale_divisor: u64,
    },
    /// A campaign phase began.
    PhaseStart {
        /// Phase name (e.g. `packaging`, `simulation`, `analysis`).
        name: String,
    },
    /// A campaign phase finished.
    PhaseEnd {
        /// Phase name matching the corresponding [`Event::PhaseStart`].
        name: String,
        /// Wall-clock duration of the phase in seconds.
        wall_seconds: f64,
    },
    /// The packager produced a batch of workunits.
    WorkunitPackaged {
        /// Number of workunits in the batch.
        count: u64,
        /// Workunit duration parameter H in seconds.
        h_seconds: f64,
    },
    /// An instance of a (sampled) workunit was issued.
    WorkunitIssued {
        /// Workunit index within the campaign.
        workunit: u64,
        /// Why this instance was created.
        cause: IssueCause,
    },
    /// A (sampled) workunit instance was handed to a host.
    WorkunitDispatched {
        /// Workunit index within the campaign.
        workunit: u64,
        /// Host identifier.
        host: u64,
    },
    /// A host returned a result for a (sampled) workunit.
    ResultReturned {
        /// Workunit index within the campaign.
        workunit: u64,
        /// Host identifier.
        host: u64,
        /// Whether the host reported a compute error.
        error: bool,
    },
    /// A (sampled) workunit reached quorum and validated.
    WorkunitValidated {
        /// Workunit index within the campaign.
        workunit: u64,
    },
    /// A (sampled) workunit had an instance reissued.
    WorkunitReissued {
        /// Workunit index within the campaign.
        workunit: u64,
        /// Why the reissue happened.
        cause: IssueCause,
    },
    /// A volunteer agent's connection to the live task server opened
    /// (netgrid; wire-level runs only).
    ConnectionOpened {
        /// Agent identifier from the `Hello` frame.
        agent: u64,
    },
    /// A volunteer agent's connection closed.
    ConnectionClosed {
        /// Agent identifier from the `Hello` frame (0 when the agent
        /// dropped before identifying itself).
        agent: u64,
        /// Frames exchanged over the connection's lifetime.
        frames: u64,
        /// Why the connection ended (`bye`, `eof`, `io`, `protocol`).
        reason: String,
    },
    /// A connection was turned away at the server's connection limit
    /// before any frame was read. Deliberately distinct from
    /// [`Event::ConnectionClosed`]: a rejected connection never opened
    /// (no `Hello`, no agent id), so pairing `ConnectionOpened` /
    /// `ConnectionClosed` stays exact.
    ConnectionRejected {
        /// The backoff the server suggested in its `Busy` reply, ms.
        retry_after_ms: u64,
    },
    /// A (sampled) workunit result was rejected by quorum comparison:
    /// it disagreed with every stored candidate result byte-for-byte.
    QuorumRejected {
        /// Workunit index within the campaign.
        workunit: u64,
    },
    /// End-of-simulated-day rollup from the volunteer grid.
    DaySummary {
        /// Day index from campaign start.
        day: u64,
        /// Hosts attached at end of day.
        active_hosts: u64,
        /// Event-queue depth at end of day.
        queue_len: u64,
        /// Workunits validated so far.
        completed: u64,
    },
    /// The run finished.
    RunEnd {
        /// Total wall-clock for the run in seconds.
        wall_seconds: f64,
        /// Simulator events processed (0 for non-simulating runs).
        events_processed: u64,
    },
}

/// One JSONL line: an [`Event`] with its timestamps.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Record {
    /// Wall-clock milliseconds since the log was installed.
    pub wall_ms: u64,
    /// Simulation time in seconds, when the event originates inside the
    /// simulator; `None` for host-side events (phases, run markers).
    pub sim_s: Option<f64>,
    /// The event payload.
    pub event: Event,
}

#[cfg(feature = "enabled")]
mod imp {
    use super::{Event, Record};
    use std::fs::File;
    use std::io::{BufWriter, Write};
    use std::path::Path;
    use std::sync::atomic::{AtomicBool, Ordering::Relaxed};
    use std::sync::{Mutex, OnceLock};
    use std::time::Instant;

    /// Default size cap per log generation (64 MiB). See the module docs
    /// for the rotation scheme; `HCMD_EVENTS_MAX_BYTES` overrides it.
    pub const DEFAULT_MAX_BYTES: u64 = 64 * 1024 * 1024;

    struct Sink {
        writer: BufWriter<File>,
        path: std::path::PathBuf,
        written: u64,
        /// `None` disables rotation.
        max_bytes: Option<u64>,
    }

    impl Sink {
        /// Writes one line, rotating the file first when the line would
        /// push the current generation past the cap.
        fn write_line(&mut self, line: &str) {
            let needed = line.len() as u64 + 1;
            if let Some(cap) = self.max_bytes {
                if self.written > 0 && self.written + needed > cap {
                    let _ = self.writer.flush();
                    let rotated = {
                        let mut os = self.path.clone().into_os_string();
                        os.push(".1");
                        std::path::PathBuf::from(os)
                    };
                    if std::fs::rename(&self.path, &rotated).is_ok() {
                        if let Ok(f) = File::create(&self.path) {
                            self.writer = BufWriter::new(f);
                            self.written = 0;
                        }
                    }
                }
            }
            let _ = writeln!(self.writer, "{line}");
            self.written += needed;
        }
    }

    static ACTIVE: AtomicBool = AtomicBool::new(false);
    static SINK: Mutex<Option<Sink>> = Mutex::new(None);
    static EPOCH: OnceLock<Instant> = OnceLock::new();

    fn wall_ms() -> u64 {
        EPOCH.get_or_init(Instant::now).elapsed().as_millis() as u64
    }

    fn cap_from_env() -> Option<u64> {
        match std::env::var("HCMD_EVENTS_MAX_BYTES") {
            Ok(v) => match v.trim().parse::<u64>() {
                Ok(0) => None,
                Ok(n) => Some(n),
                Err(_) => Some(DEFAULT_MAX_BYTES),
            },
            Err(_) => Some(DEFAULT_MAX_BYTES),
        }
    }

    /// Opens (truncating) a JSONL sink at `path`; subsequent [`emit`]
    /// calls append one line per event. Creates parent directories. The
    /// size cap comes from `HCMD_EVENTS_MAX_BYTES` (default 64 MiB, `0`
    /// disables rotation).
    pub fn install_jsonl(path: &Path) -> std::io::Result<()> {
        install_jsonl_with_cap(path, cap_from_env())
    }

    /// Like [`install_jsonl`] but with an explicit size cap per log
    /// generation; `None` disables rotation.
    pub fn install_jsonl_with_cap(path: &Path, max_bytes: Option<u64>) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let file = BufWriter::new(File::create(path)?);
        EPOCH.get_or_init(Instant::now);
        *SINK.lock().unwrap() = Some(Sink {
            writer: file,
            path: path.to_path_buf(),
            written: 0,
            max_bytes,
        });
        ACTIVE.store(true, Relaxed);
        Ok(())
    }

    /// Appends one event. `sim_s` is the simulation timestamp when the
    /// event originates inside the simulator. The closure only runs when
    /// a sink is installed, so constructing the event costs nothing in
    /// un-logged runs.
    #[inline]
    pub fn emit(sim_s: Option<f64>, event: impl FnOnce() -> Event) {
        if !ACTIVE.load(Relaxed) {
            return;
        }
        let record = Record {
            wall_ms: wall_ms(),
            sim_s,
            event: event(),
        };
        let Ok(line) = serde_json::to_string(&record) else {
            return;
        };
        let mut sink = SINK.lock().unwrap();
        if let Some(s) = sink.as_mut() {
            s.write_line(&line);
        }
    }

    /// Flushes and closes the sink. Safe to call more than once.
    pub fn shutdown() {
        ACTIVE.store(false, Relaxed);
        if let Some(mut s) = SINK.lock().unwrap().take() {
            let _ = s.writer.flush();
        }
    }
}

#[cfg(not(feature = "enabled"))]
mod imp {
    use super::Event;
    use std::path::Path;

    /// Default size cap per log generation (matching the enabled build;
    /// unused here).
    pub const DEFAULT_MAX_BYTES: u64 = 64 * 1024 * 1024;

    /// No-op (telemetry disabled); reports success so callers need no
    /// feature-gating.
    #[inline(always)]
    pub fn install_jsonl(_path: &Path) -> std::io::Result<()> {
        Ok(())
    }

    /// No-op (telemetry disabled); reports success so callers need no
    /// feature-gating.
    #[inline(always)]
    pub fn install_jsonl_with_cap(_path: &Path, _max_bytes: Option<u64>) -> std::io::Result<()> {
        Ok(())
    }

    /// No-op (telemetry disabled); the closure is never invoked.
    #[inline(always)]
    pub fn emit(_sim_s: Option<f64>, _event: impl FnOnce() -> Event) {}

    /// No-op (telemetry disabled).
    #[inline(always)]
    pub fn shutdown() {}
}

pub use imp::{emit, install_jsonl, install_jsonl_with_cap, shutdown, DEFAULT_MAX_BYTES};

#[cfg(test)]
mod tests {
    use super::*;
    use serde::{Deserialize, Serialize};

    #[test]
    fn record_round_trips_through_value_tree() {
        let records = [
            Record {
                wall_ms: 12,
                sim_s: None,
                event: Event::RunStart {
                    bin: "fig6_campaign".into(),
                    seed: 2007,
                    scale_divisor: 10,
                },
            },
            Record {
                wall_ms: 340,
                sim_s: Some(86_400.5),
                event: Event::WorkunitReissued {
                    workunit: 41,
                    cause: IssueCause::Timeout,
                },
            },
            Record {
                wall_ms: 401,
                sim_s: None,
                event: Event::ConnectionOpened { agent: 7 },
            },
            Record {
                wall_ms: 977,
                sim_s: None,
                event: Event::ConnectionClosed {
                    agent: 7,
                    frames: 42,
                    reason: "bye".into(),
                },
            },
            Record {
                wall_ms: 499,
                sim_s: None,
                event: Event::ConnectionRejected { retry_after_ms: 80 },
            },
            Record {
                wall_ms: 612,
                sim_s: Some(33.5),
                event: Event::QuorumRejected { workunit: 18 },
            },
            Record {
                wall_ms: 900,
                sim_s: Some(172_800.0),
                event: Event::DaySummary {
                    day: 2,
                    active_hosts: 512,
                    queue_len: 1044,
                    completed: 777,
                },
            },
        ];
        for r in &records {
            let back = Record::from_value(&r.to_value()).unwrap();
            assert_eq!(&back, r);
        }
    }

    #[test]
    fn record_round_trips_through_json_text() {
        let r = Record {
            wall_ms: 7,
            sim_s: Some(3.25),
            event: Event::ResultReturned {
                workunit: 9,
                host: 33,
                error: true,
            },
        };
        let json = serde_json::to_string(&r).unwrap();
        let back: Record = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }

    /// The JSONL sink is process-global; tests that install one must not
    /// overlap or their events interleave into each other's files.
    #[cfg(feature = "enabled")]
    static SINK_TEST_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[cfg(feature = "enabled")]
    #[test]
    fn jsonl_sink_writes_one_line_per_event() {
        let _guard = SINK_TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let dir = std::env::temp_dir().join("hcmd-telemetry-test");
        let path = dir.join("events.jsonl");
        install_jsonl(&path).unwrap();
        emit(None, || Event::PhaseStart {
            name: "packaging".into(),
        });
        emit(Some(1.5), || Event::WorkunitValidated { workunit: 3 });
        shutdown();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let first: Record = serde_json::from_str(lines[0]).unwrap();
        assert_eq!(
            first.event,
            Event::PhaseStart {
                name: "packaging".into()
            }
        );
        let second: Record = serde_json::from_str(lines[1]).unwrap();
        assert_eq!(second.sim_s, Some(1.5));
        // After shutdown, emits are dropped silently.
        emit(None, || Event::RunEnd {
            wall_seconds: 0.0,
            events_processed: 0,
        });
        let text_after = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text_after, text);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn jsonl_sink_rotates_at_the_size_cap() {
        let _guard = SINK_TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let dir = std::env::temp_dir().join("hcmd-telemetry-rotate-test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("events.jsonl");
        // Each PhaseStart line is ~70 bytes; a 256-byte cap forces at
        // least one rotation within a dozen events.
        install_jsonl_with_cap(&path, Some(256)).unwrap();
        for i in 0..12 {
            emit(None, || Event::PhaseStart {
                name: format!("phase-{i:04}"),
            });
        }
        shutdown();
        let rotated = dir.join("events.jsonl.1");
        assert!(rotated.exists(), "rotation never happened");
        let live = std::fs::read_to_string(&path).unwrap();
        let old = std::fs::read_to_string(&rotated).unwrap();
        assert!(live.len() as u64 <= 256, "live generation exceeds cap");
        assert!(old.len() as u64 <= 256, "rotated generation exceeds cap");
        // Every line in both generations is intact JSON (rotation never
        // splits a record), and the newest record is in the live file.
        for line in live.lines().chain(old.lines()) {
            let _: Record = serde_json::from_str(line).unwrap();
        }
        let last: Record = serde_json::from_str(live.lines().last().unwrap()).unwrap();
        assert_eq!(
            last.event,
            Event::PhaseStart {
                name: "phase-0011".into()
            }
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

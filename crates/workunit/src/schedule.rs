//! The §5.1 launch schedule.
//!
//! "The World Community Grid team decided to launch the workunit of one
//! protein after an other. They also decided to first launch the protein
//! that required less computing time" — failures surface early when cheap
//! proteins return quickly, and newer (faster) devices joining later take
//! the heavier workunits.
//!
//! [`LaunchSchedule`] orders receptors by ascending total workload and
//! exposes the campaign as an ordered sequence of per-receptor batches.

use crate::package::{CampaignPackage, WorkunitSpec};
use maxdo::ProteinId;
use serde::{Deserialize, Serialize};
use timemodel::Workload;

/// The ordered launch plan of a campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LaunchSchedule {
    /// Receptor ids, cheapest total workload first.
    order: Vec<ProteinId>,
    /// Per-receptor total CPU seconds, aligned with `order`.
    batch_seconds: Vec<f64>,
}

impl LaunchSchedule {
    /// Builds the cheapest-first schedule from a packaged campaign.
    pub fn cheapest_first(pkg: &CampaignPackage<'_>) -> Self {
        let workload = Workload::derive(pkg.library(), pkg.matrix());
        let order: Vec<ProteinId> = workload
            .launch_order()
            .into_iter()
            .map(|i| ProteinId(i as u32))
            .collect();
        let batch_seconds = order
            .iter()
            .map(|&p| workload.per_protein_seconds[p.0 as usize])
            .collect();
        Self {
            order,
            batch_seconds,
        }
    }

    /// Receptors in launch order.
    pub fn order(&self) -> &[ProteinId] {
        &self.order
    }

    /// Total CPU seconds of the `k`-th batch.
    pub fn batch_seconds(&self, k: usize) -> f64 {
        self.batch_seconds[k]
    }

    /// Number of batches (= number of receptors).
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// True when there are no batches.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Visits the workunits of the whole campaign in launch order:
    /// cheapest receptor's workunits first, then the next, etc.
    pub fn for_each_workunit_in_order(
        &self,
        pkg: &CampaignPackage<'_>,
        mut f: impl FnMut(WorkunitSpec),
    ) {
        for &receptor in &self.order {
            pkg.for_each_workunit_of_receptor(receptor, &mut f);
        }
    }

    /// Cumulative work fraction after each batch — the X axis of the
    /// Figure 7 progression view.
    pub fn cumulative_work_fractions(&self) -> Vec<f64> {
        let total: f64 = self.batch_seconds.iter().sum();
        let mut acc = 0.0;
        self.batch_seconds
            .iter()
            .map(|&b| {
                acc += b;
                if total > 0.0 {
                    acc / total
                } else {
                    0.0
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maxdo::{CostModel, LibraryConfig, ProteinLibrary};
    use timemodel::CostMatrix;

    fn setup() -> (ProteinLibrary, CostMatrix) {
        let lib = ProteinLibrary::generate(LibraryConfig::tiny(5), 71);
        let m = CostMatrix::from_cost_model(&lib, &CostModel::with_kappa(0.05));
        (lib, m)
    }

    #[test]
    fn order_is_cheapest_first() {
        let (lib, m) = setup();
        let pkg = CampaignPackage::new(&lib, &m, 600.0);
        let sched = LaunchSchedule::cheapest_first(&pkg);
        assert_eq!(sched.len(), 5);
        for k in 1..sched.len() {
            assert!(sched.batch_seconds(k - 1) <= sched.batch_seconds(k));
        }
    }

    #[test]
    fn every_receptor_appears_once() {
        let (lib, m) = setup();
        let pkg = CampaignPackage::new(&lib, &m, 600.0);
        let sched = LaunchSchedule::cheapest_first(&pkg);
        let mut seen: Vec<u32> = sched.order().iter().map(|p| p.0).collect();
        seen.sort();
        assert_eq!(seen, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn ordered_enumeration_counts_match() {
        let (lib, m) = setup();
        let pkg = CampaignPackage::new(&lib, &m, 600.0);
        let sched = LaunchSchedule::cheapest_first(&pkg);
        let mut n = 0u64;
        sched.for_each_workunit_in_order(&pkg, |_| n += 1);
        assert_eq!(n, pkg.count());
    }

    #[test]
    fn ordered_enumeration_groups_by_receptor() {
        let (lib, m) = setup();
        let pkg = CampaignPackage::new(&lib, &m, 600.0);
        let sched = LaunchSchedule::cheapest_first(&pkg);
        let mut receptors_seen = Vec::new();
        sched.for_each_workunit_in_order(&pkg, |wu| {
            if receptors_seen.last() != Some(&wu.receptor) {
                receptors_seen.push(wu.receptor);
            }
        });
        // Each receptor forms exactly one contiguous run.
        let mut dedup = receptors_seen.clone();
        dedup.dedup();
        assert_eq!(receptors_seen, dedup);
        assert_eq!(receptors_seen.len(), 5);
        assert_eq!(receptors_seen, sched.order());
    }

    #[test]
    fn cumulative_fractions_end_at_one() {
        let (lib, m) = setup();
        let pkg = CampaignPackage::new(&lib, &m, 600.0);
        let sched = LaunchSchedule::cheapest_first(&pkg);
        let c = sched.cumulative_work_fractions();
        assert_eq!(c.len(), 5);
        assert!((c[4] - 1.0).abs() < 1e-12);
        assert!(c.windows(2).all(|w| w[0] <= w[1]));
    }
}

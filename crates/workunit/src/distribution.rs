//! Workunit-duration distributions — Figure 4.
//!
//! Figure 4 shows the distribution of estimated workunit execution times
//! for two packagings: h = 10 h (1 364 476 workunits) and h = 4 h
//! (3 599 937 workunits). The text notes "the number of workunits increases
//! when the workunit execution time wanted decreases".

use crate::package::CampaignPackage;
use metrics::Histogram;
use serde::{Deserialize, Serialize};

/// Summary of one packaging's workunit-duration distribution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DistributionReport {
    /// Target duration `h`, seconds.
    pub h_seconds: f64,
    /// Total number of workunits.
    pub count: u64,
    /// Mean estimated duration, seconds.
    pub mean_seconds: f64,
    /// Number of workunits whose estimate exceeds `h` (the irreducible
    /// single-position units of slow couples).
    pub over_target: u64,
    /// Histogram of estimated durations (hour-resolution bins).
    pub histogram: Histogram,
}

/// Builds the Figure 4 report for one packaging.
pub fn distribution_report(pkg: &CampaignPackage<'_>) -> DistributionReport {
    // Bin at 30-minute resolution up to 2·h, overflow beyond.
    let hi = pkg.h_seconds * 2.0;
    let nbins = ((hi / 1800.0).ceil() as usize).max(4);
    let mut histogram = Histogram::new(0.0, hi, nbins);
    let mut count = 0u64;
    let mut total = 0.0f64;
    let mut over_target = 0u64;
    pkg.for_each_workunit(|wu| {
        let est = wu.estimated_seconds(pkg.matrix());
        histogram.record(est);
        count += 1;
        total += est;
        if est > pkg.h_seconds {
            over_target += 1;
        }
    });
    DistributionReport {
        h_seconds: pkg.h_seconds,
        count,
        mean_seconds: if count > 0 { total / count as f64 } else { 0.0 },
        over_target,
        histogram,
    }
}

impl DistributionReport {
    /// Renders in the style of a Figure 4 panel caption:
    /// `WantedWuExecTime = 10 h, Nb wu = 1,364,476`.
    pub fn caption(&self) -> String {
        format!(
            "WantedWuExecTime = {} h, Nb wu = {}",
            self.h_seconds / 3600.0,
            group_thousands(self.count)
        )
    }

    /// Mean duration in `h:m:s` (Figure 8 reports "average is 3 hours
    /// 18 min 47s" for the production packaging).
    pub fn mean_hms(&self) -> String {
        let s = self.mean_seconds.round() as u64;
        format!("{}h {:02}m {:02}s", s / 3600, (s % 3600) / 60, s % 60)
    }
}

fn group_thousands(n: u64) -> String {
    let digits = n.to_string();
    let bytes = digits.as_bytes();
    let mut out = String::with_capacity(digits.len() + digits.len() / 3);
    for (i, b) in bytes.iter().enumerate() {
        if i > 0 && (bytes.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(*b as char);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use maxdo::{CostModel, LibraryConfig, ProteinLibrary};
    use timemodel::CostMatrix;

    #[test]
    fn report_counts_match_package() {
        let lib = ProteinLibrary::generate(LibraryConfig::tiny(4), 53);
        let m = CostMatrix::from_cost_model(&lib, &CostModel::with_kappa(0.05));
        let pkg = CampaignPackage::new(&lib, &m, 600.0);
        let rep = distribution_report(&pkg);
        assert_eq!(rep.count, pkg.count());
        assert_eq!(rep.histogram.total(), rep.count);
        assert!(rep.mean_seconds > 0.0);
    }

    #[test]
    fn over_target_units_are_single_position() {
        // Construct a matrix with one very slow couple.
        let lib = ProteinLibrary::generate(LibraryConfig::tiny(2), 53);
        let slow = 10_000.0;
        let m = CostMatrix::from_raw(2, vec![10.0, slow, 10.0, 10.0]);
        let pkg = CampaignPackage::new(&lib, &m, 600.0);
        let rep = distribution_report(&pkg);
        // The slow couple (0,1) produces Nsep(0) single-position workunits,
        // each lasting `slow` seconds > h.
        assert_eq!(rep.over_target, lib.nsep(maxdo::ProteinId(0)) as u64);
    }

    #[test]
    fn captions_and_formatting() {
        assert_eq!(group_thousands(1_364_476), "1,364,476");
        assert_eq!(group_thousands(7), "7");
        assert_eq!(group_thousands(1_000), "1,000");
        let lib = ProteinLibrary::generate(LibraryConfig::tiny(2), 53);
        let m = CostMatrix::from_cost_model(&lib, &CostModel::with_kappa(0.05));
        let pkg = CampaignPackage::new(&lib, &m, 36_000.0);
        let rep = distribution_report(&pkg);
        assert!(rep.caption().starts_with("WantedWuExecTime = 10 h"));
        assert!(rep.mean_hms().contains('h'));
    }

    #[test]
    fn mean_is_below_target_for_fast_couples() {
        // All couples fast: the packaging mean sits below (but near) h
        // because of floor/remainder effects — the same effect that makes
        // the paper's production mean 3 h 18 m under the 4 h target.
        let lib = ProteinLibrary::generate(LibraryConfig::tiny(3), 53);
        let m = CostMatrix::from_raw(3, vec![50.0; 9]);
        let pkg = CampaignPackage::new(&lib, &m, 600.0);
        let rep = distribution_report(&pkg);
        assert!(rep.mean_seconds <= 600.0);
        assert!(rep.mean_seconds > 200.0);
    }
}

//! The paper's workunit slicing rule.
//!
//! §4.2: for each couple `(p1, p2)`, find the number of separation points
//! `nsep` to compute in one workunit:
//!
//! ```text
//! if ⌊h / Mct(p1,p2)⌋ ≤ 1        → nsep = 1
//! if ⌊h / Mct(p1,p2)⌋ ≥ Nsep(p1) → nsep = Nsep(p1)
//! else                            → nsep = ⌊h / Mct(p1, p2)⌋
//! ```
//!
//! The two §4.2 constraints are structural: a workunit covers a single
//! couple (never mixes proteins) and only the number of starting positions
//! varies (`Nrot` stays 21).

/// Number of starting positions per workunit for a couple whose
/// per-position compute time is `mct_seconds`, given target duration
/// `h_seconds` and the receptor's `nsep_total`.
pub fn positions_per_workunit(h_seconds: f64, mct_seconds: f64, nsep_total: u32) -> u32 {
    assert!(h_seconds > 0.0, "target duration must be positive");
    assert!(mct_seconds > 0.0, "compute time must be positive");
    assert!(nsep_total >= 1, "receptor must have starting positions");
    let ratio = (h_seconds / mct_seconds).floor();
    if ratio <= 1.0 {
        1
    } else if ratio >= nsep_total as f64 {
        nsep_total
    } else {
        ratio as u32
    }
}

/// Number of workunits a couple generates:
/// `⌈Nsep(p1) / nsep(p1, p2)⌉`.
pub fn workunits_for_couple(h_seconds: f64, mct_seconds: f64, nsep_total: u32) -> u32 {
    let per = positions_per_workunit(h_seconds, mct_seconds, nsep_total);
    nsep_total.div_ceil(per)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn slow_couple_gets_one_position_per_workunit() {
        // Mct > h ⇒ ratio < 1 ⇒ nsep = 1 (a workunit may exceed h; the
        // couple cannot be split finer than one starting position).
        assert_eq!(positions_per_workunit(36_000.0, 46_347.0, 500), 1);
    }

    #[test]
    fn ratio_exactly_one_gives_one() {
        assert_eq!(positions_per_workunit(100.0, 100.0, 10), 1);
        assert_eq!(positions_per_workunit(199.0, 100.0, 10), 1);
    }

    #[test]
    fn fast_couple_is_capped_at_nsep_total() {
        // Mct tiny ⇒ the whole map fits one workunit.
        assert_eq!(positions_per_workunit(36_000.0, 6.0, 500), 500);
        assert_eq!(workunits_for_couple(36_000.0, 6.0, 500), 1);
    }

    #[test]
    fn intermediate_couple_uses_floor() {
        // h = 10 h, Mct = 671 s ⇒ ⌊36000/671⌋ = 53 positions per workunit.
        assert_eq!(positions_per_workunit(36_000.0, 671.0, 2000), 53);
        assert_eq!(
            workunits_for_couple(36_000.0, 671.0, 2000),
            2000_u32.div_ceil(53)
        );
    }

    #[test]
    fn workunit_count_covers_all_positions() {
        for (h, mct, total) in [
            (36_000.0, 671.0, 2387u32),
            (14_400.0, 384.0, 838),
            (36_000.0, 46_347.0, 11_503),
            (14_400.0, 14.0, 1141),
        ] {
            let per = positions_per_workunit(h, mct, total);
            let count = workunits_for_couple(h, mct, total);
            assert!(count * per >= total, "coverage");
            assert!((count - 1) * per < total, "no superfluous workunit");
        }
    }

    proptest! {
        /// Every starting position is covered exactly once and each
        /// workunit is within the paper's bounds.
        #[test]
        fn slicing_invariants(
            h in 600.0_f64..200_000.0,
            mct in 1.0_f64..100_000.0,
            total in 1u32..20_000,
        ) {
            let per = positions_per_workunit(h, mct, total);
            prop_assert!(per >= 1 && per <= total);
            let count = workunits_for_couple(h, mct, total);
            prop_assert!(count >= 1);
            // Full coverage, minimal count.
            prop_assert!(count as u64 * per as u64 >= total as u64);
            prop_assert!((count as u64 - 1) * per as u64 <= total as u64);
            // A full workunit's estimated duration never exceeds h unless
            // it is the irreducible single-position case.
            if per > 1 {
                prop_assert!(per as f64 * mct <= h);
            }
        }

        /// Decreasing h never decreases the number of workunits (Figure 4:
        /// "the number of workunits increases when the workunit execution
        /// time wanted decreases").
        #[test]
        fn smaller_h_means_more_workunits(
            mct in 1.0_f64..100_000.0,
            total in 1u32..20_000,
        ) {
            let wu10 = workunits_for_couple(36_000.0, mct, total);
            let wu4 = workunits_for_couple(14_400.0, mct, total);
            prop_assert!(wu4 >= wu10);
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_h_rejected() {
        positions_per_workunit(0.0, 1.0, 1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_mct_rejected() {
        positions_per_workunit(1.0, 0.0, 1);
    }

    #[test]
    #[should_panic(expected = "starting positions")]
    fn zero_nsep_rejected() {
        positions_per_workunit(1.0, 1.0, 0);
    }
}

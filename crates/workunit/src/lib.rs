//! §4.2 — workunit preparation and packaging.
//!
//! "As mentioned in the requirements for World Community Grid, the work
//! should be partitioned into small pieces of work that ideally takes 10
//! hours to complete." This crate slices the phase-I workload (all ordered
//! protein couples × starting positions) into workunits of a target
//! duration `h`, following the paper's rule exactly, and provides the
//! distribution analyses of Figure 4 plus the §5.1 launch schedule
//! (cheapest protein first).
//!
//! ```
//! use maxdo::{CostModel, LibraryConfig, ProteinLibrary};
//! use timemodel::CostMatrix;
//! use workunit::CampaignPackage;
//!
//! let lib = ProteinLibrary::generate(LibraryConfig::tiny(3), 1);
//! let matrix = CostMatrix::from_cost_model(&lib, &CostModel::with_kappa(0.1));
//! let pkg = CampaignPackage::new(&lib, &matrix, workunit::IDEAL_WU_SECONDS);
//! // Packaging conserves formula (1)'s total exactly.
//! let total = timemodel::total_cpu_seconds(&lib, &matrix);
//! assert!((pkg.total_estimated_seconds() - total).abs() < 1e-9 * total);
//! ```
//!
//! * [`slicing`] — the paper's `nsep` selection rule;
//! * [`package`] — workunit records and whole-campaign packaging;
//! * [`distribution`] — estimated-runtime histograms (Figure 4);
//! * [`schedule`] — the launch order and batch queue (§5.1).

pub mod distribution;
pub mod manifest;
pub mod package;
pub mod schedule;
pub mod slicing;
pub mod transactions;

pub use distribution::{distribution_report, DistributionReport};
pub use manifest::{read_manifest, write_manifest, ManifestError};
pub use package::{CampaignPackage, WorkunitId, WorkunitSpec};
pub use schedule::LaunchSchedule;
pub use slicing::{positions_per_workunit, workunits_for_couple};
pub use transactions::TransactionLoad;

/// The paper's ideal workunit duration: "a workunit should last around 10
/// hours" (§3.2), in seconds.
pub const IDEAL_WU_SECONDS: f64 = 10.0 * 3600.0;

/// The duration actually used in production: Figure 8 shows "most
/// workunits were tuned to take between 3 and 4 hours", i.e. the h = 4 h
/// packaging of Figure 4(b), in seconds.
pub const PRODUCTION_WU_SECONDS: f64 = 4.0 * 3600.0;

//! Workunit records and whole-campaign packaging.
//!
//! A workunit is the unit World Community Grid distributes: for one couple
//! `(p1, p2)`, compute the docking map of a contiguous range of starting
//! positions (all 21 orientation couples each). The phase-I campaign at
//! the production duration (h = 4 h) is ≈ 3.6 million workunits, so the
//! record is kept compact (16 bytes) and the packaging API is streaming:
//! [`CampaignPackage::for_each_workunit`] visits workunits without
//! materialising them, and [`CampaignPackage::collect_all`] builds the full
//! vector when the caller really wants it.

use crate::slicing::positions_per_workunit;
use maxdo::{ProteinId, ProteinLibrary};
use serde::{Deserialize, Serialize};
use timemodel::CostMatrix;

/// Dense campaign-wide workunit identifier (assignment order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct WorkunitId(pub u64);

impl std::fmt::Display for WorkunitId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "wu{:08}", self.0)
    }
}

/// One workunit: a contiguous range of starting positions of one couple.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct WorkunitSpec {
    /// Receptor protein.
    pub receptor: ProteinId,
    /// Ligand protein.
    pub ligand: ProteinId,
    /// First starting position (1-based, inclusive).
    pub isep_start: u32,
    /// Number of starting positions in this workunit.
    pub positions: u32,
}

impl WorkunitSpec {
    /// Last starting position (inclusive).
    pub fn isep_end(&self) -> u32 {
        self.isep_start + self.positions - 1
    }

    /// Estimated CPU seconds on the reference processor.
    pub fn estimated_seconds(&self, matrix: &CostMatrix) -> f64 {
        self.positions as f64 * matrix.get(self.receptor.0 as usize, self.ligand.0 as usize)
    }
}

/// A packaged campaign: a library, its cost matrix, and a target workunit
/// duration. Workunit enumeration is deterministic: receptors in catalog
/// order, ligands in catalog order, positions ascending.
#[derive(Debug, Clone)]
pub struct CampaignPackage<'a> {
    library: &'a ProteinLibrary,
    matrix: &'a CostMatrix,
    /// Target workunit duration `h`, seconds.
    pub h_seconds: f64,
}

impl<'a> CampaignPackage<'a> {
    /// Creates a packaging of `library`'s full cross-docking workload.
    pub fn new(library: &'a ProteinLibrary, matrix: &'a CostMatrix, h_seconds: f64) -> Self {
        assert_eq!(library.len(), matrix.len(), "library/matrix size mismatch");
        assert!(h_seconds > 0.0, "target duration must be positive");
        Self {
            library,
            matrix,
            h_seconds,
        }
    }

    /// The library being packaged.
    pub fn library(&self) -> &ProteinLibrary {
        self.library
    }

    /// The cost matrix in use.
    pub fn matrix(&self) -> &CostMatrix {
        self.matrix
    }

    /// Visits the workunits of one couple in position order.
    pub fn for_each_workunit_of_couple(
        &self,
        receptor: ProteinId,
        ligand: ProteinId,
        mut f: impl FnMut(WorkunitSpec),
    ) {
        let nsep_total = self.library.nsep(receptor);
        let mct = self.matrix.get(receptor.0 as usize, ligand.0 as usize);
        let per = positions_per_workunit(self.h_seconds, mct, nsep_total);
        let mut isep = 1u32;
        while isep <= nsep_total {
            let positions = per.min(nsep_total - isep + 1);
            f(WorkunitSpec {
                receptor,
                ligand,
                isep_start: isep,
                positions,
            });
            isep += positions;
        }
    }

    /// Visits every workunit of the campaign in canonical order without
    /// materialising them.
    pub fn for_each_workunit(&self, mut f: impl FnMut(WorkunitSpec)) {
        // Handle resolved once per enumeration; the per-workunit cost is
        // one relaxed atomic add (zero-sized no-op without telemetry).
        let enumerated = telemetry::counter("package.workunits.enumerated");
        for (receptor, ligand) in self.library.couples() {
            self.for_each_workunit_of_couple(receptor, ligand, |wu| {
                enumerated.inc();
                f(wu);
            });
        }
    }

    /// Visits every workunit of one *receptor* (docked against all
    /// ligands) — the batch granularity of the §5.1 launch schedule.
    pub fn for_each_workunit_of_receptor(
        &self,
        receptor: ProteinId,
        mut f: impl FnMut(WorkunitSpec),
    ) {
        for j in 0..self.library.len() as u32 {
            self.for_each_workunit_of_couple(receptor, ProteinId(j), &mut f);
        }
    }

    /// Total number of workunits in the campaign.
    pub fn count(&self) -> u64 {
        let mut n = 0u64;
        self.for_each_workunit(|_| n += 1);
        n
    }

    /// Materialises the whole campaign (large: ~3.6 M records at h = 4 h
    /// on the phase-I catalog).
    pub fn collect_all(&self) -> Vec<WorkunitSpec> {
        let mut v = Vec::new();
        self.for_each_workunit(|wu| v.push(wu));
        v
    }

    /// Sum of estimated CPU seconds over all workunits — must equal the
    /// formula (1) total (packaging neither adds nor loses work).
    pub fn total_estimated_seconds(&self) -> f64 {
        let mut acc = 0.0;
        self.for_each_workunit(|wu| acc += wu.estimated_seconds(self.matrix));
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maxdo::{CostModel, LibraryConfig};

    fn setup() -> (ProteinLibrary, CostMatrix) {
        let lib = ProteinLibrary::generate(LibraryConfig::tiny(4), 29);
        let m = CostMatrix::from_cost_model(&lib, &CostModel::with_kappa(0.05));
        (lib, m)
    }

    #[test]
    fn couple_workunits_tile_the_position_range() {
        let (lib, m) = setup();
        let pkg = CampaignPackage::new(&lib, &m, 600.0);
        for (r, l) in lib.couples() {
            let mut next = 1u32;
            pkg.for_each_workunit_of_couple(r, l, |wu| {
                assert_eq!(wu.isep_start, next, "gap or overlap");
                assert!(wu.positions >= 1);
                next = wu.isep_end() + 1;
            });
            assert_eq!(next, lib.nsep(r) + 1, "full coverage");
        }
    }

    #[test]
    fn workunits_never_mix_couples() {
        let (lib, m) = setup();
        let pkg = CampaignPackage::new(&lib, &m, 600.0);
        pkg.for_each_workunit(|wu| {
            assert!(wu.receptor.0 < 4 && wu.ligand.0 < 4);
            // isep range stays inside the receptor's own Nsep.
            assert!(wu.isep_end() <= lib.nsep(wu.receptor));
        });
    }

    #[test]
    fn packaging_conserves_total_work() {
        let (lib, m) = setup();
        let pkg = CampaignPackage::new(&lib, &m, 600.0);
        let total = timemodel::total_cpu_seconds(&lib, &m);
        assert!(
            (pkg.total_estimated_seconds() - total).abs() < 1e-6 * total,
            "packaged {} vs formula (1) {}",
            pkg.total_estimated_seconds(),
            total
        );
    }

    #[test]
    fn count_matches_collect() {
        let (lib, m) = setup();
        let pkg = CampaignPackage::new(&lib, &m, 600.0);
        assert_eq!(pkg.count(), pkg.collect_all().len() as u64);
    }

    #[test]
    fn receptor_enumeration_covers_all_ligands() {
        let (lib, m) = setup();
        let pkg = CampaignPackage::new(&lib, &m, 600.0);
        let mut ligands = std::collections::HashSet::new();
        pkg.for_each_workunit_of_receptor(ProteinId(2), |wu| {
            assert_eq!(wu.receptor, ProteinId(2));
            ligands.insert(wu.ligand);
        });
        assert_eq!(ligands.len(), 4);
    }

    #[test]
    fn smaller_h_gives_more_workunits() {
        let (lib, m) = setup();
        let big = CampaignPackage::new(&lib, &m, 3600.0).count();
        let small = CampaignPackage::new(&lib, &m, 60.0).count();
        assert!(small > big, "small-h {} vs big-h {}", small, big);
    }

    #[test]
    fn estimated_seconds_scale_with_positions() {
        let (_lib, m) = setup();
        let wu = WorkunitSpec {
            receptor: ProteinId(0),
            ligand: ProteinId(1),
            isep_start: 1,
            positions: 7,
        };
        assert!((wu.estimated_seconds(&m) - 7.0 * m.get(0, 1)).abs() < 1e-12);
    }

    #[test]
    fn workunit_id_display() {
        assert_eq!(WorkunitId(42).to_string(), "wu00000042");
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn mismatched_sizes_rejected() {
        let lib = ProteinLibrary::generate(LibraryConfig::tiny(3), 29);
        let m = CostMatrix::from_raw(2, vec![1.0; 4]);
        CampaignPackage::new(&lib, &m, 600.0);
    }
}

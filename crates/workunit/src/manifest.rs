//! Compact binary campaign manifest.
//!
//! The World Community Grid servers "host a database of computing work"
//! (§3.1). A phase-I production packaging is ~3.6 million workunits;
//! persisting it as text or JSON wastes an order of magnitude. The
//! manifest is the fixed-record binary file the task server loads at
//! startup: a magic header, the target duration, then 16 bytes per
//! workunit (receptor u16, ligand u16, isep_start u32, positions u32,
//! plus a 4-byte FNV-1a record checksum), little-endian via `bytes`.

use crate::package::{CampaignPackage, WorkunitSpec};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use maxdo::ProteinId;

/// File magic: "HCWU" + format version 1.
const MAGIC: &[u8; 5] = b"HCWU\x01";

/// Bytes per workunit record.
pub const RECORD_BYTES: usize = 16;

/// Serialises a packaged campaign into its binary manifest.
pub fn write_manifest(pkg: &CampaignPackage<'_>) -> Bytes {
    let mut records = Vec::with_capacity(pkg.count() as usize);
    pkg.for_each_workunit(|wu| records.push(wu));
    write_records(pkg.h_seconds, &records)
}

/// Serialises an explicit record list (the manifest body behind
/// [`write_manifest`]).
pub fn write_records(h_seconds: f64, records: &[WorkunitSpec]) -> Bytes {
    let mut buf = BytesMut::with_capacity(MAGIC.len() + 16 + records.len() * RECORD_BYTES);
    buf.put_slice(MAGIC);
    buf.put_f64_le(h_seconds);
    buf.put_u64_le(records.len() as u64);
    for wu in records {
        buf.put_u16_le(wu.receptor.0 as u16);
        buf.put_u16_le(wu.ligand.0 as u16);
        buf.put_u32_le(wu.isep_start);
        buf.put_u32_le(wu.positions);
        buf.put_u32_le(record_checksum(wu));
    }
    buf.freeze()
}

/// Errors from [`read_manifest`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ManifestError {
    /// Wrong magic or version.
    BadMagic,
    /// File ends before the declared record count.
    Truncated,
    /// A record's checksum does not match (bit rot / torn write).
    BadChecksum {
        /// 0-based record index.
        record: u64,
    },
}

impl std::fmt::Display for ManifestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ManifestError::BadMagic => write!(f, "not a HCWU v1 manifest"),
            ManifestError::Truncated => write!(f, "manifest truncated"),
            ManifestError::BadChecksum { record } => {
                write!(f, "record {record}: checksum mismatch")
            }
        }
    }
}

impl std::error::Error for ManifestError {}

/// Parses a manifest back into `(h_seconds, workunits)`.
pub fn read_manifest(data: &[u8]) -> Result<(f64, Vec<WorkunitSpec>), ManifestError> {
    let mut buf = data;
    if buf.len() < MAGIC.len() + 16 || &buf[..MAGIC.len()] != MAGIC {
        return Err(ManifestError::BadMagic);
    }
    buf.advance(MAGIC.len());
    let h_seconds = buf.get_f64_le();
    let count = buf.get_u64_le();
    if (buf.remaining() as u64) < count * RECORD_BYTES as u64 {
        return Err(ManifestError::Truncated);
    }
    let mut out = Vec::with_capacity(count as usize);
    for record in 0..count {
        let wu = WorkunitSpec {
            receptor: ProteinId(buf.get_u16_le() as u32),
            ligand: ProteinId(buf.get_u16_le() as u32),
            isep_start: buf.get_u32_le(),
            positions: buf.get_u32_le(),
        };
        let checksum = buf.get_u32_le();
        if checksum != record_checksum(&wu) {
            return Err(ManifestError::BadChecksum { record });
        }
        out.push(wu);
    }
    Ok((h_seconds, out))
}

/// FNV-1a over the record's payload bytes. Each step xors a byte and
/// multiplies by an odd prime (a bijection on u32), so any single-byte
/// change always changes the checksum — unlike Fletcher-style sums, which
/// cannot tell 0x00 from 0xFF.
fn record_checksum(wu: &WorkunitSpec) -> u32 {
    let mut h: u32 = 0x811C_9DC5;
    for v in [wu.receptor.0, wu.ligand.0, wu.isep_start, wu.positions] {
        for byte in v.to_le_bytes() {
            h ^= byte as u32;
            h = h.wrapping_mul(0x0100_0193);
        }
    }
    h
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Any record list round-trips bit-exactly through the manifest.
        #[test]
        fn arbitrary_records_round_trip(
            h in 1.0f64..1e6,
            raw in proptest::collection::vec(
                (0u32..1000, 0u32..1000, 1u32..100_000, 1u32..100_000),
                0..200,
            ),
        ) {
            let records: Vec<WorkunitSpec> = raw
                .into_iter()
                .map(|(r, l, s, p)| WorkunitSpec {
                    receptor: ProteinId(r),
                    ligand: ProteinId(l),
                    isep_start: s,
                    positions: p,
                })
                .collect();
            let bytes = write_records(h, &records);
            let (h2, back) = read_manifest(&bytes).unwrap();
            prop_assert_eq!(h2, h);
            prop_assert_eq!(back, records);
        }

        /// Any single-byte corruption of a record payload is detected.
        #[test]
        fn single_byte_corruption_is_detected(
            record in 0usize..5,
            byte in 0usize..12,
            flip in 1u8..=255,
        ) {
            let records: Vec<WorkunitSpec> = (0..5)
                .map(|i| WorkunitSpec {
                    receptor: ProteinId(i),
                    ligand: ProteinId(i + 1),
                    isep_start: 10 * i + 1,
                    positions: 7,
                })
                .collect();
            let mut data = write_records(600.0, &records).to_vec();
            let offset = 5 + 16 + record * RECORD_BYTES + byte;
            data[offset] ^= flip;
            // Either the corrupted record's checksum fires, or — if the
            // corruption hit the checksum field itself — that same record
            // is flagged.
            match read_manifest(&data) {
                Err(ManifestError::BadChecksum { record: r }) => {
                    prop_assert_eq!(r as usize, record)
                }
                other => prop_assert!(false, "corruption missed: {:?}", other),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maxdo::{CostModel, LibraryConfig, ProteinLibrary};
    use timemodel::CostMatrix;

    fn pkg_fixture() -> (ProteinLibrary, CostMatrix) {
        let lib = ProteinLibrary::generate(LibraryConfig::tiny(4), 3);
        let m = CostMatrix::from_cost_model(&lib, &CostModel::with_kappa(0.05));
        (lib, m)
    }

    #[test]
    fn manifest_round_trips_the_whole_campaign() {
        let (lib, m) = pkg_fixture();
        let pkg = CampaignPackage::new(&lib, &m, 600.0);
        let bytes = write_manifest(&pkg);
        let (h, wus) = read_manifest(&bytes).unwrap();
        assert_eq!(h, 600.0);
        assert_eq!(wus.len() as u64, pkg.count());
        assert_eq!(wus, pkg.collect_all());
    }

    #[test]
    fn manifest_is_compact() {
        let (lib, m) = pkg_fixture();
        let pkg = CampaignPackage::new(&lib, &m, 600.0);
        let bytes = write_manifest(&pkg);
        let expected = 5 + 16 + pkg.count() as usize * RECORD_BYTES;
        assert_eq!(bytes.len(), expected);
        // Phase-I production scale: ~3.6 M records ≈ 55 MB — loadable.
        const { assert!(RECORD_BYTES * 3_617_500 < 60_000_000) };
    }

    #[test]
    fn bad_magic_rejected() {
        assert_eq!(read_manifest(b"NOPE"), Err(ManifestError::BadMagic));
        assert_eq!(read_manifest(b""), Err(ManifestError::BadMagic));
    }

    #[test]
    fn truncation_detected() {
        let (lib, m) = pkg_fixture();
        let pkg = CampaignPackage::new(&lib, &m, 600.0);
        let bytes = write_manifest(&pkg);
        let cut = &bytes[..bytes.len() - 3];
        assert_eq!(read_manifest(cut), Err(ManifestError::Truncated));
    }

    #[test]
    fn corruption_detected_by_checksum() {
        let (lib, m) = pkg_fixture();
        let pkg = CampaignPackage::new(&lib, &m, 600.0);
        let mut data = write_manifest(&pkg).to_vec();
        // Flip a byte inside the first record's payload.
        let offset = 5 + 16 + 4;
        // (offset 4 = the isep_start field of record 0)
        data[offset] ^= 0xFF;
        match read_manifest(&data) {
            Err(ManifestError::BadChecksum { record: 0 }) => {}
            other => panic!("expected checksum failure, got {other:?}"),
        }
    }

    #[test]
    fn checksum_distinguishes_field_order() {
        let a = WorkunitSpec {
            receptor: ProteinId(1),
            ligand: ProteinId(2),
            isep_start: 3,
            positions: 4,
        };
        let b = WorkunitSpec {
            receptor: ProteinId(2),
            ligand: ProteinId(1),
            isep_start: 3,
            positions: 4,
        };
        assert_ne!(record_checksum(&a), record_checksum(&b));
    }
}

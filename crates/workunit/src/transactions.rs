//! Server transaction-rate analysis — the §3.2 constraint.
//!
//! "This value [the ~10-hour workunit] is also constrained by the capacity
//! of the servers at World Community Grid to distribute the work to
//! volunteers device. It determines the rate of transactions with World
//! Community Grid servers. An interesting study on performances issue of a
//! BOINC task server have been done by the BOINC team \[13\]."
//!
//! Each workunit costs the server a fixed number of transactions (issue +
//! report per replica, plus download/upload bookkeeping). Given a host
//! population and a mean workunit duration, this module predicts the
//! steady-state transaction rate and checks it against a server capacity —
//! the analysis behind the operators' choice of `h`.

use serde::{Deserialize, Serialize};

/// Transactions a single replica costs the server over its lifetime
/// (work request, download ack, upload, report/validate).
pub const TRANSACTIONS_PER_REPLICA: f64 = 4.0;

/// Capacity of the 2005-era BOINC task server measured by Anderson,
/// Korpela & Walton (the paper's reference \[13\]): on the order of
/// 8.8 million results per day ≈ 100/s, i.e. ~400 transactions/s.
pub const REFERENCE_SERVER_TPS: f64 = 400.0;

/// Steady-state transaction load of a campaign configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TransactionLoad {
    /// Hosts actively computing for the project.
    pub hosts: f64,
    /// Mean realized workunit duration per host, seconds.
    pub mean_wu_wall_seconds: f64,
    /// Replication factor (results per workunit).
    pub redundancy: f64,
}

impl TransactionLoad {
    /// Results reported per second, grid-wide.
    pub fn results_per_second(&self) -> f64 {
        assert!(self.mean_wu_wall_seconds > 0.0, "duration must be positive");
        self.hosts / self.mean_wu_wall_seconds
    }

    /// Server transactions per second.
    pub fn transactions_per_second(&self) -> f64 {
        self.results_per_second() * TRANSACTIONS_PER_REPLICA
    }

    /// Fraction of a server's capacity consumed.
    pub fn utilization_of(&self, server_tps: f64) -> f64 {
        assert!(server_tps > 0.0);
        self.transactions_per_second() / server_tps
    }

    /// The smallest mean workunit wall duration a server of capacity
    /// `server_tps` can sustain for this host count.
    pub fn min_sustainable_duration(hosts: f64, server_tps: f64) -> f64 {
        assert!(server_tps > 0.0);
        hosts * TRANSACTIONS_PER_REPLICA / server_tps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hcmd_full_power_load_is_comfortably_sustainable() {
        // ~44,000 hosts on HCMD at full power, ~22 h wall per workunit
        // (13 h attached / ~0.6 availability).
        let load = TransactionLoad {
            hosts: 44_000.0,
            mean_wu_wall_seconds: 22.0 * 3600.0,
            redundancy: 1.37,
        };
        let tps = load.transactions_per_second();
        assert!(tps < 5.0, "tps {tps}");
        assert!(load.utilization_of(REFERENCE_SERVER_TPS) < 0.02);
    }

    #[test]
    fn tiny_workunits_blow_the_transaction_budget() {
        // The same grid with 10-second workunits would need thousands of
        // transactions per second — the §3.2 reason workunits are hours,
        // not seconds.
        let load = TransactionLoad {
            hosts: 836_000.0, // the whole registered device pool
            mean_wu_wall_seconds: 10.0,
            redundancy: 1.0,
        };
        assert!(load.utilization_of(REFERENCE_SERVER_TPS) > 100.0);
    }

    #[test]
    fn min_sustainable_duration_inverts_utilization() {
        let hosts = 50_000.0;
        let d = TransactionLoad::min_sustainable_duration(hosts, REFERENCE_SERVER_TPS);
        let load = TransactionLoad {
            hosts,
            mean_wu_wall_seconds: d,
            redundancy: 1.0,
        };
        assert!((load.utilization_of(REFERENCE_SERVER_TPS) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn results_scale_with_hosts_and_inverse_duration() {
        let base = TransactionLoad {
            hosts: 1000.0,
            mean_wu_wall_seconds: 3600.0,
            redundancy: 1.0,
        };
        let double_hosts = TransactionLoad {
            hosts: 2000.0,
            ..base
        };
        let half_duration = TransactionLoad {
            mean_wu_wall_seconds: 1800.0,
            ..base
        };
        assert!(
            (double_hosts.results_per_second() / base.results_per_second() - 2.0).abs() < 1e-12
        );
        assert!(
            (half_duration.results_per_second() / base.results_per_second() - 2.0).abs() < 1e-12
        );
    }

    #[test]
    #[should_panic(expected = "duration must be positive")]
    fn zero_duration_rejected() {
        TransactionLoad {
            hosts: 1.0,
            mean_wu_wall_seconds: 0.0,
            redundancy: 1.0,
        }
        .results_per_second();
    }
}

//! Volunteer host model.
//!
//! §6 attributes the observed 3.96× speed-down to five causes, all of which
//! live here:
//!
//! 1. **Wall-clock accounting under the 60 % throttle** — "World Community
//!    Grid has set the work for the UD agent to run at most at 60% of cpu
//!    time ... a workunit for 8 hours of wall clock time will at most only
//!    actually process work for 4.8 hours";
//! 2. **Lowest-priority contention** — "any other use of the computer's
//!    processor will further reduce the actual amount of time that the
//!    research runs" (the screensaver's own rendering cost is folded into
//!    this term);
//! 3. **Host slowness** — "the devices on World Community Grid are slower
//!    (on average) than an Opteron 2 GHz";
//! 4. **Checkpoint replay** — interrupted workunits restart from the last
//!    between-positions checkpoint (§4.3);
//! 5. **Non-dedication / availability** — volunteers turn machines off,
//!    which stretches wall-clock turnaround (and triggers server deadlines).
//!
//! A host *plans* the execution of a workunit analytically: given the
//! workunit's reference CPU seconds it derives the host CPU need, the
//! attached (agent-running) wall time — which is what the UD agent
//! *accounts* — and the total turnaround including off time. This keeps the
//! event count at one completion event per result while modelling every
//! cause explicitly.

use crate::rng::{exponential, lognormal, stream, uniform, Domain};
use rand::Rng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Identifier of a host in the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct HostId(pub u64);

/// How the agent accounts run time — the §8 middleware difference.
///
/// Phase I ran only on the Univa UD agent, which "measures wall clock
/// time rather than actual process execution time"; phase II will run on
/// the BOINC agent, which "measures run time more accurately". The
/// accounting mode changes what the statistics (and therefore the VFTP
/// paradigm) see, not what the host computes — exactly the distinction
/// the paper flags as future work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AccountingMode {
    /// Univa UD: bill the attached wall-clock time (throttle, contention
    /// and replay all inflate the bill).
    WallClock,
    /// BOINC: bill actual process CPU time on the host (replay still
    /// bills — the cycles were really spent — but idle throttle slices
    /// and the owner's stolen cycles do not).
    CpuTime,
}

/// Distribution parameters from which hosts are sampled.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HostParams {
    /// Median speed relative to the reference Opteron 2 GHz.
    pub speed_median: f64,
    /// σ of `ln`(speed).
    pub speed_sigma: f64,
    /// Agent CPU throttle (UD default 0.6; BOINC agents run unthrottled).
    pub throttle: f64,
    /// Range of the owner-contention fraction (cycles lost to the owner's
    /// own work plus screensaver overhead while attached).
    pub contention: (f64, f64),
    /// Range of the availability fraction (machine on and agent allowed).
    pub availability: (f64, f64),
    /// Mean attached time between interruptions, seconds.
    pub mean_session_seconds: f64,
    /// Probability a completed result is erroneous (fails validation).
    pub error_rate: f64,
    /// Probability an issued workunit is silently abandoned (never
    /// reported — host left, agent uninstalled, ...).
    pub abandon_rate: f64,
    /// Mean host lifetime on the grid, days (churn).
    pub lifetime_mean_days: f64,
    /// How the agent accounts run time (§8: UD wall-clock vs BOINC CPU).
    pub accounting: AccountingMode,
    /// Relative speed growth of newly joining hosts per year (§5.1: "there
    /// are always new members that join the grid with brand new machines";
    /// §8 wants to "observe the trend toward more powerful processors").
    /// 0.0 keeps the population stationary (the phase-I calibration).
    pub speed_growth_per_year: f64,
}

impl HostParams {
    /// The World Community Grid volunteer population of 2006/2007, tuned so
    /// the emergent speed-down factor lands at the paper's 3.96 (§6).
    pub fn wcg_2007() -> Self {
        Self {
            speed_median: 0.62,
            speed_sigma: 0.25,
            throttle: 0.6,
            contention: (0.05, 0.35),
            availability: (0.35, 0.90),
            mean_session_seconds: 8.0 * 3600.0,
            error_rate: 0.02,
            abandon_rate: 0.04,
            lifetime_mean_days: 150.0,
            accounting: AccountingMode::WallClock,
            speed_growth_per_year: 0.0,
        }
    }

    /// The phase-II population sketched in §8: same volunteers, but the
    /// BOINC agent — unthrottled and accounting actual CPU time.
    pub fn wcg_boinc() -> Self {
        Self {
            throttle: 1.0,
            accounting: AccountingMode::CpuTime,
            ..Self::wcg_2007()
        }
    }

    /// A dedicated reference processor (Grid'5000 node): full speed, no
    /// throttle, no contention, always on, no churn, no errors.
    pub fn dedicated_reference() -> Self {
        Self {
            speed_median: 1.0,
            speed_sigma: 0.0,
            throttle: 1.0,
            contention: (0.0, 0.0),
            availability: (1.0, 1.0),
            mean_session_seconds: f64::INFINITY,
            error_rate: 0.0,
            abandon_rate: 0.0,
            lifetime_mean_days: f64::INFINITY,
            accounting: AccountingMode::CpuTime,
            speed_growth_per_year: 0.0,
        }
    }
}

/// One volunteer device.
#[derive(Debug, Clone)]
pub struct Host {
    /// Identifier.
    pub id: HostId,
    /// Speed relative to the reference processor.
    pub speed: f64,
    /// Agent throttle.
    pub throttle: f64,
    /// Owner-contention fraction.
    pub contention: f64,
    /// Availability fraction.
    pub availability: f64,
    /// Mean attached seconds between interruptions.
    pub mean_session_seconds: f64,
    /// Result error probability.
    pub error_rate: f64,
    /// Workunit abandon probability.
    pub abandon_rate: f64,
    /// Lifetime on the grid, seconds.
    pub lifetime_seconds: f64,
    /// Run-time accounting mode of the agent.
    pub accounting: AccountingMode,
    exec_rng: ChaCha8Rng,
}

/// The planned execution of one workunit replica on one host.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkunitExecution {
    /// Wall-clock turnaround from issue to report, seconds (includes host
    /// off time).
    pub turnaround_seconds: f64,
    /// Attached wall time — what the UD agent *accounts* as run time.
    pub accounted_seconds: f64,
    /// Real CPU seconds spent on the host (including replayed positions).
    pub cpu_seconds: f64,
    /// Whether the returned result is erroneous.
    pub error: bool,
    /// Whether the replica is silently abandoned (never reported).
    pub abandoned: bool,
}

impl Host {
    /// Samples a host joining on a given campaign day: like
    /// [`Host::sample`] but with the speed trend applied (newer machines
    /// are faster when `speed_growth_per_year > 0`).
    pub fn sample_at_day(id: HostId, params: &HostParams, seed: u64, join_day: usize) -> Host {
        let mut host = Self::sample(id, params, seed);
        if params.speed_growth_per_year != 0.0 {
            let years = join_day as f64 / 365.0;
            host.speed *= (1.0 + params.speed_growth_per_year).powf(years);
        }
        host
    }

    /// Samples a host from the population parameters. Deterministic in
    /// `(seed, id)`.
    pub fn sample(id: HostId, params: &HostParams, seed: u64) -> Host {
        let mut prof = stream(seed, Domain::HostProfile, id.0);
        let speed = if params.speed_sigma > 0.0 {
            lognormal(&mut prof, params.speed_median, params.speed_sigma)
        } else {
            params.speed_median
        }
        .max(0.05);
        let contention = uniform(&mut prof, params.contention.0, params.contention.1);
        let availability =
            uniform(&mut prof, params.availability.0, params.availability.1).clamp(0.01, 1.0);
        let lifetime_seconds = if params.lifetime_mean_days.is_finite() {
            exponential(&mut prof, params.lifetime_mean_days * 86_400.0).max(7.0 * 86_400.0)
        } else {
            f64::INFINITY
        };
        Host {
            id,
            speed,
            throttle: params.throttle,
            contention,
            availability,
            mean_session_seconds: params.mean_session_seconds,
            error_rate: params.error_rate,
            abandon_rate: params.abandon_rate,
            lifetime_seconds,
            accounting: params.accounting,
            exec_rng: stream(seed, Domain::HostExecution, id.0),
        }
    }

    /// Effective compute rate (reference-CPU seconds of progress per
    /// attached wall second): `speed × throttle × (1 − contention)`.
    pub fn effective_rate(&self) -> f64 {
        self.speed * self.throttle * (1.0 - self.contention)
    }

    /// Plans the execution of a workunit of `ref_cpu_seconds` reference
    /// CPU seconds whose checkpoint granularity is one starting position
    /// of `position_ref_seconds`.
    pub fn plan_execution(
        &mut self,
        ref_cpu_seconds: f64,
        position_ref_seconds: f64,
    ) -> WorkunitExecution {
        assert!(ref_cpu_seconds > 0.0, "workunit must contain work");
        assert!(
            position_ref_seconds > 0.0 && position_ref_seconds <= ref_cpu_seconds + 1e-9,
            "position cost must be positive and at most the workunit cost"
        );
        // Reference seconds per attached wall second.
        let rate = self.effective_rate();
        let base_attached = ref_cpu_seconds / rate;
        // Interruptions arrive once per mean session of attached time. Each
        // one loses the progress made since the last checkpoint — at most
        // one starting position (§4.3), and never more than the work done
        // in the interrupted session itself.
        let mut replay_ref = 0.0;
        if self.mean_session_seconds.is_finite() {
            let expected = base_attached / self.mean_session_seconds;
            let n = sample_poisson(&mut self.exec_rng, expected);
            let max_loss = position_ref_seconds.min(self.mean_session_seconds * rate);
            for _ in 0..n {
                replay_ref += self.exec_rng.gen::<f64>() * max_loss;
            }
            // The checkpoint scheme bounds total replay by the workunit.
            replay_ref = replay_ref.min(ref_cpu_seconds);
        }
        let attached = (ref_cpu_seconds + replay_ref) / rate;
        let turnaround = attached / self.availability;
        let cpu_seconds = (ref_cpu_seconds + replay_ref) / self.speed;
        let error = self.exec_rng.gen::<f64>() < self.error_rate;
        let abandoned = self.exec_rng.gen::<f64>() < self.abandon_rate;
        WorkunitExecution {
            turnaround_seconds: turnaround,
            accounted_seconds: match self.accounting {
                AccountingMode::WallClock => attached,
                AccountingMode::CpuTime => cpu_seconds,
            },
            cpu_seconds,
            error,
            abandoned,
        }
    }

    /// Delay before an idle host asks the server for new work, seconds.
    pub fn work_fetch_delay(&mut self) -> f64 {
        // Agents poll within minutes of going idle.
        uniform(&mut self.exec_rng, 30.0, 600.0)
    }
}

/// Small-λ Poisson sampler (Knuth); λ is a handful at most here.
fn sample_poisson(rng: &mut ChaCha8Rng, lambda: f64) -> u32 {
    if lambda <= 0.0 {
        return 0;
    }
    let l = (-lambda).exp();
    let mut k = 0u32;
    let mut p = 1.0;
    loop {
        p *= rng.gen::<f64>();
        if p <= l || k > 10_000 {
            return k;
        }
        k += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wcg_host(id: u64) -> Host {
        Host::sample(HostId(id), &HostParams::wcg_2007(), 99)
    }

    #[test]
    fn sampling_is_deterministic() {
        let a = wcg_host(5);
        let b = wcg_host(5);
        assert_eq!(a.speed, b.speed);
        assert_eq!(a.availability, b.availability);
    }

    #[test]
    fn hosts_differ() {
        assert_ne!(wcg_host(1).speed, wcg_host(2).speed);
    }

    #[test]
    fn dedicated_host_accounts_exactly_the_reference_time() {
        let mut h = Host::sample(HostId(0), &HostParams::dedicated_reference(), 1);
        let exec = h.plan_execution(10_000.0, 500.0);
        assert!((exec.accounted_seconds - 10_000.0).abs() < 1e-9);
        assert!((exec.turnaround_seconds - 10_000.0).abs() < 1e-9);
        assert!((exec.cpu_seconds - 10_000.0).abs() < 1e-9);
        assert!(!exec.error);
        assert!(!exec.abandoned);
    }

    #[test]
    fn volunteer_accounts_more_than_the_reference_time() {
        // Any WCG host accounts strictly more than the reference seconds:
        // it is slower, throttled and contended.
        for id in 0..20 {
            let mut h = wcg_host(id);
            let exec = h.plan_execution(14_400.0, 400.0);
            assert!(
                exec.accounted_seconds > 14_400.0,
                "host {id} accounted {} < ref",
                exec.accounted_seconds
            );
            assert!(exec.turnaround_seconds >= exec.accounted_seconds);
            assert!(exec.cpu_seconds >= 14_400.0 / h.speed - 1e-9);
        }
    }

    #[test]
    fn population_speed_down_is_near_3_96() {
        // The emergent mean accounted/reference ratio over the host
        // population is the paper's net speed-down factor (§6).
        let params = HostParams::wcg_2007();
        let mut total_accounted = 0.0;
        let n = 600;
        for id in 0..n {
            let mut h = Host::sample(HostId(id), &params, 7);
            let exec = h.plan_execution(14_400.0, 400.0);
            total_accounted += exec.accounted_seconds;
        }
        let factor = total_accounted / (n as f64 * 14_400.0);
        assert!(
            (factor - 3.96).abs() < 0.5,
            "population speed-down {factor} too far from 3.96"
        );
    }

    #[test]
    fn replay_increases_with_interruption_frequency() {
        // A host with very short sessions replays more work.
        let mut long_sessions = wcg_host(3);
        long_sessions.mean_session_seconds = f64::INFINITY;
        let base = long_sessions.plan_execution(36_000.0, 2_000.0);
        let mut short_sessions = wcg_host(3);
        short_sessions.mean_session_seconds = 600.0;
        let mut acc = 0.0;
        for _ in 0..20 {
            acc += short_sessions.plan_execution(36_000.0, 2_000.0).cpu_seconds;
        }
        assert!(
            acc / 20.0 > base.cpu_seconds,
            "frequent interruptions should replay work"
        );
    }

    #[test]
    fn effective_rate_composition() {
        let mut h = wcg_host(4);
        h.speed = 0.5;
        h.throttle = 0.6;
        h.contention = 0.2;
        assert!((h.effective_rate() - 0.5 * 0.6 * 0.8).abs() < 1e-12);
    }

    #[test]
    fn poisson_zero_lambda() {
        let mut rng = stream(1, Domain::Server, 0);
        assert_eq!(sample_poisson(&mut rng, 0.0), 0);
    }

    #[test]
    fn poisson_mean_is_lambda() {
        let mut rng = stream(1, Domain::Server, 1);
        let n = 3000;
        let total: u64 = (0..n).map(|_| sample_poisson(&mut rng, 2.5) as u64).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 2.5).abs() < 0.15, "mean {mean}");
    }

    #[test]
    fn work_fetch_delay_is_bounded() {
        let mut h = wcg_host(9);
        for _ in 0..50 {
            let d = h.work_fetch_delay();
            assert!((30.0..600.0).contains(&d));
        }
    }

    #[test]
    #[should_panic(expected = "must contain work")]
    fn zero_work_rejected() {
        wcg_host(0).plan_execution(0.0, 1.0);
    }
}

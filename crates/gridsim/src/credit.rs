//! Points-based credit — the §8 proposal.
//!
//! > "Another way to approach the number of virtual full-time processors
//! > is to base the estimate on the number of points awarded instead of
//! > run-time. Points represent the amount of work done by computer to
//! > compute a result and are based on the run time for that result
//! > multiplied by a weight factor determined by running a benchmark on
//! > the agent. This approach should reduce the differences between each
//! > platform therefore be more middleware independent."
//!
//! The mechanism that makes this work: the agent's benchmark runs under
//! the *same conditions* the research application does, so its measured
//! weight is the host's effective rate in the same units the agent
//! accounts run time in. `points = weight × accounted run time` then
//! cancels the platform term and recovers (reference CPU seconds of real
//! work) + (replayed work) — on UD wall-clock agents and BOINC CPU-time
//! agents alike. One *point* here is one reference-processor CPU second
//! (a rescaling of BOINC's cobblestones).

use crate::host::{AccountingMode, Host};
use metrics::DailySeries;
use serde::{Deserialize, Serialize};

/// Relative measurement error of the agent benchmark (one-sided bound;
/// the actual per-host error is deterministic in the host id).
pub const BENCHMARK_NOISE: f64 = 0.05;

/// The weight factor the agent's benchmark measures for a host.
///
/// * A BOINC agent benchmarks in CPU time: it measures the host's raw
///   speed relative to the reference processor.
/// * A UD agent benchmarks in wall-clock under the throttle and the
///   owner's load: it measures the *effective rate*.
///
/// Both carry a small deterministic measurement error.
pub fn benchmark_weight(host: &Host) -> f64 {
    let ideal = match host.accounting {
        AccountingMode::CpuTime => host.speed,
        AccountingMode::WallClock => host.effective_rate(),
    };
    // Deterministic per-host benchmark error in ±BENCHMARK_NOISE.
    let h = host.id.0.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let unit = ((h >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0;
    ideal * (1.0 + BENCHMARK_NOISE * unit)
}

/// Points claimed for a result: benchmark weight × accounted run time.
pub fn points_for(host: &Host, accounted_seconds: f64) -> f64 {
    benchmark_weight(host) * accounted_seconds
}

/// Accumulates awarded points over a campaign.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CreditLedger {
    /// Points granted per campaign day.
    pub points_daily: DailySeries,
    /// Total points granted.
    pub total_points: f64,
}

impl CreditLedger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Grants the points of one result, attributing them over the
    /// replica's lifetime like the run-time accounting does.
    pub fn grant_interval(&mut self, start_seconds: f64, end_seconds: f64, points: f64) {
        self.points_daily.add_interval(
            start_seconds,
            end_seconds.max(start_seconds + 1e-6),
            points,
        );
        self.total_points += points;
    }

    /// Points-based VFTP for a day window: a reference processor earns
    /// one point per second, so `points/day ÷ 86,400` is the equivalent
    /// full-time reference-processor count.
    pub fn vftp(&self, from_day: usize, to_day: usize) -> f64 {
        if to_day <= from_day {
            return 0.0;
        }
        self.points_daily.range_total(from_day, to_day) / ((to_day - from_day) as f64 * 86_400.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::{HostId, HostParams};

    fn ud_host(id: u64) -> Host {
        Host::sample(HostId(id), &HostParams::wcg_2007(), 42)
    }

    fn boinc_host(id: u64) -> Host {
        Host::sample(HostId(id), &HostParams::wcg_boinc(), 42)
    }

    #[test]
    fn points_recover_reference_work_on_ud_agents() {
        // weight × accounted ≈ ref + replay, within benchmark noise.
        for id in 0..30 {
            let mut h = ud_host(id);
            let exec = h.plan_execution(14_400.0, 400.0);
            let pts = points_for(&h, exec.accounted_seconds);
            let true_work = exec.cpu_seconds * h.speed; // ref + replay
            assert!(
                (pts - true_work).abs() / true_work < BENCHMARK_NOISE + 1e-9,
                "host {id}: points {pts} vs work {true_work}"
            );
        }
    }

    #[test]
    fn points_recover_reference_work_on_boinc_agents() {
        for id in 0..30 {
            let mut h = boinc_host(id);
            let exec = h.plan_execution(14_400.0, 400.0);
            let pts = points_for(&h, exec.accounted_seconds);
            let true_work = exec.cpu_seconds * h.speed;
            assert!(
                (pts - true_work).abs() / true_work < BENCHMARK_NOISE + 1e-9,
                "host {id}: points {pts} vs work {true_work}"
            );
        }
    }

    #[test]
    fn points_are_middleware_independent_where_runtime_is_not() {
        // The same physical hosts under the two agents: run-time accounting
        // differs by the whole throttle/contention factor; points agree to
        // within twice the benchmark noise. This is the §8 claim.
        let (mut rt_ud, mut rt_boinc, mut pt_ud, mut pt_boinc) = (0.0, 0.0, 0.0, 0.0);
        for id in 0..60 {
            let mut u = ud_host(id);
            let mut b = boinc_host(id);
            // Identical hardware: same profile stream; only agent differs.
            assert_eq!(u.speed, b.speed);
            let eu = u.plan_execution(14_400.0, 400.0);
            let eb = b.plan_execution(14_400.0, 400.0);
            rt_ud += eu.accounted_seconds;
            rt_boinc += eb.accounted_seconds;
            pt_ud += points_for(&u, eu.accounted_seconds);
            pt_boinc += points_for(&b, eb.accounted_seconds);
        }
        let runtime_gap = rt_ud / rt_boinc;
        let points_gap = pt_ud / pt_boinc;
        assert!(
            runtime_gap > 1.5,
            "UD wall accounting should inflate run time: {runtime_gap}"
        );
        assert!(
            (points_gap - 1.0).abs() < 2.0 * BENCHMARK_NOISE,
            "points should be middleware independent: {points_gap}"
        );
    }

    #[test]
    fn benchmark_weight_is_deterministic_and_bounded() {
        let h = ud_host(7);
        assert_eq!(benchmark_weight(&h), benchmark_weight(&h));
        let ideal = h.effective_rate();
        assert!((benchmark_weight(&h) / ideal - 1.0).abs() <= BENCHMARK_NOISE);
    }

    #[test]
    fn ledger_vftp() {
        let mut ledger = CreditLedger::new();
        // One reference processor running full time for two days.
        ledger.grant_interval(0.0, 2.0 * 86_400.0, 2.0 * 86_400.0);
        assert!((ledger.vftp(0, 2) - 1.0).abs() < 1e-9);
        assert_eq!(ledger.vftp(2, 2), 0.0);
        assert!((ledger.total_points - 2.0 * 86_400.0).abs() < 1e-9);
    }
}

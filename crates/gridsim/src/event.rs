//! The discrete-event engine.
//!
//! Determinism matters more than raw speed here — ties are broken by a
//! monotonically increasing sequence number, so two runs with the same
//! seed produce byte-identical traces — but at paper scale (hundreds of
//! thousands of hosts, millions of pending events) raw speed matters
//! too. The default [`EventQueue`] is therefore backed by a hierarchical
//! timing wheel ([`crate::wheel`]): O(1) amortized schedule/pop against
//! the O(log n) sift of a binary heap, with no per-event allocation in
//! steady state.
//!
//! The previous `BinaryHeap` engine survives as [`HeapQueue`]; both
//! implement [`Scheduler`] and pop in exactly the same `(at, seq)`
//! order, which the `sim_scale` bench and the engine-identity tests use
//! to A/B the two implementations.

use crate::wheel::TimingWheel;
use std::collections::BinaryHeap;

/// Simulation time in seconds since campaign start.
///
/// A thin wrapper that provides the total order the engine needs (the
/// engine never stores NaN; [`SimTime::new`] rejects it).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimTime(f64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0.0);

    /// Wraps a second count.
    ///
    /// # Panics
    /// Panics on NaN or negative time.
    pub fn new(seconds: f64) -> Self {
        assert!(
            seconds.is_finite() && seconds >= 0.0,
            "bad sim time: {seconds}"
        );
        SimTime(seconds)
    }

    /// Seconds since simulation start.
    pub fn seconds(self) -> f64 {
        self.0
    }

    /// Day index (0-based).
    pub fn day(self) -> usize {
        (self.0 / 86_400.0) as usize
    }

    /// Week index (0-based).
    pub fn week(self) -> usize {
        (self.0 / (7.0 * 86_400.0)) as usize
    }

    /// This time advanced by `seconds`.
    pub fn after(self, seconds: f64) -> SimTime {
        SimTime::new(self.0 + seconds)
    }
}

impl Eq for SimTime {}

impl Ord for SimTime {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.partial_cmp(&other.0).expect("SimTime is never NaN")
    }
}

impl PartialOrd for SimTime {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic time-ordered event queue.
///
/// Both engine implementations ([`EventQueue`], [`HeapQueue`]) satisfy
/// the same two hard invariants:
///
/// 1. events pop in increasing `(at, seq)` order;
/// 2. events with equal timestamps pop in insertion order (FIFO).
///
/// Together these make the pop sequence a pure function of the schedule
/// sequence, so swapping implementations cannot change a trace.
pub trait Scheduler<E>: Default {
    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is in the past (before the last popped event).
    fn schedule(&mut self, at: SimTime, event: E);

    /// Schedules `event` `delay` seconds from the current time
    /// (negative delays clamp to now).
    fn schedule_in(&mut self, delay: f64, event: E);

    /// Pops the next event, advancing the clock to its timestamp.
    fn pop(&mut self) -> Option<(SimTime, E)>;

    /// The current simulation time (timestamp of the last popped event).
    fn now(&self) -> SimTime;

    /// Number of pending events.
    fn len(&self) -> usize;

    /// True when no events are pending.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Largest number of simultaneously pending events so far.
    fn peak_len(&self) -> usize;

    /// Total events popped so far (the engine's throughput numerator).
    fn pops(&self) -> u64;
}

/// Pops between telemetry samples of the queue counters (power of two;
/// the sampled flush keeps the hot loop free of atomics).
const TELEMETRY_STRIDE: u64 = 1024;

/// Cached handles for the engine's sampled metrics — zero-sized no-ops
/// when the `telemetry` feature is off.
#[derive(Debug)]
struct QueueTelemetry {
    popped: &'static telemetry::Counter,
    depth: &'static telemetry::Gauge,
    /// Pops already published to `popped` (counters are process-global;
    /// several queues may live in one process).
    flushed: u64,
}

impl QueueTelemetry {
    fn new() -> Self {
        Self {
            popped: telemetry::counter("sim.events.popped"),
            depth: telemetry::gauge("sim.queue.depth"),
            flushed: 0,
        }
    }
}

/// The default deterministic event queue, backed by a hierarchical
/// timing wheel (see [`crate::wheel`] for the layout and the
/// determinism argument).
///
/// Events with equal timestamps pop in insertion order (FIFO), which
/// keeps simulations reproducible.
#[derive(Debug)]
pub struct EventQueue<E> {
    wheel: TimingWheel<E>,
    seq: u64,
    now: SimTime,
    len: usize,
    peak_len: usize,
    pops: u64,
    tele: QueueTelemetry,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue at time zero.
    pub fn new() -> Self {
        Self {
            wheel: TimingWheel::new(),
            seq: 0,
            now: SimTime::ZERO,
            len: 0,
            peak_len: 0,
            pops: 0,
            tele: QueueTelemetry::new(),
        }
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is in the past (before the last popped event).
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(at >= self.now, "cannot schedule into the past");
        self.wheel.insert(at, self.seq, event);
        self.seq += 1;
        self.len += 1;
        self.peak_len = self.peak_len.max(self.len);
    }

    /// Schedules `event` `delay` seconds from the current time.
    pub fn schedule_in(&mut self, delay: f64, event: E) {
        let at = self.now.after(delay.max(0.0));
        self.schedule(at, event);
    }

    /// Pops the next event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.wheel.pop_min()?;
        self.now = entry.at;
        self.pops += 1;
        self.len -= 1;
        // Sampled gauge/counter flush: one branch per pop, atomics only
        // every TELEMETRY_STRIDE pops, nothing at all when the feature
        // is compiled out (ENABLED is a const false).
        if telemetry::ENABLED && self.pops & (TELEMETRY_STRIDE - 1) == 0 {
            self.tele.popped.add(self.pops - self.tele.flushed);
            self.tele.flushed = self.pops;
            self.tele.depth.set(self.len as i64);
        }
        Some((entry.at, entry.event))
    }

    /// The current simulation time (timestamp of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Largest number of simultaneously pending events so far.
    pub fn peak_len(&self) -> usize {
        self.peak_len
    }

    /// Total events popped so far (the engine's throughput numerator).
    pub fn pops(&self) -> u64 {
        self.pops
    }
}

impl<E> Scheduler<E> for EventQueue<E> {
    fn schedule(&mut self, at: SimTime, event: E) {
        EventQueue::schedule(self, at, event);
    }
    fn schedule_in(&mut self, delay: f64, event: E) {
        EventQueue::schedule_in(self, delay, event);
    }
    fn pop(&mut self) -> Option<(SimTime, E)> {
        EventQueue::pop(self)
    }
    fn now(&self) -> SimTime {
        EventQueue::now(self)
    }
    fn len(&self) -> usize {
        EventQueue::len(self)
    }
    fn peak_len(&self) -> usize {
        EventQueue::peak_len(self)
    }
    fn pops(&self) -> u64 {
        EventQueue::pops(self)
    }
}

/// The original `BinaryHeap` engine, kept as the A/B baseline for the
/// timing wheel (`sim_scale` bench, engine-identity tests). O(log n)
/// schedule/pop with one comparison-heavy sift per operation.
#[derive(Debug)]
pub struct HeapQueue<E> {
    heap: BinaryHeap<ScheduledEvent<E>>,
    seq: u64,
    now: SimTime,
    peak_len: usize,
    pops: u64,
}

/// A heap entry: timestamp, FIFO tie-breaker, and the payload.
///
/// The ordering ignores the payload entirely and is *reversed* on
/// `(at, seq)` so `BinaryHeap` (a max-heap) pops the earliest event
/// first, with equal timestamps resolved in insertion order.
#[derive(Debug)]
struct ScheduledEvent<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for ScheduledEvent<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for ScheduledEvent<E> {}
impl<E> PartialOrd for ScheduledEvent<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for ScheduledEvent<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> Default for HeapQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> HeapQueue<E> {
    /// An empty queue at time zero.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
            peak_len: 0,
            pops: 0,
        }
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is in the past (before the last popped event).
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(at >= self.now, "cannot schedule into the past");
        self.heap.push(ScheduledEvent {
            at,
            seq: self.seq,
            event,
        });
        self.seq += 1;
        self.peak_len = self.peak_len.max(self.heap.len());
    }

    /// Schedules `event` `delay` seconds from the current time.
    pub fn schedule_in(&mut self, delay: f64, event: E) {
        let at = self.now.after(delay.max(0.0));
        self.schedule(at, event);
    }

    /// Pops the next event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let ScheduledEvent { at, event, .. } = self.heap.pop()?;
        self.now = at;
        self.pops += 1;
        Some((at, event))
    }

    /// The current simulation time (timestamp of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Largest number of simultaneously pending events so far.
    pub fn peak_len(&self) -> usize {
        self.peak_len
    }

    /// Total events popped so far.
    pub fn pops(&self) -> u64 {
        self.pops
    }
}

impl<E> Scheduler<E> for HeapQueue<E> {
    fn schedule(&mut self, at: SimTime, event: E) {
        HeapQueue::schedule(self, at, event);
    }
    fn schedule_in(&mut self, delay: f64, event: E) {
        HeapQueue::schedule_in(self, delay, event);
    }
    fn pop(&mut self) -> Option<(SimTime, E)> {
        HeapQueue::pop(self)
    }
    fn now(&self) -> SimTime {
        HeapQueue::now(self)
    }
    fn len(&self) -> usize {
        HeapQueue::len(self)
    }
    fn peak_len(&self) -> usize {
        HeapQueue::peak_len(self)
    }
    fn pops(&self) -> u64 {
        HeapQueue::pops(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::new(5.0), "c");
        q.schedule(SimTime::new(1.0), "a");
        q.schedule(SimTime::new(3.0), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        for label in ["first", "second", "third"] {
            q.schedule(SimTime::new(7.0), label);
        }
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["first", "second", "third"]);
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::new(2.0), ());
        q.schedule(SimTime::new(9.0), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now().seconds(), 2.0);
        q.pop();
        assert_eq!(q.now().seconds(), 9.0);
        assert!(q.pop().is_none());
        assert_eq!(q.now().seconds(), 9.0);
    }

    #[test]
    fn schedule_in_is_relative_to_now() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::new(10.0), 0);
        q.pop();
        q.schedule_in(5.0, 1);
        let (t, _) = q.pop().unwrap();
        assert_eq!(t.seconds(), 15.0);
    }

    #[test]
    fn negative_delay_clamps_to_now() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::new(10.0), 0);
        q.pop();
        q.schedule_in(-3.0, 1);
        let (t, _) = q.pop().unwrap();
        assert_eq!(t.seconds(), 10.0);
    }

    #[test]
    #[should_panic(expected = "into the past")]
    fn scheduling_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::new(10.0), 0);
        q.pop();
        q.schedule(SimTime::new(5.0), 1);
    }

    #[test]
    fn time_helpers() {
        let t = SimTime::new(86_400.0 * 7.5);
        assert_eq!(t.day(), 7);
        assert_eq!(t.week(), 1);
        assert_eq!(t.after(86_400.0).day(), 8);
    }

    #[test]
    #[should_panic(expected = "bad sim time")]
    fn nan_time_rejected() {
        SimTime::new(f64::NAN);
    }

    #[test]
    fn len_and_empty() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(SimTime::new(1.0), ());
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn peak_and_pops_track_traffic() {
        let mut q: EventQueue<u8> = EventQueue::new();
        for i in 0..3 {
            q.schedule(SimTime::new(i as f64), i);
        }
        assert_eq!(q.peak_len(), 3);
        q.pop();
        q.pop();
        q.schedule(SimTime::new(10.0), 9);
        // Peak is a high-water mark; it does not shrink with pops.
        assert_eq!(q.peak_len(), 3);
        assert_eq!(q.pops(), 2);
    }

    #[test]
    fn reschedule_at_now_pops_after_current_ties() {
        // The engine's wake path schedules at exactly `now`+delay while
        // events at the same timestamp are still pending; FIFO must hold
        // across that insert-into-current-bucket path.
        let mut q = EventQueue::new();
        q.schedule(SimTime::new(4.0), "a");
        q.schedule(SimTime::new(4.0), "b");
        let (_, first) = q.pop().unwrap();
        assert_eq!(first, "a");
        q.schedule_in(0.0, "c");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["b", "c"]);
    }

    /// Runs the same deterministic mixed workload through both engines
    /// and asserts identical pop sequences — near ticks, same-timestamp
    /// storms, day-scale jumps, 10-day deadlines, far-future spills.
    #[test]
    fn wheel_and_heap_pop_identically() {
        fn workload<S: Scheduler<u32>>() -> Vec<(u64, u32)> {
            let mut q = S::default();
            let mut out = Vec::new();
            let mut x = 0x9E37_79B9_7F4A_7C15u64;
            for i in 0..400u32 {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let delay = match x % 7 {
                    0 => 0.0,
                    1 => 1.0,
                    2 => (x >> 32) as f64 % 300.0,
                    3 => 86_400.0,
                    4 => 10.0 * 86_400.0,
                    5 => 250.0 * 86_400.0,
                    _ => 400.0 * 86_400.0,
                };
                q.schedule_in(delay, i);
                if x.is_multiple_of(3) {
                    if let Some((t, e)) = q.pop() {
                        out.push((t.seconds().to_bits(), e));
                    }
                }
            }
            while let Some((t, e)) = q.pop() {
                out.push((t.seconds().to_bits(), e));
            }
            out
        }
        assert_eq!(workload::<EventQueue<u32>>(), workload::<HeapQueue<u32>>());
    }

    #[test]
    fn heap_queue_keeps_the_legacy_semantics() {
        let mut q = HeapQueue::new();
        q.schedule(SimTime::new(5.0), "b");
        q.schedule(SimTime::new(5.0), "c");
        q.schedule(SimTime::new(1.0), "a");
        assert_eq!(q.len(), 3);
        assert_eq!(q.peak_len(), 3);
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
        assert_eq!(q.pops(), 3);
        assert_eq!(q.now().seconds(), 5.0);
    }

    #[test]
    #[should_panic(expected = "into the past")]
    fn heap_queue_rejects_past_schedules() {
        let mut q = HeapQueue::new();
        q.schedule(SimTime::new(10.0), 0);
        q.pop();
        q.schedule(SimTime::new(5.0), 1);
    }
}

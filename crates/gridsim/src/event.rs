//! The discrete-event engine.
//!
//! A minimal, allocation-friendly priority queue of timestamped events.
//! Determinism matters more than raw speed here: ties are broken by a
//! monotonically increasing sequence number, so two runs with the same
//! seed produce byte-identical traces regardless of float coincidences.

use std::collections::BinaryHeap;

/// Simulation time in seconds since campaign start.
///
/// A thin wrapper that provides the total order `BinaryHeap` needs (the
/// engine never stores NaN; [`SimTime::new`] rejects it).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimTime(f64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0.0);

    /// Wraps a second count.
    ///
    /// # Panics
    /// Panics on NaN or negative time.
    pub fn new(seconds: f64) -> Self {
        assert!(
            seconds.is_finite() && seconds >= 0.0,
            "bad sim time: {seconds}"
        );
        SimTime(seconds)
    }

    /// Seconds since simulation start.
    pub fn seconds(self) -> f64 {
        self.0
    }

    /// Day index (0-based).
    pub fn day(self) -> usize {
        (self.0 / 86_400.0) as usize
    }

    /// Week index (0-based).
    pub fn week(self) -> usize {
        (self.0 / (7.0 * 86_400.0)) as usize
    }

    /// This time advanced by `seconds`.
    pub fn after(self, seconds: f64) -> SimTime {
        SimTime::new(self.0 + seconds)
    }
}

impl Eq for SimTime {}

impl Ord for SimTime {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.partial_cmp(&other.0).expect("SimTime is never NaN")
    }
}

impl PartialOrd for SimTime {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic time-ordered event queue.
///
/// Events with equal timestamps pop in insertion order (FIFO), which keeps
/// simulations reproducible.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<ScheduledEvent<E>>,
    seq: u64,
    now: SimTime,
    peak_len: usize,
    pops: u64,
}

/// A heap entry: timestamp, FIFO tie-breaker, and the payload.
///
/// The ordering ignores the payload entirely and is *reversed* on
/// `(at, seq)` so `BinaryHeap` (a max-heap) pops the earliest event
/// first, with equal timestamps resolved in insertion order.
#[derive(Debug)]
struct ScheduledEvent<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for ScheduledEvent<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for ScheduledEvent<E> {}
impl<E> PartialOrd for ScheduledEvent<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for ScheduledEvent<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue at time zero.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
            peak_len: 0,
            pops: 0,
        }
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is in the past (before the last popped event).
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(at >= self.now, "cannot schedule into the past");
        self.heap.push(ScheduledEvent {
            at,
            seq: self.seq,
            event,
        });
        self.seq += 1;
        self.peak_len = self.peak_len.max(self.heap.len());
    }

    /// Schedules `event` `delay` seconds from the current time.
    pub fn schedule_in(&mut self, delay: f64, event: E) {
        let at = self.now.after(delay.max(0.0));
        self.schedule(at, event);
    }

    /// Pops the next event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let ScheduledEvent { at, event, .. } = self.heap.pop()?;
        self.now = at;
        self.pops += 1;
        Some((at, event))
    }

    /// The current simulation time (timestamp of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Largest number of simultaneously pending events so far.
    pub fn peak_len(&self) -> usize {
        self.peak_len
    }

    /// Total events popped so far (the engine's throughput numerator).
    pub fn pops(&self) -> u64 {
        self.pops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::new(5.0), "c");
        q.schedule(SimTime::new(1.0), "a");
        q.schedule(SimTime::new(3.0), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        for label in ["first", "second", "third"] {
            q.schedule(SimTime::new(7.0), label);
        }
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["first", "second", "third"]);
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::new(2.0), ());
        q.schedule(SimTime::new(9.0), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now().seconds(), 2.0);
        q.pop();
        assert_eq!(q.now().seconds(), 9.0);
        assert!(q.pop().is_none());
        assert_eq!(q.now().seconds(), 9.0);
    }

    #[test]
    fn schedule_in_is_relative_to_now() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::new(10.0), 0);
        q.pop();
        q.schedule_in(5.0, 1);
        let (t, _) = q.pop().unwrap();
        assert_eq!(t.seconds(), 15.0);
    }

    #[test]
    fn negative_delay_clamps_to_now() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::new(10.0), 0);
        q.pop();
        q.schedule_in(-3.0, 1);
        let (t, _) = q.pop().unwrap();
        assert_eq!(t.seconds(), 10.0);
    }

    #[test]
    #[should_panic(expected = "into the past")]
    fn scheduling_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::new(10.0), 0);
        q.pop();
        q.schedule(SimTime::new(5.0), 1);
    }

    #[test]
    fn time_helpers() {
        let t = SimTime::new(86_400.0 * 7.5);
        assert_eq!(t.day(), 7);
        assert_eq!(t.week(), 1);
        assert_eq!(t.after(86_400.0).day(), 8);
    }

    #[test]
    #[should_panic(expected = "bad sim time")]
    fn nan_time_rejected() {
        SimTime::new(f64::NAN);
    }

    #[test]
    fn len_and_empty() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(SimTime::new(1.0), ());
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn peak_and_pops_track_traffic() {
        let mut q: EventQueue<u8> = EventQueue::new();
        for i in 0..3 {
            q.schedule(SimTime::new(i as f64), i);
        }
        assert_eq!(q.peak_len(), 3);
        q.pop();
        q.pop();
        q.schedule(SimTime::new(10.0), 9);
        // Peak is a high-water mark; it does not shrink with pops.
        assert_eq!(q.peak_len(), 3);
        assert_eq!(q.pops(), 2);
    }
}

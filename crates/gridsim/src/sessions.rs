//! Session-level host execution — the detailed model behind the analytic
//! one.
//!
//! [`crate::host::Host::plan_execution`] computes a workunit's turnaround
//! *analytically* (one event per result keeps the campaign tractable).
//! This module simulates the same execution explicitly — alternating
//! on/off availability sessions, progress at the effective rate while on,
//! checkpoint replay of the in-flight starting position at every
//! interruption — and exists to *validate* the analytic shortcut: over a
//! population, the two must agree on accounted time, CPU time and
//! turnaround. The cross-validation test at the bottom is the contract.

use crate::host::Host;
use crate::rng::exponential;
use rand_chacha::ChaCha8Rng;
use serde::Serialize;

/// Outcome of a session-level execution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct SessionExecution {
    /// Wall-clock turnaround, seconds (on + off time until completion).
    pub turnaround_seconds: f64,
    /// Attached (agent-running) wall time, seconds.
    pub attached_seconds: f64,
    /// Real CPU seconds spent (including replays).
    pub cpu_seconds: f64,
    /// Number of availability sessions used.
    pub sessions: u32,
    /// Reference seconds of work replayed after interruptions.
    pub replayed_ref_seconds: f64,
}

/// Simulates one workunit of `ref_cpu_seconds` (checkpoint grain
/// `position_ref_seconds`) on `host`, session by session.
///
/// Sessions alternate: an *on* period of exponential mean
/// `host.mean_session_seconds`, then an *off* period sized so the long-run
/// on-fraction equals `host.availability`. While on, the workunit
/// progresses at the host's effective rate; an interruption loses the
/// progress inside the current starting position (§4.3).
pub fn execute_with_sessions(
    host: &Host,
    ref_cpu_seconds: f64,
    position_ref_seconds: f64,
    rng: &mut ChaCha8Rng,
) -> SessionExecution {
    assert!(ref_cpu_seconds > 0.0 && position_ref_seconds > 0.0);
    let rate = host.effective_rate();
    let mean_on = if host.mean_session_seconds.is_finite() {
        host.mean_session_seconds
    } else {
        // Effectively uninterrupted: one session covers everything.
        f64::INFINITY
    };
    // Off period mean from the availability duty cycle:
    // a = on / (on + off)  ⇒  off = on (1 − a) / a.
    let mean_off = if mean_on.is_finite() {
        mean_on * (1.0 - host.availability) / host.availability.max(1e-6)
    } else {
        0.0
    };

    let mut done_ref = 0.0; // checkpointed work
    let mut in_position = 0.0; // progress inside the current position
    let mut wall = 0.0;
    let mut attached = 0.0;
    let mut cpu_ref = 0.0; // total reference-work actually computed
    let mut sessions = 0u32;
    let mut replayed = 0.0;

    while done_ref + in_position < ref_cpu_seconds - 1e-9 {
        sessions += 1;
        let on = if mean_on.is_finite() {
            exponential(rng, mean_on)
        } else {
            f64::INFINITY
        };
        // Work available this session, in reference seconds.
        let session_capacity = if on.is_finite() {
            on * rate
        } else {
            f64::INFINITY
        };
        let remaining = ref_cpu_seconds - done_ref - in_position;
        if session_capacity >= remaining {
            // Finishes inside this session.
            let used_on = remaining / rate;
            wall += used_on;
            attached += used_on;
            cpu_ref += remaining;
            break;
        }
        // Session ends first: compute, then get interrupted.
        wall += on;
        attached += on;
        cpu_ref += session_capacity;
        // Advance whole positions; the partial one is lost (§4.3: "the
        // MAXDo program has to be relaunched from this position").
        let mut progressed = in_position + session_capacity;
        let whole = (progressed / position_ref_seconds).floor() * position_ref_seconds;
        let completed = whole.min(ref_cpu_seconds - done_ref);
        done_ref += completed;
        progressed -= completed;
        replayed += progressed; // the in-flight fraction recomputes later
        in_position = 0.0;
        // Off period.
        wall += exponential(rng, mean_off);
        if sessions > 1_000_000 {
            // Pathological configuration guard (e.g. position ≫ session).
            break;
        }
    }

    SessionExecution {
        turnaround_seconds: wall,
        attached_seconds: attached,
        cpu_seconds: cpu_ref / host.speed,
        sessions,
        replayed_ref_seconds: replayed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::{HostId, HostParams};
    use crate::rng::{stream, Domain};

    fn host(id: u64) -> Host {
        Host::sample(HostId(id), &HostParams::wcg_2007(), 11)
    }

    #[test]
    fn dedicated_host_needs_exactly_one_session() {
        let h = Host::sample(HostId(0), &HostParams::dedicated_reference(), 1);
        let mut rng = stream(1, Domain::HostExecution, 99);
        let e = execute_with_sessions(&h, 10_000.0, 500.0, &mut rng);
        assert_eq!(e.sessions, 1);
        assert!((e.attached_seconds - 10_000.0).abs() < 1e-6);
        assert!((e.cpu_seconds - 10_000.0).abs() < 1e-6);
        assert_eq!(e.replayed_ref_seconds, 0.0);
    }

    #[test]
    fn work_is_conserved() {
        // cpu × speed = useful work + replayed work, exactly.
        for id in 0..20 {
            let h = host(id);
            let mut rng = stream(2, Domain::HostExecution, id);
            let e = execute_with_sessions(&h, 20_000.0, 700.0, &mut rng);
            let computed_ref = e.cpu_seconds * h.speed;
            assert!(
                (computed_ref - (20_000.0 + e.replayed_ref_seconds)).abs() < 1e-6,
                "host {id}: computed {computed_ref} vs 20000 + replay {}",
                e.replayed_ref_seconds
            );
            assert!(e.turnaround_seconds >= e.attached_seconds);
        }
    }

    /// The contract: the analytic plan and the session-level simulation
    /// agree on population means.
    #[test]
    fn analytic_plan_matches_session_simulation_on_average() {
        let n = 300u64;
        let (mut a_acc, mut s_acc) = (0.0, 0.0); // accounted / attached
        let (mut a_turn, mut s_turn) = (0.0, 0.0);
        for id in 0..n {
            let mut h = host(id);
            let exec = h.plan_execution(14_400.0, 400.0);
            a_acc += exec.accounted_seconds;
            a_turn += exec.turnaround_seconds;
            let h2 = host(id);
            let mut rng = stream(3, Domain::HostExecution, id);
            let sess = execute_with_sessions(&h2, 14_400.0, 400.0, &mut rng);
            s_acc += sess.attached_seconds;
            s_turn += sess.turnaround_seconds;
        }
        let acc_ratio = a_acc / s_acc;
        let turn_ratio = a_turn / s_turn;
        assert!(
            (0.9..1.1).contains(&acc_ratio),
            "attached-time disagreement: analytic/session = {acc_ratio}"
        );
        assert!(
            (0.8..1.25).contains(&turn_ratio),
            "turnaround disagreement: analytic/session = {turn_ratio}"
        );
    }

    #[test]
    fn coarser_checkpoints_replay_more() {
        let mut fine_total = 0.0;
        let mut coarse_total = 0.0;
        for id in 0..40 {
            let h = host(id);
            let mut r1 = stream(4, Domain::HostExecution, id);
            let mut r2 = stream(4, Domain::HostExecution, id);
            fine_total += execute_with_sessions(&h, 30_000.0, 100.0, &mut r1).replayed_ref_seconds;
            coarse_total +=
                execute_with_sessions(&h, 30_000.0, 10_000.0, &mut r2).replayed_ref_seconds;
        }
        assert!(
            coarse_total > fine_total,
            "coarse {coarse_total} vs fine {fine_total}"
        );
    }

    #[test]
    fn execution_is_deterministic_given_the_stream() {
        let h = host(5);
        let mut r1 = stream(9, Domain::HostExecution, 5);
        let mut r2 = stream(9, Domain::HostExecution, 5);
        let a = execute_with_sessions(&h, 9_000.0, 300.0, &mut r1);
        let b = execute_with_sessions(&h, 9_000.0, 300.0, &mut r2);
        assert_eq!(a, b);
    }
}

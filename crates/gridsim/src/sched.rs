//! The transport-free scheduling core shared by every server frontend.
//!
//! [`SchedulerCore`] owns the policy state the paper's task server keeps
//! in its database — the launch-ordered workunit queue, replica issue,
//! deadlines and reissue, redundant computing with quorum validation, and
//! the mid-campaign validation switch (§3.1, §5.1) — and nothing else: no
//! clock, no sockets, no threads. Time is an explicit [`SimTime`]
//! argument on every call, so the same core can be driven by
//!
//! * the discrete-event simulator ([`crate::volunteer`]), which feeds it
//!   simulated seconds, and
//! * the live wire-level grid (`hcmd-netgrid`), which feeds it wall-clock
//!   seconds since server start.
//!
//! Both frontends therefore *provably* execute the same issue/validate
//! decisions — there is exactly one implementation to drift from. The
//! `scheduler_parity` integration test scripts one event sequence through
//! both and asserts the decision streams are identical.
//!
//! §5.1 mechanisms implemented here:
//!
//! * **redundant computing** — "World Community Grid system sends more than
//!   one copy of each workunit to the volunteers ... to identify and reject
//!   erroneous results";
//! * **timeouts** — "the workunit sent to a volunteer reached the timeout"
//!   triggers a reissue; a late result that arrives after its reissue "is
//!   taken into account even if the result has already been computed by
//!   some other device" (it counts as redundant);
//! * **the validation switch** — "It [the redundancy factor] was higher at
//!   the beginning, because the results were compared to each other to be
//!   validated, but later we provided a method to validate the results by
//!   checking the values returned in the result file": quorum-compare
//!   validation early, bounds-check validation (single replica) later.

use crate::event::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use telemetry::{Event, IssueCause};

/// How results are validated, which determines the replication level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ValidationPolicy {
    /// Two replicas per workunit; results must agree (an erroneous result
    /// never matches, forcing another replica).
    QuorumCompare,
    /// One replica; the result file's values are checked against known
    /// bounds, so errors are detected without a second copy.
    BoundsCheck,
}

/// Server configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServerConfig {
    /// Day (campaign time) at which validation switches from
    /// [`ValidationPolicy::QuorumCompare`] to
    /// [`ValidationPolicy::BoundsCheck`]; `None` keeps quorum forever.
    pub validation_switch_day: Option<usize>,
    /// Replica deadline, seconds (reissue after this).
    pub deadline_seconds: f64,
    /// Shared-memory feeder cache (Anderson, Korpela & Walton — the
    /// paper's reference \[13\]): the scheduler serves replicas out of a
    /// bounded in-memory cache that a feeder process refills from the
    /// database in batches. `None` disables the feeder (every fetch hits
    /// the queue directly).
    pub feeder: Option<FeederConfig>,
}

/// Configuration of the BOINC-style feeder cache.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FeederConfig {
    /// Replicas the shared-memory segment holds.
    pub cache_size: usize,
    /// Replicas loaded per refill pass (the feeder wakes when the cache
    /// runs low and loads up to this many).
    pub refill_batch: usize,
}

impl Default for FeederConfig {
    fn default() -> Self {
        Self {
            cache_size: 1000,
            refill_batch: 100,
        }
    }
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            // The paper's redundancy factor fell after the early phase; the
            // switch day is tuned so the campaign-wide factor lands at 1.37.
            validation_switch_day: Some(110),
            deadline_seconds: 10.0 * 86_400.0,
            feeder: None,
        }
    }
}

/// Identifier of one issued replica.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ReplicaId(pub u64);

/// A replica handed to a host, with everything the host model needs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplicaAssignment {
    /// The replica's identity (for reporting and timeout matching).
    pub replica: ReplicaId,
    /// Index of the workunit in the launch-ordered spec list.
    pub workunit: u32,
    /// Reference CPU seconds of the whole workunit.
    pub ref_seconds: f64,
    /// Reference CPU seconds of one starting position (checkpoint grain).
    pub position_ref_seconds: f64,
}

/// What the server concluded from a reported result.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReportOutcome {
    /// The result was the one that (first) completed its workunit.
    pub completed_workunit: bool,
    /// The result contributed to validation (useful); otherwise it is
    /// redundant (late duplicate, post-completion copy) or erroneous.
    pub useful: bool,
    /// The result was erroneous and rejected.
    pub erroneous: bool,
}

#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
struct WuState {
    valid_results: u16,
    complete: bool,
    /// Trust-adaptive replication override, fixed at issue time:
    /// 0 = follow the validation policy in force at report time (the
    /// paper's behaviour, bit-identical to every pre-trust trace);
    /// nonzero = exactly this many valid results complete the workunit.
    #[serde(default)]
    needed_override: u16,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct ReplicaState {
    workunit: u32,
    reported: bool,
}

/// Per-workunit static description the server schedules from.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkunitCatalogEntry {
    /// Reference CPU seconds of the workunit.
    pub ref_seconds: f32,
    /// Reference CPU seconds of one starting position.
    pub position_ref_seconds: f32,
    /// Receptor protein index (for progression accounting).
    pub receptor: u16,
}

/// Why replicas were (re)issued — the server's own accounting of its
/// §5.1 fault-tolerance work.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServerStats {
    /// First replicas of fresh workunits.
    pub initial_issues: u64,
    /// Sibling replicas required by quorum validation.
    pub quorum_issues: u64,
    /// Reissues after a deadline expired.
    pub timeout_reissues: u64,
    /// Reissues after an erroneous result.
    pub error_reissues: u64,
    /// Results rejected as erroneous.
    pub errors_received: u64,
    /// Results that arrived after their workunit had completed.
    pub late_results: u64,
    /// Replicas issued to independently recompute a trusted agent's
    /// single-replica result (trust-adaptive spot checks).
    #[serde(default)]
    pub spot_check_issues: u64,
}

impl ServerStats {
    /// Total replicas issued.
    pub fn total_issues(&self) -> u64 {
        self.initial_issues
            + self.quorum_issues
            + self.timeout_reissues
            + self.error_reissues
            + self.spot_check_issues
    }
}

/// The scheduling core: workunit queue in launch order, replica issue,
/// validation, reissue. Transport-free — drive it from a simulator event
/// loop or from live connection handlers; see the module docs.
#[derive(Debug)]
pub struct SchedulerCore {
    catalog: Vec<WorkunitCatalogEntry>,
    config: ServerConfig,
    states: Vec<WuState>,
    replicas: Vec<ReplicaState>,
    /// Next never-issued workunit (launch order).
    next_new: usize,
    /// Workunits needing another replica (errors, timeouts, quorum).
    reissue: VecDeque<u32>,
    /// Completed workunit count.
    completed: usize,
    /// Total results received (the paper's 5,418,010 analogue).
    pub results_received: u64,
    /// Useful results (the paper's 3,936,010 analogue).
    pub results_useful: u64,
    /// Issue/reissue cause accounting.
    pub stats: ServerStats,
    /// Replicas currently staged in the feeder cache (workunit ids with
    /// their issue causes pre-resolved).
    feeder_cache: VecDeque<(u32, Option<ReissueCause>)>,
    /// Fetches that found the cache empty while work existed in the
    /// database — BOINC's "no work available, try again" responses.
    pub feeder_misses: u64,
    /// Reference CPU seconds of every received result that was *not*
    /// the effective one — quorum partners, errors, late copies, spot
    /// checks. The donated-CPU cost of redundancy (the paper's Fig. 6b
    /// waste, measured instead of modelled).
    pub wasted_ref_seconds: f64,
    /// Pending reissue causes aligned with the `reissue` queue semantics:
    /// cause of the next issue of each queued workunit.
    reissue_causes: VecDeque<ReissueCause>,
    /// Cached telemetry handles (zero-sized when telemetry is disabled).
    tele: ServerTelemetry,
    /// Workunit lifecycle events are logged for every `sample_stride`-th
    /// workunit; full campaigns have ~10⁵ workunits, far too many to log
    /// each. Override with `HCMD_TELEMETRY_SAMPLE=<stride>`.
    sample_stride: u64,
    /// Shard-ownership mode; `None` (single server) on every pre-shard
    /// path, preserving bit-identical scheduling decisions.
    shard: Option<ShardOwnership>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
enum ReissueCause {
    Quorum,
    Timeout,
    Error,
}

/// Shard-ownership state: which slice of the catalog this scheduler
/// instance is responsible for, when a campaign is split across several
/// servers (multi-server sharding). `None` on every single-server path,
/// in which case the scheduler behaves exactly as before — the
/// launch-order cursor (`next_new`) walks the whole catalog.
///
/// In shard mode the never-issued pool is an explicit launch-ordered
/// queue instead of a cursor, because work-stealing leases mutate
/// ownership mid-campaign: `lease_out` releases unissued workunits to a
/// hungry peer and `lease_in` adopts them. Both are idempotent (a
/// duplicate gossip frame re-applying a lease is a no-op), and only
/// never-issued workunits can move — once a replica is out, the
/// workunit's reissue/quorum lifecycle stays on the shard that issued
/// it, so completion accounting never crosses shards.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardOwnership {
    /// Per-workunit: does this shard currently own it?
    owned: Vec<bool>,
    /// Per-workunit: has this shard ever issued a replica of it?
    /// Issued workunits are lease-locked (see above).
    issued: Vec<bool>,
    /// Launch-ordered queue of owned, never-issued workunits. Entries
    /// can go stale (leased out, re-adopted, completed); pops skip
    /// anything not currently owned-and-unissued.
    fresh: VecDeque<u32>,
    /// Currently-owned workunit count (the campaign-complete target).
    owned_total: usize,
    /// Workunits this shard has issued at least one replica of.
    issued_count: usize,
}

/// Trust-adaptive replication level for a fresh workunit issue,
/// chosen by the caller from the fetching agent's trust band; see
/// [`SchedulerCore::fetch_work_with`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReplicationOverride {
    /// One valid result completes the workunit (trusted agents; spot
    /// checks provide the safety net).
    Single,
    /// A byte-matching pair is required regardless of the validation
    /// policy in force (untrusted agents).
    Quorum,
}

/// A serializable image of the scheduler's mutable state, taken with
/// [`SchedulerCore::snapshot`] and rebuilt with [`SchedulerCore::restore`].
///
/// The catalog and configuration are *not* part of the image: both are
/// derived deterministically from the campaign recipe, so a restart
/// rebuilds them from the recipe and the snapshot only has to carry the
/// progress state (which workunits validated, which replicas are out,
/// what is queued for reissue). `catalog_len` is kept as a cheap sanity
/// check that a snapshot is being restored against the campaign it was
/// taken from.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoreSnapshot {
    states: Vec<WuState>,
    replicas: Vec<ReplicaState>,
    next_new: usize,
    reissue: Vec<u32>,
    reissue_causes: Vec<ReissueCause>,
    completed: usize,
    results_received: u64,
    results_useful: u64,
    stats: ServerStats,
    feeder_cache: Vec<(u32, Option<ReissueCause>)>,
    feeder_misses: u64,
    #[serde(default)]
    wasted_ref_seconds: f64,
    catalog_len: usize,
    #[serde(default)]
    shard: Option<ShardOwnership>,
}

impl ReissueCause {
    fn issue_cause(self) -> IssueCause {
        match self {
            ReissueCause::Quorum => IssueCause::Quorum,
            ReissueCause::Timeout => IssueCause::Timeout,
            ReissueCause::Error => IssueCause::Error,
        }
    }
}

/// The server's cached metric handles, resolved once at construction so
/// the scheduling hot path never touches the registry lock. Mirrors
/// [`ServerStats`] into the global registry plus result accounting.
#[derive(Debug)]
struct ServerTelemetry {
    initial_issues: &'static telemetry::Counter,
    quorum_issues: &'static telemetry::Counter,
    timeout_reissues: &'static telemetry::Counter,
    error_reissues: &'static telemetry::Counter,
    spot_check_issues: &'static telemetry::Counter,
    errors_received: &'static telemetry::Counter,
    late_results: &'static telemetry::Counter,
    results_received: &'static telemetry::Counter,
    workunits_validated: &'static telemetry::Counter,
    feeder_misses: &'static telemetry::Counter,
}

impl ServerTelemetry {
    fn new() -> Self {
        Self {
            initial_issues: telemetry::counter("server.issues.initial"),
            quorum_issues: telemetry::counter("server.issues.quorum"),
            timeout_reissues: telemetry::counter("server.issues.timeout"),
            error_reissues: telemetry::counter("server.issues.error"),
            spot_check_issues: telemetry::counter("server.issues.spotcheck"),
            errors_received: telemetry::counter("server.results.errors"),
            late_results: telemetry::counter("server.results.late"),
            results_received: telemetry::counter("server.results.received"),
            workunits_validated: telemetry::counter("server.workunits.validated"),
            feeder_misses: telemetry::counter("server.feeder.misses"),
        }
    }
}

impl SchedulerCore {
    /// Creates a server over a launch-ordered workunit catalog.
    pub fn new(catalog: Vec<WorkunitCatalogEntry>, config: ServerConfig) -> Self {
        assert!(!catalog.is_empty(), "campaign has no workunits");
        assert!(config.deadline_seconds > 0.0, "deadline must be positive");
        let n = catalog.len();
        let sample_stride = std::env::var("HCMD_TELEMETRY_SAMPLE")
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
            .filter(|&s| s > 0)
            .unwrap_or_else(|| (n as u64 / 512).max(1));
        // Pre-size the hot collections from the configured policy instead
        // of growing from empty. Quorum validation (replication level 2)
        // queues one sibling per fresh workunit, so the reissue queue's
        // steady-state depth tracks the in-flight issue window; replicas
        // accumulate one entry per issue over the whole campaign.
        let redundancy: usize = match config.validation_switch_day {
            Some(0) => 1,
            _ => 2,
        };
        let reissue_capacity = if redundancy > 1 { (n / 4).max(64) } else { 64 };
        let feeder_capacity = config.feeder.map_or(0, |f| f.cache_size);
        Self {
            config,
            states: vec![WuState::default(); n],
            replicas: Vec::with_capacity(n * redundancy),
            next_new: 0,
            reissue: VecDeque::with_capacity(reissue_capacity),
            completed: 0,
            results_received: 0,
            results_useful: 0,
            stats: ServerStats::default(),
            reissue_causes: VecDeque::with_capacity(reissue_capacity),
            feeder_cache: VecDeque::with_capacity(feeder_capacity),
            feeder_misses: 0,
            wasted_ref_seconds: 0.0,
            tele: ServerTelemetry::new(),
            sample_stride,
            shard: None,
            catalog,
        }
    }

    /// Creates a sharded server over the *full* launch-ordered catalog,
    /// owning only the workunits where `owned[wu]` is true. The catalog
    /// stays complete so replica/workunit indices agree across shards
    /// (and with the single-server run); only issue eligibility is
    /// restricted. Shard mode does not support the feeder cache — the
    /// feeder's refill pass walks the launch cursor, which shard mode
    /// replaces with an ownership queue.
    pub fn with_ownership(
        catalog: Vec<WorkunitCatalogEntry>,
        config: ServerConfig,
        owned: Vec<bool>,
    ) -> Self {
        assert!(
            config.feeder.is_none(),
            "shard-ownership mode does not support the feeder cache"
        );
        assert_eq!(owned.len(), catalog.len(), "ownership map length");
        let mut core = Self::new(catalog, config);
        let fresh: VecDeque<u32> = owned
            .iter()
            .enumerate()
            .filter(|(_, &o)| o)
            .map(|(i, _)| i as u32)
            .collect();
        let owned_total = fresh.len();
        // Park the launch cursor at the end: fresh issue flows through
        // the ownership queue instead.
        core.next_new = core.catalog.len();
        core.shard = Some(ShardOwnership {
            issued: vec![false; owned.len()],
            owned,
            fresh,
            owned_total,
            issued_count: 0,
        });
        core
    }

    /// Captures the scheduler's mutable state for durable storage.
    pub fn snapshot(&self) -> CoreSnapshot {
        CoreSnapshot {
            states: self.states.clone(),
            replicas: self.replicas.clone(),
            next_new: self.next_new,
            reissue: self.reissue.iter().copied().collect(),
            reissue_causes: self.reissue_causes.iter().copied().collect(),
            completed: self.completed,
            results_received: self.results_received,
            results_useful: self.results_useful,
            stats: self.stats,
            feeder_cache: self.feeder_cache.iter().copied().collect(),
            feeder_misses: self.feeder_misses,
            wasted_ref_seconds: self.wasted_ref_seconds,
            catalog_len: self.catalog.len(),
            shard: self.shard.clone(),
        }
    }

    /// Rebuilds a scheduler from a [`CoreSnapshot`] plus the (recipe-
    /// derived) catalog and configuration it was taken under. Fails when
    /// the snapshot is internally inconsistent or belongs to a different
    /// campaign, so a corrupt journal cannot resurrect a nonsense server.
    pub fn restore(
        catalog: Vec<WorkunitCatalogEntry>,
        config: ServerConfig,
        snap: CoreSnapshot,
    ) -> Result<Self, String> {
        let n = catalog.len();
        if snap.catalog_len != n || snap.states.len() != n {
            return Err(format!(
                "snapshot belongs to a {}-workunit campaign, catalog has {n}",
                snap.catalog_len
            ));
        }
        if snap.reissue.len() != snap.reissue_causes.len() {
            return Err("snapshot reissue queues out of sync".into());
        }
        if snap.next_new > n || snap.completed > n {
            return Err("snapshot cursors out of range".into());
        }
        if let Some(r) = snap
            .replicas
            .iter()
            .find(|r| r.workunit as usize >= n)
            .map(|r| r.workunit)
        {
            return Err(format!("snapshot replica references workunit {r} >= {n}"));
        }
        if snap
            .reissue
            .iter()
            .chain(snap.feeder_cache.iter().map(|(wu, _)| wu))
            .any(|&wu| wu as usize >= n)
        {
            return Err("snapshot reissue/feeder entry out of range".into());
        }
        if let Some(sh) = &snap.shard {
            if sh.owned.len() != n || sh.issued.len() != n {
                return Err("snapshot shard ownership map length mismatch".into());
            }
            if sh.fresh.iter().any(|&wu| wu as usize >= n) {
                return Err("snapshot shard fresh entry out of range".into());
            }
        }
        let mut core = Self::new(catalog, config);
        core.states = snap.states;
        core.replicas = snap.replicas;
        core.next_new = snap.next_new;
        core.reissue = snap.reissue.into();
        core.reissue_causes = snap.reissue_causes.into();
        core.completed = snap.completed;
        core.results_received = snap.results_received;
        core.results_useful = snap.results_useful;
        core.stats = snap.stats;
        core.feeder_cache = snap.feeder_cache.into();
        core.feeder_misses = snap.feeder_misses;
        core.wasted_ref_seconds = snap.wasted_ref_seconds;
        core.shard = snap.shard;
        Ok(core)
    }

    /// Whether a workunit's lifecycle is logged to the event stream (the
    /// engine uses the same sampling for dispatch/report events).
    pub fn sampled(&self, wu: u32) -> bool {
        u64::from(wu) % self.sample_stride == 0
    }

    fn record_issue(&self, now: SimTime, wu: u32, cause: IssueCause) {
        match cause {
            IssueCause::Initial => self.tele.initial_issues.inc(),
            IssueCause::Quorum => self.tele.quorum_issues.inc(),
            IssueCause::Timeout => self.tele.timeout_reissues.inc(),
            IssueCause::Error => self.tele.error_reissues.inc(),
        }
        if self.sampled(wu) {
            telemetry::emit(Some(now.seconds()), || Event::WorkunitIssued {
                workunit: u64::from(wu),
                cause,
            });
        }
    }

    /// Moves up to `n` issuable replicas from the database queues into the
    /// feeder cache (the feeder's refill pass).
    fn feeder_refill(&mut self, now: SimTime, n: usize, cache_size: usize) {
        while self.feeder_cache.len() < cache_size.min(self.feeder_cache.len() + n) {
            if let Some((wu, cause)) = self.pop_reissue() {
                self.feeder_cache.push_back((wu, Some(cause)));
            } else if self.next_new < self.catalog.len() {
                let wu = self.next_new as u32;
                self.next_new += 1;
                if self.policy_at(now) == ValidationPolicy::QuorumCompare {
                    self.push_reissue(wu, ReissueCause::Quorum);
                }
                self.feeder_cache.push_back((wu, None));
            } else {
                break;
            }
        }
    }

    /// The validation policy in force at a time.
    pub fn policy_at(&self, now: SimTime) -> ValidationPolicy {
        match self.config.validation_switch_day {
            Some(day) if now.day() >= day => ValidationPolicy::BoundsCheck,
            _ => ValidationPolicy::QuorumCompare,
        }
    }

    /// Replica deadline in seconds.
    pub fn deadline_seconds(&self) -> f64 {
        self.config.deadline_seconds
    }

    /// Number of workunits in the campaign.
    pub fn workunit_count(&self) -> usize {
        self.catalog.len()
    }

    /// Number of completed (validated) workunits.
    pub fn completed_count(&self) -> usize {
        self.completed
    }

    /// True when every workunit is validated — every *owned* workunit,
    /// in shard mode.
    pub fn is_campaign_complete(&self) -> bool {
        match &self.shard {
            Some(sh) => self.completed == sh.owned_total,
            None => self.completed == self.catalog.len(),
        }
    }

    /// Catalog entry of a workunit.
    pub fn entry(&self, workunit: u32) -> WorkunitCatalogEntry {
        self.catalog[workunit as usize]
    }

    /// Hands out the next replica, or `None` when no work is available
    /// right now (everything issued and pending, or — with a feeder — the
    /// cache momentarily empty).
    pub fn fetch_work(&mut self, now: SimTime) -> Option<ReplicaAssignment> {
        self.fetch_work_with(now, None)
    }

    /// [`Self::fetch_work`] with a trust-adaptive replication override.
    ///
    /// The override applies only when the fetch lands on a *fresh*
    /// workunit (the initial-issue branch); reissues and quorum
    /// siblings keep whatever replication their workunit was issued
    /// under, and the feeder path (which pre-resolves issue causes at
    /// refill time) ignores overrides entirely. `None` reproduces
    /// `fetch_work` exactly.
    pub fn fetch_work_with(
        &mut self,
        now: SimTime,
        replication: Option<ReplicationOverride>,
    ) -> Option<ReplicaAssignment> {
        if let Some(feeder) = self.config.feeder {
            // Fast path: serve straight from the cache front; refill
            // lazily when it runs dry (the real feeder runs
            // asynchronously — serving the refill on the *next* request
            // models the one-poll latency volunteers see).
            loop {
                let Some((wu, cause)) = self.feeder_cache.pop_front() else {
                    if self.available_count(now) > 0 {
                        self.feeder_misses += 1;
                        self.tele.feeder_misses.inc();
                    }
                    self.feeder_refill(now, feeder.refill_batch, feeder.cache_size);
                    return None;
                };
                // Skip reissue copies whose workunit completed while staged.
                if self.states[wu as usize].complete && cause.is_some() {
                    continue;
                }
                match cause {
                    Some(ReissueCause::Quorum) => self.stats.quorum_issues += 1,
                    Some(ReissueCause::Timeout) => self.stats.timeout_reissues += 1,
                    Some(ReissueCause::Error) => self.stats.error_reissues += 1,
                    None => self.stats.initial_issues += 1,
                }
                self.record_issue(
                    now,
                    wu,
                    cause.map_or(IssueCause::Initial, ReissueCause::issue_cause),
                );
                return Some(self.issue_replica(wu));
            }
        }
        // Reissues first: they hold completed predecessors' workunits back.
        let workunit = if let Some((wu, cause)) = self.pop_reissue() {
            match cause {
                ReissueCause::Quorum => self.stats.quorum_issues += 1,
                ReissueCause::Timeout => self.stats.timeout_reissues += 1,
                ReissueCause::Error => self.stats.error_reissues += 1,
            }
            self.record_issue(now, wu, cause.issue_cause());
            wu
        } else if let Some(wu) = self.pop_fresh() {
            self.stats.initial_issues += 1;
            self.record_issue(now, wu, IssueCause::Initial);
            match replication {
                // Trusted agent: one valid result completes the
                // workunit, no sibling — spot checks (issued separately)
                // are the safety net.
                Some(ReplicationOverride::Single) => {
                    self.states[wu as usize].needed_override = 1;
                }
                // Untrusted agent: force a byte-matching pair even if
                // the bounds-check era would have accepted a single.
                Some(ReplicationOverride::Quorum) => {
                    self.states[wu as usize].needed_override = 2;
                    self.push_reissue(wu, ReissueCause::Quorum);
                }
                // Under quorum validation each fresh workunit needs two
                // replicas; queue the sibling copy.
                None => {
                    if self.policy_at(now) == ValidationPolicy::QuorumCompare {
                        self.push_reissue(wu, ReissueCause::Quorum);
                    }
                }
            }
            wu
        } else {
            return None;
        };
        Some(self.issue_replica(workunit))
    }

    /// Pops the next never-issued workunit in launch order: the
    /// `next_new` cursor on the single-server path, the ownership
    /// queue in shard mode (skipping entries leased away, already
    /// issued via a re-adoption duplicate, or completed).
    fn pop_fresh(&mut self) -> Option<u32> {
        match &mut self.shard {
            None => {
                if self.next_new < self.catalog.len() {
                    let wu = self.next_new as u32;
                    self.next_new += 1;
                    Some(wu)
                } else {
                    None
                }
            }
            Some(sh) => loop {
                let wu = sh.fresh.pop_front()?;
                let i = wu as usize;
                if sh.owned[i] && !sh.issued[i] && !self.states[i].complete {
                    sh.issued[i] = true;
                    sh.issued_count += 1;
                    break Some(wu);
                }
            },
        }
    }

    /// Whether this scheduler runs in shard-ownership mode.
    pub fn is_sharded(&self) -> bool {
        self.shard.is_some()
    }

    /// Whether this scheduler currently owns `wu`. Always true on the
    /// single-server path.
    pub fn owns(&self, wu: u32) -> bool {
        match &self.shard {
            Some(sh) => sh.owned[wu as usize],
            None => true,
        }
    }

    /// Currently-owned workunit count (the whole catalog when not
    /// sharded).
    pub fn owned_count(&self) -> usize {
        match &self.shard {
            Some(sh) => sh.owned_total,
            None => self.catalog.len(),
        }
    }

    /// Owned workunits no replica has ever been issued for — the
    /// shard's stealable backlog.
    pub fn fresh_backlog(&self) -> usize {
        match &self.shard {
            Some(sh) => sh.owned_total - sh.issued_count,
            None => self.catalog.len() - self.next_new,
        }
    }

    /// Up to `max` workunits this shard could lease to a hungry peer:
    /// the *tail* of the launch-ordered ownership queue (the work this
    /// shard would reach last), owned and never issued. Empty when not
    /// sharded.
    pub fn lease_candidates(&self, max: usize) -> Vec<u32> {
        let Some(sh) = &self.shard else {
            return Vec::new();
        };
        let mut out = Vec::with_capacity(max.min(8));
        for &wu in sh.fresh.iter().rev() {
            let i = wu as usize;
            if sh.owned[i] && !sh.issued[i] && !self.states[i].complete && !out.contains(&wu) {
                out.push(wu);
                if out.len() >= max {
                    break;
                }
            }
        }
        out
    }

    /// Releases ownership of never-issued workunits to a peer shard.
    /// Idempotent: workunits already released, already issued here, or
    /// not owned are skipped. Returns how many actually moved.
    pub fn lease_out(&mut self, wus: &[u32]) -> usize {
        let Some(sh) = &mut self.shard else {
            return 0;
        };
        let mut moved = 0;
        for &wu in wus {
            let i = wu as usize;
            if i < sh.owned.len() && sh.owned[i] && !sh.issued[i] {
                sh.owned[i] = false;
                sh.owned_total -= 1;
                moved += 1;
            }
        }
        moved
    }

    /// Adopts ownership of workunits leased from a peer shard.
    /// Idempotent: workunits already owned are skipped, so a duplicate
    /// gossip frame re-applying the same lease is a no-op. Returns how
    /// many actually moved.
    pub fn lease_in(&mut self, wus: &[u32]) -> usize {
        let Some(sh) = &mut self.shard else {
            return 0;
        };
        let mut moved = 0;
        for &wu in wus {
            let i = wu as usize;
            if i < sh.owned.len() && !sh.owned[i] {
                sh.owned[i] = true;
                sh.owned_total += 1;
                sh.fresh.push_back(wu);
                moved += 1;
            }
        }
        moved
    }

    /// Registers a fresh replica of `workunit` and builds its assignment.
    fn issue_replica(&mut self, workunit: u32) -> ReplicaAssignment {
        let replica = ReplicaId(self.replicas.len() as u64);
        self.replicas.push(ReplicaState {
            workunit,
            reported: false,
        });
        let e = self.catalog[workunit as usize];
        ReplicaAssignment {
            replica,
            workunit,
            ref_seconds: e.ref_seconds as f64,
            position_ref_seconds: e.position_ref_seconds as f64,
        }
    }

    fn push_reissue(&mut self, wu: u32, cause: ReissueCause) {
        self.reissue.push_back(wu);
        self.reissue_causes.push_back(cause);
    }

    fn pop_reissue(&mut self) -> Option<(u32, ReissueCause)> {
        while let Some(wu) = self.reissue.pop_front() {
            let cause = self.reissue_causes.pop_front().expect("queues in sync");
            if !self.states[wu as usize].complete {
                return Some((wu, cause));
            }
            // A sibling/reissue became moot; drop it.
        }
        None
    }

    /// Reports a replica's result. `erroneous` is whether the computation
    /// produced an invalid result file.
    pub fn report_result(
        &mut self,
        now: SimTime,
        replica: ReplicaId,
        erroneous: bool,
    ) -> ReportOutcome {
        let r = &mut self.replicas[replica.0 as usize];
        assert!(!r.reported, "replica reported twice");
        r.reported = true;
        let wu = r.workunit;
        self.results_received += 1;
        self.tele.results_received.inc();
        let ref_s = f64::from(self.catalog[wu as usize].ref_seconds);
        let needed = self.needed_at(now, wu);
        if erroneous {
            self.stats.errors_received += 1;
            self.tele.errors_received.inc();
            self.wasted_ref_seconds += ref_s;
            // Rejected; if the workunit still needs results, reissue.
            if !self.states[wu as usize].complete {
                self.push_reissue(wu, ReissueCause::Error);
                if self.sampled(wu) {
                    telemetry::emit(Some(now.seconds()), || Event::WorkunitReissued {
                        workunit: u64::from(wu),
                        cause: IssueCause::Error,
                    });
                }
            }
            return ReportOutcome {
                completed_workunit: false,
                useful: false,
                erroneous: true,
            };
        }
        let state = &mut self.states[wu as usize];
        if state.complete {
            // Late or surplus copy of an already-validated workunit: the
            // paper counts it (it arrived) but it is redundant.
            self.stats.late_results += 1;
            self.tele.late_results.inc();
            self.wasted_ref_seconds += ref_s;
            return ReportOutcome {
                completed_workunit: false,
                useful: false,
                erroneous: false,
            };
        }
        state.valid_results += 1;
        if state.valid_results >= needed {
            state.complete = true;
            self.completed += 1;
            self.tele.workunits_validated.inc();
            if self.sampled(wu) {
                telemetry::emit(Some(now.seconds()), || Event::WorkunitValidated {
                    workunit: u64::from(wu),
                });
            }
            // One *effective* result per workunit reaches the science team
            // (the paper's 3,936,010 against 5,418,010 received — "only
            // 73 % are useful results"). Quorum partners, late copies and
            // errors are all redundancy.
            self.results_useful += 1;
            ReportOutcome {
                completed_workunit: true,
                useful: true,
                erroneous: false,
            }
        } else {
            // First of a quorum pair: needed for validation but not the
            // effective result.
            self.wasted_ref_seconds += ref_s;
            ReportOutcome {
                completed_workunit: false,
                useful: false,
                erroneous: false,
            }
        }
    }

    /// Valid results required to complete `wu` as judged at `now`: the
    /// issue-time trust override when one was set, the validation
    /// policy in force otherwise.
    fn needed_at(&self, now: SimTime, wu: u32) -> u16 {
        match self.states[wu as usize].needed_override {
            0 => match self.policy_at(now) {
                ValidationPolicy::QuorumCompare => 2,
                ValidationPolicy::BoundsCheck => 1,
            },
            n => n,
        }
    }

    /// Valid results required to complete `wu` right now — the wire
    /// layer consults this to know whether a workunit validates by
    /// byte-level quorum (≥ 2) or on its own (1).
    pub fn replication_needed(&self, now: SimTime, wu: u32) -> u16 {
        self.needed_at(now, wu)
    }

    /// Issues a spot-check replica of an already-validated workunit: an
    /// independent recomputation of a trusted agent's single-replica
    /// result. Deliberate redundancy, accounted separately from the
    /// §5.1 reissue causes.
    pub fn issue_spot_check(&mut self, wu: u32) -> ReplicaAssignment {
        assert!(
            self.states[wu as usize].complete,
            "spot checks recompute completed workunits"
        );
        self.stats.spot_check_issues += 1;
        self.tele.spot_check_issues.inc();
        self.issue_replica(wu)
    }

    /// Books a spot-check replica's report. The workunit is already
    /// complete, so the result is received-but-redundant by
    /// construction; the byte-level verdict lives in the wire layer.
    /// Returns the replica's workunit.
    pub fn note_spot_report(&mut self, replica: ReplicaId) -> u32 {
        let r = &mut self.replicas[replica.0 as usize];
        assert!(!r.reported, "replica reported twice");
        r.reported = true;
        let wu = r.workunit;
        self.results_received += 1;
        self.tele.results_received.inc();
        self.wasted_ref_seconds += f64::from(self.catalog[wu as usize].ref_seconds);
        wu
    }

    /// Retracts a completed workunit after a failed spot check: its
    /// accepted (single-replica) result can no longer be believed. The
    /// workunit re-enters the incomplete pool needing a full byte-
    /// matching quorum, and two fresh replicas are queued (error
    /// cause — the suspect's result *was* an undetected error).
    /// Returns false when the workunit was not complete.
    pub fn invalidate_workunit(&mut self, wu: u32) -> bool {
        let state = &mut self.states[wu as usize];
        if !state.complete {
            return false;
        }
        state.complete = false;
        state.valid_results = 0;
        state.needed_override = 2;
        self.completed -= 1;
        self.results_useful -= 1;
        // The retracted result was counted useful when it validated;
        // it turned out to be waste.
        self.wasted_ref_seconds += f64::from(self.catalog[wu as usize].ref_seconds);
        self.push_reissue(wu, ReissueCause::Error);
        self.push_reissue(wu, ReissueCause::Error);
        true
    }

    /// Donated reference CPU seconds spent on results that never became
    /// the effective copy (quorum partners, errors, late copies, spot
    /// checks, retracted singles).
    pub fn wasted_ref_seconds(&self) -> f64 {
        self.wasted_ref_seconds
    }

    /// Handles a replica deadline: if the replica never reported and its
    /// workunit is still incomplete, queue a reissue. Returns true when a
    /// reissue was queued.
    pub fn handle_timeout(&mut self, replica: ReplicaId) -> bool {
        let r = self.replicas[replica.0 as usize];
        if !r.reported && !self.states[r.workunit as usize].complete {
            self.push_reissue(r.workunit, ReissueCause::Timeout);
            if self.sampled(r.workunit) {
                telemetry::emit(None, || Event::WorkunitReissued {
                    workunit: u64::from(r.workunit),
                    cause: IssueCause::Timeout,
                });
            }
            true
        } else {
            false
        }
    }

    /// The workunit a replica belongs to.
    pub fn replica_workunit(&self, replica: ReplicaId) -> u32 {
        self.replicas[replica.0 as usize].workunit
    }

    /// Number of replicas ever issued. Replica ids are dense, so a
    /// transport can range-check untrusted ids before calling in.
    pub fn replica_count(&self) -> usize {
        self.replicas.len()
    }

    /// Upper bound on the number of replicas the server could issue right
    /// now (queued reissues — possibly moot — plus never-issued workunits).
    /// Used by the engine to wake idle hosts.
    pub fn available_count(&self, _now: SimTime) -> usize {
        self.reissue.len() + self.fresh_backlog()
    }

    /// The campaign-wide redundancy factor so far
    /// (results received / useful results).
    pub fn redundancy_factor(&self) -> f64 {
        if self.results_useful == 0 {
            1.0
        } else {
            self.results_received as f64 / self.results_useful as f64
        }
    }

    /// Workunit state counts for operator dashboards. `issued` counts
    /// workunits with at least one replica ever created (issue order is
    /// launch order, so that is exactly `0..next_new`); `quorum_pending`
    /// are issued workunits holding a partial quorum (≥ 1 valid result,
    /// not yet complete).
    pub fn wu_state_counts(&self) -> WuStateCounts {
        // Launch order is issue order on the single-server path, so
        // issued workunits are exactly `0..next_new`; shard mode issues
        // out of the ownership queue and counts explicitly.
        let (total, issued) = match &self.shard {
            Some(sh) => (sh.owned_total, sh.issued_count),
            None => (self.catalog.len(), self.next_new),
        };
        let quorum_pending = self.states[..self.next_new]
            .iter()
            .filter(|s| !s.complete && s.valid_results > 0)
            .count();
        WuStateCounts {
            total,
            issued,
            in_flight: issued - self.completed,
            quorum_pending,
            done: self.completed,
        }
    }

    /// Per-receptor progression, sorted by receptor index — the live
    /// analogue of the paper's Fig. 1 per-protein-couple plot. One entry
    /// per receptor appearing in the catalog.
    pub fn receptor_progress(&self) -> Vec<ReceptorProgress> {
        let mut by_receptor: std::collections::BTreeMap<u16, ReceptorProgress> =
            std::collections::BTreeMap::new();
        for (i, entry) in self.catalog.iter().enumerate() {
            let p = by_receptor
                .entry(entry.receptor)
                .or_insert(ReceptorProgress {
                    receptor: entry.receptor,
                    total: 0,
                    completed: 0,
                });
            p.total += 1;
            if self.states[i].complete {
                p.completed += 1;
            }
        }
        by_receptor.into_values().collect()
    }

    /// Reference CPU seconds of all validated workunits. Divided by the
    /// campaign's elapsed time this is the paper's §3.1 "virtual
    /// full-time processors" figure.
    pub fn completed_ref_seconds(&self) -> f64 {
        self.catalog
            .iter()
            .zip(&self.states)
            .filter(|(_, s)| s.complete)
            .map(|(e, _)| f64::from(e.ref_seconds))
            .sum()
    }

    /// Replicas issued and never reported (in flight or expired).
    pub fn unreported_replica_count(&self) -> usize {
        self.replicas.iter().filter(|r| !r.reported).count()
    }

    /// Depth of the reissue queue (workunits awaiting another replica).
    pub fn reissue_queue_depth(&self) -> usize {
        self.reissue.len()
    }
}

/// Workunit state counts for operator dashboards; see
/// [`SchedulerCore::wu_state_counts`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WuStateCounts {
    /// Workunits in the campaign catalog.
    pub total: usize,
    /// Workunits with at least one replica ever issued.
    pub issued: usize,
    /// Issued workunits not yet validated.
    pub in_flight: usize,
    /// Issued workunits holding a partial quorum.
    pub quorum_pending: usize,
    /// Validated workunits.
    pub done: usize,
}

/// Per-receptor progression; see [`SchedulerCore::receptor_progress`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReceptorProgress {
    /// Receptor protein index from the catalog.
    pub receptor: u16,
    /// Workunits targeting this receptor.
    pub total: u32,
    /// Validated workunits targeting this receptor.
    pub completed: u32,
}

/// One campaign's slice of a shared grid: a resource share (any
/// positive weight; [`FairShare::new`] normalizes the vector) plus a
/// priority used only to break deficit ties.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CampaignShare {
    /// Relative resource weight (normalized against the other
    /// campaigns' weights).
    pub share: f64,
    /// Tie-break rank when deficits are equal; higher wins.
    pub priority: u32,
}

/// Deficit-weighted round-robin over delivered reference-seconds —
/// BOINC-style project autonomy for a multi-campaign server.
///
/// Each campaign `i` accrues `delivered[i]` reference-seconds as its
/// workunits validate. Its *deficit* is what fair division owes it:
/// `share[i] · Σ delivered − delivered[i]`. Every work request goes to
/// the eligible campaign with the largest deficit (priority, then lowest
/// index, break ties), so the delivered split converges on the
/// configured shares without any quantum bookkeeping.
///
/// Borrow/repay falls out of the same arithmetic: a campaign that is
/// work-starved (nothing to issue — ineligible) lets the others borrow
/// its turn, its deficit keeps growing, and once it has work again it
/// wins every pick until the debt is repaid. [`FairShare::borrows`]
/// counts how often a campaign was served out of fair order so the
/// effect is observable.
///
/// Deliveries are derived state — each campaign core already knows its
/// [`SchedulerCore::completed_ref_seconds`] — so recovery re-seeds the
/// arbiter from the cores instead of journaling it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FairShare {
    shares: Vec<CampaignShare>,
    delivered: Vec<f64>,
    borrows: Vec<u64>,
}

impl FairShare {
    /// Builds an arbiter over `shares`, normalizing the weights. Zero or
    /// negative weights are floored to a minimal positive slice so a
    /// misconfigured campaign still drains eventually.
    pub fn new(mut shares: Vec<CampaignShare>) -> Self {
        assert!(!shares.is_empty(), "FairShare needs at least one campaign");
        for s in &mut shares {
            if s.share.is_nan() || s.share <= 0.0 {
                s.share = f64::MIN_POSITIVE;
            }
        }
        let total: f64 = shares.iter().map(|s| s.share).sum();
        for s in &mut shares {
            s.share /= total;
        }
        let n = shares.len();
        Self {
            shares,
            delivered: vec![0.0; n],
            borrows: vec![0; n],
        }
    }

    /// Number of campaigns under arbitration.
    pub fn len(&self) -> usize {
        self.shares.len()
    }

    /// True when no campaign is registered (never, post-`new`).
    pub fn is_empty(&self) -> bool {
        self.shares.is_empty()
    }

    /// Campaign `i`'s normalized share.
    pub fn share(&self, i: usize) -> f64 {
        self.shares[i].share
    }

    /// Campaign `i`'s tie-break priority.
    pub fn priority(&self, i: usize) -> u32 {
        self.shares[i].priority
    }

    /// Reference-seconds delivered to campaign `i` so far.
    pub fn delivered(&self, i: usize) -> f64 {
        self.delivered[i]
    }

    /// Reference-seconds delivered across all campaigns.
    pub fn total_delivered(&self) -> f64 {
        self.delivered.iter().sum()
    }

    /// Times campaign `i` was served while another campaign held a
    /// larger deficit but had no work (idle capacity borrowed).
    pub fn borrows(&self, i: usize) -> u64 {
        self.borrows[i]
    }

    /// Re-seeds campaign `i`'s delivery tally (recovery: the campaign
    /// core's `completed_ref_seconds()` is the durable source of truth).
    pub fn set_delivered(&mut self, i: usize, ref_seconds: f64) {
        self.delivered[i] = ref_seconds;
    }

    /// Credits `ref_seconds` of validated work to campaign `i`.
    pub fn credit(&mut self, i: usize, ref_seconds: f64) {
        self.delivered[i] += ref_seconds;
    }

    /// What fair division currently owes campaign `i` (negative when it
    /// has been over-served, e.g. while a sibling was starved).
    pub fn deficit(&self, i: usize) -> f64 {
        self.shares[i].share * self.total_delivered() - self.delivered[i]
    }

    /// Orders `(deficit, priority, index)` — larger deficit first,
    /// higher priority first, lower index first.
    fn better(&self, a: usize, b: usize) -> bool {
        let (da, db) = (self.deficit(a), self.deficit(b));
        if da != db {
            return da > db;
        }
        if self.shares[a].priority != self.shares[b].priority {
            return self.shares[a].priority > self.shares[b].priority;
        }
        a < b
    }

    /// Picks the campaign the next work request should draw from, given
    /// which campaigns currently have work (`eligible[i]`). Returns
    /// `None` when nobody does. When the pick out-ranks a starved
    /// campaign with a larger deficit, the borrow is counted.
    pub fn pick(&mut self, eligible: &[bool]) -> Option<usize> {
        assert_eq!(eligible.len(), self.shares.len());
        let mut best: Option<usize> = None;
        let mut best_any: Option<usize> = None;
        for (i, &has_work) in eligible.iter().enumerate() {
            if best_any.is_none_or(|b| self.better(i, b)) {
                best_any = Some(i);
            }
            if has_work && best.is_none_or(|b| self.better(i, b)) {
                best = Some(i);
            }
        }
        let chosen = best?;
        if best_any != Some(chosen) {
            self.borrows[chosen] += 1;
        }
        Some(chosen)
    }

    /// Largest deviation between any campaign's delivered fraction and
    /// its configured share — the ±5% convergence figure the bench and
    /// the scripted-history test report. Zero until anything delivers.
    pub fn share_error(&self) -> f64 {
        let total = self.total_delivered();
        if total <= 0.0 {
            return 0.0;
        }
        self.shares
            .iter()
            .zip(&self.delivered)
            .map(|(s, d)| (d / total - s.share).abs())
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod fair_share_tests {
    use super::*;

    fn two(share_a: f64, share_b: f64) -> FairShare {
        FairShare::new(vec![
            CampaignShare {
                share: share_a,
                priority: 0,
            },
            CampaignShare {
                share: share_b,
                priority: 0,
            },
        ])
    }

    #[test]
    fn shares_normalize() {
        let f = two(7.0, 3.0);
        assert!((f.share(0) - 0.7).abs() < 1e-12);
        assert!((f.share(1) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn deficit_ordering_converges_to_the_configured_split() {
        let mut f = two(0.7, 0.3);
        // Serve 1000 unit-cost workunits strictly by pick order.
        for _ in 0..1000 {
            let i = f.pick(&[true, true]).unwrap();
            f.credit(i, 1.0);
        }
        assert!(
            f.share_error() < 0.01,
            "share error {} after 1000 unit picks",
            f.share_error()
        );
    }

    #[test]
    fn priority_breaks_exact_ties() {
        let mut f = FairShare::new(vec![
            CampaignShare {
                share: 0.5,
                priority: 1,
            },
            CampaignShare {
                share: 0.5,
                priority: 7,
            },
        ]);
        // Identical shares, nothing delivered: deficits tie at zero and
        // the higher-priority campaign must win the first pick.
        assert_eq!(f.pick(&[true, true]), Some(1));
    }

    #[test]
    fn starved_campaign_lends_and_is_repaid() {
        let mut f = two(0.7, 0.3);
        // Campaign 0 has no work for a while: campaign 1 borrows.
        for _ in 0..100 {
            assert_eq!(f.pick(&[false, true]), Some(1));
            f.credit(1, 1.0);
        }
        assert_eq!(f.borrows(1), 100, "every starved pick is a borrow");
        assert!(f.deficit(0) > 0.0, "the lender's deficit accrues");
        // Work returns: campaign 0 wins every pick until repaid.
        let mut zero_run = 0u32;
        while f.deficit(0) > f.deficit(1) {
            assert_eq!(f.pick(&[true, true]), Some(0));
            f.credit(0, 1.0);
            zero_run += 1;
        }
        assert!(zero_run > 50, "repayment run was only {zero_run} picks");
        assert!(f.share_error() < 0.05);
    }

    #[test]
    fn pick_none_when_nobody_has_work() {
        let mut f = two(0.5, 0.5);
        assert_eq!(f.pick(&[false, false]), None);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn catalog(n: usize) -> Vec<WorkunitCatalogEntry> {
        (0..n)
            .map(|i| WorkunitCatalogEntry {
                ref_seconds: 1000.0 + i as f32,
                position_ref_seconds: 100.0,
                receptor: (i % 4) as u16,
            })
            .collect()
    }

    fn t(sec: f64) -> SimTime {
        SimTime::new(sec)
    }

    #[test]
    fn quorum_era_issues_two_replicas_per_workunit() {
        let mut s = SchedulerCore::new(catalog(2), ServerConfig::default());
        let a = s.fetch_work(t(0.0)).unwrap();
        let b = s.fetch_work(t(1.0)).unwrap();
        assert_eq!(a.workunit, 0);
        assert_eq!(b.workunit, 0, "sibling replica of wu 0 first");
        let c = s.fetch_work(t(2.0)).unwrap();
        assert_eq!(c.workunit, 1);
    }

    #[test]
    fn quorum_completion_needs_two_valid_results() {
        let mut s = SchedulerCore::new(catalog(1), ServerConfig::default());
        let a = s.fetch_work(t(0.0)).unwrap();
        let b = s.fetch_work(t(0.0)).unwrap();
        let r1 = s.report_result(t(10.0), a.replica, false);
        assert!(!r1.completed_workunit);
        assert!(!r1.useful, "quorum partner is redundancy, not effective");
        let r2 = s.report_result(t(20.0), b.replica, false);
        assert!(r2.completed_workunit);
        assert!(r2.useful);
        assert!(s.is_campaign_complete());
        assert_eq!(s.results_useful, 1);
        assert_eq!(s.results_received, 2);
        assert!((s.redundancy_factor() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn bounds_check_era_single_replica_suffices() {
        let cfg = ServerConfig {
            validation_switch_day: Some(0),
            ..Default::default()
        };
        let mut s = SchedulerCore::new(catalog(2), cfg);
        let a = s.fetch_work(t(0.0)).unwrap();
        let b = s.fetch_work(t(0.0)).unwrap();
        assert_eq!((a.workunit, b.workunit), (0, 1), "no sibling replicas");
        let r = s.report_result(t(10.0), a.replica, false);
        assert!(r.completed_workunit);
        assert_eq!(s.redundancy_factor(), 1.0);
    }

    #[test]
    fn erroneous_result_triggers_reissue() {
        let cfg = ServerConfig {
            validation_switch_day: Some(0),
            ..Default::default()
        };
        let mut s = SchedulerCore::new(catalog(1), cfg);
        let a = s.fetch_work(t(0.0)).unwrap();
        let r = s.report_result(t(5.0), a.replica, true);
        assert!(r.erroneous);
        assert!(!r.useful);
        // The reissue is available again.
        let b = s.fetch_work(t(6.0)).unwrap();
        assert_eq!(b.workunit, 0);
        assert!(
            s.report_result(t(10.0), b.replica, false)
                .completed_workunit
        );
        assert!((s.redundancy_factor() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn timeout_reissues_only_unreported_incomplete_replicas() {
        let cfg = ServerConfig {
            validation_switch_day: Some(0),
            ..Default::default()
        };
        let mut s = SchedulerCore::new(catalog(2), cfg);
        let a = s.fetch_work(t(0.0)).unwrap();
        let b = s.fetch_work(t(0.0)).unwrap();
        s.report_result(t(5.0), a.replica, false);
        assert!(!s.handle_timeout(a.replica), "reported replica: no reissue");
        assert!(s.handle_timeout(b.replica), "silent replica: reissue");
        let c = s.fetch_work(t(10.0)).unwrap();
        assert_eq!(c.workunit, b.workunit);
    }

    #[test]
    fn late_result_after_completion_is_redundant() {
        let cfg = ServerConfig {
            validation_switch_day: Some(0),
            ..Default::default()
        };
        let mut s = SchedulerCore::new(catalog(1), cfg);
        let a = s.fetch_work(t(0.0)).unwrap();
        s.handle_timeout(a.replica);
        let b = s.fetch_work(t(1.0)).unwrap();
        s.report_result(t(2.0), b.replica, false);
        // The original straggler finally reports.
        let r = s.report_result(t(3.0), a.replica, false);
        assert!(!r.useful);
        assert!(!r.completed_workunit);
        assert_eq!(s.results_received, 2);
        assert_eq!(s.results_useful, 1);
        assert!((s.redundancy_factor() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn moot_sibling_replicas_are_dropped() {
        // Quorum era queues a sibling; if the wu completes via timeout
        // reissues before the sibling is fetched, the sibling must not be
        // handed out.
        let mut s = SchedulerCore::new(catalog(1), ServerConfig::default());
        let a = s.fetch_work(t(0.0)).unwrap(); // wu0 replica 1
        let b = s.fetch_work(t(0.0)).unwrap(); // wu0 sibling
        s.report_result(t(1.0), a.replica, false);
        s.report_result(t(2.0), b.replica, false);
        assert!(s.is_campaign_complete());
        assert!(s.fetch_work(t(3.0)).is_none());
    }

    #[test]
    fn policy_switches_at_the_configured_day() {
        let s = SchedulerCore::new(
            catalog(1),
            ServerConfig {
                validation_switch_day: Some(10),
                ..Default::default()
            },
        );
        assert_eq!(s.policy_at(t(0.0)), ValidationPolicy::QuorumCompare);
        assert_eq!(
            s.policy_at(t(9.9 * 86_400.0)),
            ValidationPolicy::QuorumCompare
        );
        assert_eq!(
            s.policy_at(t(10.0 * 86_400.0)),
            ValidationPolicy::BoundsCheck
        );
    }

    #[test]
    fn fetch_returns_none_when_everything_is_out() {
        let cfg = ServerConfig {
            validation_switch_day: Some(0),
            ..Default::default()
        };
        let mut s = SchedulerCore::new(catalog(1), cfg);
        assert!(s.fetch_work(t(0.0)).is_some());
        assert!(s.fetch_work(t(0.0)).is_none());
    }

    #[test]
    #[should_panic(expected = "reported twice")]
    fn double_report_rejected() {
        let mut s = SchedulerCore::new(catalog(1), ServerConfig::default());
        let a = s.fetch_work(t(0.0)).unwrap();
        s.report_result(t(1.0), a.replica, false);
        s.report_result(t(2.0), a.replica, false);
    }

    #[test]
    #[should_panic(expected = "no workunits")]
    fn empty_catalog_rejected() {
        SchedulerCore::new(Vec::new(), ServerConfig::default());
    }

    #[test]
    fn single_override_completes_on_one_result_even_in_the_quorum_era() {
        let mut s = SchedulerCore::new(catalog(1), ServerConfig::default());
        let a = s
            .fetch_work_with(t(0.0), Some(ReplicationOverride::Single))
            .unwrap();
        assert_eq!(s.replication_needed(t(0.0), a.workunit), 1);
        // No quorum sibling was queued.
        assert_eq!(s.reissue_queue_depth(), 0);
        let r = s.report_result(t(1.0), a.replica, false);
        assert!(r.completed_workunit && r.useful);
        assert!(s.is_campaign_complete());
        assert_eq!(s.stats.quorum_issues, 0);
        assert_eq!(s.redundancy_factor(), 1.0);
        assert_eq!(s.wasted_ref_seconds(), 0.0);
    }

    #[test]
    fn quorum_override_forces_a_pair_even_in_the_bounds_era() {
        let cfg = ServerConfig {
            validation_switch_day: Some(0), // bounds era from t=0
            ..Default::default()
        };
        let mut s = SchedulerCore::new(catalog(1), cfg);
        let a = s
            .fetch_work_with(t(0.0), Some(ReplicationOverride::Quorum))
            .unwrap();
        assert_eq!(s.replication_needed(t(0.0), a.workunit), 2);
        let b = s.fetch_work(t(0.0)).expect("the forced sibling");
        assert_eq!(b.workunit, a.workunit);
        assert!(!s.report_result(t(1.0), a.replica, false).completed_workunit);
        assert!(s.report_result(t(2.0), b.replica, false).completed_workunit);
        assert_eq!(s.stats.quorum_issues, 1);
    }

    #[test]
    fn no_override_stays_bit_identical_to_the_policy_path() {
        // fetch_work and fetch_work_with(None) are the same code path;
        // the day-110 switch must still govern the quorum need at
        // report time for un-overridden workunits.
        let mut s = SchedulerCore::new(catalog(1), ServerConfig::default());
        let a = s.fetch_work_with(t(0.0), None).unwrap();
        assert_eq!(s.replication_needed(t(0.0), a.workunit), 2);
        // After the switch day the same workunit needs only one.
        assert_eq!(s.replication_needed(t(111.0 * 86_400.0), a.workunit), 1);
    }

    #[test]
    fn spot_check_reports_are_received_but_redundant() {
        let mut s = SchedulerCore::new(catalog(1), ServerConfig::default());
        let a = s
            .fetch_work_with(t(0.0), Some(ReplicationOverride::Single))
            .unwrap();
        s.report_result(t(1.0), a.replica, false);
        assert!(s.is_campaign_complete());
        let spot = s.issue_spot_check(a.workunit);
        assert_eq!(spot.workunit, a.workunit);
        assert_eq!(s.stats.spot_check_issues, 1);
        assert_eq!(s.unreported_replica_count(), 1);
        let wu = s.note_spot_report(spot.replica);
        assert_eq!(wu, a.workunit);
        assert_eq!(s.results_received, 2);
        assert_eq!(s.results_useful, 1, "spot copy is pure redundancy");
        assert!(s.wasted_ref_seconds() > 0.0);
    }

    #[test]
    fn invalidation_reopens_the_workunit_under_forced_quorum() {
        let mut s = SchedulerCore::new(catalog(2), ServerConfig::default());
        let a = s
            .fetch_work_with(t(0.0), Some(ReplicationOverride::Single))
            .unwrap();
        s.report_result(t(1.0), a.replica, false);
        assert_eq!(s.completed_count(), 1);

        assert!(s.invalidate_workunit(a.workunit));
        assert!(!s.invalidate_workunit(a.workunit), "already retracted");
        assert_eq!(s.completed_count(), 0);
        assert_eq!(s.results_useful, 0);
        assert_eq!(s.replication_needed(t(2.0), a.workunit), 2);
        // Two fresh replicas are queued ahead of new work.
        let b = s.fetch_work(t(3.0)).unwrap();
        let c = s.fetch_work(t(3.0)).unwrap();
        assert_eq!((b.workunit, c.workunit), (a.workunit, a.workunit));
        assert!(!s.report_result(t(4.0), b.replica, false).completed_workunit);
        assert!(s.report_result(t(5.0), c.replica, false).completed_workunit);
        assert_eq!(s.completed_count(), 1);
        assert_eq!(s.stats.error_reissues, 2);
    }
}

#[cfg(test)]
mod snapshot_tests {
    use super::*;

    fn catalog(n: usize) -> Vec<WorkunitCatalogEntry> {
        (0..n)
            .map(|i| WorkunitCatalogEntry {
                ref_seconds: 1000.0 + i as f32,
                position_ref_seconds: 100.0,
                receptor: (i % 3) as u16,
            })
            .collect()
    }

    fn t(sec: f64) -> SimTime {
        SimTime::new(sec)
    }

    /// Drives a core through a mixed history (issues, quorum pair, an
    /// error, a timeout), snapshots it, restores, and asserts the two
    /// cores make identical decisions from there to campaign end.
    #[test]
    fn restored_core_continues_exactly_where_the_original_stopped() {
        let mut s = SchedulerCore::new(catalog(4), ServerConfig::default());
        let a = s.fetch_work(t(0.0)).unwrap();
        let b = s.fetch_work(t(0.0)).unwrap();
        let c = s.fetch_work(t(1.0)).unwrap();
        s.report_result(t(2.0), a.replica, false);
        s.report_result(t(3.0), b.replica, true); // error reissue
        s.handle_timeout(c.replica); // timeout reissue

        let snap = s.snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        let back: CoreSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap, "snapshot must survive a JSON round trip");
        let mut r = SchedulerCore::restore(catalog(4), ServerConfig::default(), back).unwrap();

        assert_eq!(r.stats, s.stats);
        assert_eq!(r.completed_count(), s.completed_count());
        assert_eq!(r.replica_count(), s.replica_count());
        // Drain both to completion in lockstep; every decision must match.
        let mut now = 10.0;
        while !s.is_campaign_complete() || !r.is_campaign_complete() {
            now += 1.0;
            let (x, y) = (s.fetch_work(t(now)), r.fetch_work(t(now)));
            match (x, y) {
                (Some(x), Some(y)) => {
                    assert_eq!((x.replica, x.workunit), (y.replica, y.workunit));
                    let ox = s.report_result(t(now + 0.5), x.replica, false);
                    let oy = r.report_result(t(now + 0.5), y.replica, false);
                    assert_eq!(ox, oy);
                }
                (None, None) => break,
                diverged => panic!("fetch decisions diverged: {diverged:?}"),
            }
        }
        assert_eq!(s.is_campaign_complete(), r.is_campaign_complete());
        assert_eq!(s.stats, r.stats);
        assert_eq!(s.results_received, r.results_received);
        assert_eq!(s.results_useful, r.results_useful);
    }

    #[test]
    fn snapshot_of_wrong_campaign_is_rejected() {
        let s = SchedulerCore::new(catalog(4), ServerConfig::default());
        let snap = s.snapshot();
        assert!(SchedulerCore::restore(catalog(5), ServerConfig::default(), snap).is_err());
    }

    #[test]
    fn feeder_cache_survives_the_snapshot() {
        let cfg = ServerConfig {
            validation_switch_day: Some(0),
            feeder: Some(FeederConfig {
                cache_size: 4,
                refill_batch: 4,
            }),
            ..Default::default()
        };
        let mut s = SchedulerCore::new(catalog(6), cfg);
        assert!(s.fetch_work(t(0.0)).is_none(), "cold cache");
        let snap = s.snapshot();
        let mut r = SchedulerCore::restore(catalog(6), cfg, snap).unwrap();
        let a = s.fetch_work(t(1.0)).unwrap();
        let b = r.fetch_work(t(1.0)).unwrap();
        assert_eq!((a.replica, a.workunit), (b.replica, b.workunit));
        assert_eq!(s.feeder_misses, r.feeder_misses);
    }
}

#[cfg(test)]
mod feeder_tests {
    use super::*;

    fn catalog(n: usize) -> Vec<WorkunitCatalogEntry> {
        (0..n)
            .map(|_| WorkunitCatalogEntry {
                ref_seconds: 1000.0,
                position_ref_seconds: 100.0,
                receptor: 0,
            })
            .collect()
    }

    fn t(sec: f64) -> SimTime {
        SimTime::new(sec)
    }

    fn feeder_config(cache: usize, batch: usize) -> ServerConfig {
        ServerConfig {
            validation_switch_day: Some(0),
            feeder: Some(FeederConfig {
                cache_size: cache,
                refill_batch: batch,
            }),
            ..Default::default()
        }
    }

    #[test]
    fn first_fetch_misses_then_cache_serves() {
        let mut s = SchedulerCore::new(catalog(10), feeder_config(4, 4));
        // The cache starts cold: the first request records a miss and
        // triggers the refill (BOINC's "no work sent, try again").
        assert!(s.fetch_work(t(0.0)).is_none());
        assert_eq!(s.feeder_misses, 1);
        // Now the cache is primed.
        let a = s.fetch_work(t(1.0)).expect("cache primed");
        assert_eq!(a.workunit, 0);
        assert_eq!(s.stats.initial_issues, 1);
    }

    #[test]
    fn all_work_flows_through_the_feeder() {
        let mut s = SchedulerCore::new(catalog(25), feeder_config(8, 8));
        let mut served = 0;
        let mut polls = 0;
        while !s.is_campaign_complete() && polls < 1000 {
            polls += 1;
            if let Some(a) = s.fetch_work(t(polls as f64)) {
                s.report_result(t(polls as f64 + 0.5), a.replica, false);
                served += 1;
            }
        }
        assert!(s.is_campaign_complete(), "campaign must drain via feeder");
        assert_eq!(served, 25);
        assert!(s.feeder_misses >= 1, "cold cache must have missed");
    }

    #[test]
    fn cache_never_exceeds_its_size() {
        let mut s = SchedulerCore::new(catalog(100), feeder_config(5, 50));
        assert!(s.fetch_work(t(0.0)).is_none()); // refill pass
        assert!(s.feeder_cache.len() <= 5, "cache {}", s.feeder_cache.len());
    }

    #[test]
    fn empty_database_miss_is_not_counted() {
        let mut s = SchedulerCore::new(catalog(1), feeder_config(4, 4));
        assert!(s.fetch_work(t(0.0)).is_none()); // cold start
        let a = s.fetch_work(t(1.0)).unwrap();
        s.report_result(t(2.0), a.replica, false);
        assert!(s.is_campaign_complete());
        let misses_before = s.feeder_misses;
        // No work exists at all now: not a feeder miss, just done.
        assert!(s.fetch_work(t(3.0)).is_none());
        assert_eq!(s.feeder_misses, misses_before);
    }
}

#[cfg(test)]
mod stats_tests {
    use super::*;

    fn t(sec: f64) -> SimTime {
        SimTime::new(sec)
    }

    fn catalog(n: usize) -> Vec<WorkunitCatalogEntry> {
        (0..n)
            .map(|_| WorkunitCatalogEntry {
                ref_seconds: 1000.0,
                position_ref_seconds: 100.0,
                receptor: 0,
            })
            .collect()
    }

    #[test]
    fn issue_causes_are_attributed() {
        let mut s = SchedulerCore::new(catalog(2), ServerConfig::default());
        // Quorum era: wu0 + sibling, wu1 + sibling.
        let a = s.fetch_work(t(0.0)).unwrap();
        let b = s.fetch_work(t(0.0)).unwrap();
        assert_eq!(s.stats.initial_issues, 1);
        assert_eq!(s.stats.quorum_issues, 1);
        // b times out silently; reissue is attributed to the timeout.
        s.report_result(t(10.0), a.replica, false);
        assert!(s.handle_timeout(b.replica));
        let c = s.fetch_work(t(20.0)).unwrap();
        assert_eq!(c.workunit, 0);
        assert_eq!(s.stats.timeout_reissues, 1);
        // An erroneous result triggers an error reissue.
        s.report_result(t(30.0), c.replica, true);
        assert_eq!(s.stats.errors_received, 1);
        let d = s.fetch_work(t(40.0)).unwrap();
        assert_eq!(d.workunit, 0);
        assert_eq!(s.stats.error_reissues, 1);
        // Complete wu0; the straggler b finally reports late.
        s.report_result(t(50.0), d.replica, false);
        let late = s.report_result(t(60.0), b.replica, false);
        assert!(!late.useful);
        assert_eq!(s.stats.late_results, 1);
        assert_eq!(s.stats.total_issues(), 4);
    }
}

#[cfg(test)]
mod shard_tests {
    use super::*;

    fn catalog(n: usize) -> Vec<WorkunitCatalogEntry> {
        (0..n)
            .map(|i| WorkunitCatalogEntry {
                ref_seconds: 1000.0 + i as f32,
                position_ref_seconds: 100.0,
                receptor: (i % 2) as u16,
            })
            .collect()
    }

    fn t(sec: f64) -> SimTime {
        SimTime::new(sec)
    }

    fn bounds_cfg() -> ServerConfig {
        ServerConfig {
            validation_switch_day: Some(0),
            ..Default::default()
        }
    }

    fn owned_evens(n: usize) -> Vec<bool> {
        (0..n).map(|i| i % 2 == 0).collect()
    }

    #[test]
    fn sharded_core_issues_only_owned_workunits_in_launch_order() {
        let mut s = SchedulerCore::with_ownership(catalog(6), bounds_cfg(), owned_evens(6));
        assert!(s.is_sharded());
        assert_eq!(s.owned_count(), 3);
        assert_eq!(s.fresh_backlog(), 3);
        let issued: Vec<u32> =
            std::iter::from_fn(|| s.fetch_work(t(0.0)).map(|a| a.workunit)).collect();
        assert_eq!(issued, vec![0, 2, 4]);
    }

    #[test]
    fn sharded_campaign_completes_at_the_owned_total() {
        let mut s = SchedulerCore::with_ownership(catalog(6), bounds_cfg(), owned_evens(6));
        while let Some(a) = s.fetch_work(t(0.0)) {
            s.report_result(t(1.0), a.replica, false);
        }
        assert!(s.is_campaign_complete());
        assert_eq!(s.completed_count(), 3);
    }

    #[test]
    fn lease_moves_unissued_work_and_is_idempotent() {
        let mut a = SchedulerCore::with_ownership(catalog(4), bounds_cfg(), vec![true; 4]);
        let mut b = SchedulerCore::with_ownership(catalog(4), bounds_cfg(), vec![false; 4]);
        assert!(b.fetch_work(t(0.0)).is_none(), "shard B starts empty");
        assert!(b.is_campaign_complete(), "owning nothing is complete");

        let wus = a.lease_candidates(2);
        assert_eq!(wus, vec![3, 2], "tail of A's launch-order queue");
        assert_eq!(a.lease_out(&wus), 2);
        assert_eq!(a.lease_out(&wus), 0, "duplicate release is a no-op");
        assert_eq!(b.lease_in(&wus), 2);
        assert_eq!(b.lease_in(&wus), 0, "duplicate adoption is a no-op");
        assert_eq!((a.owned_count(), b.owned_count()), (2, 2));

        // A drains its remaining half; the leased wus never surface.
        let a_issued: Vec<u32> =
            std::iter::from_fn(|| a.fetch_work(t(0.0)).map(|x| x.workunit)).collect();
        assert_eq!(a_issued, vec![0, 1]);
        let b_issued: Vec<u32> =
            std::iter::from_fn(|| b.fetch_work(t(0.0)).map(|x| x.workunit)).collect();
        assert_eq!(b_issued, vec![3, 2]);
    }

    #[test]
    fn issued_workunits_are_lease_locked() {
        let mut s = SchedulerCore::with_ownership(catalog(2), bounds_cfg(), vec![true; 2]);
        let a = s.fetch_work(t(0.0)).unwrap();
        assert_eq!(a.workunit, 0);
        assert_eq!(s.lease_out(&[0]), 0, "an issued workunit cannot move");
        assert_eq!(s.lease_candidates(8), vec![1]);
    }

    #[test]
    fn shard_state_survives_the_snapshot_round_trip() {
        let mut s = SchedulerCore::with_ownership(catalog(4), bounds_cfg(), vec![true; 4]);
        let a = s.fetch_work(t(0.0)).unwrap();
        s.report_result(t(1.0), a.replica, false);
        s.lease_out(&[3]);
        let snap = s.snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        let back: CoreSnapshot = serde_json::from_str(&json).unwrap();
        let mut r = SchedulerCore::restore(catalog(4), bounds_cfg(), back).unwrap();
        assert_eq!(r.owned_count(), s.owned_count());
        assert_eq!(r.fresh_backlog(), s.fresh_backlog());
        let (x, y) = (s.fetch_work(t(2.0)), r.fetch_work(t(2.0)));
        assert_eq!(
            x.map(|a| (a.replica, a.workunit)),
            y.map(|a| (a.replica, a.workunit))
        );
    }

    #[test]
    fn readopted_lease_does_not_double_issue() {
        // A leases wu 1 out, the peer leases it straight back (e.g. the
        // peer finished); the duplicate fresh entry must not produce a
        // second initial issue.
        let mut s = SchedulerCore::with_ownership(catalog(2), bounds_cfg(), vec![true; 2]);
        s.lease_out(&[1]);
        s.lease_in(&[1]);
        let issued: Vec<u32> =
            std::iter::from_fn(|| s.fetch_work(t(0.0)).map(|x| x.workunit)).collect();
        assert_eq!(issued, vec![0, 1]);
        assert_eq!(s.stats.initial_issues, 2);
    }
}

//! Discrete-event simulation of World Community Grid (and of a dedicated
//! grid) for the HCMD campaign.
//!
//! The paper ran phase I of Help Cure Muscular Dystrophy on World Community
//! Grid, a volunteer desktop grid operated with the Univa UD Grid MP and
//! BOINC middlewares. The physical grid — 836 000 registered devices owned
//! by 344 000 volunteers — is obviously not available, so this crate is a
//! faithful simulator of its *mechanisms*, the ones §3, §5 and §6 of the
//! paper identify as responsible for the observed behaviour:
//!
//! * volunteer hosts with heterogeneous speeds, stochastic availability,
//!   the UD agent's 60 % CPU throttle, lowest-priority contention with the
//!   owner's own work, and checkpoint-replay on interruption ([`host`]);
//! * membership growth with weekday/weekend and holiday seasonality
//!   ([`membership`]);
//! * a BOINC-style task server: workunit queue in launch order, replica
//!   issuing, deadlines and reissue, redundant computing with quorum
//!   validation, and the mid-campaign switch to bounds-check validation —
//!   implemented once as the transport-free [`sched::SchedulerCore`] and
//!   shared with the live wire-level grid (`hcmd-netgrid`); [`server`]
//!   is the simulator's frontend onto it;
//! * the multi-project priority phases of the HCMD campaign — control,
//!   prioritization, full power ([`project`]);
//! * per-day CPU accounting, per-week result counting, per-receptor
//!   progression — everything Figures 6–8 plot ([`trace`]);
//! * a dedicated grid (Grid'5000-style) baseline for Table 2
//!   ([`dedicated`]);
//! * the discrete-event engine itself ([`event`]) — a hierarchical
//!   timing wheel ([`wheel`]) with the original binary heap kept as an
//!   A/B baseline — and deterministic splittable RNG streams ([`rng`]).
//!
//! The top-level entry point is [`volunteer::VolunteerGridSim`]:
//!
//! ```
//! use gridsim::{VolunteerGridConfig, VolunteerGridSim};
//! use maxdo::{CostModel, LibraryConfig, ProteinLibrary};
//! use timemodel::CostMatrix;
//! use workunit::CampaignPackage;
//!
//! // A miniature campaign: 2 proteins on the simulated volunteer grid.
//! let lib = ProteinLibrary::generate(LibraryConfig::tiny(2), 7);
//! let matrix = CostMatrix::from_cost_model(&lib, &CostModel::with_kappa(0.2));
//! let pkg = CampaignPackage::new(&lib, &matrix, 4.0 * 3600.0);
//! let trace = VolunteerGridSim::new(&pkg, VolunteerGridConfig::hcmd_phase1(1, 42)).run();
//! assert!(trace.results_received >= trace.results_useful);
//! ```

pub mod credit;
pub mod dedicated;
pub mod event;
pub mod fluid;
pub mod host;
pub mod membership;
pub mod project;
pub mod rng;
pub mod sched;
pub mod server;
pub mod sessions;
pub mod trace;
pub mod volunteer;
pub mod wheel;

pub use credit::CreditLedger;
pub use dedicated::{DedicatedGrid, HeterogeneousGrid};
pub use event::{EventQueue, HeapQueue, Scheduler, SimTime};
pub use fluid::{FluidModel, FluidTrace};
pub use host::{AccountingMode, Host, HostId, HostParams, WorkunitExecution};
pub use membership::{MembershipModel, SeasonalityModel};
pub use project::{ProjectPhases, SharePhase};
pub use sched::{CampaignShare, FairShare, ReceptorProgress, SchedulerCore, WuStateCounts};
pub use server::{FeederConfig, ServerConfig, ServerStats, TaskServer, ValidationPolicy};
pub use trace::CampaignTrace;
pub use volunteer::{SimEvent, VolunteerGridConfig, VolunteerGridSim};

//! Multi-project scheduling phases.
//!
//! World Community Grid hosts several projects at once; the share of the
//! grid a project receives is an operator decision. §5.1 distinguishes
//! three periods for HCMD:
//!
//! 1. **control period** — the first two months, "just a few processors",
//!    very low priority, used to detect failures on quick results;
//! 2. **project prioritization** — during February the share ramped up; at
//!    the end of February "45 % of World Community Grid's devices
//!    participated to the HCMD project";
//! 3. **full power working phase** — four months at a constant ~45 % share
//!    (the processor count still grows because the grid itself grows).

use serde::Serialize;

/// One piecewise-linear segment of the project-share curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct SharePhase {
    /// First campaign day of the phase (0-based).
    pub start_day: usize,
    /// Share at the start of the phase, in `[0, 1]`.
    pub share_start: f64,
    /// Share at the end of the phase (linear interpolation in between).
    pub share_end: f64,
    /// Length in days.
    pub days: usize,
    /// Human-readable name.
    pub name: &'static str,
}

/// The share-of-grid curve of one project over a campaign.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ProjectPhases {
    phases: Vec<SharePhase>,
}

impl ProjectPhases {
    /// Builds a curve from contiguous phases.
    ///
    /// # Panics
    /// Panics if phases are not contiguous from day 0 or shares leave
    /// `[0, 1]`.
    pub fn new(phases: Vec<SharePhase>) -> Self {
        assert!(!phases.is_empty(), "need at least one phase");
        let mut expected_start = 0;
        for p in &phases {
            assert_eq!(p.start_day, expected_start, "phases must be contiguous");
            assert!(p.days > 0, "phase must last at least a day");
            assert!(
                (0.0..=1.0).contains(&p.share_start) && (0.0..=1.0).contains(&p.share_end),
                "share out of [0,1]"
            );
            expected_start += p.days;
        }
        Self { phases }
    }

    /// The §5.1 HCMD phase-I curve: 9 weeks of control at a low share, a
    /// 2-week prioritization ramp to 45 %, then full power at 45 % for the
    /// rest of the campaign.
    pub fn hcmd_phase1() -> Self {
        Self::new(vec![
            SharePhase {
                start_day: 0,
                share_start: 0.08,
                share_end: 0.08,
                days: 62,
                name: "control period",
            },
            SharePhase {
                start_day: 62,
                share_start: 0.08,
                share_end: 0.45,
                days: 14,
                name: "project prioritization",
            },
            SharePhase {
                start_day: 76,
                share_start: 0.45,
                share_end: 0.45,
                days: 182 - 76,
                name: "full power working phase",
            },
        ])
    }

    /// The project's share of the grid on a campaign day. Days past the
    /// last phase keep its final share.
    pub fn share(&self, campaign_day: usize) -> f64 {
        let last = self.phases.last().expect("non-empty");
        if campaign_day >= last.start_day + last.days {
            return last.share_end;
        }
        for p in &self.phases {
            if campaign_day < p.start_day + p.days {
                let frac = (campaign_day - p.start_day) as f64 / p.days as f64;
                return p.share_start + (p.share_end - p.share_start) * frac;
            }
        }
        unreachable!("contiguous phases cover every day")
    }

    /// Name of the phase active on a campaign day.
    pub fn phase_name(&self, campaign_day: usize) -> &'static str {
        let last = self.phases.last().expect("non-empty");
        if campaign_day >= last.start_day + last.days {
            return last.name;
        }
        for p in &self.phases {
            if campaign_day < p.start_day + p.days {
                return p.name;
            }
        }
        unreachable!()
    }

    /// The day range of the phase with the given name, `[start, end)`.
    pub fn phase_range(&self, name: &str) -> Option<(usize, usize)> {
        self.phases
            .iter()
            .find(|p| p.name == name)
            .map(|p| (p.start_day, p.start_day + p.days))
    }

    /// Total days covered by the declared phases.
    pub fn declared_days(&self) -> usize {
        self.phases.iter().map(|p| p.days).sum()
    }

    /// The phases.
    pub fn phases(&self) -> &[SharePhase] {
        &self.phases
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hcmd_curve_matches_the_papers_narrative() {
        let p = ProjectPhases::hcmd_phase1();
        // Control: low share for two months.
        assert!(p.share(0) < 0.10);
        assert!(p.share(40) < 0.10);
        assert_eq!(p.phase_name(40), "control period");
        // Ramp through February.
        assert_eq!(p.phase_name(70), "project prioritization");
        assert!(p.share(70) > p.share(60));
        // Full power at 45 %.
        assert!((p.share(100) - 0.45).abs() < 1e-9);
        assert_eq!(p.phase_name(150), "full power working phase");
        assert_eq!(p.declared_days(), 182);
    }

    #[test]
    fn share_is_monotone_through_the_ramp() {
        let p = ProjectPhases::hcmd_phase1();
        for d in 62..76 {
            assert!(p.share(d + 1) >= p.share(d));
        }
    }

    #[test]
    fn days_past_the_end_keep_the_final_share() {
        let p = ProjectPhases::hcmd_phase1();
        assert!((p.share(5000) - 0.45).abs() < 1e-9);
        assert_eq!(p.phase_name(5000), "full power working phase");
    }

    #[test]
    fn phase_range_lookup() {
        let p = ProjectPhases::hcmd_phase1();
        assert_eq!(p.phase_range("control period"), Some((0, 62)));
        assert_eq!(p.phase_range("full power working phase"), Some((76, 182)));
        assert_eq!(p.phase_range("nonexistent"), None);
    }

    #[test]
    #[should_panic(expected = "contiguous")]
    fn gap_between_phases_rejected() {
        ProjectPhases::new(vec![
            SharePhase {
                start_day: 0,
                share_start: 0.1,
                share_end: 0.1,
                days: 10,
                name: "a",
            },
            SharePhase {
                start_day: 11,
                share_start: 0.1,
                share_end: 0.1,
                days: 10,
                name: "b",
            },
        ]);
    }

    #[test]
    #[should_panic(expected = "share out of")]
    fn share_above_one_rejected() {
        ProjectPhases::new(vec![SharePhase {
            start_day: 0,
            share_start: 1.5,
            share_end: 0.5,
            days: 10,
            name: "bad",
        }]);
    }
}

//! World Community Grid membership: growth and seasonality.
//!
//! Figure 1 of the paper plots the number of *virtual full-time processors*
//! of the whole grid since its launch (November 16, 2004), and observes:
//! "the number of virtual full-time processors globally increases. The
//! curve is not regular, during the week-end there are less processors
//! than during the week. There are some periods where the number of
//! processors went down; Christmas holiday of 2005 and 2006 and summer
//! time of 2006."
//!
//! [`MembershipModel`] is that curve: a smooth growth baseline (volunteers
//! keep joining; new devices are faster) modulated by a weekly pattern and
//! by holiday dips. It drives both the Figure 1 reproduction and the host
//! population of the campaign simulator.

use serde::{Deserialize, Serialize};

/// Day index (from grid launch) of the HCMD phase-I launch,
/// December 19, 2006.
pub const HCMD_LAUNCH_DAY: usize = 763;

/// Duration of the HCMD phase-I campaign: 26 weeks (§1, §8).
pub const HCMD_CAMPAIGN_DAYS: usize = 26 * 7;

/// A calendar dip: `[start_day, end_day)` with a multiplicative factor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HolidayDip {
    /// First day of the dip (days since grid launch).
    pub start_day: usize,
    /// One past the last day of the dip.
    pub end_day: usize,
    /// Multiplicative participation factor during the dip (< 1).
    pub factor: f64,
}

/// Weekly and holiday modulation of grid participation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SeasonalityModel {
    /// Participation factor on Saturdays and Sundays.
    pub weekend_factor: f64,
    /// Day-of-week of day 0. November 16, 2004 was a Tuesday (= 1 with
    /// Monday = 0).
    pub day_zero_weekday: usize,
    /// Holiday dips.
    pub holidays: Vec<HolidayDip>,
}

impl SeasonalityModel {
    /// The WCG calendar as described under Figure 1: weekend dips plus
    /// Christmas 2004/2005/2006 and summer 2006.
    pub fn wcg() -> Self {
        // Day 0 = 2004-11-16. Christmas windows ≈ Dec 23 – Jan 2.
        Self {
            weekend_factor: 0.90,
            day_zero_weekday: 1, // Tuesday
            holidays: vec![
                HolidayDip {
                    start_day: 37,
                    end_day: 48,
                    factor: 0.85,
                }, // Christmas 2004
                HolidayDip {
                    start_day: 402,
                    end_day: 413,
                    factor: 0.80,
                }, // Christmas 2005
                HolidayDip {
                    start_day: 592,
                    end_day: 654,
                    factor: 0.90,
                }, // summer 2006
                HolidayDip {
                    start_day: 767,
                    end_day: 778,
                    factor: 0.80,
                }, // Christmas 2006
            ],
        }
    }

    /// No modulation at all (for dedicated grids and unit tests).
    pub fn flat() -> Self {
        Self {
            weekend_factor: 1.0,
            day_zero_weekday: 0,
            holidays: Vec::new(),
        }
    }

    /// The participation factor for a day index.
    pub fn factor(&self, day: usize) -> f64 {
        let weekday = (day + self.day_zero_weekday) % 7;
        let mut f = if weekday >= 5 {
            self.weekend_factor
        } else {
            1.0
        };
        for h in &self.holidays {
            if (h.start_day..h.end_day).contains(&day) {
                f *= h.factor;
            }
        }
        f
    }
}

/// Devices per registered member — §3.1 reports 344,000 members and
/// 836,000 declared devices ("You can subscribe several devices with the
/// same member profile"), i.e. ≈ 2.43 devices per member.
pub const DEVICES_PER_MEMBER: f64 = 836_000.0 / 344_000.0;

/// Fraction of declared devices actually active (registered ≠ computing:
/// the 836,000 declared devices correspond to far fewer active ones; this
/// factor converts between the §3.1 registration statistics and the
/// active population the VFTP curve implies).
pub const ACTIVE_DEVICE_FRACTION: f64 = 0.17;

/// The grid-wide participation model: baseline growth × seasonality.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MembershipModel {
    /// VFTP of the baseline at `reference_day`.
    pub reference_vftp: f64,
    /// Day at which the baseline reaches `reference_vftp`.
    pub reference_day: usize,
    /// Growth exponent: baseline ∝ `(day / reference_day)^exponent`.
    pub growth_exponent: f64,
    /// Seasonal modulation.
    pub seasonality: SeasonalityModel,
    /// Mean accounted fraction of a host's day, used to convert VFTP to a
    /// device count: a host with availability `a` accounts ≈ `a` days of
    /// run time per day, discounted a further ~10 % for work-fetch
    /// idleness, churn and abandoned workunits.
    pub mean_accounted_fraction: f64,
}

impl MembershipModel {
    /// The WCG curve calibrated to the paper's anchors: ≈ 54,947 VFTP on
    /// average over the HCMD campaign window and ≈ 74,825 VFTP in the week
    /// the paper was written (≈ day 1090).
    pub fn wcg() -> Self {
        Self {
            reference_vftp: 74_825.0,
            reference_day: 1090,
            growth_exponent: 1.24,
            seasonality: SeasonalityModel::wcg(),
            mean_accounted_fraction: 0.50,
        }
    }

    /// Baseline (deseasonalised) VFTP at a day index.
    pub fn base_vftp(&self, day: usize) -> f64 {
        if day == 0 {
            return 0.0;
        }
        self.reference_vftp * (day as f64 / self.reference_day as f64).powf(self.growth_exponent)
    }

    /// Seasonalised VFTP at a day index — one point of Figure 1.
    pub fn vftp(&self, day: usize) -> f64 {
        self.base_vftp(day) * self.seasonality.factor(day)
    }

    /// The Figure 1 series: VFTP for each day in `[0, days)`.
    pub fn vftp_series(&self, days: usize) -> Vec<f64> {
        (0..days).map(|d| self.vftp(d)).collect()
    }

    /// CPU time generated by the whole grid on one day, in CPU *years per
    /// day* (the unit the WCG statistics page publishes).
    pub fn cpu_years_per_day(&self, day: usize) -> f64 {
        self.vftp(day) * 86_400.0 / metrics::SECONDS_PER_YEAR
    }

    /// Number of active devices implied by the VFTP level.
    pub fn device_count(&self, day: usize) -> usize {
        (self.vftp(day) / self.mean_accounted_fraction).round() as usize
    }

    /// Registered members implied by the active device count — inverts
    /// the §3.1 registration statistics (declared devices per member and
    /// the active fraction of declared devices).
    pub fn member_count(&self, day: usize) -> usize {
        (self.device_count(day) as f64 / ACTIVE_DEVICE_FRACTION / DEVICES_PER_MEMBER).round()
            as usize
    }

    /// Mean VFTP over a day window.
    pub fn mean_vftp(&self, from_day: usize, to_day: usize) -> f64 {
        assert!(to_day > from_day, "empty window");
        (from_day..to_day).map(|d| self.vftp(d)).sum::<f64>() / (to_day - from_day) as f64
    }
}

/// Cached telemetry handles for host churn — the population dynamics the
/// membership model prescribes and the simulator enacts (joins, quota or
/// end-of-life retirements, mid-workunit abandonments). Zero-sized when
/// telemetry is disabled.
#[derive(Debug)]
pub struct ChurnCounters {
    /// Hosts that joined the grid.
    pub spawned: &'static telemetry::Counter,
    /// Hosts retired by population quota or end of life.
    pub retired: &'static telemetry::Counter,
    /// Hosts that walked away mid-workunit (deadline will reissue).
    pub abandoned: &'static telemetry::Counter,
}

impl ChurnCounters {
    /// Resolves the churn counters once (cache in the simulator).
    pub fn new() -> Self {
        Self {
            spawned: telemetry::counter("sim.hosts.spawned"),
            retired: telemetry::counter("sim.hosts.retired"),
            abandoned: telemetry::counter("sim.hosts.abandoned"),
        }
    }
}

impl Default for ChurnCounters {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn growth_is_monotone_on_the_baseline() {
        let m = MembershipModel::wcg();
        let mut prev = -1.0;
        for day in (0..1100).step_by(50) {
            let v = m.base_vftp(day);
            assert!(v > prev);
            prev = v;
        }
    }

    #[test]
    fn reference_anchor_holds() {
        let m = MembershipModel::wcg();
        assert!((m.base_vftp(1090) - 74_825.0).abs() < 1.0);
    }

    #[test]
    fn campaign_window_average_matches_the_paper() {
        // §5.1: "The average number of processors available is 54,947."
        let m = MembershipModel::wcg();
        let avg = m.mean_vftp(HCMD_LAUNCH_DAY, HCMD_LAUNCH_DAY + HCMD_CAMPAIGN_DAYS);
        assert!(
            (avg - 54_947.0).abs() / 54_947.0 < 0.06,
            "campaign-window mean VFTP {avg}"
        );
    }

    #[test]
    fn weekends_dip() {
        let s = SeasonalityModel::wcg();
        // Day 0 is Tuesday; days 4 and 5 are Saturday and Sunday.
        assert_eq!(s.factor(3), 1.0); // Friday
        assert!(s.factor(4) < 1.0); // Saturday
        assert!(s.factor(5) < 1.0); // Sunday
        assert_eq!(s.factor(6), 1.0); // Monday
    }

    #[test]
    fn christmas_2005_dips_below_neighbouring_weeks() {
        let m = MembershipModel::wcg();
        let christmas = m.mean_vftp(402, 413);
        let before = m.mean_vftp(380, 391);
        let after = m.mean_vftp(420, 431);
        assert!(christmas < before, "{christmas} !< {before}");
        assert!(christmas < after, "{christmas} !< {after}");
    }

    #[test]
    fn summer_2006_dips() {
        let s = SeasonalityModel::wcg();
        assert!(s.factor(600) < 1.0);
    }

    #[test]
    fn flat_seasonality_is_identity() {
        let s = SeasonalityModel::flat();
        for d in 0..30 {
            assert_eq!(s.factor(d), 1.0);
        }
    }

    #[test]
    fn device_count_exceeds_vftp() {
        // Devices are not full-time, so there are more devices than VFTP.
        let m = MembershipModel::wcg();
        assert!(m.device_count(800) as f64 > m.vftp(800));
    }

    #[test]
    fn cpu_years_per_day_inverts_vftp() {
        let m = MembershipModel::wcg();
        let day = 900;
        let years = m.cpu_years_per_day(day);
        let v = metrics::vftp::vftp_from_cpu_years_per_day(years);
        assert!((v - m.vftp(day)).abs() < 1e-6);
    }

    #[test]
    fn series_has_requested_length() {
        let m = MembershipModel::wcg();
        assert_eq!(m.vftp_series(100).len(), 100);
        assert_eq!(m.vftp_series(0).len(), 0);
    }

    #[test]
    #[should_panic(expected = "empty window")]
    fn empty_mean_window_rejected() {
        MembershipModel::wcg().mean_vftp(5, 5);
    }

    #[test]
    fn member_count_matches_the_papers_registration_statistics() {
        // §3.1 (late 2007, ~day 1090): "more than 344,000 subscribed
        // members and more than 836,000 declared devices"; §7 equates
        // ~325,000 members with ~60,000 VFTP. Our inversion must land on
        // that scale.
        let m = MembershipModel::wcg();
        let members = m.member_count(1090);
        assert!(
            (250_000..450_000).contains(&members),
            "members at day 1090: {members}"
        );
        // Devices-per-member constant matches §3.1's ratio.
        assert!((DEVICES_PER_MEMBER - 2.43).abs() < 0.01);
    }

    #[test]
    fn members_grow_with_the_grid() {
        let m = MembershipModel::wcg();
        assert!(m.member_count(400) < m.member_count(800));
        assert!(m.member_count(800) < m.member_count(1090));
    }
}

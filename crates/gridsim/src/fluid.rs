//! A mean-field ("fluid") model of the campaign.
//!
//! The discrete-event simulator tracks every replica; this module solves
//! the same campaign as a deterministic flow: each day the project's host
//! population delivers its *expected* reference-work throughput, which
//! drains the launch-ordered per-receptor workload. It costs microseconds
//! instead of seconds, has no variance, and serves two purposes:
//!
//! * a cross-check — the DES and the fluid model must agree on completion
//!   time and consumed CPU to within the stochastic noise (tested in
//!   `tests/campaign_e2e.rs` and here);
//! * full-scale what-if sweeps (phase II sizing, share planning) where
//!   running the DES for every point would be wasteful.

use crate::host::{AccountingMode, HostParams};
use crate::membership::MembershipModel;
use crate::project::ProjectPhases;
use metrics::DailySeries;
use serde::Serialize;

/// Expected host-level rates implied by a [`HostParams`] population.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct PopulationRates {
    /// `E[speed]` relative to the reference processor.
    pub mean_speed: f64,
    /// `E[effective rate]` = `E[speed]` × throttle × (1 − `E[contention]`).
    pub mean_effective_rate: f64,
    /// `E[availability]`.
    pub mean_availability: f64,
    /// Accounted seconds per reference second of useful work.
    pub accounted_per_ref: f64,
}

impl PopulationRates {
    /// Derives the expected rates from population parameters.
    pub fn from_params(params: &HostParams, replay_overhead: f64) -> Self {
        assert!(
            replay_overhead >= 1.0,
            "replay overhead is a multiplier ≥ 1"
        );
        // Log-normal mean = median · e^{σ²/2}.
        let mean_speed =
            params.speed_median * (params.speed_sigma * params.speed_sigma / 2.0).exp();
        let mean_contention = (params.contention.0 + params.contention.1) / 2.0;
        let mean_availability = (params.availability.0 + params.availability.1) / 2.0;
        let mean_effective_rate = mean_speed * params.throttle * (1.0 - mean_contention);
        // E[1/rate] ≥ 1/E[rate] (Jensen); for the log-normal speed the
        // correction is e^{σ²}.
        let inv_rate = (params.speed_sigma * params.speed_sigma).exp() / mean_effective_rate;
        let accounted_per_ref = match params.accounting {
            AccountingMode::WallClock => replay_overhead * inv_rate,
            AccountingMode::CpuTime => {
                replay_overhead * (params.speed_sigma * params.speed_sigma).exp() / mean_speed
            }
        };
        Self {
            mean_speed,
            mean_effective_rate,
            mean_availability,
            accounted_per_ref,
        }
    }
}

/// The fluid campaign model.
#[derive(Debug, Clone)]
pub struct FluidModel {
    /// Host population.
    pub host_params: HostParams,
    /// Grid membership curve.
    pub membership: MembershipModel,
    /// Project share phases.
    pub phases: ProjectPhases,
    /// Campaign start in the membership timeline.
    pub membership_start_day: usize,
    /// Redundancy factor (results computed per useful result).
    pub redundancy_factor: f64,
    /// Checkpoint-replay overhead multiplier (≥ 1).
    pub replay_overhead: f64,
    /// Delivery efficiency in (0, 1]: the fraction of nominal host-time
    /// that reaches the workload. Covers what the mean-field view cannot
    /// see — work-fetch idleness, churn, abandoned replicas, and the
    /// straggler tail the DES resolves replica by replica.
    pub efficiency: f64,
    /// Hard stop, days.
    pub max_days: usize,
}

/// Output of a fluid run.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct FluidTrace {
    /// Useful reference work completed per day, seconds.
    pub done_ref_daily: DailySeries,
    /// Accounted CPU seconds per day (what run-time statistics see).
    pub accounted_daily: DailySeries,
    /// Day the workload drained, if within the horizon.
    pub completion_day: Option<usize>,
    /// Reference total of the workload, seconds.
    pub reference_total_seconds: f64,
}

impl FluidModel {
    /// The HCMD phase-I configuration (full scale).
    pub fn hcmd_phase1() -> Self {
        Self {
            host_params: HostParams::wcg_2007(),
            membership: MembershipModel::wcg(),
            phases: ProjectPhases::hcmd_phase1(),
            membership_start_day: crate::membership::HCMD_LAUNCH_DAY,
            redundancy_factor: 1.37,
            replay_overhead: 1.05,
            efficiency: 0.83,
            max_days: 3 * 365,
        }
    }

    /// Reference-work throughput of the project on a campaign day,
    /// seconds of useful reference work per day.
    pub fn daily_throughput(&self, day: usize) -> f64 {
        let rates = PopulationRates::from_params(&self.host_params, self.replay_overhead);
        let devices = self
            .membership
            .device_count(self.membership_start_day + day) as f64;
        let hosts = devices * self.phases.share(day);
        // Each host computes `availability` of the day at its effective
        // rate; redundancy and replay divide the useful output.
        hosts * rates.mean_availability * rates.mean_effective_rate * 86_400.0 * self.efficiency
            / (self.redundancy_factor * self.replay_overhead)
    }

    /// Drains `reference_total_seconds` of workload through the daily
    /// throughput curve.
    pub fn run(&self, reference_total_seconds: f64) -> FluidTrace {
        assert!(reference_total_seconds > 0.0, "workload must be positive");
        let rates = PopulationRates::from_params(&self.host_params, self.replay_overhead);
        let mut done_ref_daily = DailySeries::new();
        let mut accounted_daily = DailySeries::new();
        let mut remaining = reference_total_seconds;
        let mut completion_day = None;
        for day in 0..self.max_days {
            let throughput = self.daily_throughput(day);
            let done = throughput.min(remaining);
            remaining -= done;
            done_ref_daily.add(day, done);
            // Accounted run time covers the redundant copies too.
            accounted_daily.add(day, done * self.redundancy_factor * rates.accounted_per_ref);
            if remaining <= 0.0 {
                completion_day = Some(day);
                break;
            }
        }
        FluidTrace {
            done_ref_daily,
            accounted_daily,
            completion_day,
            reference_total_seconds,
        }
    }
}

impl FluidTrace {
    /// Total accounted CPU seconds.
    pub fn consumed_cpu_seconds(&self) -> f64 {
        self.accounted_daily.total()
    }

    /// Mean project VFTP over the campaign.
    pub fn mean_project_vftp(&self) -> f64 {
        let days = self
            .completion_day
            .map(|d| d + 1)
            .unwrap_or_else(|| self.accounted_daily.len());
        if days == 0 {
            return 0.0;
        }
        self.accounted_daily.total() / (days as f64 * 86_400.0)
    }

    /// The emergent raw speed-down (consumed / reference).
    pub fn raw_speed_down(&self) -> f64 {
        self.consumed_cpu_seconds() / self.reference_total_seconds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The phase-I reference workload in seconds (paper formula (1) value,
    /// close to our catalog's 1,508 years).
    const PHASE1_REF: f64 = 1508.0 * 365.0 * 86_400.0;

    #[test]
    fn fluid_phase1_reproduces_the_campaign_scale() {
        let model = FluidModel::hcmd_phase1();
        let trace = model.run(PHASE1_REF);
        let day = trace.completion_day.expect("drains");
        assert!(
            (150..=230).contains(&day),
            "fluid completion day {day} (paper 182)"
        );
        // Raw speed-down near the paper's 5.43.
        let sd = trace.raw_speed_down();
        assert!((sd - 5.43).abs() < 1.0, "fluid raw speed-down {sd}");
        // Mean project VFTP near 16,450.
        let vftp = trace.mean_project_vftp();
        assert!(
            (vftp - 16_450.0).abs() / 16_450.0 < 0.25,
            "fluid mean VFTP {vftp}"
        );
    }

    #[test]
    fn fluid_agrees_with_the_discrete_event_simulator() {
        // Cross-check at 1/50 scale: the two independent models of the
        // same campaign must agree on completion and consumption.
        let scale = 50u32;
        let full = maxdo::ProteinLibrary::phase1_catalog();
        let matrix = timemodel::CostMatrix::phase1(&full);
        let lib = full.with_scaled_nsep(scale);
        let pkg = workunit::CampaignPackage::new(&lib, &matrix, workunit::PRODUCTION_WU_SECONDS);
        let des = crate::VolunteerGridSim::new(
            &pkg,
            crate::VolunteerGridConfig::hcmd_phase1(scale, 2007),
        )
        .run();

        let mut model = FluidModel::hcmd_phase1();
        model.redundancy_factor = des.redundancy_factor();
        // The fluid model has no scale: feed it the scaled workload and
        // divide its throughput by the scale via the membership share...
        // simpler: compare at full-scale units.
        let fluid = model.run(des.reference_total_seconds * scale as f64);

        let des_day = des.completion_day.expect("DES completes") as f64;
        let fluid_day = fluid.completion_day.expect("fluid completes") as f64;
        assert!(
            (des_day - fluid_day).abs() / des_day < 0.20,
            "completion disagreement: DES {des_day} vs fluid {fluid_day}"
        );
        let des_consumed = des.consumed_cpu_seconds() * scale as f64;
        let fluid_consumed = fluid.consumed_cpu_seconds();
        assert!(
            (des_consumed - fluid_consumed).abs() / des_consumed < 0.20,
            "consumption disagreement: DES {des_consumed} vs fluid {fluid_consumed}"
        );
    }

    #[test]
    fn throughput_follows_the_share_curve() {
        let model = FluidModel::hcmd_phase1();
        // Control period ≪ full power.
        assert!(model.daily_throughput(30) < model.daily_throughput(120) / 3.0);
    }

    #[test]
    fn rates_compose_sanely() {
        let r = PopulationRates::from_params(&HostParams::wcg_2007(), 1.05);
        assert!(r.mean_speed > 0.6 && r.mean_speed < 0.7);
        assert!(r.mean_effective_rate < r.mean_speed);
        assert!((0.6..0.65).contains(&r.mean_availability));
        // Accounted per reference second ≈ the net speed-down ~3.9.
        assert!(
            (r.accounted_per_ref - 3.9).abs() < 0.8,
            "{}",
            r.accounted_per_ref
        );
    }

    #[test]
    fn boinc_accounting_bills_less() {
        let ud = PopulationRates::from_params(&HostParams::wcg_2007(), 1.05);
        let boinc = PopulationRates::from_params(&HostParams::wcg_boinc(), 1.05);
        assert!(boinc.accounted_per_ref < ud.accounted_per_ref / 1.5);
    }

    #[test]
    #[should_panic(expected = "workload must be positive")]
    fn zero_workload_rejected() {
        FluidModel::hcmd_phase1().run(0.0);
    }
}

//! Campaign accounting: everything Figures 6–8 and §6 report.
//!
//! The simulator writes into a [`CampaignTrace`] as events unfold; the
//! bench harness then derives the paper's artifacts from it:
//!
//! * Figure 6(a) — the daily *accounted* CPU time of the project and of
//!   the whole grid, converted to virtual full-time processors;
//! * Figure 6(b) — results received per week, split useful/redundant;
//! * Figure 7 — per-receptor progression snapshots;
//! * Figure 8 — the distribution of realized (accounted) workunit run
//!   times;
//! * §6 — consumed CPU time, redundancy factor, speed-down.

use metrics::{DailySeries, ProgressionSnapshot, SpeedDown};
use serde::{Deserialize, Serialize};

/// A per-receptor work snapshot captured at a campaign day.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkSnapshot {
    /// Campaign day the snapshot was taken.
    pub day: usize,
    /// Completed reference CPU seconds per receptor (launch order).
    pub done: Vec<f64>,
    /// Completed workunits per receptor (exact completeness test).
    pub wus_done: Vec<u32>,
}

/// The full accounting record of one simulated campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignTrace {
    /// Scale divisor the simulation ran at (1 = full scale). Extensive
    /// quantities (CPU time, results, hosts) are 1/divisor of full scale.
    pub scale_divisor: u32,
    /// Accounted CPU seconds of the project, per campaign day.
    pub project_cpu_daily: DailySeries,
    /// Accounted CPU seconds of the whole grid, per campaign day
    /// (project + the analytically-modelled other projects).
    pub grid_cpu_daily: DailySeries,
    /// Results received per day (all, incl. redundant and erroneous).
    pub results_daily: DailySeries,
    /// Useful results per day.
    pub useful_results_daily: DailySeries,
    /// Accounted run time of every reported result, seconds (Figure 8).
    pub realized_runtimes: Vec<f32>,
    /// Points-based credit ledger (§8 proposal).
    pub credit: crate::credit::CreditLedger,
    /// Total reference CPU seconds per receptor, launch order.
    pub receptor_total: Vec<f64>,
    /// Total workunits per receptor, launch order.
    pub receptor_wu_total: Vec<u32>,
    /// Per-receptor progression snapshots at the configured days.
    pub snapshots: Vec<WorkSnapshot>,
    /// Day the last workunit validated, if the campaign finished.
    pub completion_day: Option<usize>,
    /// Total results received.
    pub results_received: u64,
    /// Useful results.
    pub results_useful: u64,
    /// Server-side issue/reissue cause accounting.
    pub server_stats: crate::server::ServerStats,
    /// Formula-(1) reference total of the simulated (scaled) workload,
    /// seconds.
    pub reference_total_seconds: f64,
    /// Discrete events the engine processed over the whole run.
    pub events_processed: u64,
    /// High-water mark of the event queue.
    pub peak_queue_depth: u64,
}

impl CampaignTrace {
    /// Total accounted CPU seconds consumed by the project.
    pub fn consumed_cpu_seconds(&self) -> f64 {
        self.project_cpu_daily.total()
    }

    /// The §6 speed-down record of this campaign.
    pub fn speed_down(&self) -> SpeedDown {
        SpeedDown {
            reference_cpu_seconds: self.reference_total_seconds,
            consumed_cpu_seconds: self.consumed_cpu_seconds(),
            redundancy_factor: self.redundancy_factor(),
        }
    }

    /// Results received / useful results.
    pub fn redundancy_factor(&self) -> f64 {
        if self.results_useful == 0 {
            1.0
        } else {
            self.results_received as f64 / self.results_useful as f64
        }
    }

    /// Fraction of received results that were useful (the paper's "only
    /// 73 % are useful results").
    pub fn useful_fraction(&self) -> f64 {
        if self.results_received == 0 {
            0.0
        } else {
            self.results_useful as f64 / self.results_received as f64
        }
    }

    /// Project VFTP per day (Figure 6a), *at full scale* (multiplied back
    /// by the scale divisor).
    pub fn project_vftp_daily(&self) -> Vec<f64> {
        self.project_cpu_daily
            .values()
            .iter()
            .map(|&c| c * self.scale_divisor as f64 / 86_400.0)
            .collect()
    }

    /// Grid VFTP per day (the upper curve of Figure 6a), full scale.
    pub fn grid_vftp_daily(&self) -> Vec<f64> {
        self.grid_cpu_daily
            .values()
            .iter()
            .map(|&c| c * self.scale_divisor as f64 / 86_400.0)
            .collect()
    }

    /// Mean project VFTP over a day range, full scale.
    pub fn mean_project_vftp(&self, from_day: usize, to_day: usize) -> f64 {
        if to_day <= from_day {
            return 0.0;
        }
        self.project_cpu_daily.range_total(from_day, to_day) * self.scale_divisor as f64
            / ((to_day - from_day) as f64 * 86_400.0)
    }

    /// Results received per week (Figure 6b), full scale.
    pub fn results_weekly(&self) -> Vec<f64> {
        self.results_daily
            .weekly()
            .iter()
            .map(|&r| r * self.scale_divisor as f64)
            .collect()
    }

    /// Useful results per week, full scale.
    pub fn useful_results_weekly(&self) -> Vec<f64> {
        self.useful_results_daily
            .weekly()
            .iter()
            .map(|&r| r * self.scale_divisor as f64)
            .collect()
    }

    /// Converts a [`WorkSnapshot`] to the Figure 7 progression view.
    ///
    /// Completeness is decided on exact workunit counts (float accumulation
    /// of per-workunit estimates can undershoot the receptor total by
    /// rounding dust, which must not mark a finished protein incomplete).
    pub fn progression(&self, snapshot: &WorkSnapshot) -> ProgressionSnapshot {
        ProgressionSnapshot::new(
            format!("day {}", snapshot.day),
            snapshot
                .done
                .iter()
                .zip(&self.receptor_total)
                .enumerate()
                .map(|(i, (&done, &total))| {
                    let complete = snapshot.wus_done.get(i).copied().unwrap_or(0)
                        >= self.receptor_wu_total.get(i).copied().unwrap_or(u32::MAX);
                    metrics::progression::ProteinProgress {
                        protein: i,
                        total_work: total,
                        done_work: if complete { total } else { done.min(total) },
                    }
                })
                .collect(),
        )
    }

    /// Points-based project VFTP over a day window (§8's middleware-
    /// independent estimator), full scale.
    pub fn points_vftp(&self, from_day: usize, to_day: usize) -> f64 {
        self.credit.vftp(from_day, to_day) * self.scale_divisor as f64
    }

    /// Mean realized (accounted) workunit run time, seconds (Figure 8's
    /// "around 13 hours" aggregate).
    pub fn mean_realized_runtime(&self) -> f64 {
        if self.realized_runtimes.is_empty() {
            return 0.0;
        }
        self.realized_runtimes
            .iter()
            .map(|&x| x as f64)
            .sum::<f64>()
            / self.realized_runtimes.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> CampaignTrace {
        let mut project = DailySeries::new();
        project.add(0, 86_400.0 * 2.0); // 2 VFTP on day 0 (scaled)
        project.add(1, 86_400.0 * 4.0);
        let mut grid = DailySeries::new();
        grid.add(0, 86_400.0 * 10.0);
        grid.add(1, 86_400.0 * 10.0);
        let mut results = DailySeries::new();
        results.add(0, 10.0);
        results.add(8, 4.0);
        let mut useful = DailySeries::new();
        useful.add(0, 8.0);
        useful.add(8, 2.0);
        CampaignTrace {
            scale_divisor: 10,
            project_cpu_daily: project,
            grid_cpu_daily: grid,
            results_daily: results,
            useful_results_daily: useful,
            realized_runtimes: vec![100.0, 300.0],
            credit: crate::credit::CreditLedger::new(),
            receptor_total: vec![10.0, 30.0],
            receptor_wu_total: vec![1, 2],
            snapshots: vec![WorkSnapshot {
                day: 1,
                done: vec![10.0, 15.0],
                wus_done: vec![1, 1],
            }],
            completion_day: Some(2),
            results_received: 14,
            results_useful: 10,
            server_stats: crate::server::ServerStats::default(),
            reference_total_seconds: 86_400.0,
            events_processed: 24,
            peak_queue_depth: 6,
        }
    }

    #[test]
    fn vftp_series_scale_back_to_full_scale() {
        let t = sample_trace();
        assert_eq!(t.project_vftp_daily(), vec![20.0, 40.0]);
        assert_eq!(t.grid_vftp_daily(), vec![100.0, 100.0]);
    }

    #[test]
    fn mean_project_vftp_over_window() {
        let t = sample_trace();
        assert!((t.mean_project_vftp(0, 2) - 30.0).abs() < 1e-9);
        assert_eq!(t.mean_project_vftp(2, 2), 0.0);
    }

    #[test]
    fn redundancy_and_useful_fraction() {
        let t = sample_trace();
        assert!((t.redundancy_factor() - 1.4).abs() < 1e-12);
        assert!((t.useful_fraction() - 10.0 / 14.0).abs() < 1e-12);
    }

    #[test]
    fn weekly_results_aggregate_and_scale() {
        let t = sample_trace();
        assert_eq!(t.results_weekly(), vec![100.0, 40.0]);
        assert_eq!(t.useful_results_weekly(), vec![80.0, 20.0]);
    }

    #[test]
    fn speed_down_record_uses_trace_totals() {
        let t = sample_trace();
        let s = t.speed_down();
        assert_eq!(s.reference_cpu_seconds, 86_400.0);
        assert_eq!(s.consumed_cpu_seconds, 86_400.0 * 6.0);
        assert!((s.raw_factor() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn progression_snapshot_converts() {
        let t = sample_trace();
        let p = t.progression(&t.snapshots[0]);
        assert_eq!(p.proteins.len(), 2);
        assert!(p.proteins[0].is_complete());
        assert!(!p.proteins[1].is_complete());
        assert!((p.fraction_work_complete() - 25.0 / 40.0).abs() < 1e-12);
    }

    #[test]
    fn mean_realized_runtime() {
        let t = sample_trace();
        assert!((t.mean_realized_runtime() - 200.0).abs() < 1e-9);
    }

    #[test]
    fn trace_round_trips_through_json_text() {
        let t = sample_trace();
        let json = serde_json::to_string(&t).unwrap();
        let back: CampaignTrace = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn snapshot_round_trips_through_value_tree() {
        use serde::{Deserialize, Serialize};
        let s = sample_trace().snapshots[0].clone();
        let back = WorkSnapshot::from_value(&s.to_value()).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn empty_edge_cases() {
        let mut t = sample_trace();
        t.realized_runtimes.clear();
        t.results_received = 0;
        t.results_useful = 0;
        assert_eq!(t.mean_realized_runtime(), 0.0);
        assert_eq!(t.redundancy_factor(), 1.0);
        assert_eq!(t.useful_fraction(), 0.0);
    }
}

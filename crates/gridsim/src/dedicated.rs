//! The dedicated-grid baseline (Grid'5000 style).
//!
//! §6 and Table 2 compare World Community Grid against "a dedicated grid
//! such as Grid'5000": homogeneous, always-on reference processors
//! (Opteron 2 GHz), optimally used. A dedicated grid has no throttle, no
//! contention, no churn and no redundancy, so a workload of `W` reference
//! CPU seconds on `P` processors completes in roughly `W / P` — bounded
//! below by the longest single workunit (footnote 2 of the paper: "this
//! comparison has to be taken carefully, since it supposed that the
//! dedicated grid is optimally used").

use metrics::Ydhms;
use serde::{Deserialize, Serialize};
use timemodel::calibration::lpt_makespan;
use workunit::CampaignPackage;

/// A dedicated grid of identical reference processors.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DedicatedGrid {
    /// Number of processors.
    pub processors: usize,
}

/// Outcome of running a campaign on the dedicated grid.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DedicatedRun {
    /// Processors used.
    pub processors: usize,
    /// Total CPU time (equals the reference workload exactly: no waste).
    pub total_cpu: Ydhms,
    /// Makespan under LPT scheduling, seconds.
    pub makespan_seconds: f64,
    /// Utilisation: total CPU / (processors × makespan).
    pub utilization: f64,
}

impl DedicatedGrid {
    /// Creates a grid of `processors` reference processors.
    pub fn new(processors: usize) -> Self {
        assert!(processors > 0, "need at least one processor");
        Self { processors }
    }

    /// Schedules a packaged campaign on the grid and reports makespan and
    /// utilisation.
    pub fn run_campaign(&self, pkg: &CampaignPackage<'_>) -> DedicatedRun {
        let mut jobs = Vec::new();
        pkg.for_each_workunit(|wu| jobs.push(wu.estimated_seconds(pkg.matrix())));
        let makespan_seconds = lpt_makespan(&jobs, self.processors);
        let total: f64 = jobs.iter().sum();
        DedicatedRun {
            processors: self.processors,
            total_cpu: Ydhms::from_seconds_f64(total),
            makespan_seconds,
            utilization: total / (self.processors as f64 * makespan_seconds),
        }
    }

    /// Number of dedicated processors needed to finish `total_ref_seconds`
    /// of work within `window_seconds` of wall clock (perfect parallelism
    /// — the paper's equivalence arithmetic of Table 2).
    pub fn processors_for_deadline(total_ref_seconds: f64, window_seconds: f64) -> f64 {
        assert!(window_seconds > 0.0, "window must be positive");
        total_ref_seconds / window_seconds
    }
}

/// A *heterogeneous* dedicated grid — the Décrypthon university grid the
/// paper acknowledges ("evaluations were performed on the Grid'5000 and
/// the Décrypthon university grid"): a federation of department clusters
/// with different processor generations, all dedicated and always on.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HeterogeneousGrid {
    /// Speed of each processor relative to the reference Opteron 2 GHz.
    pub speeds: Vec<f64>,
}

impl HeterogeneousGrid {
    /// Creates a grid from per-processor speeds.
    pub fn new(speeds: Vec<f64>) -> Self {
        assert!(!speeds.is_empty(), "need at least one processor");
        assert!(
            speeds.iter().all(|&s| s > 0.0 && s.is_finite()),
            "speeds must be positive"
        );
        Self { speeds }
    }

    /// A Décrypthon-like federation: six university sites of mixed
    /// generations (total ≈ 475 processors, mean speed below the
    /// Grid'5000 reference because some clusters are older).
    pub fn decrypthon() -> Self {
        let mut speeds = Vec::new();
        for &(count, speed) in &[
            (120, 1.0_f64), // a recent Opteron cluster
            (96, 0.85),
            (80, 0.7),
            (75, 1.1),
            (64, 0.6),
            (40, 0.5), // the oldest site
        ] {
            speeds.extend(std::iter::repeat_n(speed, count));
        }
        Self::new(speeds)
    }

    /// Aggregate compute rate in reference-processor equivalents.
    pub fn reference_equivalents(&self) -> f64 {
        self.speeds.iter().sum()
    }

    /// Makespan of a job list under speed-aware LPT: longest job first to
    /// the machine that would finish it earliest.
    pub fn lpt_makespan(&self, jobs_ref_seconds: &[f64]) -> f64 {
        let mut sorted: Vec<f64> = jobs_ref_seconds.to_vec();
        sorted.sort_by(|a, b| b.partial_cmp(a).expect("no NaN"));
        let mut finish = vec![0.0f64; self.speeds.len()];
        for job in sorted {
            // Pick the processor with the earliest completion for this job.
            let (idx, _) = finish
                .iter()
                .zip(&self.speeds)
                .map(|(&f, &s)| f + job / s)
                .enumerate()
                .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
                .expect("non-empty");
            finish[idx] += job / self.speeds[idx];
        }
        finish.into_iter().fold(0.0, f64::max)
    }

    /// Schedules a packaged campaign; the total CPU is reported in
    /// reference seconds (machine-seconds differ per site).
    pub fn run_campaign(&self, pkg: &CampaignPackage<'_>) -> DedicatedRun {
        let mut jobs = Vec::new();
        pkg.for_each_workunit(|wu| jobs.push(wu.estimated_seconds(pkg.matrix())));
        let makespan_seconds = self.lpt_makespan(&jobs);
        let total: f64 = jobs.iter().sum();
        DedicatedRun {
            processors: self.speeds.len(),
            total_cpu: Ydhms::from_seconds_f64(total),
            makespan_seconds,
            utilization: total / (self.reference_equivalents() * makespan_seconds),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maxdo::{CostModel, LibraryConfig, ProteinLibrary};
    use timemodel::CostMatrix;

    fn pkg_fixture() -> (ProteinLibrary, CostMatrix) {
        let lib = ProteinLibrary::generate(LibraryConfig::tiny(3), 3);
        let m = CostMatrix::from_cost_model(&lib, &CostModel::with_kappa(0.1));
        (lib, m)
    }

    #[test]
    fn utilization_is_high_for_many_small_jobs() {
        let (lib, m) = pkg_fixture();
        let pkg = CampaignPackage::new(&lib, &m, 600.0);
        let run = DedicatedGrid::new(8).run_campaign(&pkg);
        assert!(run.utilization > 0.8, "utilization {}", run.utilization);
        assert!(run.utilization <= 1.0 + 1e-12);
    }

    #[test]
    fn more_processors_shorter_makespan() {
        let (lib, m) = pkg_fixture();
        let pkg = CampaignPackage::new(&lib, &m, 600.0);
        let small = DedicatedGrid::new(2).run_campaign(&pkg);
        let big = DedicatedGrid::new(16).run_campaign(&pkg);
        assert!(big.makespan_seconds < small.makespan_seconds);
        // Total CPU is identical: a dedicated grid wastes nothing.
        assert_eq!(big.total_cpu, small.total_cpu);
    }

    #[test]
    fn deadline_arithmetic_matches_the_paper() {
        // Table 3: phase II = 1,444,998,719,637 s in 40 weeks needs
        // 59,730 processors.
        let p = DedicatedGrid::processors_for_deadline(1_444_998_719_637.0, 40.0 * 7.0 * 86_400.0);
        assert!((p - 59_730.0).abs() < 100.0, "p = {p}");
    }

    #[test]
    #[should_panic(expected = "at least one processor")]
    fn zero_processors_rejected() {
        DedicatedGrid::new(0);
    }

    #[test]
    fn heterogeneous_lpt_prefers_fast_processors() {
        // One fast and one slow machine, one job: it must go to the fast
        // one.
        let grid = HeterogeneousGrid::new(vec![2.0, 0.5]);
        assert_eq!(grid.lpt_makespan(&[100.0]), 50.0);
        // Two equal jobs: the greedy rule stacks BOTH on the 4x-faster
        // machine (finish 100) rather than sending one to the slow one
        // (finish 200).
        assert_eq!(grid.lpt_makespan(&[100.0, 100.0]), 100.0);
        // Three jobs: two on the fast machine, one on the slow.
        assert_eq!(grid.lpt_makespan(&[100.0, 100.0, 100.0]), 150.0);
    }

    #[test]
    fn heterogeneous_matches_homogeneous_when_speeds_are_one() {
        let jobs: Vec<f64> = (1..40).map(|i| (i * 13 % 17) as f64 + 1.0).collect();
        let hetero = HeterogeneousGrid::new(vec![1.0; 8]).lpt_makespan(&jobs);
        let homo = timemodel::calibration::lpt_makespan(&jobs, 8);
        // Both are LPT variants; the greedy tie-breaking may differ
        // slightly, but the makespans must agree within the LPT bound.
        let lower = jobs.iter().sum::<f64>() / 8.0;
        assert!(hetero >= lower - 1e-9 && homo >= lower - 1e-9);
        assert!((hetero - homo).abs() / homo < 0.34);
    }

    #[test]
    fn decrypthon_pilot_capacity() {
        // §2: the 6-protein pilot ran on the Décrypthon grid. A pilot-
        // sized workload (6², one starting position each at the Table-1
        // mean) fits in well under a day.
        let grid = HeterogeneousGrid::decrypthon();
        assert!(grid.reference_equivalents() > 300.0);
        let jobs = vec![671.0; 36];
        assert!(grid.lpt_makespan(&jobs) < 3600.0);
    }

    #[test]
    fn heterogeneous_utilization_accounts_for_speed() {
        // A small mixed grid against a workload with many more jobs than
        // processors: utilization must be high and ≤ 1.
        let lib = ProteinLibrary::generate(LibraryConfig::tiny(3), 3);
        let m = CostMatrix::from_cost_model(&lib, &CostModel::with_kappa(0.1));
        let pkg = CampaignPackage::new(&lib, &m, 600.0);
        let grid = HeterogeneousGrid::new(vec![1.0, 1.0, 0.7, 0.7, 0.5, 1.2, 0.9, 0.6]);
        let run = grid.run_campaign(&pkg);
        assert!(
            run.utilization > 0.5 && run.utilization <= 1.0 + 1e-9,
            "utilization {}",
            run.utilization
        );
    }

    #[test]
    #[should_panic(expected = "speeds must be positive")]
    fn nonpositive_speed_rejected() {
        HeterogeneousGrid::new(vec![1.0, 0.0]);
    }
}

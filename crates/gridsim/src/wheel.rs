//! Hierarchical timing wheel — the engine's pending-event store.
//!
//! A calendar-queue layout tuned for campaign simulations: most events
//! land within minutes-to-days of the clock, a long tail (replica
//! deadlines) lands about ten days out, and only pathological
//! configurations schedule months ahead. Three tiers cover that
//! distribution with O(1) amortized insert and pop:
//!
//! * **near wheel** — [`NEAR_SLOTS`] buckets of one tick
//!   ([`TICK_SECONDS`] = 1 s) each, covering the window currently being
//!   drained (~68 minutes);
//! * **coarse wheel** — [`COARSE_SLOTS`] buckets, each holding one full
//!   near window (4096 s), covering ~194 days ahead;
//! * **spill list** — a sorted `Vec` for anything farther out.
//!
//! Buckets are plain `Vec`s recycled through a free pool, so steady-state
//! scheduling performs no allocation; occupancy bitmaps make the
//! next-bucket scan a handful of word tests.
//!
//! # Determinism
//!
//! The wheel pops entries in strictly increasing `(at, seq)` order — the
//! same total order a binary heap over `(at, seq)` yields — so swapping
//! the backing store cannot change a simulation trace by a byte:
//!
//! 1. Buckets are drained in tick order, and a bucket is sorted by
//!    `(at, seq)` the moment it becomes current; `(at, seq)` keys are
//!    unique, so even an unstable sort is deterministic.
//! 2. Entries scheduled *into* the bucket being drained (the engine
//!    frequently schedules at or just after `now`) are placed by binary
//!    search, preserving the order. Such entries can never sort before
//!    the drain point because scheduling into the past is rejected.
//! 3. Cascading a coarse bucket or a spill group redistributes entries
//!    without consulting their arrival order; the sort at drain time
//!    makes the redistribution order immaterial.

use crate::event::SimTime;

/// log₂ of the near-wheel slot count.
const NEAR_LOG2: u32 = 12;
/// Near-wheel slots: one tick each.
const NEAR_SLOTS: usize = 1 << NEAR_LOG2;
/// log₂ of the coarse-wheel slot count.
const COARSE_LOG2: u32 = 12;
/// Coarse-wheel slots: one near window (NEAR_SLOTS ticks) each.
const COARSE_SLOTS: usize = 1 << COARSE_LOG2;
/// Tick width in simulated seconds.
pub const TICK_SECONDS: f64 = 1.0;
/// Bitmap words per wheel level.
const WORDS: usize = NEAR_SLOTS / 64;
/// Recycled bucket `Vec`s kept around (caps steady-state allocation
/// without hoarding memory after a burst).
const FREE_POOL_MAX: usize = 64;
/// `current_tick` sentinel meaning "no bucket drained yet"; unreachable
/// as a real tick (simulated times are far below 2^53 seconds).
const NO_TICK: u64 = u64::MAX;

/// A pending event: timestamp, FIFO tie-breaker, payload — stored inline
/// in bucket `Vec`s (no per-event box).
#[derive(Debug)]
pub(crate) struct Entry<E> {
    pub at: SimTime,
    pub seq: u64,
    pub event: E,
}

impl<E> Entry<E> {
    #[inline]
    fn key(&self) -> (SimTime, u64) {
        (self.at, self.seq)
    }
}

/// Tick index of a timestamp (floor; times are non-negative).
#[inline]
fn tick_of(at: SimTime) -> u64 {
    (at.seconds() / TICK_SECONDS) as u64
}

/// The three-tier wheel. Pure container: the clock, sequence counter and
/// statistics live in [`crate::event::EventQueue`].
#[derive(Debug)]
pub(crate) struct TimingWheel<E> {
    /// One-tick buckets for the window `[cbase·4096, (cbase+1)·4096)`.
    near: Box<[Vec<Entry<E>>]>,
    /// One-window buckets for windows `(cbase, cbase + COARSE_SLOTS]`.
    coarse: Box<[Vec<Entry<E>>]>,
    near_occ: [u64; WORDS],
    coarse_occ: [u64; WORDS],
    /// Coarse tick (absolute) of the window mapped onto the near wheel.
    cbase: u64,
    /// Next near slot to scan; slots below it are drained.
    cursor: usize,
    /// The bucket being drained, sorted descending by `(at, seq)` so the
    /// minimum pops from the back.
    current: Vec<Entry<E>>,
    /// Absolute tick of `current` ([`NO_TICK`] before the first drain).
    current_tick: u64,
    /// Far-future entries, sorted descending by `(at, seq)`.
    spill: Vec<Entry<E>>,
    /// Recycled bucket storage.
    free: Vec<Vec<Entry<E>>>,
}

impl<E> Default for TimingWheel<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> TimingWheel<E> {
    pub fn new() -> Self {
        Self {
            near: (0..NEAR_SLOTS).map(|_| Vec::new()).collect(),
            coarse: (0..COARSE_SLOTS).map(|_| Vec::new()).collect(),
            near_occ: [0; WORDS],
            coarse_occ: [0; WORDS],
            cbase: 0,
            cursor: 0,
            current: Vec::new(),
            current_tick: NO_TICK,
            spill: Vec::new(),
            free: Vec::new(),
        }
    }

    /// Inserts an entry. The caller guarantees `at` is not in the past
    /// (i.e. `at >= now` of the owning queue), which is what keeps every
    /// insert inside or ahead of the drain frontier.
    pub fn insert(&mut self, at: SimTime, seq: u64, event: E) {
        let tick = tick_of(at);
        let entry = Entry { at, seq, event };
        if tick == self.current_tick {
            // Into the bucket being drained: placed by binary search so
            // the descending order (and thus pop order) is preserved.
            let key = entry.key();
            let idx = self.current.partition_point(|e| e.key() > key);
            self.current.insert(idx, entry);
            return;
        }
        let window = tick >> NEAR_LOG2;
        if window == self.cbase {
            self.push_near(tick, entry);
        } else if window - self.cbase <= COARSE_SLOTS as u64 {
            // Windows cbase+1 ..= cbase+COARSE_SLOTS map onto the ring
            // without collision (consecutive values mod COARSE_SLOTS).
            let s = (window & (COARSE_SLOTS as u64 - 1)) as usize;
            let slot = &mut self.coarse[s];
            if slot.capacity() == 0 {
                if let Some(v) = self.free.pop() {
                    *slot = v;
                }
            }
            slot.push(entry);
            self.coarse_occ[s >> 6] |= 1 << (s & 63);
        } else {
            // Beyond the coarse horizon (~194 days): sorted spill list.
            let key = entry.key();
            let idx = self.spill.partition_point(|e| e.key() > key);
            self.spill.insert(idx, entry);
        }
    }

    /// Removes and returns the entry with the smallest `(at, seq)`.
    pub fn pop_min(&mut self) -> Option<Entry<E>> {
        loop {
            if let Some(e) = self.current.pop() {
                return Some(e);
            }
            // Drain the next occupied near bucket into `current`.
            if let Some(s) = first_occupied(&self.near_occ, self.cursor) {
                let mut bucket = std::mem::take(&mut self.near[s]);
                self.near_occ[s >> 6] &= !(1 << (s & 63));
                // Unique (at, seq) keys: unstable sort is deterministic.
                bucket.sort_unstable_by_key(|e| std::cmp::Reverse(e.key()));
                let drained = std::mem::replace(&mut self.current, bucket);
                self.recycle(drained);
                self.current_tick = (self.cbase << NEAR_LOG2) + s as u64;
                self.cursor = s + 1;
                continue;
            }
            // Near wheel exhausted: cascade the earliest coarse window
            // (or spill group) down and keep draining.
            self.advance()?;
        }
    }

    /// Maps the earliest pending coarse window (and any spill entries in
    /// that window) onto the near wheel. Returns `None` when nothing is
    /// pending anywhere.
    fn advance(&mut self) -> Option<()> {
        let next_coarse = self.earliest_coarse_window();
        let next_spill = self.spill.last().map(|e| tick_of(e.at) >> NEAR_LOG2);
        let window = match (next_coarse, next_spill) {
            (Some(c), Some(s)) => c.min(s),
            (Some(c), None) => c,
            (None, Some(s)) => s,
            (None, None) => return None,
        };
        self.cbase = window;
        self.cursor = 0;
        if next_coarse == Some(window) {
            let s = (window & (COARSE_SLOTS as u64 - 1)) as usize;
            let mut bucket = std::mem::take(&mut self.coarse[s]);
            self.coarse_occ[s >> 6] &= !(1 << (s & 63));
            for e in bucket.drain(..) {
                let t = tick_of(e.at);
                self.push_near(t, e);
            }
            self.recycle(bucket);
        }
        if next_spill == Some(window) {
            // The spill list is sorted descending, so the earliest
            // window's entries form a suffix.
            while self
                .spill
                .last()
                .is_some_and(|e| tick_of(e.at) >> NEAR_LOG2 == window)
            {
                let e = self.spill.pop().expect("spill suffix non-empty");
                let t = tick_of(e.at);
                self.push_near(t, e);
            }
        }
        Some(())
    }

    /// Smallest absolute coarse window with pending entries.
    fn earliest_coarse_window(&self) -> Option<u64> {
        let mask = COARSE_SLOTS as u64 - 1;
        let start = ((self.cbase + 1) & mask) as usize;
        let s = first_occupied_ring(&self.coarse_occ, start)?;
        let offset = (s as u64).wrapping_sub(start as u64) & mask;
        Some(self.cbase + 1 + offset)
    }

    fn push_near(&mut self, tick: u64, entry: Entry<E>) {
        let s = (tick & (NEAR_SLOTS as u64 - 1)) as usize;
        let slot = &mut self.near[s];
        if slot.capacity() == 0 {
            if let Some(v) = self.free.pop() {
                *slot = v;
            }
        }
        slot.push(entry);
        self.near_occ[s >> 6] |= 1 << (s & 63);
    }

    fn recycle(&mut self, mut bucket: Vec<Entry<E>>) {
        debug_assert!(bucket.is_empty());
        if bucket.capacity() > 0 && self.free.len() < FREE_POOL_MAX {
            bucket.clear();
            self.free.push(bucket);
        }
    }
}

/// First set bit at index `>= from`, scanning to the end (no wrap).
fn first_occupied(bits: &[u64; WORDS], from: usize) -> Option<usize> {
    if from >= WORDS * 64 {
        return None;
    }
    let mut w = from >> 6;
    let mut word = bits[w] & (!0u64 << (from & 63));
    loop {
        if word != 0 {
            return Some((w << 6) + word.trailing_zeros() as usize);
        }
        w += 1;
        if w == WORDS {
            return None;
        }
        word = bits[w];
    }
}

/// First set bit in ring order starting at `start` (wraps once).
fn first_occupied_ring(bits: &[u64; WORDS], start: usize) -> Option<usize> {
    if let Some(s) = first_occupied(bits, start) {
        return Some(s);
    }
    first_occupied(bits, 0).filter(|&s| s < start)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain<E>(w: &mut TimingWheel<E>) -> Vec<(f64, u64)> {
        std::iter::from_fn(|| w.pop_min().map(|e| (e.at.seconds(), e.seq))).collect()
    }

    #[test]
    fn pops_in_at_seq_order_across_tiers() {
        let mut w = TimingWheel::new();
        // Near (same window), coarse (days ahead), spill (a year ahead).
        w.insert(SimTime::new(10.0), 0, ());
        w.insert(SimTime::new(400.0 * 86_400.0), 1, ());
        w.insert(SimTime::new(5.0 * 86_400.0), 2, ());
        w.insert(SimTime::new(10.0), 3, ());
        let order = drain(&mut w);
        assert_eq!(
            order,
            vec![
                (10.0, 0),
                (10.0, 3),
                (5.0 * 86_400.0, 2),
                (400.0 * 86_400.0, 1)
            ]
        );
    }

    #[test]
    fn same_tick_different_times_sort_by_time() {
        let mut w = TimingWheel::new();
        // All in tick 7 (one-second bucket), scheduled out of order.
        w.insert(SimTime::new(7.9), 0, ());
        w.insert(SimTime::new(7.1), 1, ());
        w.insert(SimTime::new(7.5), 2, ());
        assert_eq!(drain(&mut w), vec![(7.1, 1), (7.5, 2), (7.9, 0)]);
    }

    #[test]
    fn insert_into_current_bucket_keeps_order() {
        let mut w = TimingWheel::new();
        w.insert(SimTime::new(3.2), 0, ());
        w.insert(SimTime::new(3.8), 1, ());
        let first = w.pop_min().unwrap();
        assert_eq!(first.seq, 0);
        // The bucket for tick 3 is now current; insert into its middle
        // and at its tie point.
        w.insert(SimTime::new(3.5), 2, ());
        w.insert(SimTime::new(3.8), 3, ()); // ties FIFO after seq 1
        assert_eq!(drain(&mut w), vec![(3.5, 2), (3.8, 1), (3.8, 3)]);
    }

    #[test]
    fn window_boundary_ticks_stay_ordered() {
        let mut w = TimingWheel::new();
        let window = (NEAR_SLOTS as f64) * TICK_SECONDS;
        w.insert(SimTime::new(window), 0, ()); // first tick of window 1
        w.insert(SimTime::new(window - 1.0), 1, ()); // last tick of window 0
        w.insert(SimTime::new(2.0 * window - 0.5), 2, ()); // last tick of window 1
        let order = drain(&mut w);
        assert_eq!(
            order,
            vec![(window - 1.0, 1), (window, 0), (2.0 * window - 0.5, 2)]
        );
    }

    #[test]
    fn far_future_entries_spill_and_come_back_in_order() {
        let mut w = TimingWheel::new();
        // First tick strictly beyond the coarse horizon as seen from
        // window 0: window index COARSE_SLOTS + 1.
        let spill_start = (NEAR_SLOTS * (COARSE_SLOTS + 1)) as f64 * TICK_SECONDS;
        w.insert(SimTime::new(spill_start + 10.0), 0, ());
        w.insert(SimTime::new(5.0), 1, ());
        w.insert(SimTime::new(spill_start + 3.0), 2, ());
        w.insert(SimTime::new(spill_start + 10.0), 3, ()); // FIFO tie with seq 0
        assert_eq!(
            drain(&mut w),
            vec![
                (5.0, 1),
                (spill_start + 3.0, 2),
                (spill_start + 10.0, 0),
                (spill_start + 10.0, 3)
            ]
        );
    }

    #[test]
    fn bucket_vecs_are_recycled() {
        let mut w = TimingWheel::new();
        for round in 0..10u64 {
            for i in 0..100u64 {
                w.insert(SimTime::new(round as f64 * 16.0 + (i % 16) as f64), i, i);
            }
            while w.pop_min().is_some() {}
        }
        assert!(!w.free.is_empty(), "drained buckets should reach the pool");
        assert!(w.free.len() <= FREE_POOL_MAX);
    }

    #[test]
    fn bitmap_scans() {
        let mut bits = [0u64; WORDS];
        assert_eq!(first_occupied(&bits, 0), None);
        bits[1] |= 1 << 3; // index 67
        assert_eq!(first_occupied(&bits, 0), Some(67));
        assert_eq!(first_occupied(&bits, 67), Some(67));
        assert_eq!(first_occupied(&bits, 68), None);
        assert_eq!(first_occupied_ring(&bits, 68), Some(67));
        assert_eq!(first_occupied(&bits, WORDS * 64), None);
    }
}

//! The volunteer-grid campaign simulator.
//!
//! Ties everything together: the launch-ordered workunit catalog (§4.2 +
//! §5.1), the task server (§3.1/§5.1), the volunteer host population with
//! its growth and project-share phases (§3.1/§5.1), and the campaign
//! accounting (§5/§6). One event per replica issue/report/timeout plus one
//! tick per day keeps a full-scale 26-week campaign tractable; scaled runs
//! (`scale_divisor` > 1) divide both workload and population so every
//! intensive quantity — VFTP per share, speed-down, redundancy, durations —
//! is preserved while extensive ones shrink.

use crate::event::{EventQueue, Scheduler, SimTime};
use crate::host::{Host, HostId, HostParams};
use crate::membership::{ChurnCounters, MembershipModel, HCMD_LAUNCH_DAY};
use crate::project::ProjectPhases;
use crate::server::{ReplicaId, ServerConfig, TaskServer, WorkunitCatalogEntry};
use crate::trace::{CampaignTrace, WorkSnapshot};
use metrics::DailySeries;
use workunit::{CampaignPackage, LaunchSchedule};

/// Cached metric handles for the engine loop (zero-sized when telemetry
/// is disabled). Resolved once at construction. The hot pop loop itself
/// touches no atomics: [`EventQueue`] counts pops in a plain field and
/// [`SimTelemetry::flush_events`] reconciles the global counter at day
/// granularity.
#[derive(Debug)]
struct SimTelemetry {
    events: &'static telemetry::Counter,
    queue_peak: &'static telemetry::Gauge,
    active_hosts: &'static telemetry::Gauge,
    churn: ChurnCounters,
    /// Pops already published to `events` (the counter is process-global
    /// and several sims may run in one process, so deltas are tracked
    /// per engine).
    events_flushed: u64,
}

impl SimTelemetry {
    fn new() -> Self {
        Self {
            events: telemetry::counter("sim.events.processed"),
            queue_peak: telemetry::gauge("sim.queue.depth.peak"),
            active_hosts: telemetry::gauge("sim.hosts.active"),
            churn: ChurnCounters::new(),
            events_flushed: 0,
        }
    }

    /// Publishes pops accumulated since the last flush.
    fn flush_events(&mut self, pops: u64) {
        self.events.add(pops - self.events_flushed);
        self.events_flushed = pops;
    }
}

/// Configuration of a volunteer-grid campaign run.
#[derive(Debug, Clone)]
pub struct VolunteerGridConfig {
    /// Master seed; every stochastic stream derives from it.
    pub seed: u64,
    /// Host population parameters.
    pub host_params: HostParams,
    /// Task-server policy.
    pub server: ServerConfig,
    /// Grid-wide membership model.
    pub membership: MembershipModel,
    /// Project share-of-grid phases.
    pub phases: ProjectPhases,
    /// Scale divisor (1 = full scale). The *library* must already carry
    /// `Nsep` scaled by the same divisor (see
    /// `ProteinLibrary::with_scaled_nsep`).
    pub scale_divisor: u32,
    /// Campaign days at which to capture Figure 7 snapshots.
    pub snapshot_days: Vec<usize>,
    /// Hard stop, days (safety bound for pathological configurations).
    pub max_days: usize,
    /// Day offset of the campaign start in the membership timeline.
    pub membership_start_day: usize,
    /// Use the session-level host executor instead of the analytic plan
    /// (slower: availability sessions are simulated explicitly; see
    /// `gridsim::sessions`). The two agree on population statistics — the
    /// detailed mode exists for validation and fine-grained studies.
    pub detailed_sessions: bool,
}

impl VolunteerGridConfig {
    /// The HCMD phase-I configuration at a given scale. Snapshot days
    /// match the four dates of Figure 7 (2007-03-20, 04-11, 05-02, 06-11 =
    /// campaign days 91, 113, 134, 174).
    pub fn hcmd_phase1(scale_divisor: u32, seed: u64) -> Self {
        Self {
            seed,
            host_params: HostParams::wcg_2007(),
            server: ServerConfig::default(),
            membership: MembershipModel::wcg(),
            phases: ProjectPhases::hcmd_phase1(),
            scale_divisor,
            snapshot_days: vec![91, 113, 134, 174],
            max_days: 3 * 365,
            membership_start_day: HCMD_LAUNCH_DAY,
            detailed_sessions: false,
        }
    }
}

/// An event in the volunteer-grid simulation.
///
/// Public so the engine can be swapped via [`Scheduler`] type
/// parameters (`sim_scale` bench, engine-identity tests); the payload
/// stays a small inline enum — no boxing — so the timing wheel's bucket
/// `Vec`s hold events by value with no per-schedule allocation.
#[derive(Debug)]
pub enum SimEvent {
    /// Daily tick: population targets, snapshots, grid accounting.
    DayTick,
    /// A host asks the server for work.
    Fetch(u32),
    /// A host reports a finished replica.
    Report {
        /// Reporting host index.
        host: u32,
        /// The replica being reported.
        replica: ReplicaId,
        /// Absolute issue time, seconds.
        issue_seconds: f64,
        /// Accounted CPU/wall seconds for credit and Figure 6.
        accounted: f64,
        /// Whether the result is erroneous.
        error: bool,
    },
    /// A replica's deadline expired.
    Timeout(ReplicaId),
}

struct HostSlot {
    host: Host,
    active: bool,
    join_seconds: f64,
}

/// The simulator.
///
/// Generic over the event engine so the timing-wheel [`EventQueue`]
/// (the default) and the legacy [`crate::event::HeapQueue`] can be
/// A/B-compared on identical campaigns; both satisfy the same `(at,
/// seq)` pop order, so the choice cannot change a trace.
pub struct VolunteerGridSim<S: Scheduler<SimEvent> = EventQueue<SimEvent>> {
    config: VolunteerGridConfig,
    server: TaskServer,
    queue: S,
    hosts: Vec<HostSlot>,
    idle: Vec<u32>,
    active_count: usize,
    retire_quota: usize,
    receptor_done: Vec<f64>,
    receptor_wus_done: Vec<u32>,
    trace: CampaignTrace,
    snapshot_days: Vec<usize>,
    current_day: usize,
    tele: SimTelemetry,
}

impl VolunteerGridSim {
    /// Builds a simulator from a packaged campaign, on the default
    /// timing-wheel engine.
    ///
    /// The catalog is ordered by the §5.1 launch schedule (cheapest
    /// receptor first); receptor indices in the trace follow that order.
    pub fn new(pkg: &CampaignPackage<'_>, config: VolunteerGridConfig) -> Self {
        Self::with_scheduler(pkg, config)
    }
}

impl<S: Scheduler<SimEvent>> VolunteerGridSim<S> {
    /// Builds a simulator on an explicit event engine (`S::default()`).
    pub fn with_scheduler(pkg: &CampaignPackage<'_>, config: VolunteerGridConfig) -> Self {
        let schedule = LaunchSchedule::cheapest_first(pkg);
        let mut catalog = Vec::new();
        let mut receptor_total = vec![0.0f64; schedule.len()];
        let mut receptor_wu_total = vec![0u32; schedule.len()];
        let mut receptor_index = vec![0u16; schedule.len()];
        for (launch_idx, &pid) in schedule.order().iter().enumerate() {
            receptor_index[pid.0 as usize] = launch_idx as u16;
        }
        schedule.for_each_workunit_in_order(pkg, |wu| {
            let mct = pkg
                .matrix()
                .get(wu.receptor.0 as usize, wu.ligand.0 as usize);
            let est = wu.positions as f64 * mct;
            let launch_idx = receptor_index[wu.receptor.0 as usize];
            receptor_total[launch_idx as usize] += est;
            receptor_wu_total[launch_idx as usize] += 1;
            catalog.push(WorkunitCatalogEntry {
                ref_seconds: est as f32,
                position_ref_seconds: mct as f32,
                receptor: launch_idx,
            });
        });
        let reference_total_seconds: f64 = receptor_total.iter().sum();
        let (wu_count, h_seconds) = (catalog.len() as u64, pkg.h_seconds);
        telemetry::emit(None, move || telemetry::Event::WorkunitPackaged {
            count: wu_count,
            h_seconds,
        });
        let server = TaskServer::new(catalog, config.server);
        let mut queue = S::default();
        queue.schedule(SimTime::ZERO, SimEvent::DayTick);
        let n_receptors = schedule.len();
        let snapshot_days = config.snapshot_days.clone();
        let trace = CampaignTrace {
            scale_divisor: config.scale_divisor,
            project_cpu_daily: DailySeries::new(),
            grid_cpu_daily: DailySeries::new(),
            results_daily: DailySeries::new(),
            useful_results_daily: DailySeries::new(),
            realized_runtimes: Vec::new(),
            credit: crate::credit::CreditLedger::new(),
            receptor_total: receptor_total.clone(),
            receptor_wu_total,
            snapshots: Vec::new(),
            completion_day: None,
            results_received: 0,
            results_useful: 0,
            server_stats: crate::server::ServerStats::default(),
            reference_total_seconds,
            events_processed: 0,
            peak_queue_depth: 0,
        };
        Self {
            config,
            server,
            queue,
            hosts: Vec::new(),
            idle: Vec::new(),
            active_count: 0,
            retire_quota: 0,
            receptor_done: vec![0.0; n_receptors],
            receptor_wus_done: vec![0; n_receptors],
            trace,
            snapshot_days,
            current_day: 0,
            tele: SimTelemetry::new(),
        }
    }

    /// Target active host count on a campaign day.
    fn target_hosts(&self, day: usize) -> usize {
        let grid_devices = self
            .config
            .membership
            .device_count(self.config.membership_start_day + day);
        let share = self.config.phases.share(day);
        ((grid_devices as f64 * share) / self.config.scale_divisor as f64).round() as usize
    }

    /// Runs the campaign to completion (or `max_days`) and returns the
    /// trace.
    pub fn run(mut self) -> CampaignTrace {
        while let Some((now, event)) = self.queue.pop() {
            match event {
                SimEvent::DayTick => self.on_day_tick(now),
                SimEvent::Fetch(h) => self.on_fetch(now, h),
                SimEvent::Report {
                    host,
                    replica,
                    issue_seconds,
                    accounted,
                    error,
                } => self.on_report(now, host, replica, issue_seconds, accounted, error),
                SimEvent::Timeout(replica) => {
                    self.server.handle_timeout(replica);
                }
            }
            self.wake_idle_hosts(now);
        }
        // Final snapshot bookkeeping: any requested snapshot day past the
        // end of the simulation sees the final state.
        let final_day = self.current_day;
        for &day in &self.snapshot_days {
            if day > final_day && self.trace.snapshots.iter().all(|s| s.day != day) {
                self.trace.snapshots.push(WorkSnapshot {
                    day,
                    done: self.receptor_done.clone(),
                    wus_done: self.receptor_wus_done.clone(),
                });
            }
        }
        self.trace.snapshots.sort_by_key(|s| s.day);
        self.trace.results_received = self.server.results_received;
        self.trace.results_useful = self.server.results_useful;
        self.trace.server_stats = self.server.stats;
        self.trace.events_processed = self.queue.pops();
        self.trace.peak_queue_depth = self.queue.peak_len() as u64;
        self.tele.flush_events(self.queue.pops());
        self.tele
            .queue_peak
            .record_max(self.queue.peak_len() as i64);
        self.trace
    }

    fn on_day_tick(&mut self, now: SimTime) {
        let day = now.day();
        self.current_day = day;
        // Grid-wide accounting (the "available" curve of Figure 6a): the
        // whole grid's accounted CPU that day, scaled.
        let grid_vftp = self
            .config
            .membership
            .vftp(self.config.membership_start_day + day);
        self.trace
            .grid_cpu_daily
            .add(day, grid_vftp * 86_400.0 / self.config.scale_divisor as f64);

        // Population control.
        let target = self.target_hosts(day);
        if target > self.active_count {
            let spawn = target - self.active_count;
            for k in 0..spawn {
                let id = self.hosts.len() as u32;
                let host = Host::sample_at_day(
                    HostId(id as u64),
                    &self.config.host_params,
                    self.config.seed,
                    day,
                );
                self.hosts.push(HostSlot {
                    host,
                    active: true,
                    join_seconds: now.seconds(),
                });
                self.active_count += 1;
                self.tele.churn.spawned.inc();
                // Spread arrivals over the day deterministically.
                let offset = 86_400.0 * (k as f64 + 0.5) / spawn as f64;
                self.queue.schedule(now.after(offset), SimEvent::Fetch(id));
            }
        } else {
            self.retire_quota += self.active_count - target;
        }

        // Figure 7 snapshots.
        if self.snapshot_days.contains(&day) {
            self.trace.snapshots.push(WorkSnapshot {
                day,
                done: self.receptor_done.clone(),
                wus_done: self.receptor_wus_done.clone(),
            });
        }

        self.tele.active_hosts.set(self.active_count as i64);
        let pops = self.queue.pops();
        self.tele.flush_events(pops);
        self.tele
            .queue_peak
            .record_max(self.queue.peak_len() as i64);
        let (active_hosts, queue_len, completed) = (
            self.active_count as u64,
            self.queue.len() as u64,
            self.server.completed_count() as u64,
        );
        telemetry::emit(Some(now.seconds()), move || telemetry::Event::DaySummary {
            day: day as u64,
            active_hosts,
            queue_len,
            completed,
        });

        if !self.server.is_campaign_complete() && day + 1 < self.config.max_days {
            self.queue.schedule(now.after(86_400.0), SimEvent::DayTick);
        }
    }

    fn on_fetch(&mut self, now: SimTime, h: u32) {
        // Horizon guard: past max_days nothing new is issued, so the
        // event queue drains even for pathological configurations (e.g.
        // an error storm that would otherwise reissue forever).
        if now.day() >= self.config.max_days {
            return;
        }
        let slot = &mut self.hosts[h as usize];
        if !slot.active {
            return;
        }
        // Churn: retire on quota or end of life.
        let end_of_life = now.seconds() > slot.join_seconds + slot.host.lifetime_seconds;
        if self.retire_quota > 0 || end_of_life {
            if self.retire_quota > 0 && !end_of_life {
                self.retire_quota -= 1;
            }
            slot.active = false;
            self.active_count -= 1;
            self.tele.churn.retired.inc();
            return;
        }
        match self.server.fetch_work(now) {
            Some(assign) => {
                if self.server.sampled(assign.workunit) {
                    telemetry::emit(Some(now.seconds()), || {
                        telemetry::Event::WorkunitDispatched {
                            workunit: u64::from(assign.workunit),
                            host: u64::from(h),
                        }
                    });
                }
                let exec = if self.config.detailed_sessions {
                    // Session-level execution: explicit on/off periods and
                    // checkpoint replay; error/abandon draws come from the
                    // host's own stream to stay deterministic.
                    let mut rng = crate::rng::stream(
                        self.config.seed,
                        crate::rng::Domain::HostExecution,
                        (h as u64) << 32 | assign.replica.0 & 0xFFFF_FFFF,
                    );
                    let sess = crate::sessions::execute_with_sessions(
                        &slot.host,
                        assign.ref_seconds,
                        assign.position_ref_seconds,
                        &mut rng,
                    );
                    use rand::Rng;
                    crate::host::WorkunitExecution {
                        turnaround_seconds: sess.turnaround_seconds,
                        accounted_seconds: match slot.host.accounting {
                            crate::host::AccountingMode::WallClock => sess.attached_seconds,
                            crate::host::AccountingMode::CpuTime => sess.cpu_seconds,
                        },
                        cpu_seconds: sess.cpu_seconds,
                        error: rng.gen::<f64>() < slot.host.error_rate,
                        abandoned: rng.gen::<f64>() < slot.host.abandon_rate,
                    }
                } else {
                    slot.host
                        .plan_execution(assign.ref_seconds, assign.position_ref_seconds)
                };
                self.queue.schedule(
                    now.after(self.server.deadline_seconds()),
                    SimEvent::Timeout(assign.replica),
                );
                if exec.abandoned {
                    // The volunteer silently walks away: the host leaves
                    // the grid mid-workunit; the deadline will reissue.
                    slot.active = false;
                    self.active_count -= 1;
                    self.tele.churn.abandoned.inc();
                } else {
                    self.queue.schedule(
                        now.after(exec.turnaround_seconds),
                        SimEvent::Report {
                            host: h,
                            replica: assign.replica,
                            issue_seconds: now.seconds(),
                            accounted: exec.accounted_seconds,
                            error: exec.error,
                        },
                    );
                }
            }
            None => {
                self.idle.push(h);
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn on_report(
        &mut self,
        now: SimTime,
        host: u32,
        replica: ReplicaId,
        issue_seconds: f64,
        accounted: f64,
        error: bool,
    ) {
        // Account the attached run time over the replica's lifetime.
        self.trace.project_cpu_daily.add_interval(
            issue_seconds,
            now.seconds().max(issue_seconds + 1e-6),
            accounted,
        );
        self.trace.realized_runtimes.push(accounted as f32);
        let points = crate::credit::points_for(&self.hosts[host as usize].host, accounted);
        self.trace
            .credit
            .grant_interval(issue_seconds, now.seconds(), points);
        let day = now.day();
        self.trace.results_daily.add(day, 1.0);
        let wu = self.workunit_of(replica);
        if self.server.sampled(wu) {
            telemetry::emit(Some(now.seconds()), || telemetry::Event::ResultReturned {
                workunit: u64::from(wu),
                host: u64::from(host),
                error,
            });
        }
        let outcome = self.server.report_result(now, replica, error);
        if outcome.useful {
            self.trace.useful_results_daily.add(day, 1.0);
        }
        if outcome.completed_workunit {
            let entry = self.server.entry(self.workunit_of(replica));
            self.receptor_done[entry.receptor as usize] += entry.ref_seconds as f64;
            self.receptor_wus_done[entry.receptor as usize] += 1;
            if self.server.is_campaign_complete() {
                self.trace.completion_day = Some(day);
            }
        }
        // The host asks for more work shortly (unless the horizon passed).
        if now.day() < self.config.max_days {
            let delay = self.hosts[host as usize].host.work_fetch_delay();
            self.queue.schedule(now.after(delay), SimEvent::Fetch(host));
        }
    }

    fn workunit_of(&self, replica: ReplicaId) -> u32 {
        // The server assigns replica ids densely; recover the workunit via
        // its replica table.
        self.server.replica_workunit(replica)
    }

    /// Wakes idle hosts when the server has work again.
    ///
    /// Runs after *every* event, so it must not scan the host table:
    /// hosts that found no work park themselves on the `idle` free-list
    /// and this pops at most `available_count` of them — O(1) when
    /// nobody is idle, O(woken) otherwise, never O(hosts).
    fn wake_idle_hosts(&mut self, now: SimTime) {
        if self.idle.is_empty() {
            return;
        }
        let mut available = self.server.available_count(now);
        while available > 0 {
            let Some(h) = self.idle.pop() else { break };
            if !self.hosts[h as usize].active {
                continue;
            }
            self.queue.schedule_in(1.0, SimEvent::Fetch(h));
            available -= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maxdo::{CostModel, LibraryConfig, ProteinLibrary};
    use timemodel::CostMatrix;

    fn tiny_campaign(seed: u64) -> CampaignTrace {
        let lib = ProteinLibrary::generate(LibraryConfig::tiny(3), 7);
        let model = CostModel::with_kappa(0.3);
        let matrix = CostMatrix::from_cost_model(&lib, &model);
        let pkg = CampaignPackage::new(&lib, &matrix, 4.0 * 3600.0);
        let mut config = VolunteerGridConfig::hcmd_phase1(1, seed);
        // A small fixed population so the tiny campaign finishes quickly.
        config.membership = MembershipModel {
            reference_vftp: 40.0,
            reference_day: 1,
            growth_exponent: 0.0,
            seasonality: crate::membership::SeasonalityModel::flat(),
            mean_accounted_fraction: 0.625,
        };
        config.phases = ProjectPhases::new(vec![crate::project::SharePhase {
            start_day: 0,
            share_start: 1.0,
            share_end: 1.0,
            days: 365,
            name: "full",
        }]);
        config.membership_start_day = 0;
        config.snapshot_days = vec![1, 10_000];
        VolunteerGridSim::new(&pkg, config).run()
    }

    #[test]
    fn tiny_campaign_completes() {
        let t = tiny_campaign(42);
        assert!(t.completion_day.is_some(), "campaign did not finish");
        assert!(t.results_received > 0);
        assert!(t.results_useful > 0);
        assert!(t.results_received >= t.results_useful);
    }

    #[test]
    fn simulation_is_deterministic() {
        let a = tiny_campaign(42);
        let b = tiny_campaign(42);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = tiny_campaign(1);
        let b = tiny_campaign(2);
        assert_ne!(a.consumed_cpu_seconds(), b.consumed_cpu_seconds());
    }

    #[test]
    fn all_work_is_eventually_done() {
        let t = tiny_campaign(42);
        // Every receptor's done work equals its total (within float dust).
        for (done, total) in t
            .snapshots
            .last()
            .unwrap()
            .done
            .iter()
            .zip(&t.receptor_total)
        {
            assert!(
                (done - total).abs() < 1e-6 * total.max(1.0),
                "done {done} != total {total}"
            );
        }
    }

    #[test]
    fn consumed_exceeds_reference_by_the_speed_down() {
        let t = tiny_campaign(42);
        let s = t.speed_down();
        // Volunteers are slower, throttled and redundant: the raw factor
        // must land well above 1 (the paper got 5.43).
        assert!(s.raw_factor() > 2.0, "raw factor {}", s.raw_factor());
        // And the net factor is below the raw one.
        assert!(s.net_factor() < s.raw_factor());
    }

    #[test]
    fn redundancy_factor_is_above_one() {
        let t = tiny_campaign(42);
        assert!(t.redundancy_factor() > 1.0);
        assert!(t.useful_fraction() < 1.0);
    }

    #[test]
    fn realized_runtimes_match_result_count() {
        let t = tiny_campaign(42);
        assert_eq!(t.realized_runtimes.len() as u64, t.results_received);
    }

    #[test]
    fn snapshots_are_recorded_and_sorted() {
        let t = tiny_campaign(42);
        assert_eq!(t.snapshots.len(), 2);
        assert!(t.snapshots[0].day < t.snapshots[1].day);
    }
}

#[cfg(test)]
mod detailed_mode_tests {
    use super::*;
    use maxdo::{CostModel, LibraryConfig, ProteinLibrary};
    use timemodel::CostMatrix;
    use workunit::CampaignPackage;

    fn run(detailed: bool) -> CampaignTrace {
        let lib = ProteinLibrary::generate(LibraryConfig::tiny(3), 7);
        let matrix = CostMatrix::from_cost_model(&lib, &CostModel::with_kappa(0.3));
        let pkg = CampaignPackage::new(&lib, &matrix, 4.0 * 3600.0);
        let mut config = VolunteerGridConfig::hcmd_phase1(1, 99);
        config.membership = MembershipModel {
            reference_vftp: 40.0,
            reference_day: 1,
            growth_exponent: 0.0,
            seasonality: crate::membership::SeasonalityModel::flat(),
            mean_accounted_fraction: 0.625,
        };
        config.phases = crate::project::ProjectPhases::new(vec![crate::project::SharePhase {
            start_day: 0,
            share_start: 1.0,
            share_end: 1.0,
            days: 3 * 365,
            name: "full",
        }]);
        config.membership_start_day = 0;
        config.snapshot_days = vec![];
        config.detailed_sessions = detailed;
        VolunteerGridSim::new(&pkg, config).run()
    }

    /// The analytic and session-level host executors must agree on the
    /// campaign's aggregate behaviour (both complete; consumed CPU within
    /// ~15 %; same useful-result count).
    #[test]
    fn detailed_mode_matches_analytic_mode_in_aggregate() {
        let analytic = run(false);
        let detailed = run(true);
        assert!(analytic.completion_day.is_some());
        assert!(detailed.completion_day.is_some());
        assert_eq!(analytic.results_useful, detailed.results_useful);
        let ratio = analytic.consumed_cpu_seconds() / detailed.consumed_cpu_seconds();
        assert!(
            (0.85..1.18).contains(&ratio),
            "consumed-cpu disagreement: analytic/detailed = {ratio}"
        );
    }

    #[test]
    fn detailed_mode_is_deterministic() {
        let a = run(true);
        let b = run(true);
        assert_eq!(a, b);
    }
}

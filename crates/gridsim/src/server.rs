//! The BOINC-style task server (simulator frontend).
//!
//! §3.1: the grid is "several servers that host a database of computing
//! work (data + program) named workunit"; agents fetch workunits, compute,
//! report, and ask for more.
//!
//! Since PR 4 the actual scheduling logic — replica issue, deadlines and
//! reissue, redundant computing with quorum validation, the mid-campaign
//! validation switch — lives in the transport-free [`crate::sched`]
//! module, because two frontends now drive it: the discrete-event
//! simulator in this crate and the live wire-level grid in
//! `hcmd-netgrid`. [`TaskServer`] is the simulator's name for that shared
//! core; the alias (rather than a wrapper) guarantees the two frontends
//! cannot drift apart, and the `scheduler_parity` integration test pins
//! that guarantee.

pub use crate::sched::{
    CoreSnapshot, FeederConfig, ReplicaAssignment, ReplicaId, ReplicationOverride, ReportOutcome,
    SchedulerCore, ServerConfig, ServerStats, ValidationPolicy, WorkunitCatalogEntry,
};

/// The task server driven by the discrete-event simulator — exactly the
/// shared [`SchedulerCore`], fed simulated seconds.
pub type TaskServer = SchedulerCore;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::SimTime;

    /// The simulator-facing alias exposes the full policy API surface
    /// (the deep behavioural tests live next to the core in `sched`).
    #[test]
    fn task_server_alias_drives_the_shared_core() {
        let catalog = vec![
            WorkunitCatalogEntry {
                ref_seconds: 1000.0,
                position_ref_seconds: 100.0,
                receptor: 0,
            };
            2
        ];
        let mut s = TaskServer::new(catalog, ServerConfig::default());
        let t = |sec: f64| SimTime::new(sec);
        assert_eq!(s.policy_at(t(0.0)), ValidationPolicy::QuorumCompare);
        let a = s.fetch_work(t(0.0)).expect("work available");
        let b = s.fetch_work(t(1.0)).expect("sibling available");
        assert_eq!(a.workunit, b.workunit, "quorum sibling first");
        assert!(!s.report_result(t(2.0), a.replica, false).completed_workunit);
        assert!(s.report_result(t(3.0), b.replica, false).completed_workunit);
        assert_eq!(s.completed_count(), 1);
        assert_eq!(s.stats.total_issues(), 2);
    }
}

//! Deterministic splittable random streams.
//!
//! Every stochastic entity of the simulation (each host, the membership
//! process, the server's error draws, ...) owns an independent ChaCha8
//! stream derived from `(master seed, domain, entity id)`. Adding or
//! removing one entity never perturbs the draws of any other, so scaled
//! and full simulations stay comparable and every figure is reproducible
//! from one seed — design choice #1 in DESIGN.md.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Well-known stream domains, so call sites don't invent colliding magic
/// numbers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Domain {
    /// Host hardware/behaviour parameters.
    HostProfile,
    /// Per-host execution noise (availability sessions, interruptions).
    HostExecution,
    /// Membership arrival process.
    Membership,
    /// Server-side draws (result errors, redundancy checks).
    Server,
    /// Dedicated-grid noise.
    Dedicated,
}

impl Domain {
    fn tag(self) -> u64 {
        match self {
            Domain::HostProfile => 0x01,
            Domain::HostExecution => 0x02,
            Domain::Membership => 0x03,
            Domain::Server => 0x04,
            Domain::Dedicated => 0x05,
        }
    }
}

/// Derives the deterministic stream for `(seed, domain, id)`.
pub fn stream(seed: u64, domain: Domain, id: u64) -> ChaCha8Rng {
    let mut state = seed ^ domain.tag().wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    let mut key = [0u8; 32];
    let words = [
        next() ^ id,
        next().wrapping_add(id.rotate_left(17)),
        next(),
        next(),
    ];
    for (chunk, w) in key.chunks_exact_mut(8).zip(words) {
        chunk.copy_from_slice(&w.to_le_bytes());
    }
    ChaCha8Rng::from_seed(key)
}

/// A standard normal draw (Box–Muller).
pub fn standard_normal(rng: &mut ChaCha8Rng) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(1e-12);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// A log-normal draw with given *median* and σ of the log.
pub fn lognormal(rng: &mut ChaCha8Rng, median: f64, sigma: f64) -> f64 {
    median * (sigma * standard_normal(rng)).exp()
}

/// An exponential draw with the given mean.
pub fn exponential(rng: &mut ChaCha8Rng, mean: f64) -> f64 {
    -mean * rng.gen::<f64>().max(1e-12).ln()
}

/// A uniform draw in `[lo, hi)`.
pub fn uniform(rng: &mut ChaCha8Rng, lo: f64, hi: f64) -> f64 {
    lo + (hi - lo) * rng.gen::<f64>()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;

    #[test]
    fn streams_are_deterministic() {
        let mut a = stream(7, Domain::HostProfile, 3);
        let mut b = stream(7, Domain::HostProfile, 3);
        for _ in 0..8 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn streams_differ_across_ids_domains_and_seeds() {
        let base = stream(7, Domain::HostProfile, 3).next_u64();
        assert_ne!(base, stream(7, Domain::HostProfile, 4).next_u64());
        assert_ne!(base, stream(7, Domain::HostExecution, 3).next_u64());
        assert_ne!(base, stream(8, Domain::HostProfile, 3).next_u64());
    }

    #[test]
    fn lognormal_median_is_roughly_right() {
        let mut rng = stream(1, Domain::Server, 0);
        let mut v: Vec<f64> = (0..4001).map(|_| lognormal(&mut rng, 10.0, 0.5)).collect();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = v[v.len() / 2];
        assert!((median - 10.0).abs() < 1.0, "median {median}");
        assert!(v.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn exponential_mean_is_roughly_right() {
        let mut rng = stream(2, Domain::Server, 0);
        let mean = (0..4000).map(|_| exponential(&mut rng, 5.0)).sum::<f64>() / 4000.0;
        assert!((mean - 5.0).abs() < 0.3, "mean {mean}");
    }

    #[test]
    fn uniform_stays_in_range() {
        let mut rng = stream(3, Domain::Server, 0);
        for _ in 0..1000 {
            let x = uniform(&mut rng, 2.0, 3.0);
            assert!((2.0..3.0).contains(&x));
        }
    }

    #[test]
    fn normal_is_centered() {
        let mut rng = stream(4, Domain::Server, 0);
        let mean = (0..4000).map(|_| standard_normal(&mut rng)).sum::<f64>() / 4000.0;
        assert!(mean.abs() < 0.08, "mean {mean}");
    }
}

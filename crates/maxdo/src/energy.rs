//! The MAXDo interaction energy.
//!
//! §2.1: "The quality of the protein-protein interaction can be evaluated
//! through an interaction energy (expressed in kcal·mol⁻¹), which is the
//! sum of two contributions; a Lennard-Jones term (Elj), and an
//! electrostatic term (Eelec) ... The more negative the sum of these two
//! contributions is, the stronger the protein-protein interaction."
//!
//! This module evaluates `Etot = Elj + Eelec` between a rigid receptor and
//! a rigid ligand in a given [`Pose`], together with its analytic gradient
//! with respect to the ligand's six rigid-body degrees of freedom (force on
//! the mass centre + torque about it), which drives the minimiser.
//!
//! Implementation notes (hpc-parallel idioms):
//! * receptor beads are indexed once into a [`CellList`] with cell edge
//!   equal to the interaction cutoff, so each ligand bead probes at most 27
//!   cells — evaluation is `O(B_ligand · local density)` instead of
//!   `O(B_receptor · B_ligand)`;
//! * energies are *cutoff-shifted* so `E(r_cut) = 0` exactly and the
//!   landscape stays continuous for the minimiser;
//! * inter-bead distances are softened (`r_eff² = r² + δ²`) so overlapping
//!   starting poses produce large-but-finite energies and gradients.

use crate::geom::{Pose, Vec3};
use crate::model::Protein;
use serde::{Deserialize, Serialize};

/// Coulomb constant in kcal·Å·mol⁻¹·e⁻².
pub const COULOMB_KCAL: f64 = 332.0636;

/// Force-field parameters of the reduced-model energy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyParams {
    /// Interaction cutoff distance in Å (pairs beyond it contribute 0).
    pub cutoff: f64,
    /// Distance softening δ in Å (`r_eff² = r² + δ²`).
    pub softening: f64,
    /// Dielectric prefactor ε₀ of the distance-dependent dielectric
    /// `ε(r) = ε₀·r`, which makes `Eelec ∝ 1/r²` — the usual implicit-
    /// solvent screening of reduced protein models.
    pub dielectric: f64,
}

impl Default for EnergyParams {
    fn default() -> Self {
        Self {
            cutoff: 12.0,
            softening: 1.0,
            dielectric: 15.0,
        }
    }
}

/// An interaction energy split into its two published contributions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// Lennard-Jones contribution, kcal·mol⁻¹.
    pub elj: f64,
    /// Electrostatic contribution, kcal·mol⁻¹.
    pub eelec: f64,
}

impl EnergyBreakdown {
    /// `Etot = Elj + Eelec`.
    pub fn total(&self) -> f64 {
        self.elj + self.eelec
    }
}

/// Energy, force and torque of a ligand pose; the gradient of `Etot` with
/// respect to the ligand's rigid degrees of freedom.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyGradient {
    /// Energy breakdown at the pose.
    pub energy: EnergyBreakdown,
    /// Net force on the ligand (−∂E/∂t), kcal·mol⁻¹·Å⁻¹.
    pub force: Vec3,
    /// Net torque about the ligand mass centre, kcal·mol⁻¹·rad⁻¹.
    pub torque: Vec3,
}

/// A uniform-grid spatial index over the receptor's beads, stored CSR
/// (one offsets array + flat per-cell data) with the bead attributes the
/// inner pair loop touches — positions and pair-table row indices — laid
/// out struct-of-arrays in cell order.
///
/// Built once per receptor and reused across the tens of thousands of
/// energy evaluations of a docking map. The CSR + SoA layout keeps the
/// hot loop's memory traffic contiguous: probing a cell reads three
/// dense `f64` runs and one `u8` run instead of chasing a `Vec<Vec<_>>`
/// indirection into an array-of-structs bead table.
#[derive(Debug, Clone)]
pub struct CellList {
    origin: Vec3,
    edge: f64,
    dims: [usize; 3],
    /// CSR offsets: cell `c`'s beads occupy slots `offsets[c] ..
    /// offsets[c + 1]` of the flat arrays below.
    offsets: Vec<u32>,
    /// Original receptor bead index of each slot (stable within a cell:
    /// ascending bead order, so accumulation order matches the old
    /// nested-`Vec` layout bit-for-bit).
    order: Vec<u32>,
    /// Bead x coordinates in slot order.
    pos_x: Vec<f64>,
    /// Bead y coordinates in slot order.
    pos_y: Vec<f64>,
    /// Bead z coordinates in slot order.
    pos_z: Vec<f64>,
    /// [`PairTable`] row index of each slot's bead kind.
    kind_idx: Vec<u8>,
}

impl CellList {
    /// Indexes `receptor`'s beads with cell edge = `cutoff`.
    pub fn build(receptor: &Protein, cutoff: f64) -> Self {
        assert!(cutoff > 0.0, "cutoff must be positive");
        let beads = receptor.beads();
        let mut lo = beads[0].position;
        let mut hi = beads[0].position;
        for b in beads {
            lo = lo.min(b.position);
            hi = hi.max(b.position);
        }
        // Pad by one cell so boundary queries never need clamping logic.
        let edge = cutoff;
        let dims = [
            (((hi.x - lo.x) / edge).floor() as usize) + 1,
            (((hi.y - lo.y) / edge).floor() as usize) + 1,
            (((hi.z - lo.z) / edge).floor() as usize) + 1,
        ];
        let n_cells = dims[0] * dims[1] * dims[2];
        // Counting sort into CSR: count, prefix-sum, place. Placement in
        // ascending bead order keeps each cell's slots in insertion
        // order, like the nested-Vec layout this replaces.
        let mut offsets = vec![0u32; n_cells + 1];
        for b in beads {
            offsets[Self::cell_of(lo, edge, dims, b.position) + 1] += 1;
        }
        for c in 1..=n_cells {
            offsets[c] += offsets[c - 1];
        }
        let n = beads.len();
        let mut cursor: Vec<u32> = offsets[..n_cells].to_vec();
        let mut order = vec![0u32; n];
        let mut pos_x = vec![0.0; n];
        let mut pos_y = vec![0.0; n];
        let mut pos_z = vec![0.0; n];
        let mut kind_idx = vec![0u8; n];
        for (i, b) in beads.iter().enumerate() {
            let c = Self::cell_of(lo, edge, dims, b.position);
            let slot = cursor[c] as usize;
            cursor[c] += 1;
            order[slot] = i as u32;
            pos_x[slot] = b.position.x;
            pos_y[slot] = b.position.y;
            pos_z[slot] = b.position.z;
            kind_idx[slot] = PairTable::index(b.kind) as u8;
        }
        Self {
            origin: lo,
            edge,
            dims,
            offsets,
            order,
            pos_x,
            pos_y,
            pos_z,
            kind_idx,
        }
    }

    fn cell_of(origin: Vec3, edge: f64, dims: [usize; 3], p: Vec3) -> usize {
        let ix = (((p.x - origin.x) / edge).floor() as isize).clamp(0, dims[0] as isize - 1);
        let iy = (((p.y - origin.y) / edge).floor() as isize).clamp(0, dims[1] as isize - 1);
        let iz = (((p.z - origin.z) / edge).floor() as isize).clamp(0, dims[2] as isize - 1);
        (ix as usize * dims[1] + iy as usize) * dims[2] + iz as usize
    }

    /// Calls `f` with the flat slot range of each cell in the 27-cell
    /// neighbourhood of `p`, in fixed (x, y, z) scan order.
    #[inline]
    fn for_neighbor_ranges(&self, p: Vec3, mut f: impl FnMut(std::ops::Range<usize>)) {
        let cx = ((p.x - self.origin.x) / self.edge).floor() as isize;
        let cy = ((p.y - self.origin.y) / self.edge).floor() as isize;
        let cz = ((p.z - self.origin.z) / self.edge).floor() as isize;
        for dx in -1..=1 {
            for dy in -1..=1 {
                for dz in -1..=1 {
                    let (x, y, z) = (cx + dx, cy + dy, cz + dz);
                    if x < 0
                        || y < 0
                        || z < 0
                        || x >= self.dims[0] as isize
                        || y >= self.dims[1] as isize
                        || z >= self.dims[2] as isize
                    {
                        continue;
                    }
                    let c = (x as usize * self.dims[1] + y as usize) * self.dims[2] + z as usize;
                    let range = self.offsets[c] as usize..self.offsets[c + 1] as usize;
                    if !range.is_empty() {
                        f(range);
                    }
                }
            }
        }
    }

    /// Calls `f` with every receptor bead index in the 27-cell neighbourhood
    /// of `p`. Beads further than one cell edge are included (callers still
    /// apply the exact distance cutoff).
    pub fn for_neighbors(&self, p: Vec3, mut f: impl FnMut(u32)) {
        self.for_neighbor_ranges(p, |range| {
            for &i in &self.order[range] {
                f(i);
            }
        });
    }

    /// Total number of indexed beads (for sanity checks).
    pub fn bead_count(&self) -> usize {
        self.order.len()
    }
}

/// Precomputed pair parameters for every ordered [`BeadKind`] pair:
/// combined well depth `ε_ij = √(ε_i ε_j)`, contact distance
/// `rmin_ij = r_i + r_j`, and the charge product — the per-pair square
/// roots otherwise dominate the inner loop (see the `energy` criterion
/// bench for the ablation).
#[derive(Debug, Clone)]
pub struct PairTable {
    eps: [[f64; 5]; 5],
    rmin_sq: [[f64; 5]; 5],
    qq: [[f64; 5]; 5],
}

impl Default for PairTable {
    fn default() -> Self {
        Self::new()
    }
}

impl PairTable {
    /// The process-wide table (the constants never change), built once:
    /// the per-pair square roots stay out of every evaluation.
    pub fn shared() -> &'static PairTable {
        static TABLE: std::sync::OnceLock<PairTable> = std::sync::OnceLock::new();
        TABLE.get_or_init(PairTable::new)
    }

    /// Builds the 5×5 tables from the bead-kind constants.
    pub fn new() -> Self {
        use crate::model::BeadKind;
        let mut eps = [[0.0; 5]; 5];
        let mut rmin_sq = [[0.0; 5]; 5];
        let mut qq = [[0.0; 5]; 5];
        for (i, a) in BeadKind::ALL.iter().enumerate() {
            for (j, b) in BeadKind::ALL.iter().enumerate() {
                eps[i][j] = (a.epsilon() * b.epsilon()).sqrt();
                let rmin = a.radius() + b.radius();
                rmin_sq[i][j] = rmin * rmin;
                qq[i][j] = a.charge() * b.charge();
            }
        }
        Self { eps, rmin_sq, qq }
    }

    #[inline]
    pub(crate) fn index(kind: crate::model::BeadKind) -> usize {
        use crate::model::BeadKind::*;
        match kind {
            Backbone => 0,
            Apolar => 1,
            Polar => 2,
            Positive => 3,
            Negative => 4,
        }
    }

    /// `(ε_ij, rmin_ij², q_i q_j)` for a bead-kind pair.
    #[inline]
    pub fn lookup(&self, a: crate::model::BeadKind, b: crate::model::BeadKind) -> (f64, f64, f64) {
        let (i, j) = (Self::index(a), Self::index(b));
        (self.eps[i][j], self.rmin_sq[i][j], self.qq[i][j])
    }
}

/// Evaluates the interaction energy of `ligand` in `pose` against
/// `receptor` (indexed by `cells`).
pub fn interaction_energy(
    receptor: &Protein,
    cells: &CellList,
    ligand: &Protein,
    pose: &Pose,
    params: &EnergyParams,
) -> EnergyBreakdown {
    evaluate(receptor, cells, ligand, pose, params, None).energy
}

/// Evaluates energy *and* its rigid-body gradient (force + torque).
pub fn energy_and_gradient(
    receptor: &Protein,
    cells: &CellList,
    ligand: &Protein,
    pose: &Pose,
    params: &EnergyParams,
) -> EnergyGradient {
    let mut grad = (Vec3::ZERO, Vec3::ZERO);
    let out = evaluate(receptor, cells, ligand, pose, params, Some(&mut grad));
    EnergyGradient {
        energy: out.energy,
        force: grad.0,
        torque: grad.1,
    }
}

struct EvalOut {
    energy: EnergyBreakdown,
}

fn evaluate(
    receptor: &Protein,
    cells: &CellList,
    ligand: &Protein,
    pose: &Pose,
    params: &EnergyParams,
    mut grad: Option<&mut (Vec3, Vec3)>,
) -> EvalOut {
    debug_assert_eq!(
        cells.bead_count(),
        receptor.bead_count(),
        "cell list built for a different receptor"
    );
    let cutoff_sq = params.cutoff * params.cutoff;
    let delta_sq = params.softening * params.softening;
    // Cutoff-shift reference at the softened cutoff distance.
    let rc_sq = cutoff_sq + delta_sq;
    let pair_table = PairTable::shared();
    let mut elj = 0.0;
    let mut eelec = 0.0;
    for lbead in ligand.beads() {
        let lp = pose.apply(lbead.position);
        // One pair-table row per ligand bead: the inner loop then needs
        // only a 5-entry lookup keyed by the receptor slot's kind index.
        let row = PairTable::index(lbead.kind);
        let eps_row = &pair_table.eps[row];
        let rmin_sq_row = &pair_table.rmin_sq[row];
        let qq_row = &pair_table.qq[row];
        cells.for_neighbor_ranges(lp, |range| {
            for slot in range {
                let dx = lp.x - cells.pos_x[slot];
                let dy = lp.y - cells.pos_y[slot];
                let dz = lp.z - cells.pos_z[slot];
                let r_sq = dx * dx + dy * dy + dz * dz;
                if r_sq >= cutoff_sq {
                    continue;
                }
                let kind = cells.kind_idx[slot] as usize;
                let eps = eps_row[kind];
                let rmin_sq = rmin_sq_row[kind];
                let q1q2 = qq_row[kind];
                // Softened distance.
                let rr_sq = r_sq + delta_sq;
                let rr = rr_sq.sqrt();

                // Lennard-Jones 12-6 in rmin form:
                //   E = ε [ (rmin/r)^12 − 2 (rmin/r)^6 ]
                let s6 = (rmin_sq / rr_sq).powi(3);
                let s12 = s6 * s6;
                let c6 = (rmin_sq / rc_sq).powi(3);
                let c12 = c6 * c6;
                elj += eps * ((s12 - 2.0 * s6) - (c12 - 2.0 * c6));

                // Screened Coulomb with distance-dependent dielectric
                // ε(r) = ε₀ r ⇒ E = k q₁q₂ / (ε₀ r²), cutoff-shifted.
                let ke = COULOMB_KCAL * q1q2 / params.dielectric;
                eelec += ke * (1.0 / rr_sq - 1.0 / rc_sq);

                if let Some(g) = grad.as_deref_mut() {
                    // dE/d(rr): LJ term.
                    let dlj = eps * (-12.0 * s12 / rr + 12.0 * s6 / rr);
                    // Electrostatic term: d/d(rr) [k/rr²] = −2k/rr³.
                    let dele = -2.0 * ke / (rr_sq * rr);
                    // d(rr)/d(d_vec) = d_vec / rr (softening is additive
                    // in r²).
                    let de_dvec = Vec3::new(dx, dy, dz) * ((dlj + dele) / rr);
                    // Force on the ligand bead is −∂E/∂(bead position).
                    let f = -de_dvec;
                    g.0 += f;
                    g.1 += (lp - pose.translation).cross(f);
                }
            }
        });
    }
    EvalOut {
        energy: EnergyBreakdown { elj, eelec },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geom::EulerZyz;
    use crate::model::{Bead, BeadKind, ProteinId};

    fn one_bead(kind: BeadKind) -> Protein {
        Protein::new(
            ProteinId(0),
            "b",
            vec![Bead {
                position: Vec3::ZERO,
                kind,
            }],
        )
    }

    fn pose_at(x: f64) -> Pose {
        Pose::from_euler(EulerZyz::default(), Vec3::new(x, 0.0, 0.0))
    }

    fn pair_energy(a: BeadKind, b: BeadKind, dist: f64, params: &EnergyParams) -> EnergyBreakdown {
        let receptor = one_bead(a);
        let ligand = one_bead(b);
        let cells = CellList::build(&receptor, params.cutoff);
        interaction_energy(&receptor, &cells, &ligand, &pose_at(dist), params)
    }

    #[test]
    fn cell_list_indexes_every_bead() {
        let lib =
            crate::library::ProteinLibrary::generate(crate::library::LibraryConfig::tiny(1), 11);
        let p = &lib.proteins()[0];
        let cells = CellList::build(p, 12.0);
        assert_eq!(cells.bead_count(), p.bead_count());
    }

    #[test]
    fn cell_list_neighbor_query_finds_nearby_beads() {
        let lib =
            crate::library::ProteinLibrary::generate(crate::library::LibraryConfig::tiny(1), 13);
        let p = &lib.proteins()[0];
        let cutoff = 8.0;
        let cells = CellList::build(p, cutoff);
        // For several probe points, the cell list must return a superset of
        // the beads within the cutoff.
        for probe in [
            Vec3::ZERO,
            Vec3::new(5.0, -3.0, 2.0),
            Vec3::new(-10.0, 0.0, 4.0),
        ] {
            let mut seen = std::collections::HashSet::new();
            cells.for_neighbors(probe, |i| {
                seen.insert(i);
            });
            for (i, b) in p.beads().iter().enumerate() {
                if b.position.distance(probe) < cutoff {
                    assert!(
                        seen.contains(&(i as u32)),
                        "bead {i} within cutoff missed by cell list"
                    );
                }
            }
        }
    }

    #[test]
    fn energy_zero_beyond_cutoff() {
        let params = EnergyParams::default();
        let e = pair_energy(
            BeadKind::Positive,
            BeadKind::Negative,
            params.cutoff + 1.0,
            &params,
        );
        assert_eq!(e.total(), 0.0);
    }

    #[test]
    fn lj_has_a_minimum_near_contact_distance() {
        let params = EnergyParams {
            softening: 0.0,
            ..EnergyParams::default()
        };
        let rmin = BeadKind::Apolar.radius() * 2.0;
        let at_min = pair_energy(BeadKind::Apolar, BeadKind::Apolar, rmin, &params);
        let closer = pair_energy(BeadKind::Apolar, BeadKind::Apolar, rmin * 0.8, &params);
        let farther = pair_energy(BeadKind::Apolar, BeadKind::Apolar, rmin * 1.3, &params);
        assert!(at_min.elj < 0.0, "attractive at contact: {}", at_min.elj);
        assert!(closer.elj > at_min.elj, "repulsive wall");
        assert!(farther.elj > at_min.elj, "well shape");
        // Well depth ≈ ε (cutoff shift makes it slightly shallower).
        assert!((at_min.elj + BeadKind::Apolar.epsilon()).abs() < 0.05);
    }

    #[test]
    fn opposite_charges_attract_like_charges_repel() {
        let params = EnergyParams::default();
        let attract = pair_energy(BeadKind::Positive, BeadKind::Negative, 6.0, &params);
        let repel = pair_energy(BeadKind::Positive, BeadKind::Positive, 6.0, &params);
        assert!(attract.eelec < 0.0);
        assert!(repel.eelec > 0.0);
        assert!(
            (attract.eelec + repel.eelec).abs() < 1e-9,
            "symmetric magnitudes"
        );
    }

    #[test]
    fn energy_is_continuous_at_the_cutoff() {
        let params = EnergyParams::default();
        let just_in = pair_energy(
            BeadKind::Positive,
            BeadKind::Negative,
            params.cutoff - 1e-6,
            &params,
        );
        assert!(
            just_in.total().abs() < 1e-3,
            "shifted energy near cutoff should approach 0, got {}",
            just_in.total()
        );
    }

    #[test]
    fn overlapping_beads_have_finite_energy() {
        let params = EnergyParams::default();
        let e = pair_energy(BeadKind::Apolar, BeadKind::Apolar, 0.0, &params);
        assert!(e.total().is_finite());
        assert!(e.elj > 10.0, "softened overlap is strongly repulsive");
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let lib =
            crate::library::ProteinLibrary::generate(crate::library::LibraryConfig::tiny(2), 5);
        let (receptor, ligand) = (&lib.proteins()[0], &lib.proteins()[1]);
        let params = EnergyParams::default();
        let cells = CellList::build(receptor, params.cutoff);
        let sep = receptor.bounding_radius() + ligand.bounding_radius() + 2.0;
        let pose = Pose::from_euler(
            EulerZyz {
                alpha: 0.3,
                beta: 0.9,
                gamma: 1.2,
            },
            Vec3::new(sep, 1.0, -0.5),
        );
        let g = energy_and_gradient(receptor, &cells, ligand, &pose, &params);
        let h = 1e-5;
        // Translational gradient: E(t+h·e) ≈ E(t) + h ∂E/∂t.
        for (axis, fcomp) in [
            (Vec3::new(1.0, 0.0, 0.0), g.force.x),
            (Vec3::new(0.0, 1.0, 0.0), g.force.y),
            (Vec3::new(0.0, 0.0, 1.0), g.force.z),
        ] {
            let plus = interaction_energy(
                receptor,
                &cells,
                ligand,
                &pose.perturbed(axis * h, Vec3::ZERO),
                &params,
            )
            .total();
            let minus = interaction_energy(
                receptor,
                &cells,
                ligand,
                &pose.perturbed(axis * -h, Vec3::ZERO),
                &params,
            )
            .total();
            let num = -(plus - minus) / (2.0 * h); // force = −∂E/∂t
            assert!(
                (num - fcomp).abs() < 1e-4 * (1.0 + fcomp.abs()),
                "force mismatch: numeric {num} vs analytic {fcomp}"
            );
        }
        // Rotational gradient about each axis.
        for (axis, tcomp) in [
            (Vec3::new(1.0, 0.0, 0.0), g.torque.x),
            (Vec3::new(0.0, 1.0, 0.0), g.torque.y),
            (Vec3::new(0.0, 0.0, 1.0), g.torque.z),
        ] {
            let plus = interaction_energy(
                receptor,
                &cells,
                ligand,
                &pose.perturbed(Vec3::ZERO, axis * h),
                &params,
            )
            .total();
            let minus = interaction_energy(
                receptor,
                &cells,
                ligand,
                &pose.perturbed(Vec3::ZERO, axis * -h),
                &params,
            )
            .total();
            let num = -(plus - minus) / (2.0 * h);
            assert!(
                (num - tcomp).abs() < 1e-4 * (1.0 + tcomp.abs()),
                "torque mismatch: numeric {num} vs analytic {tcomp}"
            );
        }
    }

    #[test]
    fn cell_list_energy_matches_brute_force() {
        let lib =
            crate::library::ProteinLibrary::generate(crate::library::LibraryConfig::tiny(2), 21);
        let (receptor, ligand) = (&lib.proteins()[0], &lib.proteins()[1]);
        let params = EnergyParams::default();
        let cells = CellList::build(receptor, params.cutoff);
        let pose = pose_at(receptor.bounding_radius() + 3.0);
        let fast = interaction_energy(receptor, &cells, ligand, &pose, &params);
        // Brute force over all pairs.
        let cutoff_sq = params.cutoff * params.cutoff;
        let delta_sq = params.softening * params.softening;
        let (mut elj, mut eelec) = (0.0, 0.0);
        for lb in ligand.beads() {
            let lp = pose.apply(lb.position);
            for rb in receptor.beads() {
                let r_sq = (lp - rb.position).norm_sq();
                if r_sq >= cutoff_sq {
                    continue;
                }
                let eps = (lb.kind.epsilon() * rb.kind.epsilon()).sqrt();
                let rmin = lb.kind.radius() + rb.kind.radius();
                let rr_sq = r_sq + delta_sq;
                let rc_sq = cutoff_sq + delta_sq;
                let s6 = (rmin * rmin / rr_sq).powi(3);
                let c6 = (rmin * rmin / rc_sq).powi(3);
                elj += eps * ((s6 * s6 - 2.0 * s6) - (c6 * c6 - 2.0 * c6));
                let ke = COULOMB_KCAL * lb.kind.charge() * rb.kind.charge() / params.dielectric;
                eelec += ke * (1.0 / rr_sq - 1.0 / rc_sq);
            }
        }
        assert!((fast.elj - elj).abs() < 1e-9 * (1.0 + elj.abs()));
        assert!((fast.eelec - eelec).abs() < 1e-9 * (1.0 + eelec.abs()));
    }
}

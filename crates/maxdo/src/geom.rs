//! Minimal 3-D geometry kernel for rigid-body docking.
//!
//! MAXDo minimises the interaction energy over six degrees of freedom: the
//! ligand mass-centre position `(x, y, z)` and its orientation
//! `(α, β, γ)`. This module supplies the vector algebra and the Euler-angle
//! rotation convention used everywhere else: `R = Rz(α) · Ry(β) · Rz(γ)`
//! (z-y-z intrinsic convention, the natural parameterisation for an
//! orientation grid of `(α, β)` axis couples times a twist `γ` — the paper
//! samples "21 couples (α, β) for 10 values of γ").

use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A 3-vector of `f64`, used for positions, forces and torques.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Vec3 {
    pub x: f64,
    pub y: f64,
    pub z: f64,
}

impl Vec3 {
    /// The zero vector.
    pub const ZERO: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };

    /// Builds a vector from components.
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Self { x, y, z }
    }

    /// Dot product.
    pub fn dot(self, o: Vec3) -> f64 {
        self.x * o.x + self.y * o.y + self.z * o.z
    }

    /// Cross product.
    pub fn cross(self, o: Vec3) -> Vec3 {
        Vec3::new(
            self.y * o.z - self.z * o.y,
            self.z * o.x - self.x * o.z,
            self.x * o.y - self.y * o.x,
        )
    }

    /// Squared Euclidean norm.
    pub fn norm_sq(self) -> f64 {
        self.dot(self)
    }

    /// Euclidean norm.
    pub fn norm(self) -> f64 {
        self.norm_sq().sqrt()
    }

    /// Unit vector in the same direction; `None` for (near-)zero vectors.
    pub fn normalized(self) -> Option<Vec3> {
        let n = self.norm();
        if n < 1e-300 {
            None
        } else {
            Some(self / n)
        }
    }

    /// Euclidean distance to another point.
    pub fn distance(self, o: Vec3) -> f64 {
        (self - o).norm()
    }

    /// Component-wise minimum.
    pub fn min(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x.min(o.x), self.y.min(o.y), self.z.min(o.z))
    }

    /// Component-wise maximum.
    pub fn max(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x.max(o.x), self.y.max(o.y), self.z.max(o.z))
    }

    /// True when all components are finite.
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    fn add(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x + o.x, self.y + o.y, self.z + o.z)
    }
}

impl AddAssign for Vec3 {
    fn add_assign(&mut self, o: Vec3) {
        *self = *self + o;
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    fn sub(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x - o.x, self.y - o.y, self.z - o.z)
    }
}

impl SubAssign for Vec3 {
    fn sub_assign(&mut self, o: Vec3) {
        *self = *self - o;
    }
}

impl Mul<f64> for Vec3 {
    type Output = Vec3;
    fn mul(self, s: f64) -> Vec3 {
        Vec3::new(self.x * s, self.y * s, self.z * s)
    }
}

impl Mul<Vec3> for f64 {
    type Output = Vec3;
    fn mul(self, v: Vec3) -> Vec3 {
        v * self
    }
}

impl Div<f64> for Vec3 {
    type Output = Vec3;
    fn div(self, s: f64) -> Vec3 {
        Vec3::new(self.x / s, self.y / s, self.z / s)
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

/// A 3×3 rotation matrix (row-major).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Mat3 {
    pub rows: [[f64; 3]; 3],
}

impl Mat3 {
    /// Identity matrix.
    pub const IDENTITY: Mat3 = Mat3 {
        rows: [[1.0, 0.0, 0.0], [0.0, 1.0, 0.0], [0.0, 0.0, 1.0]],
    };

    /// Rotation about the z axis by `t` radians.
    pub fn rot_z(t: f64) -> Mat3 {
        let (s, c) = t.sin_cos();
        Mat3 {
            rows: [[c, -s, 0.0], [s, c, 0.0], [0.0, 0.0, 1.0]],
        }
    }

    /// Rotation about the y axis by `t` radians.
    pub fn rot_y(t: f64) -> Mat3 {
        let (s, c) = t.sin_cos();
        Mat3 {
            rows: [[c, 0.0, s], [0.0, 1.0, 0.0], [-s, 0.0, c]],
        }
    }

    /// Rotation about the x axis by `t` radians.
    pub fn rot_x(t: f64) -> Mat3 {
        let (s, c) = t.sin_cos();
        Mat3 {
            rows: [[1.0, 0.0, 0.0], [0.0, c, -s], [0.0, s, c]],
        }
    }

    /// Rotation about an arbitrary unit axis by `t` radians (Rodrigues).
    pub fn from_axis_angle(axis: Vec3, t: f64) -> Mat3 {
        let u = axis.normalized().unwrap_or(Vec3::new(0.0, 0.0, 1.0));
        let (s, c) = t.sin_cos();
        let omc = 1.0 - c;
        Mat3 {
            rows: [
                [
                    c + u.x * u.x * omc,
                    u.x * u.y * omc - u.z * s,
                    u.x * u.z * omc + u.y * s,
                ],
                [
                    u.y * u.x * omc + u.z * s,
                    c + u.y * u.y * omc,
                    u.y * u.z * omc - u.x * s,
                ],
                [
                    u.z * u.x * omc - u.y * s,
                    u.z * u.y * omc + u.x * s,
                    c + u.z * u.z * omc,
                ],
            ],
        }
    }

    /// Applies the rotation to a vector.
    pub fn apply(&self, v: Vec3) -> Vec3 {
        Vec3::new(
            self.rows[0][0] * v.x + self.rows[0][1] * v.y + self.rows[0][2] * v.z,
            self.rows[1][0] * v.x + self.rows[1][1] * v.y + self.rows[1][2] * v.z,
            self.rows[2][0] * v.x + self.rows[2][1] * v.y + self.rows[2][2] * v.z,
        )
    }

    /// Matrix product `self · other`.
    pub fn mul_mat(&self, o: &Mat3) -> Mat3 {
        let mut r = [[0.0; 3]; 3];
        for (i, row) in r.iter_mut().enumerate() {
            for (j, cell) in row.iter_mut().enumerate() {
                *cell = (0..3).map(|k| self.rows[i][k] * o.rows[k][j]).sum();
            }
        }
        Mat3 { rows: r }
    }

    /// Transpose — for a rotation matrix, its inverse.
    pub fn transpose(&self) -> Mat3 {
        let mut r = [[0.0; 3]; 3];
        for (i, row) in self.rows.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                r[j][i] = v;
            }
        }
        Mat3 { rows: r }
    }

    /// Determinant (should be +1 for a proper rotation).
    pub fn det(&self) -> f64 {
        let m = &self.rows;
        m[0][0] * (m[1][1] * m[2][2] - m[1][2] * m[2][1])
            - m[0][1] * (m[1][0] * m[2][2] - m[1][2] * m[2][0])
            + m[0][2] * (m[1][0] * m[2][1] - m[1][1] * m[2][0])
    }
}

/// Euler angles in the paper's `(α, β, γ)` parameterisation of the ligand
/// orientation, using the intrinsic z-y-z convention:
/// `R(α, β, γ) = Rz(α) · Ry(β) · Rz(γ)`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct EulerZyz {
    /// First rotation about z, radians, in `[0, 2π)`.
    pub alpha: f64,
    /// Rotation about the intermediate y axis, radians, in `[0, π]`.
    pub beta: f64,
    /// Final twist about z, radians, in `[0, 2π)`.
    pub gamma: f64,
}

impl EulerZyz {
    /// Builds the rotation matrix for these angles.
    pub fn to_matrix(self) -> Mat3 {
        Mat3::rot_z(self.alpha)
            .mul_mat(&Mat3::rot_y(self.beta))
            .mul_mat(&Mat3::rot_z(self.gamma))
    }
}

/// A rigid-body pose of the ligand: a rotation followed by a translation of
/// the (centred) body: `x ↦ R·x + t`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Pose {
    /// Orientation of the ligand.
    pub rotation: Mat3,
    /// Position of the ligand mass centre.
    pub translation: Vec3,
}

impl Pose {
    /// Identity pose.
    pub fn identity() -> Pose {
        Pose {
            rotation: Mat3::IDENTITY,
            translation: Vec3::ZERO,
        }
    }

    /// Pose from Euler angles and a mass-centre position.
    pub fn from_euler(angles: EulerZyz, translation: Vec3) -> Pose {
        Pose {
            rotation: angles.to_matrix(),
            translation,
        }
    }

    /// Transforms a body-frame point into the world frame.
    pub fn apply(&self, p: Vec3) -> Vec3 {
        self.rotation.apply(p) + self.translation
    }

    /// Perturbs the pose by a small rigid displacement: a translation `dt`
    /// and a rotation of `|dw|` radians about axis `dw` applied *before*
    /// the current rotation in the world frame.
    pub fn perturbed(&self, dt: Vec3, dw: Vec3) -> Pose {
        let angle = dw.norm();
        let rot = if angle > 0.0 {
            Mat3::from_axis_angle(dw, angle).mul_mat(&self.rotation)
        } else {
            self.rotation
        };
        Pose {
            rotation: rot,
            translation: self.translation + dt,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    fn assert_vec_close(a: Vec3, b: Vec3, tol: f64) {
        assert!(
            (a - b).norm() < tol,
            "vectors differ: {a:?} vs {b:?} (tol {tol})"
        );
    }

    #[test]
    fn vector_algebra_basics() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(-1.0, 0.5, 2.0);
        assert_eq!(a.dot(b), -1.0 + 1.0 + 6.0);
        assert_vec_close(a + b - b, a, 1e-12);
        assert_vec_close(a * 2.0, Vec3::new(2.0, 4.0, 6.0), 1e-12);
        assert_vec_close(2.0 * a, a * 2.0, 1e-15);
        assert_vec_close(-a, Vec3::ZERO - a, 1e-15);
        assert_vec_close(a / 2.0, Vec3::new(0.5, 1.0, 1.5), 1e-15);
    }

    #[test]
    fn cross_product_is_orthogonal_and_right_handed() {
        let x = Vec3::new(1.0, 0.0, 0.0);
        let y = Vec3::new(0.0, 1.0, 0.0);
        assert_vec_close(x.cross(y), Vec3::new(0.0, 0.0, 1.0), 1e-15);
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(4.0, -1.0, 0.5);
        let c = a.cross(b);
        assert!(c.dot(a).abs() < 1e-12);
        assert!(c.dot(b).abs() < 1e-12);
    }

    #[test]
    fn normalization() {
        let v = Vec3::new(3.0, 4.0, 0.0);
        let n = v.normalized().unwrap();
        assert!((n.norm() - 1.0).abs() < 1e-15);
        assert_vec_close(n, Vec3::new(0.6, 0.8, 0.0), 1e-15);
        assert!(Vec3::ZERO.normalized().is_none());
    }

    #[test]
    fn rotation_matrices_are_orthonormal() {
        for m in [
            Mat3::rot_x(0.7),
            Mat3::rot_y(-1.3),
            Mat3::rot_z(2.9),
            Mat3::from_axis_angle(Vec3::new(1.0, 1.0, 1.0), 0.5),
            EulerZyz {
                alpha: 0.3,
                beta: 1.1,
                gamma: -2.0,
            }
            .to_matrix(),
        ] {
            let should_be_identity = m.mul_mat(&m.transpose());
            for i in 0..3 {
                for j in 0..3 {
                    let expect = if i == j { 1.0 } else { 0.0 };
                    assert!(
                        (should_be_identity.rows[i][j] - expect).abs() < 1e-12,
                        "not orthonormal: {m:?}"
                    );
                }
            }
            assert!((m.det() - 1.0).abs() < 1e-12, "det != 1: {m:?}");
        }
    }

    #[test]
    fn rot_z_quarter_turn() {
        let m = Mat3::rot_z(FRAC_PI_2);
        assert_vec_close(
            m.apply(Vec3::new(1.0, 0.0, 0.0)),
            Vec3::new(0.0, 1.0, 0.0),
            1e-12,
        );
    }

    #[test]
    fn axis_angle_matches_basis_rotations() {
        let t = 0.83;
        let a = Mat3::from_axis_angle(Vec3::new(0.0, 0.0, 1.0), t);
        let b = Mat3::rot_z(t);
        for i in 0..3 {
            for j in 0..3 {
                assert!((a.rows[i][j] - b.rows[i][j]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn euler_zyz_identity_and_composition() {
        let id = EulerZyz::default().to_matrix();
        assert_vec_close(
            id.apply(Vec3::new(1.0, 2.0, 3.0)),
            Vec3::new(1.0, 2.0, 3.0),
            1e-15,
        );
        // alpha and gamma compose when beta = 0.
        let e = EulerZyz {
            alpha: 0.4,
            beta: 0.0,
            gamma: 0.6,
        };
        let m = e.to_matrix();
        let expected = Mat3::rot_z(1.0);
        for i in 0..3 {
            for j in 0..3 {
                assert!((m.rows[i][j] - expected.rows[i][j]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn euler_beta_pi_flips_z() {
        let e = EulerZyz {
            alpha: 0.0,
            beta: PI,
            gamma: 0.0,
        };
        assert_vec_close(
            e.to_matrix().apply(Vec3::new(0.0, 0.0, 1.0)),
            Vec3::new(0.0, 0.0, -1.0),
            1e-12,
        );
    }

    #[test]
    fn pose_apply_and_perturb() {
        let pose = Pose::from_euler(
            EulerZyz {
                alpha: 0.0,
                beta: 0.0,
                gamma: 0.0,
            },
            Vec3::new(1.0, 0.0, 0.0),
        );
        assert_vec_close(
            pose.apply(Vec3::new(0.0, 1.0, 0.0)),
            Vec3::new(1.0, 1.0, 0.0),
            1e-15,
        );
        // A zero perturbation leaves the pose unchanged.
        let same = pose.perturbed(Vec3::ZERO, Vec3::ZERO);
        assert_eq!(same, pose);
        // A pure translation perturbation shifts the translation only.
        let shifted = pose.perturbed(Vec3::new(0.0, 0.0, 2.0), Vec3::ZERO);
        assert_vec_close(shifted.translation, Vec3::new(1.0, 0.0, 2.0), 1e-15);
        assert_eq!(shifted.rotation, pose.rotation);
        // A rotation perturbation keeps the matrix orthonormal.
        let rotated = pose.perturbed(Vec3::ZERO, Vec3::new(0.01, -0.02, 0.005));
        assert!((rotated.rotation.det() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn distance_and_minmax() {
        let a = Vec3::new(0.0, 3.0, 4.0);
        assert!((a.distance(Vec3::ZERO) - 5.0).abs() < 1e-15);
        let b = Vec3::new(1.0, -1.0, 7.0);
        assert_eq!(a.min(b), Vec3::new(0.0, -1.0, 4.0));
        assert_eq!(a.max(b), Vec3::new(1.0, 3.0, 7.0));
    }
}

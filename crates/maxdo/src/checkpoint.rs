//! Workunit checkpointing.
//!
//! §4.3: "the technical team adds a checkpoint feature to the MAXDo
//! program. The MAXDo program can be stopped at any time and restarted from
//! the last checkpoint. ... Anyway the checkpoint occurs only between
//! starting positions. If the program is stopped during the computation of
//! one starting position, the MAXDo program has to be relaunched from this
//! position."
//!
//! [`DockingCheckpoint`] captures exactly that granularity: the completed
//! rows for the starting positions finished so far, plus the index of the
//! next position to compute. Work inside a position is never checkpointed;
//! an interruption mid-position replays the whole position — the source of
//! the *checkpoint replay* term in the §6 speed-down decomposition.

use crate::docking::{DockingEngine, DockingOutput, DockingRow};
use serde::{Deserialize, Serialize};

/// Resumable state of a partially computed workunit
/// (`isep ∈ [isep_start, isep_end]` for one protein couple).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DockingCheckpoint {
    /// First starting position of the workunit (1-based, inclusive).
    pub isep_start: u32,
    /// Last starting position of the workunit (inclusive).
    pub isep_end: u32,
    /// Next starting position to compute; `> isep_end` when complete.
    pub next_isep: u32,
    /// Rows for all *completed* starting positions, canonical order.
    pub rows: Vec<DockingRow>,
    /// Evaluations accumulated in completed positions.
    pub evaluations: u64,
}

impl DockingCheckpoint {
    /// A fresh checkpoint covering `isep_start..=isep_end`.
    pub fn new(isep_start: u32, isep_end: u32) -> Self {
        assert!(
            isep_start >= 1 && isep_start <= isep_end,
            "bad workunit range {isep_start}..={isep_end}"
        );
        Self {
            isep_start,
            isep_end,
            next_isep: isep_start,
            rows: Vec::new(),
            evaluations: 0,
        }
    }

    /// True when every starting position of the workunit is done.
    pub fn is_complete(&self) -> bool {
        self.next_isep > self.isep_end
    }

    /// Number of starting positions already completed.
    pub fn completed_positions(&self) -> u32 {
        self.next_isep - self.isep_start
    }

    /// Total positions in the workunit.
    pub fn total_positions(&self) -> u32 {
        self.isep_end - self.isep_start + 1
    }

    /// Fraction complete in `[0, 1]` — what the screensaver progress bar
    /// shows.
    pub fn progress(&self) -> f64 {
        self.completed_positions() as f64 / self.total_positions() as f64
    }

    /// Records the output of the next starting position and advances the
    /// checkpoint. `output` must be the rows of `self.next_isep`.
    pub fn commit_position(&mut self, output: DockingOutput) {
        assert!(!self.is_complete(), "workunit already complete");
        assert!(
            output.rows.iter().all(|r| r.isep == self.next_isep),
            "output is not for position {}",
            self.next_isep
        );
        self.rows.extend(output.rows);
        self.evaluations += output.evaluations;
        self.next_isep += 1;
    }

    /// Runs the workunit to completion from the checkpointed state.
    pub fn run_to_completion(&mut self, engine: &DockingEngine<'_>) {
        while !self.is_complete() {
            let out = engine.dock_position(self.next_isep);
            self.commit_position(out);
        }
    }

    /// Serialises to the simple line-oriented text format the agent writes
    /// to disk between positions.
    pub fn to_text(&self) -> String {
        let mut s = format!(
            "CHECKPOINT v1\nrange {} {}\nnext {}\nevals {}\nrows {}\n",
            self.isep_start,
            self.isep_end,
            self.next_isep,
            self.evaluations,
            self.rows.len()
        );
        for r in &self.rows {
            s.push_str(&format!(
                "{} {} {:.6} {:.6} {:.6} {:.6} {:.6} {:.6} {:.6} {:.6}\n",
                r.isep,
                r.irot,
                r.position.x,
                r.position.y,
                r.position.z,
                r.orientation.alpha,
                r.orientation.beta,
                r.orientation.gamma,
                r.elj,
                r.eelec
            ));
        }
        s
    }

    /// Parses the text format written by [`Self::to_text`].
    pub fn from_text(text: &str) -> Result<Self, CheckpointParseError> {
        use CheckpointParseError::*;
        let mut lines = text.lines();
        if lines.next() != Some("CHECKPOINT v1") {
            return Err(BadHeader);
        }
        let field = |line: Option<&str>, key: &str| -> Result<Vec<u64>, CheckpointParseError> {
            let line = line.ok_or(Truncated)?;
            let rest = line.strip_prefix(key).ok_or(BadHeader)?;
            rest.split_whitespace()
                .map(|t| t.parse::<u64>().map_err(|_| BadNumber))
                .collect()
        };
        let range = field(lines.next(), "range ")?;
        if range.len() != 2 {
            return Err(BadHeader);
        }
        let next = field(lines.next(), "next ")?;
        let evals = field(lines.next(), "evals ")?;
        let nrows = field(lines.next(), "rows ")?;
        if next.len() != 1 || evals.len() != 1 || nrows.len() != 1 {
            return Err(BadHeader);
        }
        let mut rows = Vec::with_capacity(nrows[0] as usize);
        for _ in 0..nrows[0] {
            let line = lines.next().ok_or(Truncated)?;
            let toks: Vec<&str> = line.split_whitespace().collect();
            if toks.len() != 10 {
                return Err(BadRow);
            }
            let f = |i: usize| toks[i].parse::<f64>().map_err(|_| BadNumber);
            rows.push(DockingRow {
                isep: toks[0].parse().map_err(|_| BadNumber)?,
                irot: toks[1].parse().map_err(|_| BadNumber)?,
                position: crate::geom::Vec3::new(f(2)?, f(3)?, f(4)?),
                orientation: crate::geom::EulerZyz {
                    alpha: f(5)?,
                    beta: f(6)?,
                    gamma: f(7)?,
                },
                elj: f(8)?,
                eelec: f(9)?,
            });
        }
        let cp = Self {
            isep_start: range[0] as u32,
            isep_end: range[1] as u32,
            next_isep: next[0] as u32,
            rows,
            evaluations: evals[0],
        };
        if cp.isep_start < 1 || cp.isep_start > cp.isep_end || cp.next_isep < cp.isep_start {
            return Err(Inconsistent);
        }
        Ok(cp)
    }
}

/// Errors from [`DockingCheckpoint::from_text`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckpointParseError {
    /// Missing or malformed header lines.
    BadHeader,
    /// File ended before the declared number of rows.
    Truncated,
    /// A data row did not have 10 fields.
    BadRow,
    /// A numeric field failed to parse.
    BadNumber,
    /// Header fields are mutually inconsistent.
    Inconsistent,
}

impl std::fmt::Display for CheckpointParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let msg = match self {
            Self::BadHeader => "missing or malformed checkpoint header",
            Self::Truncated => "checkpoint file truncated",
            Self::BadRow => "malformed checkpoint row",
            Self::BadNumber => "unparseable number in checkpoint",
            Self::Inconsistent => "inconsistent checkpoint fields",
        };
        f.write_str(msg)
    }
}

impl std::error::Error for CheckpointParseError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::energy::EnergyParams;
    use crate::library::{LibraryConfig, ProteinLibrary};
    use crate::minimize::MinimizeParams;
    use crate::model::ProteinId;

    fn engine(lib: &ProteinLibrary) -> DockingEngine<'_> {
        DockingEngine::for_couple(
            lib,
            ProteinId(0),
            ProteinId(1),
            EnergyParams::default(),
            MinimizeParams {
                max_iterations: 6,
                ..Default::default()
            },
        )
    }

    #[test]
    fn fresh_checkpoint_is_incomplete() {
        let cp = DockingCheckpoint::new(3, 5);
        assert!(!cp.is_complete());
        assert_eq!(cp.completed_positions(), 0);
        assert_eq!(cp.total_positions(), 3);
        assert_eq!(cp.progress(), 0.0);
    }

    #[test]
    fn interrupted_run_resumes_to_identical_result() {
        let lib = ProteinLibrary::generate(LibraryConfig::tiny(2), 41);
        let e = engine(&lib);
        // Uninterrupted reference.
        let mut reference = DockingCheckpoint::new(1, 3);
        reference.run_to_completion(&e);
        // Interrupted after one position, round-trip through text (the
        // volunteer machine rebooted), then resumed.
        let mut cp = DockingCheckpoint::new(1, 3);
        cp.commit_position(e.dock_position(1));
        let saved = cp.to_text();
        let mut resumed = DockingCheckpoint::from_text(&saved).unwrap();
        assert_eq!(resumed.completed_positions(), 1);
        resumed.run_to_completion(&e);
        assert_eq!(resumed.rows.len(), reference.rows.len());
        // Energies match the uninterrupted run (float text round-trip keeps
        // 6 decimals, so compare with that tolerance).
        for (a, b) in resumed.rows.iter().zip(&reference.rows) {
            assert_eq!((a.isep, a.irot), (b.isep, b.irot));
            assert!((a.etot() - b.etot()).abs() < 1e-5);
        }
        assert_eq!(resumed.evaluations, reference.evaluations);
    }

    #[test]
    fn commit_validates_position_index() {
        let lib = ProteinLibrary::generate(LibraryConfig::tiny(2), 41);
        let e = engine(&lib);
        let mut cp = DockingCheckpoint::new(1, 2);
        let wrong = e.dock_position(2); // expected position 1
        let res =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| cp.commit_position(wrong)));
        assert!(res.is_err());
    }

    #[test]
    fn progress_advances_per_position() {
        let lib = ProteinLibrary::generate(LibraryConfig::tiny(2), 41);
        let e = engine(&lib);
        let mut cp = DockingCheckpoint::new(1, 4);
        cp.commit_position(e.dock_position(1));
        assert!((cp.progress() - 0.25).abs() < 1e-12);
        cp.commit_position(e.dock_position(2));
        assert!((cp.progress() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn text_round_trip_preserves_structure() {
        let mut cp = DockingCheckpoint::new(2, 7);
        cp.next_isep = 4;
        cp.evaluations = 1234;
        let re = DockingCheckpoint::from_text(&cp.to_text()).unwrap();
        assert_eq!(re.isep_start, 2);
        assert_eq!(re.isep_end, 7);
        assert_eq!(re.next_isep, 4);
        assert_eq!(re.evaluations, 1234);
    }

    #[test]
    fn parse_rejects_garbage() {
        use CheckpointParseError::*;
        assert_eq!(DockingCheckpoint::from_text(""), Err(BadHeader));
        assert_eq!(
            DockingCheckpoint::from_text("CHECKPOINT v1\n"),
            Err(Truncated)
        );
        assert_eq!(
            DockingCheckpoint::from_text("CHECKPOINT v1\nrange 1 2\nnext 1\nevals 0\nrows 1\n"),
            Err(Truncated)
        );
        assert_eq!(
            DockingCheckpoint::from_text(
                "CHECKPOINT v1\nrange 1 2\nnext 1\nevals 0\nrows 1\n1 2 3\n"
            ),
            Err(BadRow)
        );
        assert_eq!(
            DockingCheckpoint::from_text("CHECKPOINT v1\nrange 5 2\nnext 5\nevals 0\nrows 0\n"),
            Err(Inconsistent)
        );
    }

    #[test]
    #[should_panic(expected = "bad workunit range")]
    fn zero_start_rejected() {
        DockingCheckpoint::new(0, 3);
    }
}

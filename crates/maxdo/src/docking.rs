//! The cross-docking driver: `Etot(isep, irot, p1, p2)`.
//!
//! One *docking cell* is the computation the paper calls
//! `Etot(isep, irot, p1, p2)`: starting the ligand `p2` at position `isep`
//! on the regular array around receptor `p1`, with orientation couple
//! `irot`, minimise the interaction energy for each of the 10 `γ` twists
//! and keep the best (most negative) result. A full *docking map* for a
//! couple is all `Nsep(p1) × 21` cells; the map of phase I is all
//! `168²` couples.

use crate::energy::{CellList, EnergyParams};
use crate::geom::{EulerZyz, Pose, Vec3};
use crate::library::ProteinLibrary;
use crate::minimize::{minimize, MinimizeParams};
use crate::model::{Protein, ProteinId};
use crate::sampling::{starting_position, OrientationGrid, NGAMMA};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// One line of the MAXDo output: the optimum found from one
/// `(isep, irot)` docking cell.
///
/// §5.2: "The output of the MAXDo program is a simple text file that
/// contains on each line the coordinate of the ligand and its orientation,
/// and then the interaction energies values."
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DockingRow {
    /// Starting-position index, 1-based.
    pub isep: u32,
    /// Orientation-couple index, 1-based.
    pub irot: u32,
    /// Optimised ligand mass-centre coordinates (Å).
    pub position: Vec3,
    /// Euler angles of the best starting orientation (radians).
    pub orientation: EulerZyz,
    /// Lennard-Jones energy at the optimum (kcal·mol⁻¹).
    pub elj: f64,
    /// Electrostatic energy at the optimum (kcal·mol⁻¹).
    pub eelec: f64,
}

impl DockingRow {
    /// `Etot = Elj + Eelec`.
    pub fn etot(&self) -> f64 {
        self.elj + self.eelec
    }
}

/// Result of docking a range of cells, with the work accounting the cost
/// model is calibrated against.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DockingOutput {
    /// One row per `(isep, irot)` cell, in canonical order (`isep` major).
    pub rows: Vec<DockingRow>,
    /// Total energy/gradient evaluations performed.
    pub evaluations: u64,
}

impl DockingOutput {
    /// An empty output with row capacity for `cells` docking cells.
    pub fn with_capacity(cells: usize) -> Self {
        Self {
            rows: Vec::with_capacity(cells),
            evaluations: 0,
        }
    }

    /// Appends `other` — whose rows must follow `self`'s in canonical
    /// (`isep`-major) order — merging the work accounting. Both the
    /// serial range loop and the parallel map reduce through this one
    /// helper, so the two paths provably build identical outputs.
    pub fn merge(&mut self, other: DockingOutput) {
        debug_assert!(
            match (self.rows.last(), other.rows.first()) {
                (Some(prev), Some(next)) => (prev.isep, prev.irot) < (next.isep, next.irot),
                _ => true,
            },
            "merge would break canonical row order"
        );
        self.rows.extend(other.rows);
        self.evaluations += other.evaluations;
    }
}

/// A configured docking engine for one `(receptor, ligand)` couple.
pub struct DockingEngine<'a> {
    receptor: &'a Protein,
    ligand: &'a Protein,
    cells: CellList,
    grid: OrientationGrid,
    nsep: u32,
    energy_params: EnergyParams,
    minimize_params: MinimizeParams,
    tele: DockTelemetry,
}

/// Cached metric handles for the docking kernel (zero-sized when
/// telemetry is disabled). Counters are global and shared across rayon
/// workers — updates are relaxed atomics, so the parallel map stays
/// uncontended.
struct DockTelemetry {
    evaluations: &'static telemetry::Counter,
    cells_docked: &'static telemetry::Counter,
    iterations: &'static telemetry::Counter,
    couple_wall: &'static telemetry::Histogram,
}

impl DockTelemetry {
    fn new() -> Self {
        Self {
            evaluations: telemetry::counter("maxdo.energy.evaluations"),
            cells_docked: telemetry::counter("maxdo.cells.docked"),
            iterations: telemetry::counter("maxdo.minimizer.iterations"),
            couple_wall: telemetry::histogram("maxdo.couple.wall_us"),
        }
    }
}

impl<'a> DockingEngine<'a> {
    /// Builds an engine for a couple with `nsep` starting positions.
    pub fn new(
        receptor: &'a Protein,
        ligand: &'a Protein,
        nsep: u32,
        energy_params: EnergyParams,
        minimize_params: MinimizeParams,
    ) -> Self {
        assert!(nsep > 0, "nsep must be at least 1");
        let cells = CellList::build(receptor, energy_params.cutoff);
        Self {
            receptor,
            ligand,
            cells,
            grid: OrientationGrid::new(),
            nsep,
            energy_params,
            minimize_params,
            tele: DockTelemetry::new(),
        }
    }

    /// Engine for a couple taken from a library, using the library's
    /// `Nsep` table.
    pub fn for_couple(
        library: &'a ProteinLibrary,
        receptor: ProteinId,
        ligand: ProteinId,
        energy_params: EnergyParams,
        minimize_params: MinimizeParams,
    ) -> Self {
        Self::new(
            library.protein(receptor),
            library.protein(ligand),
            library.nsep(receptor),
            energy_params,
            minimize_params,
        )
    }

    /// Number of starting positions of this engine's receptor.
    pub fn nsep(&self) -> u32 {
        self.nsep
    }

    /// Number of orientation couples (the paper's `Nrot`, 21).
    pub fn nrot(&self) -> u32 {
        self.grid.couple_count() as u32
    }

    /// The receptor protein.
    pub fn receptor(&self) -> &Protein {
        self.receptor
    }

    /// The ligand protein.
    pub fn ligand(&self) -> &Protein {
        self.ligand
    }

    /// Docks one `(isep, irot)` cell: 10 γ-twist minimisations, best kept.
    pub fn dock_cell(&self, isep: u32, irot: u32) -> (DockingRow, u64) {
        let start_pos = starting_position(
            self.receptor,
            self.ligand.bounding_radius(),
            self.nsep,
            isep,
        );
        let mut best: Option<(f64, DockingRow)> = None;
        let mut evals = 0u64;
        for igamma in 0..NGAMMA as u32 {
            let angles = self.grid.orientation(irot, igamma);
            let start = Pose::from_euler(angles, start_pos);
            let res = minimize(
                self.receptor,
                &self.cells,
                self.ligand,
                start,
                &self.energy_params,
                &self.minimize_params,
            );
            evals += res.evaluations as u64;
            self.tele.iterations.add(res.iterations as u64);
            let etot = res.energy.total();
            if best.as_ref().is_none_or(|(b, _)| etot < *b) {
                best = Some((
                    etot,
                    DockingRow {
                        isep,
                        irot,
                        position: res.pose.translation,
                        orientation: angles,
                        elj: res.energy.elj,
                        eelec: res.energy.eelec,
                    },
                ));
            }
        }
        self.tele.evaluations.add(evals);
        self.tele.cells_docked.inc();
        (best.expect("NGAMMA > 0").1, evals)
    }

    /// Docks every orientation couple of one starting position: the unit of
    /// checkpointing (§4.3: "the checkpoint occurs only between starting
    /// positions").
    pub fn dock_position(&self, isep: u32) -> DockingOutput {
        let mut rows = Vec::with_capacity(self.nrot() as usize);
        let mut evaluations = 0;
        for irot in 1..=self.nrot() {
            let (row, e) = self.dock_cell(isep, irot);
            rows.push(row);
            evaluations += e;
        }
        DockingOutput { rows, evaluations }
    }

    /// Docks every orientation couple of one starting position in
    /// parallel over the shared thread pool.
    ///
    /// The checkpoint unit is the starting position (§4.3), so a
    /// volunteer agent that wants both between-position checkpoints *and*
    /// multicore execution parallelises inside the position: the 21
    /// orientation couples fan out over the pool and collect in order.
    /// Output is bit-identical to [`Self::dock_position`] — the collect
    /// preserves `irot` order and each cell is independent.
    pub fn dock_position_parallel(&self, isep: u32) -> DockingOutput {
        let cells: Vec<(DockingRow, u64)> = (1..=self.nrot())
            .into_par_iter()
            .map(|irot| self.dock_cell(isep, irot))
            .collect();
        let mut out = DockingOutput::with_capacity(cells.len());
        for (row, evals) in cells {
            out.rows.push(row);
            out.evaluations += evals;
        }
        out
    }

    /// Docks a contiguous inclusive range of starting positions — exactly
    /// the work of one workunit (§4.2).
    pub fn dock_range(&self, isep_start: u32, isep_end: u32) -> DockingOutput {
        assert!(
            isep_start >= 1 && isep_start <= isep_end && isep_end <= self.nsep,
            "bad isep range {isep_start}..={isep_end} (nsep {})",
            self.nsep
        );
        let mut out =
            DockingOutput::with_capacity(((isep_end - isep_start + 1) * self.nrot()) as usize);
        for isep in isep_start..=isep_end {
            out.merge(self.dock_position(isep));
        }
        out
    }

    /// Docks the full map for the couple in parallel over starting
    /// positions (rayon) — the "dedicated grid" style execution used for
    /// calibration runs.
    pub fn dock_map_parallel(&self) -> DockingOutput {
        let start = std::time::Instant::now();
        let outputs: Vec<DockingOutput> = (1..=self.nsep)
            .into_par_iter()
            .map(|isep| self.dock_position(isep))
            .collect();
        let mut out = DockingOutput::with_capacity(outputs.iter().map(|o| o.rows.len()).sum());
        for position in outputs {
            out.merge(position);
        }
        self.tele
            .couple_wall
            .record_seconds(start.elapsed().as_secs_f64());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::LibraryConfig;

    fn tiny_engine(lib: &ProteinLibrary) -> DockingEngine<'_> {
        DockingEngine::for_couple(
            lib,
            ProteinId(0),
            ProteinId(1),
            EnergyParams::default(),
            MinimizeParams {
                max_iterations: 12,
                ..Default::default()
            },
        )
    }

    fn tiny_lib() -> ProteinLibrary {
        ProteinLibrary::generate(LibraryConfig::tiny(2), 23)
    }

    #[test]
    fn dock_cell_returns_canonical_indices() {
        let lib = tiny_lib();
        let e = tiny_engine(&lib);
        let (row, evals) = e.dock_cell(1, 1);
        assert_eq!(row.isep, 1);
        assert_eq!(row.irot, 1);
        assert!(evals >= NGAMMA as u64, "at least one eval per γ");
        assert!(row.etot().is_finite());
        assert!(row.position.is_finite());
    }

    #[test]
    fn dock_position_covers_all_21_couples() {
        let lib = tiny_lib();
        let e = tiny_engine(&lib);
        let out = e.dock_position(2);
        assert_eq!(out.rows.len(), 21);
        for (i, row) in out.rows.iter().enumerate() {
            assert_eq!(row.irot, i as u32 + 1);
            assert_eq!(row.isep, 2);
        }
    }

    #[test]
    fn dock_range_row_count_and_order() {
        let lib = tiny_lib();
        let e = tiny_engine(&lib);
        let out = e.dock_range(1, 3);
        assert_eq!(out.rows.len(), 3 * 21);
        // isep-major canonical order.
        for w in out.rows.windows(2) {
            let key = |r: &DockingRow| (r.isep, r.irot);
            assert!(key(&w[0]) < key(&w[1]));
        }
    }

    #[test]
    fn docking_is_deterministic() {
        let lib = tiny_lib();
        let e = tiny_engine(&lib);
        let a = e.dock_range(1, 2);
        let b = e.dock_range(1, 2);
        assert_eq!(a, b);
    }

    #[test]
    fn cell_best_is_at_most_each_gamma_energy() {
        // The best-of-γ reduction means re-docking a single cell twice with
        // the same engine yields the same minimum; and the chosen energy is
        // the cell's row energy.
        let lib = tiny_lib();
        let e = tiny_engine(&lib);
        let (row, _) = e.dock_cell(1, 5);
        let (again, _) = e.dock_cell(1, 5);
        assert_eq!(row, again);
    }

    #[test]
    #[should_panic(expected = "bad isep range")]
    fn dock_range_validates_bounds() {
        let lib = tiny_lib();
        let e = tiny_engine(&lib);
        let bad = e.nsep() + 1;
        let _ = e.dock_range(1, bad);
    }

    #[test]
    fn parallel_map_matches_sequential() {
        let lib = ProteinLibrary::generate(
            LibraryConfig {
                separation_spacing: 30.0, // keep nsep tiny for the test
                ..LibraryConfig::tiny(2)
            },
            31,
        );
        let e = tiny_engine(&lib);
        let seq = e.dock_range(1, e.nsep());
        // Force genuinely threaded execution even on single-core hosts,
        // and check thread-count independence while at it.
        for threads in [1, 2, 4] {
            let par = rayon::with_threads(threads, || e.dock_map_parallel());
            assert_eq!(seq, par, "threads = {threads}");
        }
    }

    #[test]
    fn parallel_position_matches_sequential() {
        let lib = tiny_lib();
        let e = tiny_engine(&lib);
        let seq = e.dock_position(1);
        for threads in [1, 2, 4] {
            let par = rayon::with_threads(threads, || e.dock_position_parallel(1));
            assert_eq!(seq, par, "threads = {threads}");
        }
    }

    #[test]
    fn merge_concatenates_rows_and_accounting() {
        let lib = tiny_lib();
        let e = tiny_engine(&lib);
        let whole = e.dock_range(1, 3);
        let mut merged = DockingOutput::with_capacity(whole.rows.len());
        for isep in 1..=3 {
            merged.merge(e.dock_position(isep));
        }
        assert_eq!(merged, whole);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "canonical row order")]
    fn merge_rejects_out_of_order_rows() {
        let lib = tiny_lib();
        let e = tiny_engine(&lib);
        let mut out = e.dock_position(2);
        out.merge(e.dock_position(1));
    }

    #[test]
    fn asymmetry_of_the_docking_map() {
        // §2.1: Etot(isep, irot, p1, p2) ≠ Etot(isep, irot, p2, p1) in
        // general — swapping receptor and ligand changes the computation.
        let lib = tiny_lib();
        let (p0, p1) = (&lib.proteins()[0], &lib.proteins()[1]);
        let ep = EnergyParams::default();
        // Place each ligand at contact distance along +x of its receptor:
        // the two computations see different bead clouds and energies.
        let eval = |receptor: &Protein, ligand: &Protein| {
            let cells = crate::energy::CellList::build(receptor, ep.cutoff);
            let d = receptor.bounding_radius() + ligand.bounding_radius() * 0.5;
            let pose = crate::geom::Pose::from_euler(
                crate::geom::EulerZyz::default(),
                crate::geom::Vec3::new(d, 0.0, 0.0),
            );
            crate::energy::interaction_energy(receptor, &cells, ligand, &pose, &ep).total()
        };
        assert_ne!(eval(p0, p1), eval(p1, p0));
    }
}

//! FIRE — Fast Inertial Relaxation Engine — as an alternative rigid-body
//! minimiser.
//!
//! The paper does not say which local minimiser MAXDo used; the default
//! engine here ([`crate::minimize`]) is adaptive steepest descent. This
//! module provides FIRE (Bitzek et al., PRL 2006), the standard inertial
//! relaxation scheme of molecular simulation, over the same six rigid
//! degrees of freedom — used by the ablation bench to check that the
//! docking landscape, not the optimiser, determines the results, and
//! available to users who want faster relaxation on large couples.
//!
//! FIRE integrates damped Newtonian dynamics and adapts the timestep: it
//! accelerates while the velocity keeps pointing downhill (`P = F·v > 0`)
//! and freezes and restarts when it overshoots.

use crate::energy::{energy_and_gradient, CellList, EnergyParams};
use crate::geom::{Pose, Vec3};
use crate::minimize::MinimizeResult;
use crate::model::Protein;
use serde::{Deserialize, Serialize};

/// FIRE control parameters (the PRL 2006 defaults, scaled to Å/kcal).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FireParams {
    /// Maximum integration steps.
    pub max_steps: usize,
    /// Convergence threshold on the combined gradient norm.
    pub gradient_tolerance: f64,
    /// Initial timestep.
    pub dt_initial: f64,
    /// Maximum timestep.
    pub dt_max: f64,
    /// Timestep growth factor after `n_min` downhill steps.
    pub f_inc: f64,
    /// Timestep shrink factor on overshoot.
    pub f_dec: f64,
    /// Initial / reset velocity-mixing parameter α.
    pub alpha_start: f64,
    /// α decay factor.
    pub f_alpha: f64,
    /// Downhill steps required before accelerating.
    pub n_min: usize,
}

impl Default for FireParams {
    fn default() -> Self {
        Self {
            max_steps: 400,
            gradient_tolerance: 1e-3,
            dt_initial: 0.02,
            dt_max: 0.12,
            f_inc: 1.1,
            f_dec: 0.5,
            alpha_start: 0.1,
            f_alpha: 0.99,
            n_min: 5,
        }
    }
}

/// Minimises the interaction energy with FIRE. Returns the same record as
/// the steepest-descent engine so callers can swap them freely.
pub fn minimize_fire(
    receptor: &Protein,
    cells: &CellList,
    ligand: &Protein,
    start: Pose,
    energy_params: &EnergyParams,
    params: &FireParams,
) -> MinimizeResult {
    let lever = ligand.bounding_radius().max(1.0);
    let mut pose = start;
    let mut g = energy_and_gradient(receptor, cells, ligand, &pose, energy_params);
    let mut evaluations = 1usize;
    let mut best_pose = pose;
    let mut best_energy = g.energy;

    // Translational and angular velocities (mass and inertia set to 1 and
    // lever² respectively, folding units into the timestep).
    let mut v_t = Vec3::ZERO;
    let mut v_w = Vec3::ZERO;
    let mut dt = params.dt_initial;
    let mut alpha = params.alpha_start;
    let mut downhill_steps = 0usize;
    let mut converged = false;
    let mut iterations = 0usize;

    for _ in 0..params.max_steps {
        let grad_norm = g.force.norm() + g.torque.norm() / lever;
        if grad_norm < params.gradient_tolerance {
            converged = true;
            break;
        }
        // Generalised force: torque scaled onto the same footing as force.
        let f_t = g.force;
        let f_w = g.torque / (lever * lever);

        let power = f_t.dot(v_t) + f_w.dot(v_w);
        if power > 0.0 {
            downhill_steps += 1;
            // Mix velocity toward the force direction.
            let v_norm = (v_t.norm_sq() + v_w.norm_sq()).sqrt();
            let f_norm = (f_t.norm_sq() + f_w.norm_sq()).sqrt().max(1e-300);
            let mix = alpha * v_norm / f_norm;
            v_t = v_t * (1.0 - alpha) + f_t * mix;
            v_w = v_w * (1.0 - alpha) + f_w * mix;
            if downhill_steps > params.n_min {
                dt = (dt * params.f_inc).min(params.dt_max);
                alpha *= params.f_alpha;
            }
        } else {
            // Overshoot: freeze and restart cautiously.
            v_t = Vec3::ZERO;
            v_w = Vec3::ZERO;
            dt *= params.f_dec;
            alpha = params.alpha_start;
            downhill_steps = 0;
            if dt < 1e-9 {
                converged = true;
                break;
            }
        }
        // Semi-implicit Euler.
        v_t += f_t * dt;
        v_w += f_w * dt;
        pose = pose.perturbed(v_t * dt, v_w * dt);
        g = energy_and_gradient(receptor, cells, ligand, &pose, energy_params);
        evaluations += 1;
        iterations += 1;
        if g.energy.total() < best_energy.total() {
            best_energy = g.energy;
            best_pose = pose;
        }
    }

    // FIRE's trajectory can end slightly uphill of its best point; report
    // the best visited state (a valid local optimum estimate, and never
    // worse than the start).
    MinimizeResult {
        pose: best_pose,
        energy: best_energy,
        iterations,
        evaluations,
        converged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geom::EulerZyz;
    use crate::library::{LibraryConfig, ProteinLibrary};
    use crate::minimize::{minimize, MinimizeParams};

    fn fixture() -> (Protein, Protein) {
        let lib = ProteinLibrary::generate(LibraryConfig::tiny(2), 37);
        (lib.proteins()[0].clone(), lib.proteins()[1].clone())
    }

    fn start_pose(receptor: &Protein, ligand: &Protein) -> Pose {
        Pose::from_euler(
            EulerZyz {
                alpha: 0.4,
                beta: 1.0,
                gamma: 0.2,
            },
            Vec3::new(
                receptor.surface_radius() + ligand.bounding_radius() * 0.2,
                1.0,
                -2.0,
            ),
        )
    }

    #[test]
    fn fire_decreases_energy() {
        let (receptor, ligand) = fixture();
        let ep = EnergyParams::default();
        let cells = CellList::build(&receptor, ep.cutoff);
        let start = start_pose(&receptor, &ligand);
        let e0 = crate::energy::interaction_energy(&receptor, &cells, &ligand, &start, &ep).total();
        let res = minimize_fire(
            &receptor,
            &cells,
            &ligand,
            start,
            &ep,
            &FireParams::default(),
        );
        assert!(res.energy.total() <= e0, "{} -> {}", e0, res.energy.total());
        assert!(res.pose.translation.is_finite());
    }

    #[test]
    fn fire_is_deterministic() {
        let (receptor, ligand) = fixture();
        let ep = EnergyParams::default();
        let cells = CellList::build(&receptor, ep.cutoff);
        let start = start_pose(&receptor, &ligand);
        let a = minimize_fire(
            &receptor,
            &cells,
            &ligand,
            start,
            &ep,
            &FireParams::default(),
        );
        let b = minimize_fire(
            &receptor,
            &cells,
            &ligand,
            start,
            &ep,
            &FireParams::default(),
        );
        assert_eq!(a.energy, b.energy);
        assert_eq!(a.evaluations, b.evaluations);
    }

    #[test]
    fn fire_and_steepest_descent_find_comparable_minima() {
        // The ablation claim: the landscape, not the optimiser, decides.
        // Both minimisers must land in the same energy ballpark from the
        // same starts.
        let (receptor, ligand) = fixture();
        let ep = EnergyParams::default();
        let cells = CellList::build(&receptor, ep.cutoff);
        let mut fire_total = 0.0;
        let mut sd_total = 0.0;
        for k in 0..5 {
            let start = Pose::from_euler(
                EulerZyz {
                    alpha: 0.3 * k as f64,
                    beta: 0.5,
                    gamma: 0.0,
                },
                Vec3::new(receptor.surface_radius() + 1.0, k as f64, 0.0),
            );
            let f = minimize_fire(
                &receptor,
                &cells,
                &ligand,
                start,
                &ep,
                &FireParams::default(),
            );
            let s = minimize(
                &receptor,
                &cells,
                &ligand,
                start,
                &ep,
                &MinimizeParams {
                    max_iterations: 400,
                    ..Default::default()
                },
            );
            fire_total += f.energy.total();
            sd_total += s.energy.total();
        }
        // Within 30 % of each other in total depth (both negative).
        assert!(
            fire_total < 0.0 && sd_total < 0.0,
            "{fire_total} {sd_total}"
        );
        let ratio = fire_total / sd_total;
        assert!(
            (0.6..1.67).contains(&ratio),
            "optimisers disagree: FIRE {fire_total} vs SD {sd_total}"
        );
    }

    #[test]
    fn far_start_converges_immediately() {
        let (receptor, ligand) = fixture();
        let ep = EnergyParams::default();
        let cells = CellList::build(&receptor, ep.cutoff);
        let start = Pose::from_euler(EulerZyz::default(), Vec3::new(900.0, 0.0, 0.0));
        let res = minimize_fire(
            &receptor,
            &cells,
            &ligand,
            start,
            &ep,
            &FireParams::default(),
        );
        assert!(res.converged);
        assert_eq!(res.energy.total(), 0.0);
    }

    #[test]
    fn result_is_never_worse_than_start() {
        let (receptor, ligand) = fixture();
        let ep = EnergyParams::default();
        let cells = CellList::build(&receptor, ep.cutoff);
        // A clashing start with a violent gradient.
        let start = Pose::from_euler(EulerZyz::default(), Vec3::new(2.0, 0.0, 0.0));
        let e0 = crate::energy::interaction_energy(&receptor, &cells, &ligand, &start, &ep).total();
        let res = minimize_fire(
            &receptor,
            &cells,
            &ligand,
            start,
            &ep,
            &FireParams::default(),
        );
        assert!(res.energy.total() <= e0);
    }
}

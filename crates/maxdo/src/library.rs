//! Synthetic protein library.
//!
//! The HCMD phase-I target set is 168 real proteins selected from the
//! protein–protein docking benchmark of Mintseris et al.; those structures
//! are not redistributable here, so this module generates a *synthetic
//! catalog* of 168 reduced-model proteins whose statistical properties are
//! calibrated to everything the paper publishes about the real set:
//!
//! * the distribution of sizes is log-normal and strongly skewed, so that
//!   the number of starting positions `Nsep(p)` reproduces Figure 2 (most
//!   proteins below 3 000 starting positions, exactly one above 8 000);
//! * the pairwise compute-time matrix derived from the catalog reproduces
//!   Table 1 (mean 671 s, σ ≈ 968 s, median 384 s, min ≈ 6 s,
//!   max ≈ 46 347 s on the reference processor);
//! * roughly 10 proteins carry ~30 % of the total processing time (§4.1).
//!
//! Proteins are built as compact self-avoiding-ish random walks of backbone
//! beads with stochastic side-chain beads, giving realistic globular shapes
//! (radius ∝ n^⅓) for the docking kernel to chew on.

use crate::geom::Vec3;
use crate::model::{Bead, BeadKind, Protein, ProteinId};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Number of proteins in the HCMD phase-I target set.
pub const PHASE1_PROTEIN_COUNT: usize = 168;

/// Median residue count of the synthetic catalog (calibration input).
pub const MEDIAN_RESIDUES: f64 = 170.0;

/// Log-normal σ of the residue-count distribution (calibration input; see
/// DESIGN.md — chosen so the compute-time matrix matches Table 1's
/// coefficient of variation).
pub const SIGMA_LOG_RESIDUES: f64 = 0.70;

/// Residue count of the single deliberately oversized protein — the paper's
/// Figure 2 shows exactly one protein with more than 8 000 starting
/// positions, and Table 1's max entry (46 347 s) implies one protein about
/// an order of magnitude heavier than the median.
pub const GIANT_RESIDUES: usize = 1370;

/// Axis stretch applied to the giant: elongated (multi-domain) shape, which
/// is what gives it its outsized interaction surface (> 8 000 starting
/// positions) without blowing up the compute-time matrix maximum.
pub const GIANT_ELONGATION: f64 = 1.8;

/// Spacing (Å) between ligand starting positions on the interaction
/// surface, used to derive `Nsep(p)` from the protein's surface radius.
/// Calibrated so the catalog's Nsep distribution matches Figure 2 and the
/// formula-(1) total matches §4.1's 1,488 CPU-years.
pub const PHASE1_SEPARATION_SPACING: f64 = 1.89;

/// Probability that a residue carries a side-chain bead.
const SIDECHAIN_PROBABILITY: f64 = 0.7;

/// Bond length between consecutive backbone beads (Å), the Cα–Cα distance.
const BACKBONE_STEP: f64 = 3.8;

/// Configuration for generating a synthetic protein library.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LibraryConfig {
    /// Number of proteins.
    pub count: usize,
    /// Median residue count of the log-normal size distribution.
    pub median_residues: f64,
    /// σ of `ln`(residue count).
    pub sigma_log_residues: f64,
    /// Residue count bounds (clamping the log-normal draws).
    pub min_residues: usize,
    /// Upper clamp of ordinary draws (the giant is exempt).
    pub max_residues: usize,
    /// If true, the largest protein is replaced by a giant of
    /// [`GIANT_RESIDUES`] residues (phase-I realism: one outlier).
    pub include_giant: bool,
    /// Starting-position spacing for the `Nsep` table (Å).
    pub separation_spacing: f64,
}

impl LibraryConfig {
    /// The phase-I catalog configuration (168 proteins, calibrated).
    pub fn phase1() -> Self {
        Self {
            count: PHASE1_PROTEIN_COUNT,
            median_residues: MEDIAN_RESIDUES,
            sigma_log_residues: SIGMA_LOG_RESIDUES,
            min_residues: 40,
            max_residues: 1100,
            include_giant: true,
            separation_spacing: PHASE1_SEPARATION_SPACING,
        }
    }

    /// A tiny configuration for unit tests and examples (fast to dock for
    /// real with the energy kernel).
    pub fn tiny(count: usize) -> Self {
        Self {
            count,
            median_residues: 24.0,
            sigma_log_residues: 0.4,
            min_residues: 10,
            max_residues: 60,
            include_giant: false,
            separation_spacing: 6.0,
        }
    }
}

/// A set of proteins plus the per-protein `Nsep` table ("the starting
/// positions are evaluated by an other program for each protein" — §2.1;
/// [`crate::sampling`] is that program here).
#[derive(Debug, Clone)]
pub struct ProteinLibrary {
    proteins: Vec<Protein>,
    nsep: Vec<u32>,
    config: LibraryConfig,
}

impl ProteinLibrary {
    /// Generates a library deterministically from a seed.
    pub fn generate(config: LibraryConfig, seed: u64) -> Self {
        assert!(config.count > 0, "library must contain proteins");
        let mut sizes: Vec<usize> = (0..config.count)
            .map(|i| {
                let mut rng = stream_rng(seed, 0xA11CE, i as u64);
                let z: f64 = sample_standard_normal(&mut rng);
                let n = (config.median_residues * (config.sigma_log_residues * z).exp()).round()
                    as usize;
                n.clamp(config.min_residues, config.max_residues)
            })
            .collect();
        if config.include_giant {
            // Replace the largest ordinary draw with the single outlier the
            // paper shows in Figure 2.
            let imax = sizes
                .iter()
                .enumerate()
                .max_by_key(|(_, &n)| n)
                .map(|(i, _)| i)
                .expect("non-empty");
            sizes[imax] = GIANT_RESIDUES;
        }
        let giant_index = if config.include_giant {
            sizes.iter().position(|&n| n == GIANT_RESIDUES)
        } else {
            None
        };
        let proteins: Vec<Protein> = sizes
            .iter()
            .enumerate()
            .map(|(i, &n)| {
                let mut rng = stream_rng(seed, 0xB0D1E5, i as u64);
                let elongation = if Some(i) == giant_index {
                    GIANT_ELONGATION
                } else {
                    1.0
                };
                generate_protein(
                    ProteinId(i as u32),
                    format!("P{i:03}"),
                    n,
                    elongation,
                    &mut rng,
                )
            })
            .collect();
        let nsep = proteins
            .iter()
            .map(|p| nsep_for(p, config.separation_spacing))
            .collect();
        Self {
            proteins,
            nsep,
            config,
        }
    }

    /// The calibrated HCMD phase-I catalog: 168 synthetic proteins from a
    /// fixed seed. Deterministic across runs and platforms.
    pub fn phase1_catalog() -> Self {
        Self::generate(LibraryConfig::phase1(), 0x4C4D_4843) // "HCMD"
    }

    /// The proteins, in catalog order.
    pub fn proteins(&self) -> &[Protein] {
        &self.proteins
    }

    /// Number of proteins.
    pub fn len(&self) -> usize {
        self.proteins.len()
    }

    /// True when the library is empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.proteins.is_empty()
    }

    /// A protein by id.
    pub fn protein(&self, id: ProteinId) -> &Protein {
        &self.proteins[id.0 as usize]
    }

    /// `Nsep(p)` — the number of ligand starting positions around receptor
    /// `p` (§2.1: "the number of starting positions ... is directly linked
    /// with the size and shape of the protein").
    pub fn nsep(&self, id: ProteinId) -> u32 {
        self.nsep[id.0 as usize]
    }

    /// The whole `Nsep` table, in catalog order.
    pub fn nsep_table(&self) -> &[u32] {
        &self.nsep
    }

    /// The generation configuration.
    pub fn config(&self) -> &LibraryConfig {
        &self.config
    }

    /// Iterator over all ordered protein couples `(p1, p2)` — MAXDo is not
    /// symmetric (§2.1), so all `len()²` couples are distinct work.
    pub fn couples(&self) -> impl Iterator<Item = (ProteinId, ProteinId)> + '_ {
        let n = self.proteins.len() as u32;
        (0..n).flat_map(move |i| (0..n).map(move |j| (ProteinId(i), ProteinId(j))))
    }

    /// A copy of the library with every `Nsep` divided by `divisor`
    /// (rounding up, minimum 1).
    ///
    /// Used to run *scaled* campaign simulations: dividing the number of
    /// starting positions by S and the host population by S preserves
    /// campaign duration, per-workunit statistics and all ratios, while
    /// shrinking the event count S-fold. See DESIGN.md ("scale gate").
    pub fn with_scaled_nsep(&self, divisor: u32) -> Self {
        assert!(divisor >= 1, "divisor must be at least 1");
        let mut scaled = self.clone();
        for n in &mut scaled.nsep {
            *n = n.div_ceil(divisor).max(1);
        }
        scaled
    }
}

/// Derives `Nsep` from the receptor's interaction-surface area and the
/// position spacing: the number of `spacing × spacing` patches tiling the
/// surface sphere.
pub fn nsep_for(protein: &Protein, spacing: f64) -> u32 {
    assert!(spacing > 0.0, "spacing must be positive");
    let r = protein.surface_radius();
    let count = (4.0 * std::f64::consts::PI * r * r / (spacing * spacing)).round();
    (count as u32).max(1)
}

/// Generates one compact globular protein with `n_residues` residues;
/// `elongation > 1` stretches it along z into a prolate (multi-domain)
/// shape after generation.
fn generate_protein(
    id: ProteinId,
    name: String,
    n_residues: usize,
    elongation: f64,
    rng: &mut ChaCha8Rng,
) -> Protein {
    assert!(n_residues > 0);
    // Target globule radius: density of ~one residue per (4.3 Å)³ sphere
    // gives R ≈ 3.2 n^⅓, matching real protein scaling.
    let confine_radius = 3.2 * (n_residues as f64).cbrt();
    let mut beads = Vec::with_capacity((n_residues as f64 * 1.7) as usize + 4);
    let mut pos = Vec3::ZERO;
    for _ in 0..n_residues {
        beads.push(Bead {
            position: pos,
            kind: BeadKind::Backbone,
        });
        if rng.gen::<f64>() < SIDECHAIN_PROBABILITY {
            let dir = random_unit(rng);
            beads.push(Bead {
                position: pos + dir * 2.5,
                kind: sidechain_kind(rng),
            });
        }
        // Random-walk step with a harmonic pull back toward the origin so
        // the chain stays a compact globule instead of a loose coil.
        let raw = random_unit(rng);
        let pull = if pos.norm() > 0.0 {
            let strength = (pos.norm() / confine_radius).powi(2).min(4.0);
            -(pos.normalized().expect("non-zero")) * strength
        } else {
            Vec3::ZERO
        };
        let dir = (raw + pull)
            .normalized()
            .unwrap_or(Vec3::new(0.0, 0.0, 1.0));
        pos += dir * BACKBONE_STEP;
    }
    if elongation != 1.0 {
        for b in &mut beads {
            b.position.z *= elongation;
        }
    }
    Protein::new(id, name, beads)
}

/// Side-chain bead kind frequencies (roughly matching amino-acid
/// composition: half apolar, ~30 % polar, ~20 % charged).
fn sidechain_kind(rng: &mut ChaCha8Rng) -> BeadKind {
    let u: f64 = rng.gen();
    if u < 0.50 {
        BeadKind::Apolar
    } else if u < 0.80 {
        BeadKind::Polar
    } else if u < 0.90 {
        BeadKind::Positive
    } else {
        BeadKind::Negative
    }
}

/// A uniformly random unit vector.
fn random_unit(rng: &mut ChaCha8Rng) -> Vec3 {
    // Marsaglia rejection from the cube.
    loop {
        let v = Vec3::new(
            rng.gen::<f64>() * 2.0 - 1.0,
            rng.gen::<f64>() * 2.0 - 1.0,
            rng.gen::<f64>() * 2.0 - 1.0,
        );
        let n2 = v.norm_sq();
        if n2 > 1e-6 && n2 <= 1.0 {
            return v / n2.sqrt();
        }
    }
}

/// A standard normal via Box–Muller.
fn sample_standard_normal(rng: &mut ChaCha8Rng) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(1e-12);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Derives an independent deterministic RNG stream from `(seed, domain,
/// index)`. Each protein draws from its own stream so inserting or removing
/// proteins never perturbs the others.
fn stream_rng(seed: u64, domain: u64, index: u64) -> ChaCha8Rng {
    // SplitMix64-style mixing of the three inputs into a 256-bit key.
    let mut state = seed ^ domain.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    let mut key = [0u8; 32];
    let words = [next() ^ index, next().wrapping_add(index), next(), next()];
    for (chunk, w) in key.chunks_exact_mut(8).zip(words) {
        chunk.copy_from_slice(&w.to_le_bytes());
    }
    ChaCha8Rng::from_seed(key)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = ProteinLibrary::generate(LibraryConfig::tiny(5), 42);
        let b = ProteinLibrary::generate(LibraryConfig::tiny(5), 42);
        assert_eq!(a.proteins(), b.proteins());
        assert_eq!(a.nsep_table(), b.nsep_table());
    }

    #[test]
    fn different_seeds_differ() {
        let a = ProteinLibrary::generate(LibraryConfig::tiny(5), 1);
        let b = ProteinLibrary::generate(LibraryConfig::tiny(5), 2);
        assert_ne!(a.proteins(), b.proteins());
    }

    #[test]
    fn phase1_catalog_has_168_proteins() {
        let lib = ProteinLibrary::phase1_catalog();
        assert_eq!(lib.len(), PHASE1_PROTEIN_COUNT);
        assert!(!lib.is_empty());
    }

    #[test]
    fn proteins_are_globular() {
        let lib = ProteinLibrary::generate(LibraryConfig::tiny(8), 7);
        for p in lib.proteins() {
            // Radius of gyration should scale like a globule, not a coil:
            // well under the fully extended length.
            let n = p.bead_count() as f64;
            let extended = n * BACKBONE_STEP;
            assert!(p.radius_of_gyration() < extended / 4.0);
            assert!(p.bounding_radius() > 0.0);
        }
    }

    #[test]
    fn nsep_scales_with_surface_area() {
        let lib = ProteinLibrary::phase1_catalog();
        let (mut smallest, mut largest) = (usize::MAX, 0usize);
        let (mut small_id, mut large_id) = (ProteinId(0), ProteinId(0));
        for p in lib.proteins() {
            if p.bead_count() < smallest {
                smallest = p.bead_count();
                small_id = p.id;
            }
            if p.bead_count() > largest {
                largest = p.bead_count();
                large_id = p.id;
            }
        }
        assert!(lib.nsep(large_id) > lib.nsep(small_id));
    }

    #[test]
    fn figure2_shape_most_below_3000_one_above_8000() {
        let lib = ProteinLibrary::phase1_catalog();
        let below_3000 = lib.nsep_table().iter().filter(|&&n| n < 3000).count();
        let above_8000 = lib.nsep_table().iter().filter(|&&n| n > 8000).count();
        assert!(
            below_3000 as f64 >= 0.55 * lib.len() as f64,
            "only {below_3000}/168 below 3000"
        );
        assert_eq!(above_8000, 1, "exactly one outlier expected");
    }

    #[test]
    fn couples_enumerates_nsquared_ordered_pairs() {
        let lib = ProteinLibrary::generate(LibraryConfig::tiny(4), 3);
        let couples: Vec<_> = lib.couples().collect();
        assert_eq!(couples.len(), 16);
        // Both (a,b) and (b,a) are present: MAXDo is not symmetric.
        assert!(couples.contains(&(ProteinId(1), ProteinId(2))));
        assert!(couples.contains(&(ProteinId(2), ProteinId(1))));
        assert!(couples.contains(&(ProteinId(0), ProteinId(0))));
    }

    #[test]
    fn nsep_for_small_protein_is_at_least_one() {
        let lib = ProteinLibrary::generate(LibraryConfig::tiny(1), 9);
        assert!(nsep_for(&lib.proteins()[0], 1e6) >= 1);
    }

    #[test]
    #[should_panic(expected = "spacing must be positive")]
    fn nsep_rejects_zero_spacing() {
        let lib = ProteinLibrary::generate(LibraryConfig::tiny(1), 9);
        nsep_for(&lib.proteins()[0], 0.0);
    }

    #[test]
    fn giant_is_the_largest() {
        let lib = ProteinLibrary::phase1_catalog();
        let max_beads = lib.proteins().iter().map(|p| p.bead_count()).max().unwrap();
        // The giant has ~1.7 beads per residue over 2000 residues.
        assert!(
            max_beads as f64 > GIANT_RESIDUES as f64 * 1.4,
            "max beads {max_beads}"
        );
    }

    #[test]
    fn stream_rng_streams_are_independent() {
        use rand::RngCore;
        let mut a = stream_rng(1, 2, 3);
        let mut b = stream_rng(1, 2, 4);
        let c = stream_rng(1, 2, 3);
        assert_ne!(a.next_u64(), b.next_u64());
        let mut a2 = stream_rng(1, 2, 3);
        let _ = c;
        assert_eq!(a2.next_u64(), {
            let mut a3 = stream_rng(1, 2, 3);
            a3.next_u64()
        });
        let _ = a;
    }
}

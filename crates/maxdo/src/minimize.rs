//! Rigid-body energy minimisation.
//!
//! §2.1: "the minimization of the interaction energy is computed according
//! to 6 variables: the space coordinates x, y, z of the mass center of the
//! ligand and the orientation of the ligand α, β, γ." The proteins stay
//! rigid; only the ligand pose moves.
//!
//! The minimiser is steepest descent on the rigid manifold with adaptive
//! step control (grow on success, backtrack on failure) — robust on the
//! stiff, softened LJ landscape and deterministic, which the downstream
//! cost model relies on (§4.1 property 1: "The MAXDo program has a
//! reproducible computing time").

use crate::energy::{energy_and_gradient, CellList, EnergyBreakdown, EnergyParams};
use crate::geom::{Pose, Vec3};
use crate::model::Protein;
use serde::{Deserialize, Serialize};

/// Stopping and step-control parameters of the minimiser.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MinimizeParams {
    /// Maximum number of accepted iterations.
    pub max_iterations: usize,
    /// Convergence threshold on the gradient norm (force in
    /// kcal·mol⁻¹·Å⁻¹ plus torque in kcal·mol⁻¹·rad⁻¹).
    pub gradient_tolerance: f64,
    /// Initial translation step in Å per unit force.
    pub initial_step: f64,
    /// Step growth factor after an accepted move.
    pub grow: f64,
    /// Step shrink factor after a rejected move.
    pub shrink: f64,
    /// Smallest step before declaring convergence.
    pub min_step: f64,
}

impl Default for MinimizeParams {
    fn default() -> Self {
        Self {
            max_iterations: 200,
            gradient_tolerance: 1e-3,
            initial_step: 0.05,
            grow: 1.2,
            shrink: 0.5,
            min_step: 1e-7,
        }
    }
}

/// Outcome of one minimisation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MinimizeResult {
    /// The locally optimal pose.
    pub pose: Pose,
    /// Energy at the final pose.
    pub energy: EnergyBreakdown,
    /// Accepted descent iterations performed.
    pub iterations: usize,
    /// Total energy/gradient evaluations (incl. rejected trial steps) —
    /// the unit of computational work the cost model counts.
    pub evaluations: usize,
    /// Whether the gradient tolerance was reached (as opposed to running
    /// out of iterations or step size).
    pub converged: bool,
}

/// Minimises the interaction energy of `ligand` starting from `start`,
/// holding `receptor` fixed.
pub fn minimize(
    receptor: &Protein,
    cells: &CellList,
    ligand: &Protein,
    start: Pose,
    energy_params: &EnergyParams,
    params: &MinimizeParams,
) -> MinimizeResult {
    let mut pose = start;
    let mut g = energy_and_gradient(receptor, cells, ligand, &pose, energy_params);
    let mut evaluations = 1;
    let mut step = params.initial_step;
    let mut iterations = 0;
    let mut converged = false;

    // Rotations are scaled by the ligand's lever arm so a unit of torque
    // moves surface beads about as far as a unit of force moves the centre.
    let lever = ligand.bounding_radius().max(1.0);

    for _ in 0..params.max_iterations {
        let grad_norm = g.force.norm() + g.torque.norm() / lever;
        if grad_norm < params.gradient_tolerance {
            converged = true;
            break;
        }
        // Trial move along the negative gradient (force/torque already
        // point downhill: they are −∂E/∂q).
        let mut accepted = false;
        while step >= params.min_step {
            let dt = g.force * step;
            let dw = g.torque * (step / (lever * lever));
            let trial = pose.perturbed(dt, dw);
            let tg = energy_and_gradient(receptor, cells, ligand, &trial, energy_params);
            evaluations += 1;
            if tg.energy.total() < g.energy.total() {
                pose = trial;
                g = tg;
                step *= params.grow;
                accepted = true;
                break;
            }
            step *= params.shrink;
        }
        if !accepted {
            // Step collapsed to zero: numerically at a local minimum.
            converged = true;
            break;
        }
        iterations += 1;
    }

    outcome_counters()[usize::from(converged)].inc();
    MinimizeResult {
        pose,
        energy: g.energy,
        iterations,
        evaluations,
        converged,
    }
}

/// `[exhausted, converged]` outcome counters, resolved once. One atomic
/// load per minimisation (hundreds of energy evaluations), so the cost is
/// invisible even in calibration sweeps.
fn outcome_counters() -> &'static [&'static telemetry::Counter; 2] {
    static COUNTERS: std::sync::OnceLock<[&'static telemetry::Counter; 2]> =
        std::sync::OnceLock::new();
    COUNTERS.get_or_init(|| {
        [
            telemetry::counter("maxdo.minimize.exhausted"),
            telemetry::counter("maxdo.minimize.converged"),
        ]
    })
}

/// Convenience wrapper: pull a ligand placed along `+x` at separation
/// `distance` straight toward the receptor and minimise. Used by examples
/// and tests.
pub fn minimize_from_distance(
    receptor: &Protein,
    ligand: &Protein,
    distance: f64,
    energy_params: &EnergyParams,
    params: &MinimizeParams,
) -> MinimizeResult {
    let cells = CellList::build(receptor, energy_params.cutoff);
    let start = Pose {
        rotation: crate::geom::Mat3::IDENTITY,
        translation: Vec3::new(distance, 0.0, 0.0),
    };
    minimize(receptor, &cells, ligand, start, energy_params, params)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geom::EulerZyz;
    use crate::library::{LibraryConfig, ProteinLibrary};

    fn small_pair() -> (Protein, Protein) {
        let lib = ProteinLibrary::generate(LibraryConfig::tiny(2), 17);
        (lib.proteins()[0].clone(), lib.proteins()[1].clone())
    }

    #[test]
    fn minimization_decreases_energy() {
        let (receptor, ligand) = small_pair();
        let ep = EnergyParams::default();
        let cells = CellList::build(&receptor, ep.cutoff);
        let start = Pose::from_euler(
            EulerZyz::default(),
            Vec3::new(
                receptor.surface_radius() + ligand.bounding_radius() * 0.2,
                0.0,
                0.0,
            ),
        );
        let e0 = crate::energy::interaction_energy(&receptor, &cells, &ligand, &start, &ep).total();
        let res = minimize(
            &receptor,
            &cells,
            &ligand,
            start,
            &ep,
            &MinimizeParams::default(),
        );
        assert!(
            res.energy.total() <= e0,
            "minimiser increased energy: {} -> {}",
            e0,
            res.energy.total()
        );
        assert!(res.evaluations >= 1);
    }

    #[test]
    fn minimization_is_deterministic() {
        let (receptor, ligand) = small_pair();
        let ep = EnergyParams::default();
        let mp = MinimizeParams::default();
        let a = minimize_from_distance(&receptor, &ligand, 20.0, &ep, &mp);
        let b = minimize_from_distance(&receptor, &ligand, 20.0, &ep, &mp);
        assert_eq!(a.energy, b.energy);
        assert_eq!(a.iterations, b.iterations);
        assert_eq!(a.evaluations, b.evaluations);
        assert_eq!(a.pose, b.pose);
    }

    #[test]
    fn final_gradient_is_small_when_converged() {
        let (receptor, ligand) = small_pair();
        let ep = EnergyParams::default();
        let mp = MinimizeParams {
            max_iterations: 2000,
            ..Default::default()
        };
        let res = minimize_from_distance(
            &receptor,
            &ligand,
            receptor.surface_radius() + 1.0,
            &ep,
            &mp,
        );
        if res.converged {
            let cells = CellList::build(&receptor, ep.cutoff);
            let g = energy_and_gradient(&receptor, &cells, &ligand, &res.pose, &ep);
            let lever = ligand.bounding_radius().max(1.0);
            let norm = g.force.norm() + g.torque.norm() / lever;
            // Either the analytic tolerance was met or the step collapsed at
            // a numerical minimum; both imply a small gradient or a flat
            // landscape. Allow a loose bound.
            assert!(norm < 1.0, "gradient still large: {norm}");
        }
    }

    #[test]
    fn far_apart_pair_converges_immediately() {
        let (receptor, ligand) = small_pair();
        let ep = EnergyParams::default();
        // Far outside the cutoff: zero energy, zero gradient.
        let res = minimize_from_distance(&receptor, &ligand, 500.0, &ep, &Default::default());
        assert!(res.converged);
        assert_eq!(res.iterations, 0);
        assert_eq!(res.energy.total(), 0.0);
    }

    #[test]
    fn iteration_budget_is_respected() {
        let (receptor, ligand) = small_pair();
        let ep = EnergyParams::default();
        let mp = MinimizeParams {
            max_iterations: 3,
            gradient_tolerance: 0.0,
            ..Default::default()
        };
        let res = minimize_from_distance(&receptor, &ligand, 15.0, &ep, &mp);
        assert!(res.iterations <= 3);
    }

    #[test]
    fn attractive_start_moves_ligand_toward_receptor() {
        let (receptor, ligand) = small_pair();
        let ep = EnergyParams::default();
        let d0 = receptor.surface_radius() + ligand.bounding_radius() * 0.3;
        let res = minimize_from_distance(&receptor, &ligand, d0, &ep, &Default::default());
        // With a negative final energy the ligand must have found contact;
        // either way it should not have flown off to infinity.
        assert!(res.pose.translation.norm() < d0 + 10.0);
        assert!(res.pose.translation.is_finite());
    }
}

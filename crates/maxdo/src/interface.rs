//! Interaction-site analysis — the science the docking map is *for*.
//!
//! §2: the project's goal is "screening a database containing thousands of
//! proteins for functional sites involved in binding to other proteins
//! targets", following Sacquin-Mora et al., *Identification of protein
//! interaction partners and protein-protein interaction sites via
//! cross-docking simulations*. Phase I produced the raw docking maps; the
//! downstream analysis extracts, per receptor:
//!
//! * the **binding site**: receptor beads that are repeatedly contacted by
//!   low-energy docked poses across many ligands (the *contact
//!   propensity*);
//! * the **partner ranking**: ligands ordered by their best interaction
//!   energy with the receptor ("see whether these two proteins are likely
//!   to interact, should they ever meet in a biological system" — §2.1).
//!
//! This module implements both over [`crate::docking::DockingRow`] maps.

use crate::energy::EnergyParams;
use crate::geom::Pose;
use crate::model::{Protein, ProteinId};
use serde::{Deserialize, Serialize};

/// Per-bead contact statistics of a receptor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ContactPropensity {
    /// The receptor the analysis belongs to.
    pub receptor: ProteinId,
    /// For each receptor bead, the number of low-energy poses that
    /// contacted it.
    pub contacts: Vec<u32>,
    /// Number of poses analysed.
    pub poses: u32,
}

impl ContactPropensity {
    /// Normalised propensity per bead, in `[0, 1]`.
    pub fn normalized(&self) -> Vec<f64> {
        let peak = self.contacts.iter().copied().max().unwrap_or(0).max(1) as f64;
        self.contacts.iter().map(|&c| c as f64 / peak).collect()
    }

    /// Bead indices of the predicted binding site: propensity above
    /// `threshold` of the peak.
    pub fn binding_site(&self, threshold: f64) -> Vec<usize> {
        assert!((0.0..=1.0).contains(&threshold), "threshold in [0,1]");
        self.normalized()
            .iter()
            .enumerate()
            .filter(|(_, &p)| p >= threshold)
            .map(|(i, _)| i)
            .collect()
    }
}

/// Accumulates contact statistics over docked poses.
///
/// `energy_quantile` selects which poses count as "low energy": a pose
/// participates when its `Etot` is within the best `energy_quantile`
/// fraction of the map (the cross-docking papers use the lowest-energy
/// tail of the minima distribution).
pub fn contact_propensity(
    receptor: &Protein,
    ligand: &Protein,
    rows: &[crate::docking::DockingRow],
    energy_quantile: f64,
    params: &EnergyParams,
) -> ContactPropensity {
    assert!(
        (0.0..=1.0).contains(&energy_quantile) && energy_quantile > 0.0,
        "quantile in (0,1]"
    );
    assert!(!rows.is_empty(), "empty docking map");
    // Energy cutoff at the requested quantile.
    let mut energies: Vec<f64> = rows.iter().map(|r| r.etot()).collect();
    energies.sort_by(|a, b| a.partial_cmp(b).expect("finite energies"));
    let idx = ((energies.len() as f64 * energy_quantile).ceil() as usize).clamp(1, energies.len());
    let cutoff = energies[idx - 1];

    let contact_dist = params.cutoff * 0.6; // contacts are closer than the
                                            // interaction cutoff
    let mut contacts = vec![0u32; receptor.bead_count()];
    let mut poses = 0u32;
    for row in rows.iter().filter(|r| r.etot() <= cutoff) {
        poses += 1;
        let pose = Pose::from_euler(row.orientation, row.position);
        for lbead in ligand.beads() {
            let lp = pose.apply(lbead.position);
            for (i, rbead) in receptor.beads().iter().enumerate() {
                if lp.distance(rbead.position) < contact_dist {
                    contacts[i] += 1;
                }
            }
        }
    }
    ContactPropensity {
        receptor: receptor.id,
        contacts,
        poses,
    }
}

/// One entry of a receptor's partner ranking.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PartnerScore {
    /// The candidate partner (ligand).
    pub ligand: ProteinId,
    /// Best (most negative) interaction energy found in the map.
    pub best_etot: f64,
    /// Mean of the 10 best energies (more robust than the single best).
    pub top10_mean: f64,
}

/// Ranks candidate partners of a receptor from their docking maps.
///
/// `maps` pairs each ligand with its docking rows against the receptor;
/// the returned ranking is strongest interaction first.
pub fn rank_partners(maps: &[(ProteinId, &[crate::docking::DockingRow])]) -> Vec<PartnerScore> {
    let mut scores: Vec<PartnerScore> = maps
        .iter()
        .filter(|(_, rows)| !rows.is_empty())
        .map(|&(ligand, rows)| {
            let mut energies: Vec<f64> = rows.iter().map(|r| r.etot()).collect();
            energies.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            let k = energies.len().min(10);
            PartnerScore {
                ligand,
                best_etot: energies[0],
                top10_mean: energies[..k].iter().sum::<f64>() / k as f64,
            }
        })
        .collect();
    scores.sort_by(|a, b| a.top10_mean.partial_cmp(&b.top10_mean).expect("finite"));
    scores
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::docking::{DockingEngine, DockingRow};
    use crate::energy::EnergyParams;
    use crate::library::{LibraryConfig, ProteinLibrary};
    use crate::minimize::MinimizeParams;

    fn docked_map(seed: u64) -> (ProteinLibrary, Vec<DockingRow>) {
        let lib = ProteinLibrary::generate(LibraryConfig::tiny(2), seed);
        let engine = DockingEngine::new(
            &lib.proteins()[0],
            &lib.proteins()[1],
            6,
            EnergyParams::default(),
            MinimizeParams {
                max_iterations: 20,
                ..Default::default()
            },
        );
        let rows = engine.dock_range(1, 6).rows;
        (lib, rows)
    }

    #[test]
    fn propensity_counts_are_bounded_by_poses_and_beads() {
        let (lib, rows) = docked_map(3);
        let cp = contact_propensity(
            &lib.proteins()[0],
            &lib.proteins()[1],
            &rows,
            0.25,
            &EnergyParams::default(),
        );
        assert_eq!(cp.contacts.len(), lib.proteins()[0].bead_count());
        assert!(cp.poses >= 1);
        assert!(cp.poses as usize <= rows.len());
        // A bead can be contacted by several ligand beads per pose, but
        // never more than ligand beads × poses times.
        let max_possible = cp.poses as usize * lib.proteins()[1].bead_count();
        assert!(cp.contacts.iter().all(|&c| (c as usize) <= max_possible));
    }

    #[test]
    fn binding_site_is_localized() {
        // Low-energy poses cluster somewhere on the surface, so the
        // binding site should be a strict subset of the beads.
        let (lib, rows) = docked_map(3);
        let cp = contact_propensity(
            &lib.proteins()[0],
            &lib.proteins()[1],
            &rows,
            0.2,
            &EnergyParams::default(),
        );
        let site = cp.binding_site(0.5);
        assert!(!site.is_empty(), "no predicted site");
        assert!(
            site.len() < lib.proteins()[0].bead_count(),
            "site covers the whole protein"
        );
        // Site indices are valid and sorted.
        assert!(site.windows(2).all(|w| w[0] < w[1]));
        assert!(*site.last().unwrap() < lib.proteins()[0].bead_count());
    }

    #[test]
    fn tighter_quantile_uses_fewer_poses() {
        let (lib, rows) = docked_map(3);
        let loose = contact_propensity(
            &lib.proteins()[0],
            &lib.proteins()[1],
            &rows,
            1.0,
            &EnergyParams::default(),
        );
        let tight = contact_propensity(
            &lib.proteins()[0],
            &lib.proteins()[1],
            &rows,
            0.1,
            &EnergyParams::default(),
        );
        assert!(tight.poses < loose.poses);
        assert_eq!(loose.poses as usize, rows.len());
    }

    #[test]
    fn partner_ranking_orders_by_energy() {
        let (_, rows_a) = docked_map(3);
        let (_, rows_b) = docked_map(4);
        let ranking = rank_partners(&[
            (ProteinId(1), rows_a.as_slice()),
            (ProteinId(2), rows_b.as_slice()),
        ]);
        assert_eq!(ranking.len(), 2);
        assert!(ranking[0].top10_mean <= ranking[1].top10_mean);
        for s in &ranking {
            assert!(s.best_etot <= s.top10_mean);
        }
    }

    #[test]
    fn empty_maps_are_skipped() {
        let (_, rows) = docked_map(3);
        let ranking = rank_partners(&[(ProteinId(1), rows.as_slice()), (ProteinId(2), &[])]);
        assert_eq!(ranking.len(), 1);
    }

    #[test]
    #[should_panic(expected = "quantile in (0,1]")]
    fn zero_quantile_rejected() {
        let (lib, rows) = docked_map(3);
        contact_propensity(
            &lib.proteins()[0],
            &lib.proteins()[1],
            &rows,
            0.0,
            &EnergyParams::default(),
        );
    }

    #[test]
    #[should_panic(expected = "empty docking map")]
    fn empty_map_rejected() {
        let lib = ProteinLibrary::generate(LibraryConfig::tiny(2), 3);
        contact_propensity(
            &lib.proteins()[0],
            &lib.proteins()[1],
            &[],
            0.5,
            &EnergyParams::default(),
        );
    }
}

//! PDB-style structure export and import.
//!
//! The HCMD screensaver displayed "the graphic of the two proteins which
//! are currently being docked" (Figure 5); real users inspect docking
//! results in molecular viewers. This module writes reduced-model
//! proteins and docked complexes as standard `ATOM`/`HETATM` records
//! (coarse-grained beads as pseudo-atoms) and parses them back, so
//! synthetic catalogs and predicted complexes can be eyeballed in PyMOL
//! or ChimeraX.

use crate::geom::Pose;
use crate::model::{Bead, BeadKind, Protein, ProteinId};

/// Element label used for a bead kind (column 77-78 of the PDB format).
fn element(kind: BeadKind) -> &'static str {
    match kind {
        BeadKind::Backbone => " C",
        BeadKind::Apolar => " C",
        BeadKind::Polar => " O",
        BeadKind::Positive => " N",
        BeadKind::Negative => " O",
    }
}

/// Atom name per bead kind (columns 13-16).
fn atom_name(kind: BeadKind) -> &'static str {
    match kind {
        BeadKind::Backbone => " CA ",
        BeadKind::Apolar => " CB ",
        BeadKind::Polar => " OG ",
        BeadKind::Positive => " NZ ",
        BeadKind::Negative => " OD ",
    }
}

fn kind_from_atom_name(name: &str) -> Option<BeadKind> {
    match name.trim() {
        "CA" => Some(BeadKind::Backbone),
        "CB" => Some(BeadKind::Apolar),
        "OG" => Some(BeadKind::Polar),
        "NZ" => Some(BeadKind::Positive),
        "OD" => Some(BeadKind::Negative),
        _ => None,
    }
}

/// Writes one protein as a PDB chain (beads in a given `pose`; use
/// [`Pose::identity`] for the body frame).
pub fn write_chain(protein: &Protein, chain: char, pose: &Pose, out: &mut String) {
    for (i, bead) in protein.beads().iter().enumerate() {
        let p = pose.apply(bead.position);
        // Columns follow the fixed PDB layout closely enough for viewers.
        out.push_str(&format!(
            "ATOM  {:>5} {} GLY {}{:>4}    {:>8.3}{:>8.3}{:>8.3}  1.00  0.00          {}\n",
            (i + 1) % 100_000,
            atom_name(bead.kind),
            chain,
            (i + 1) % 10_000,
            p.x,
            p.y,
            p.z,
            element(bead.kind),
        ));
    }
    out.push_str("TER\n");
}

/// Writes a docked complex: receptor as chain A (body frame), ligand as
/// chain B in `ligand_pose`.
pub fn write_complex(receptor: &Protein, ligand: &Protein, ligand_pose: &Pose) -> String {
    let mut out = String::with_capacity((receptor.bead_count() + ligand.bead_count()) * 80 + 64);
    out.push_str(&format!(
        "REMARK   1 MAXDO COMPLEX {} {}\n",
        receptor.name, ligand.name
    ));
    write_chain(receptor, 'A', &Pose::identity(), &mut out);
    write_chain(ligand, 'B', ligand_pose, &mut out);
    out.push_str("END\n");
    out
}

/// Errors from [`parse_chain`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PdbParseError {
    /// An ATOM record was shorter than the coordinate columns.
    ShortRecord {
        /// 1-based line number.
        line: usize,
    },
    /// A coordinate failed to parse.
    BadCoordinate {
        /// 1-based line number.
        line: usize,
    },
    /// An atom name did not map to a bead kind.
    UnknownAtom {
        /// 1-based line number.
        line: usize,
    },
    /// No ATOM records found.
    Empty,
}

impl std::fmt::Display for PdbParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PdbParseError::ShortRecord { line } => write!(f, "line {line}: short record"),
            PdbParseError::BadCoordinate { line } => write!(f, "line {line}: bad coordinate"),
            PdbParseError::UnknownAtom { line } => write!(f, "line {line}: unknown atom"),
            PdbParseError::Empty => write!(f, "no ATOM records"),
        }
    }
}

impl std::error::Error for PdbParseError {}

/// Parses the ATOM records of one chain back into a protein.
///
/// Only `ATOM` records are read; `TER`/`END`/`REMARK` lines are skipped.
pub fn parse_chain(text: &str, id: ProteinId, name: &str) -> Result<Protein, PdbParseError> {
    let mut beads = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        if !line.starts_with("ATOM") {
            continue;
        }
        if line.len() < 54 {
            return Err(PdbParseError::ShortRecord { line: idx + 1 });
        }
        let name_field = &line[12..16];
        let kind =
            kind_from_atom_name(name_field).ok_or(PdbParseError::UnknownAtom { line: idx + 1 })?;
        let coord = |range: std::ops::Range<usize>| {
            line[range]
                .trim()
                .parse::<f64>()
                .map_err(|_| PdbParseError::BadCoordinate { line: idx + 1 })
        };
        beads.push(Bead {
            position: crate::geom::Vec3::new(coord(30..38)?, coord(38..46)?, coord(46..54)?),
            kind,
        });
    }
    if beads.is_empty() {
        return Err(PdbParseError::Empty);
    }
    Ok(Protein::new(id, name, beads))
}

/// Writes every protein of a library as one PDB file per protein into
/// `dir` (created if needed). Returns the written paths. This is the
/// export path for inspecting the synthetic catalog in a molecular
/// viewer.
pub fn export_library(
    library: &crate::library::ProteinLibrary,
    dir: &std::path::Path,
) -> std::io::Result<Vec<std::path::PathBuf>> {
    std::fs::create_dir_all(dir)?;
    let mut paths = Vec::with_capacity(library.len());
    for protein in library.proteins() {
        let mut text = format!(
            "REMARK   1 SYNTHETIC REDUCED-MODEL PROTEIN {} ({} beads)\n",
            protein.name,
            protein.bead_count()
        );
        write_chain(protein, 'A', &Pose::identity(), &mut text);
        text.push_str("END\n");
        let path = dir.join(format!("{}.pdb", protein.name));
        std::fs::write(&path, text)?;
        paths.push(path);
    }
    Ok(paths)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geom::{EulerZyz, Vec3};
    use crate::library::{LibraryConfig, ProteinLibrary};

    fn protein() -> Protein {
        ProteinLibrary::generate(LibraryConfig::tiny(1), 8).proteins()[0].clone()
    }

    #[test]
    fn chain_round_trips_through_pdb() {
        let p = protein();
        let mut text = String::new();
        write_chain(&p, 'A', &Pose::identity(), &mut text);
        let re = parse_chain(&text, ProteinId(9), "re").unwrap();
        assert_eq!(re.bead_count(), p.bead_count());
        for (a, b) in re.beads().iter().zip(p.beads()) {
            assert_eq!(a.kind, b.kind);
            // PDB coordinates carry 3 decimals.
            assert!(a.position.distance(b.position) < 2e-3);
        }
    }

    #[test]
    fn complex_contains_both_chains_posed() {
        let lib = ProteinLibrary::generate(LibraryConfig::tiny(2), 8);
        let (r, l) = (&lib.proteins()[0], &lib.proteins()[1]);
        let pose = Pose::from_euler(
            EulerZyz {
                alpha: 0.5,
                beta: 0.3,
                gamma: 0.0,
            },
            Vec3::new(25.0, 0.0, 0.0),
        );
        let text = write_complex(r, l, &pose);
        assert!(text.starts_with("REMARK"));
        assert!(text.ends_with("END\n"));
        assert_eq!(text.matches("TER").count(), 2);
        let atoms = text.lines().filter(|l| l.starts_with("ATOM")).count();
        assert_eq!(atoms, r.bead_count() + l.bead_count());
        // Chain B atoms are shifted by the pose translation: their mean x
        // should sit near 25 Å.
        let bx: Vec<f64> = text
            .lines()
            .filter(|l| l.starts_with("ATOM") && l.chars().nth(21) == Some('B'))
            .map(|l| l[30..38].trim().parse::<f64>().unwrap())
            .collect();
        let mean = bx.iter().sum::<f64>() / bx.len() as f64;
        assert!((mean - 25.0).abs() < 3.0, "chain B mean x {mean}");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert_eq!(
            parse_chain("", ProteinId(0), "x").unwrap_err(),
            PdbParseError::Empty
        );
        assert_eq!(
            parse_chain("ATOM  tooshort", ProteinId(0), "x").unwrap_err(),
            PdbParseError::ShortRecord { line: 1 }
        );
        let bad_atom =
            "ATOM      1  XX  GLY A   1      10.000  10.000  10.000  1.00  0.00           C";
        assert_eq!(
            parse_chain(bad_atom, ProteinId(0), "x").unwrap_err(),
            PdbParseError::UnknownAtom { line: 1 }
        );
        let bad_coord =
            "ATOM      1  CA  GLY A   1      xx.xxx  10.000  10.000  1.00  0.00           C";
        assert_eq!(
            parse_chain(bad_coord, ProteinId(0), "x").unwrap_err(),
            PdbParseError::BadCoordinate { line: 1 }
        );
    }

    #[test]
    fn library_export_round_trips() {
        let lib = ProteinLibrary::generate(LibraryConfig::tiny(3), 12);
        let dir = std::env::temp_dir().join(format!("hcmd_pdb_test_{}", std::process::id()));
        let paths = export_library(&lib, &dir).unwrap();
        assert_eq!(paths.len(), 3);
        for (path, protein) in paths.iter().zip(lib.proteins()) {
            let text = std::fs::read_to_string(path).unwrap();
            let re = parse_chain(&text, protein.id, &protein.name).unwrap();
            assert_eq!(re.bead_count(), protein.bead_count());
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn non_atom_lines_are_skipped() {
        let p = protein();
        let mut text = String::from("REMARK hello\n");
        write_chain(&p, 'A', &Pose::identity(), &mut text);
        text.push_str("END\n");
        let re = parse_chain(&text, ProteinId(1), "x").unwrap();
        assert_eq!(re.bead_count(), p.bead_count());
    }
}

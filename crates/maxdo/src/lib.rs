//! MAXDo — *Molecular Association via Cross Docking simulations* —
//! reimplemented as the scientific substrate of the HCMD phase-I
//! reproduction.
//!
//! The original MAXDo program (Sacquin-Mora et al.) systematically docks
//! every ordered couple of a protein set: for receptor `p1` and ligand
//! `p2` it minimises a reduced-model interaction energy
//! `Etot = Elj + Eelec` from a regular array of starting positions
//! (`isep ∈ [1..Nsep(p1)]`) and orientations (`irot ∈ [1..21]`, each
//! covering 10 `γ` twists). See §2.1 of the paper.
//!
//! Module map:
//! * [`geom`] — vectors, rotations, Euler angles, rigid poses;
//! * [`model`] — the reduced (Zacharias-style) protein representation;
//! * [`library`] — the synthetic 168-protein phase-I catalog, calibrated
//!   to the paper's published distributions;
//! * [`energy`] — Lennard-Jones + screened electrostatic energy with
//!   cell-list acceleration and analytic rigid-body gradients;
//! * [`minimize`] — deterministic rigid-body descent;
//! * [`sampling`] — starting-position and orientation grids;
//! * [`docking`] — the `Etot(isep, irot, p1, p2)` driver;
//! * [`checkpoint`] — between-position checkpointing (§4.3);
//! * [`cost`] — the reference-processor cost model (§4.1).
//!
//! # Quick start
//!
//! ```
//! use maxdo::library::{LibraryConfig, ProteinLibrary};
//! use maxdo::docking::DockingEngine;
//! use maxdo::energy::EnergyParams;
//! use maxdo::minimize::MinimizeParams;
//! use maxdo::model::ProteinId;
//!
//! let lib = ProteinLibrary::generate(LibraryConfig::tiny(2), 42);
//! let engine = DockingEngine::for_couple(
//!     &lib, ProteinId(0), ProteinId(1),
//!     EnergyParams::default(),
//!     MinimizeParams { max_iterations: 10, ..Default::default() },
//! );
//! let (row, _evals) = engine.dock_cell(1, 1);
//! assert!(row.etot().is_finite());
//! ```

pub mod checkpoint;
pub mod cost;
pub mod docking;
pub mod energy;
pub mod filter;
pub mod fire;
pub mod geom;
pub mod interface;
pub mod library;
pub mod minimize;
pub mod model;
pub mod pdb;
pub mod sampling;

pub use checkpoint::DockingCheckpoint;
pub use cost::CostModel;
pub use docking::{DockingEngine, DockingOutput, DockingRow};
pub use energy::{CellList, EnergyBreakdown, EnergyParams};
pub use filter::{filter_search, FilteredSearch};
pub use fire::{minimize_fire, FireParams};
pub use geom::{EulerZyz, Mat3, Pose, Vec3};
pub use interface::{contact_propensity, rank_partners, ContactPropensity, PartnerScore};
pub use library::{LibraryConfig, ProteinLibrary};
pub use minimize::{MinimizeParams, MinimizeResult};
pub use model::{Bead, BeadKind, Protein, ProteinId};
pub use sampling::{OrientationGrid, NGAMMA, NROT_COUPLES, TOTAL_ORIENTATIONS};

//! Starting positions and orientations for the docking search.
//!
//! §2.1: "Optimal interaction geometries will be searched for using
//! multiple energy minimizations with a regular array of starting positions
//! and orientations." The degrees of freedom are concatenated into two
//! parameters: `isep` — the starting position of the ligand mass centre
//! around the receptor — and `irot` — the starting orientation. The number
//! of rotations is fixed (`Nrot = 21`, and per the paper's footnote the
//! actual number of starting orientations is 210: *21 couples (α, β) for 10
//! values of γ*); the number of positions `Nsep(p)` depends on the receptor
//! (evaluated by "an other program" — here [`starting_positions`]).

use crate::geom::{EulerZyz, Vec3};
use crate::model::Protein;

/// Number of `(α, β)` orientation couples — the paper's `Nrot = 21`.
pub const NROT_COUPLES: usize = 21;

/// Number of `γ` twist values per couple.
pub const NGAMMA: usize = 10;

/// Total starting orientations per starting position (`21 × 10 = 210`).
pub const TOTAL_ORIENTATIONS: usize = NROT_COUPLES * NGAMMA;

/// Generates the regular array of `nsep` ligand starting positions around
/// a receptor.
///
/// Positions are a Fibonacci-sphere lattice (the standard construction for
/// a quasi-uniform regular array on a sphere) of radius
/// `receptor.surface_radius() + ligand_radius`: the ligand mass centre
/// starts just outside contact so the minimiser approaches the surface from
/// the outside, as cross-docking does.
pub fn starting_positions(receptor: &Protein, ligand_radius: f64, nsep: u32) -> Vec<Vec3> {
    assert!(nsep > 0, "need at least one starting position");
    let r = receptor.surface_radius() + ligand_radius.max(0.0);
    fibonacci_sphere(nsep as usize)
        .into_iter()
        .map(|u| u * r)
        .collect()
}

/// One starting position by index (1-based like the paper's
/// `isep ∈ [1..Nsep]`), without materialising the whole array.
pub fn starting_position(receptor: &Protein, ligand_radius: f64, nsep: u32, isep: u32) -> Vec3 {
    assert!(
        (1..=nsep).contains(&isep),
        "isep {isep} out of range 1..={nsep}"
    );
    let r = receptor.surface_radius() + ligand_radius.max(0.0);
    fibonacci_point(isep as usize - 1, nsep as usize) * r
}

/// The regular grid of starting orientations: `NROT_COUPLES` quasi-uniform
/// axis couples `(α, β)` × `NGAMMA` evenly spaced twists `γ`.
#[derive(Debug, Clone)]
pub struct OrientationGrid {
    couples: Vec<(f64, f64)>,
}

impl Default for OrientationGrid {
    fn default() -> Self {
        Self::new()
    }
}

impl OrientationGrid {
    /// Builds the standard 21 × 10 grid.
    pub fn new() -> Self {
        let couples = fibonacci_sphere(NROT_COUPLES)
            .into_iter()
            .map(|u| {
                // Direction → (α, β): α is the azimuth, β the polar angle.
                let beta = u.z.clamp(-1.0, 1.0).acos();
                let alpha = u.y.atan2(u.x).rem_euclid(std::f64::consts::TAU);
                (alpha, beta)
            })
            .collect();
        Self { couples }
    }

    /// Number of `(α, β)` couples (`irot` values).
    pub fn couple_count(&self) -> usize {
        self.couples.len()
    }

    /// The Euler angles for couple `irot` (1-based) and twist index
    /// `igamma` (0-based, `0..NGAMMA`).
    pub fn orientation(&self, irot: u32, igamma: u32) -> EulerZyz {
        assert!(
            (1..=self.couples.len() as u32).contains(&irot),
            "irot {irot} out of range"
        );
        assert!((igamma as usize) < NGAMMA, "igamma {igamma} out of range");
        let (alpha, beta) = self.couples[irot as usize - 1];
        let gamma = igamma as f64 * std::f64::consts::TAU / NGAMMA as f64;
        EulerZyz { alpha, beta, gamma }
    }

    /// Iterates all `(irot, igamma)` orientation indices in canonical order
    /// (the order the MAXDo result file uses).
    pub fn indices(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        let n = self.couples.len() as u32;
        (1..=n).flat_map(|irot| (0..NGAMMA as u32).map(move |g| (irot, g)))
    }
}

/// `n` quasi-uniform unit vectors (Fibonacci / golden-spiral lattice).
pub fn fibonacci_sphere(n: usize) -> Vec<Vec3> {
    (0..n).map(|i| fibonacci_point(i, n)).collect()
}

/// The `i`-th of `n` Fibonacci-lattice points on the unit sphere.
pub fn fibonacci_point(i: usize, n: usize) -> Vec3 {
    assert!(n > 0 && i < n);
    if n == 1 {
        return Vec3::new(0.0, 0.0, 1.0);
    }
    let golden = (1.0 + 5.0_f64.sqrt()) / 2.0;
    let z = 1.0 - 2.0 * (i as f64 + 0.5) / n as f64;
    let rho = (1.0 - z * z).max(0.0).sqrt();
    let phi = std::f64::consts::TAU * (i as f64 / golden).fract();
    Vec3::new(rho * phi.cos(), rho * phi.sin(), z)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::{LibraryConfig, ProteinLibrary};

    #[test]
    fn orientation_grid_has_210_orientations() {
        let g = OrientationGrid::new();
        assert_eq!(g.couple_count(), NROT_COUPLES);
        assert_eq!(g.indices().count(), TOTAL_ORIENTATIONS);
        assert_eq!(TOTAL_ORIENTATIONS, 210);
    }

    #[test]
    fn orientations_are_distinct() {
        let g = OrientationGrid::new();
        let mats: Vec<_> = g
            .indices()
            .map(|(ir, ig)| g.orientation(ir, ig).to_matrix())
            .collect();
        for (i, a) in mats.iter().enumerate() {
            for b in mats.iter().skip(i + 1) {
                let diff: f64 = (0..3)
                    .flat_map(|r| (0..3).map(move |c| (a.rows[r][c] - b.rows[r][c]).abs()))
                    .sum();
                assert!(diff > 1e-6, "two identical orientations in the grid");
            }
        }
    }

    #[test]
    fn fibonacci_points_are_unit_and_spread() {
        let pts = fibonacci_sphere(100);
        assert_eq!(pts.len(), 100);
        for p in &pts {
            assert!((p.norm() - 1.0).abs() < 1e-12);
        }
        // Quasi-uniformity: nearest-neighbour distance is bounded below.
        for (i, a) in pts.iter().enumerate() {
            let nn = pts
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != i)
                .map(|(_, b)| a.distance(*b))
                .fold(f64::INFINITY, f64::min);
            assert!(nn > 0.08, "points {i} too close: {nn}");
        }
    }

    #[test]
    fn starting_positions_lie_outside_the_receptor() {
        let lib = ProteinLibrary::generate(LibraryConfig::tiny(1), 3);
        let p = &lib.proteins()[0];
        let positions = starting_positions(p, 5.0, 50);
        assert_eq!(positions.len(), 50);
        for pos in &positions {
            assert!(pos.norm() > p.bounding_radius());
            assert!((pos.norm() - (p.surface_radius() + 5.0)).abs() < 1e-9);
        }
    }

    #[test]
    fn indexed_position_matches_array() {
        let lib = ProteinLibrary::generate(LibraryConfig::tiny(1), 3);
        let p = &lib.proteins()[0];
        let all = starting_positions(p, 2.0, 17);
        for isep in 1..=17u32 {
            let one = starting_position(p, 2.0, 17, isep);
            assert!(one.distance(all[isep as usize - 1]) < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn isep_zero_is_rejected() {
        let lib = ProteinLibrary::generate(LibraryConfig::tiny(1), 3);
        starting_position(&lib.proteins()[0], 2.0, 10, 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn irot_out_of_range_rejected() {
        OrientationGrid::new().orientation(22, 0);
    }

    #[test]
    fn single_point_sphere() {
        let pts = fibonacci_sphere(1);
        assert_eq!(pts.len(), 1);
        assert!((pts[0].norm() - 1.0).abs() < 1e-12);
    }
}

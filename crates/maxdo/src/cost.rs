//! The deterministic compute-cost model of the MAXDo kernel.
//!
//! §4.1 establishes three properties of MAXDo's computing time:
//! reproducibility, linearity in `irot`, and linearity in `isep`. Thanks to
//! those, one measurement per protein couple — the 168² calibration run on
//! Grid'5000 — determines the whole workload. This module is the analytic
//! form of that measurement: it predicts the *reference-processor CPU
//! seconds* (Opteron 2 GHz, the paper's calibration hardware) for one
//! starting position of a couple.
//!
//! The cost is dominated by energy/gradient evaluations, each of which
//! visits `O(B₁·B₂)` bead pairs (before the cell-list cutoff), so the model
//! is `ct(p1, p2) = κ · B₁ · B₂ · shape(p1, p2)` where `shape` captures the
//! couple-specific landscape difficulty (how many minimiser iterations the
//! pair needs) as a deterministic log-normal factor. κ is calibrated so the
//! 168² matrix reproduces Table 1's mean of 671 s (and, through the size
//! distribution, its σ, median, min and max).

use crate::library::ProteinLibrary;
use crate::model::Protein;
use serde::{Deserialize, Serialize};

/// Mean of the paper's compute-time matrix (Table 1), seconds.
pub const TABLE1_MEAN_SECONDS: f64 = 671.0;

/// σ of the log-normal couple-difficulty factor; adds the scatter the size
/// product alone cannot explain (see DESIGN.md calibration notes).
pub const SHAPE_SIGMA: f64 = 0.35;

/// Predicts reference-CPU seconds for the MAXDo kernel.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Reference seconds per bead-pair per starting position.
    pub kappa: f64,
}

impl CostModel {
    /// A model with an explicit κ.
    pub fn with_kappa(kappa: f64) -> Self {
        assert!(kappa > 0.0 && kappa.is_finite(), "kappa must be positive");
        Self { kappa }
    }

    /// Calibrates κ so the mean of `ct` over all ordered couples of
    /// `library` equals `target_mean_seconds` — the reproduction of the
    /// Grid'5000 calibration campaign's normalisation.
    pub fn calibrated_to_mean(library: &ProteinLibrary, target_mean_seconds: f64) -> Self {
        assert!(target_mean_seconds > 0.0);
        let proteins = library.proteins();
        let mut acc = 0.0;
        for p1 in proteins {
            for p2 in proteins {
                acc += raw_cost(p1, p2);
            }
        }
        let mean_raw = acc / (proteins.len() * proteins.len()) as f64;
        Self {
            kappa: target_mean_seconds / mean_raw,
        }
    }

    /// The phase-I reference model: calibrated against the phase-I catalog
    /// to Table 1's mean.
    pub fn reference(library: &ProteinLibrary) -> Self {
        Self::calibrated_to_mean(library, TABLE1_MEAN_SECONDS)
    }

    /// Reference seconds for **one starting position** of couple
    /// `(p1, p2)` — all 21 orientation couples × 10 γ twists. This is the
    /// entry `Mct(p1, p2)` of the paper's computation-time matrix.
    pub fn cost_per_position(&self, p1: &Protein, p2: &Protein) -> f64 {
        self.kappa * raw_cost(p1, p2)
    }

    /// Reference seconds for one `(isep, irot)` docking cell — the paper's
    /// `ctiter` (formula (1) divides a position into its 21 couples).
    pub fn cost_per_cell(&self, p1: &Protein, p2: &Protein) -> f64 {
        self.cost_per_position(p1, p2) / crate::sampling::NROT_COUPLES as f64
    }

    /// Reference seconds for the whole docking map of a couple:
    /// `Nsep(p1) · Mct(p1, p2)`.
    pub fn cost_full_map(&self, library: &ProteinLibrary, p1: &Protein, p2: &Protein) -> f64 {
        library.nsep(p1.id) as f64 * self.cost_per_position(p1, p2)
    }
}

/// Unnormalised cost: bead-pair count times the couple's deterministic
/// difficulty factor.
fn raw_cost(p1: &Protein, p2: &Protein) -> f64 {
    p1.bead_count() as f64 * p2.bead_count() as f64 * shape_factor(p1, p2)
}

/// Deterministic log-normal couple-difficulty factor with median 1.
///
/// Hashes the ordered id pair into two uniforms and applies Box–Muller, so
/// the factor is reproducible, asymmetric in `(p1, p2)` (MAXDo is not
/// symmetric) and uncorrelated with protein size.
pub fn shape_factor(p1: &Protein, p2: &Protein) -> f64 {
    let h1 = splitmix(((p1.id.0 as u64) << 32) | p2.id.0 as u64 ^ 0x5EED_0001);
    let h2 = splitmix(h1 ^ 0x5EED_0002);
    let u1 = (h1 >> 11) as f64 / (1u64 << 53) as f64;
    let u2 = (h2 >> 11) as f64 / (1u64 << 53) as f64;
    // Clamp to ±2σ: the minimiser's iteration count varies a few-fold
    // between couples, not without bound; unclamped tails would inflate
    // the matrix max far beyond Table 1's 46 347 s.
    let z =
        ((-2.0 * u1.max(1e-12).ln()).sqrt() * (std::f64::consts::TAU * u2).cos()).clamp(-2.0, 2.0);
    (SHAPE_SIGMA * z).exp()
}

fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::LibraryConfig;

    #[test]
    fn calibration_hits_the_target_mean() {
        let lib = ProteinLibrary::generate(LibraryConfig::tiny(6), 3);
        let m = CostModel::calibrated_to_mean(&lib, 100.0);
        let proteins = lib.proteins();
        let mut acc = 0.0;
        for p1 in proteins {
            for p2 in proteins {
                acc += m.cost_per_position(p1, p2);
            }
        }
        let mean = acc / 36.0;
        assert!((mean - 100.0).abs() < 1e-9, "mean = {mean}");
    }

    #[test]
    fn cost_scales_with_both_bead_counts() {
        let lib = ProteinLibrary::generate(LibraryConfig::tiny(6), 3);
        let m = CostModel::with_kappa(1.0);
        let mut sorted: Vec<_> = lib.proteins().iter().collect();
        sorted.sort_by_key(|p| p.bead_count());
        let (small, large) = (sorted[0], sorted[sorted.len() - 1]);
        // Averaged over partners to wash out the shape factor.
        let avg = |p: &Protein| {
            lib.proteins()
                .iter()
                .map(|q| m.cost_per_position(p, q))
                .sum::<f64>()
        };
        assert!(avg(large) > avg(small));
    }

    #[test]
    fn cost_is_asymmetric_like_maxdo() {
        let lib = ProteinLibrary::generate(LibraryConfig::tiny(3), 3);
        let m = CostModel::with_kappa(1.0);
        let (a, b) = (&lib.proteins()[0], &lib.proteins()[1]);
        assert_ne!(m.cost_per_position(a, b), m.cost_per_position(b, a));
    }

    #[test]
    fn cell_cost_is_position_cost_over_21() {
        let lib = ProteinLibrary::generate(LibraryConfig::tiny(2), 3);
        let m = CostModel::with_kappa(0.5);
        let (a, b) = (&lib.proteins()[0], &lib.proteins()[1]);
        assert!((m.cost_per_cell(a, b) * 21.0 - m.cost_per_position(a, b)).abs() < 1e-12);
    }

    #[test]
    fn shape_factor_is_deterministic_and_centered() {
        let lib = ProteinLibrary::generate(LibraryConfig::tiny(8), 3);
        let ps = lib.proteins();
        let mut log_sum = 0.0;
        let mut n = 0;
        for p1 in ps {
            for p2 in ps {
                let f = shape_factor(p1, p2);
                assert_eq!(f, shape_factor(p1, p2));
                assert!(f > 0.0 && f.is_finite());
                log_sum += f.ln();
                n += 1;
            }
        }
        // Median ≈ 1 ⇒ mean of logs ≈ 0 (loose bound for 64 samples).
        assert!((log_sum / n as f64).abs() < 0.2);
    }

    #[test]
    fn full_map_cost_uses_nsep() {
        let lib = ProteinLibrary::generate(LibraryConfig::tiny(2), 3);
        let m = CostModel::with_kappa(1.0);
        let (a, b) = (&lib.proteins()[0], &lib.proteins()[1]);
        let expect = lib.nsep(a.id) as f64 * m.cost_per_position(a, b);
        assert_eq!(m.cost_full_map(&lib, a, b), expect);
    }

    #[test]
    #[should_panic(expected = "kappa must be positive")]
    fn zero_kappa_rejected() {
        CostModel::with_kappa(0.0);
    }

    #[test]
    fn kernel_work_correlates_with_model() {
        // The real kernel's evaluation count times bead product should rank
        // couples the same way the cost model does (the model is an
        // analytic stand-in for running the kernel).
        use crate::docking::DockingEngine;
        use crate::energy::EnergyParams;
        use crate::minimize::MinimizeParams;
        let lib = ProteinLibrary::generate(LibraryConfig::tiny(3), 97);
        let m = CostModel::with_kappa(1.0);
        let mp = MinimizeParams {
            max_iterations: 10,
            ..Default::default()
        };
        let mut measured = Vec::new();
        let mut predicted = Vec::new();
        for p1 in lib.proteins() {
            for p2 in lib.proteins() {
                if p1.id == p2.id {
                    continue;
                }
                let e = DockingEngine::new(p1, p2, 4, EnergyParams::default(), mp);
                let out = e.dock_position(1);
                measured.push(out.evaluations as f64 * (p1.bead_count() * p2.bead_count()) as f64);
                predicted.push(m.cost_per_position(p1, p2));
            }
        }
        // Rank correlation must be positive: bigger predicted → bigger real.
        let n = measured.len();
        let rank = |v: &[f64]| {
            let mut idx: Vec<usize> = (0..v.len()).collect();
            idx.sort_by(|&a, &b| v[a].partial_cmp(&v[b]).unwrap());
            let mut r = vec![0.0; v.len()];
            for (pos, &i) in idx.iter().enumerate() {
                r[i] = pos as f64;
            }
            r
        };
        let rm = rank(&measured);
        let rp = rank(&predicted);
        let mean = (n as f64 - 1.0) / 2.0;
        let cov: f64 = rm
            .iter()
            .zip(&rp)
            .map(|(a, b)| (a - mean) * (b - mean))
            .sum();
        let var: f64 = rm.iter().map(|a| (a - mean) * (a - mean)).sum();
        let spearman = cov / var;
        assert!(spearman > 0.5, "rank correlation too weak: {spearman}");
    }
}

//! Docking-point reduction — the phase-II strategy.
//!
//! §7: "with this data, the scientist want to add some evolutionary
//! information in the docking process in order to cut the number of
//! docking points to compute. They plan to reduce this number of docking
//! points by a factor of 100." And §2: "Later on, knowledge of binding
//! sites will greatly reduce the costs of the search."
//!
//! This module implements that reduction: given a receptor's predicted
//! binding site (from [`crate::interface`], or from evolutionary
//! conservation in the real project), keep only the starting positions
//! whose surface direction points at the site, and only the orientation
//! couples that face the ligand's own site toward the receptor.

use crate::geom::Vec3;
use crate::interface::ContactPropensity;
use crate::model::Protein;
use crate::sampling::{starting_positions, OrientationGrid, NROT_COUPLES};
use serde::{Deserialize, Serialize};

/// A filtered search space for one couple.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FilteredSearch {
    /// Kept starting-position indices (1-based `isep` values).
    pub kept_positions: Vec<u32>,
    /// Kept orientation-couple indices (1-based `irot` values).
    pub kept_orientations: Vec<u32>,
    /// Original number of docking cells (`Nsep × 21`).
    pub original_cells: u64,
}

impl FilteredSearch {
    /// Number of docking cells after filtering.
    pub fn filtered_cells(&self) -> u64 {
        self.kept_positions.len() as u64 * self.kept_orientations.len() as u64
    }

    /// The §7 reduction factor (original / filtered).
    pub fn reduction_factor(&self) -> f64 {
        if self.filtered_cells() == 0 {
            f64::INFINITY
        } else {
            self.original_cells as f64 / self.filtered_cells() as f64
        }
    }
}

/// The centroid direction of a predicted binding site (unit vector from
/// the protein centre through the site), or `None` when no bead passes
/// the threshold.
pub fn site_direction(
    protein: &Protein,
    propensity: &ContactPropensity,
    threshold: f64,
) -> Option<Vec3> {
    let site = propensity.binding_site(threshold);
    if site.is_empty() {
        return None;
    }
    let centroid = site
        .iter()
        .fold(Vec3::ZERO, |acc, &i| acc + protein.beads()[i].position)
        / site.len() as f64;
    centroid.normalized()
}

/// Filters the search space of a couple around known site directions.
///
/// * Starting positions are kept when they lie within `position_cone_deg`
///   of the receptor's site direction.
/// * Orientation couples are kept when they rotate the ligand's site
///   direction to face the receptor (within `orientation_cone_deg` of
///   `-position direction`; here approximated by the couple's `(α, β)`
///   axis against the ligand site).
pub fn filter_search(
    receptor: &Protein,
    ligand: &Protein,
    nsep: u32,
    receptor_site: Vec3,
    ligand_site: Vec3,
    position_cone_deg: f64,
    orientation_cone_deg: f64,
) -> FilteredSearch {
    assert!(nsep >= 1, "need starting positions");
    assert!(
        (0.0..=180.0).contains(&position_cone_deg) && (0.0..=180.0).contains(&orientation_cone_deg),
        "cone angles in degrees within [0, 180]"
    );
    let rdir = receptor_site.normalized().expect("receptor site direction");
    let ldir = ligand_site.normalized().expect("ligand site direction");
    let pos_cos = position_cone_deg.to_radians().cos();
    let ori_cos = orientation_cone_deg.to_radians().cos();

    let positions = starting_positions(receptor, ligand.bounding_radius(), nsep);
    let kept_positions: Vec<u32> = positions
        .iter()
        .enumerate()
        .filter(|(_, p)| {
            p.normalized()
                .map(|u| u.dot(rdir) >= pos_cos)
                .unwrap_or(false)
        })
        .map(|(i, _)| i as u32 + 1)
        .collect();

    // An orientation couple is useful when it turns the ligand's site
    // toward the receptor centre (the ligand approaches from outside, so
    // its site must face inward: rotated site ≈ −approach direction; we
    // test against the receptor-site axis).
    let grid = OrientationGrid::new();
    let kept_orientations: Vec<u32> = (1..=NROT_COUPLES as u32)
        .filter(|&irot| {
            // γ spins about the site axis; the couple's usefulness is
            // γ-independent to first order, so test γ = 0.
            let rot = grid.orientation(irot, 0).to_matrix();
            let faced = rot.apply(ldir);
            faced.dot(-rdir) >= ori_cos
        })
        .collect();

    FilteredSearch {
        kept_positions,
        kept_orientations,
        original_cells: nsep as u64 * NROT_COUPLES as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::{LibraryConfig, ProteinLibrary};

    fn couple() -> (Protein, Protein) {
        let lib = ProteinLibrary::generate(LibraryConfig::tiny(2), 55);
        (lib.proteins()[0].clone(), lib.proteins()[1].clone())
    }

    #[test]
    fn filtering_reduces_the_search_space() {
        let (receptor, ligand) = couple();
        let f = filter_search(
            &receptor,
            &ligand,
            2000,
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(0.0, 0.0, 1.0),
            25.0,
            60.0,
        );
        assert!(f.filtered_cells() > 0, "filter must keep something");
        assert!(f.filtered_cells() < f.original_cells);
        assert!(f.reduction_factor() > 1.0);
    }

    #[test]
    fn phase2_scale_reduction_is_achievable() {
        // §7 plans a ×100 reduction; a ~20° position cone with a ~45°
        // orientation cone achieves that order of magnitude.
        let (receptor, ligand) = couple();
        let f = filter_search(
            &receptor,
            &ligand,
            2000,
            Vec3::new(0.3, -0.8, 0.5),
            Vec3::new(0.0, 1.0, 0.0),
            20.0,
            45.0,
        );
        let r = f.reduction_factor();
        assert!(
            (20.0..2000.0).contains(&r),
            "reduction factor {r} not on the §7 scale"
        );
    }

    #[test]
    fn wider_cones_keep_more() {
        let (receptor, ligand) = couple();
        let narrow = filter_search(
            &receptor,
            &ligand,
            500,
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(0.0, 0.0, 1.0),
            15.0,
            30.0,
        );
        let wide = filter_search(
            &receptor,
            &ligand,
            500,
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(0.0, 0.0, 1.0),
            60.0,
            90.0,
        );
        assert!(wide.filtered_cells() >= narrow.filtered_cells());
    }

    #[test]
    fn full_cones_keep_everything() {
        let (receptor, ligand) = couple();
        let f = filter_search(
            &receptor,
            &ligand,
            300,
            Vec3::new(0.0, 1.0, 0.0),
            Vec3::new(1.0, 0.0, 0.0),
            180.0,
            180.0,
        );
        assert_eq!(f.filtered_cells(), f.original_cells);
        assert!((f.reduction_factor() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn kept_positions_point_at_the_site() {
        let (receptor, ligand) = couple();
        let site = Vec3::new(0.0, 0.0, 1.0);
        let f = filter_search(&receptor, &ligand, 800, site, site, 30.0, 180.0);
        let positions = starting_positions(&receptor, ligand.bounding_radius(), 800);
        let cos30 = 30.0f64.to_radians().cos();
        for &isep in &f.kept_positions {
            let u = positions[isep as usize - 1].normalized().unwrap();
            assert!(u.dot(site) >= cos30 - 1e-12);
        }
    }

    #[test]
    fn site_direction_from_propensity() {
        let (receptor, _) = couple();
        // Synthetic propensity: one hot bead.
        let mut contacts = vec![0u32; receptor.bead_count()];
        contacts[3] = 10;
        let cp = ContactPropensity {
            receptor: receptor.id,
            contacts,
            poses: 10,
        };
        let dir = site_direction(&receptor, &cp, 0.5).expect("one hot bead");
        let expected = receptor.beads()[3].position.normalized().unwrap();
        assert!((dir.dot(expected) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_site_yields_no_direction() {
        let (receptor, _) = couple();
        let cp = ContactPropensity {
            receptor: receptor.id,
            contacts: vec![0; receptor.bead_count()],
            poses: 0,
        };
        assert!(site_direction(&receptor, &cp, 0.5).is_none());
    }
}

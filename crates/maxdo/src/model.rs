//! The reduced (coarse-grained) protein model.
//!
//! MAXDo uses the reduced protein model of Zacharias (Protein Sci. 2003):
//! each amino-acid residue is represented by a small number of pseudo-atoms
//! ("beads") — one for the backbone and up to two for the side chain — each
//! carrying a van-der-Waals radius, a Lennard-Jones well depth, and a
//! partial electric charge. Proteins are *rigid* during docking: only the
//! six rigid-body degrees of freedom of the ligand move.
//!
//! The paper does not publish the force-field tables, so the bead
//! parameters here are representative values on the right physical scales
//! (radii of a few Å, well depths of fractions of kcal·mol⁻¹, net charges
//! of ±1e on charged residues). The downstream evaluation depends only on
//! the model's structure (bead counts, rigid geometry, LJ + electrostatic
//! energy), not on the precise constants.

use crate::geom::Vec3;
use serde::{Deserialize, Serialize};

/// Identifier of a protein inside a [`crate::library::ProteinLibrary`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct ProteinId(pub u32);

impl std::fmt::Display for ProteinId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "P{:03}", self.0)
    }
}

/// Chemical class of a pseudo-atom in the reduced model. The class selects
/// the Lennard-Jones parameters and the sign/magnitude of the charge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BeadKind {
    /// Backbone pseudo-atom (peptide unit); small dipolar charge.
    Backbone,
    /// Apolar side-chain bead (Ala, Val, Leu, Ile, Phe, ...).
    Apolar,
    /// Polar uncharged side-chain bead (Ser, Thr, Asn, Gln, ...).
    Polar,
    /// Positively charged side-chain bead (Lys, Arg, His⁺).
    Positive,
    /// Negatively charged side-chain bead (Asp, Glu).
    Negative,
}

impl BeadKind {
    /// All bead kinds, in a stable order.
    pub const ALL: [BeadKind; 5] = [
        BeadKind::Backbone,
        BeadKind::Apolar,
        BeadKind::Polar,
        BeadKind::Positive,
        BeadKind::Negative,
    ];

    /// Van-der-Waals radius in Å (reduced-model scale: beads are larger
    /// than atoms because each subsumes several heavy atoms).
    pub fn radius(self) -> f64 {
        match self {
            BeadKind::Backbone => 2.4,
            BeadKind::Apolar => 3.0,
            BeadKind::Polar => 2.8,
            BeadKind::Positive => 2.9,
            BeadKind::Negative => 2.7,
        }
    }

    /// Lennard-Jones well depth ε in kcal·mol⁻¹.
    pub fn epsilon(self) -> f64 {
        match self {
            BeadKind::Backbone => 0.20,
            BeadKind::Apolar => 0.35,
            BeadKind::Polar => 0.25,
            BeadKind::Positive => 0.22,
            BeadKind::Negative => 0.22,
        }
    }

    /// Partial charge in units of the elementary charge.
    pub fn charge(self) -> f64 {
        match self {
            BeadKind::Backbone => 0.0,
            BeadKind::Apolar => 0.0,
            BeadKind::Polar => 0.0,
            BeadKind::Positive => 1.0,
            BeadKind::Negative => -1.0,
        }
    }
}

/// One pseudo-atom of the reduced model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Bead {
    /// Position in the protein's body frame (mass centre at the origin), Å.
    pub position: Vec3,
    /// Chemical class.
    pub kind: BeadKind,
}

/// A rigid protein in the reduced representation.
///
/// Invariants (maintained by [`Protein::new`] and checked by
/// `debug_assert`s):
/// * at least one bead;
/// * the centroid of the beads is the origin (so the pose translation *is*
///   the mass-centre coordinate the paper minimises over);
/// * `bounding_radius` is the max bead distance from the origin.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Protein {
    /// Stable identifier.
    pub id: ProteinId,
    /// Human-readable name (the synthetic catalog uses `P000`-style names).
    pub name: String,
    /// Pseudo-atoms, positions centred on the mass centre.
    beads: Vec<Bead>,
    /// Radius of the smallest origin-centred sphere containing all beads.
    bounding_radius: f64,
}

impl Protein {
    /// Builds a protein, recentring the beads on their centroid.
    ///
    /// # Panics
    /// Panics if `beads` is empty or any position is non-finite.
    pub fn new(id: ProteinId, name: impl Into<String>, mut beads: Vec<Bead>) -> Self {
        assert!(!beads.is_empty(), "a protein needs at least one bead");
        assert!(
            beads.iter().all(|b| b.position.is_finite()),
            "bead positions must be finite"
        );
        let centroid =
            beads.iter().fold(Vec3::ZERO, |acc, b| acc + b.position) / beads.len() as f64;
        for b in &mut beads {
            b.position -= centroid;
        }
        let bounding_radius = beads.iter().map(|b| b.position.norm()).fold(0.0, f64::max);
        Self {
            id,
            name: name.into(),
            beads,
            bounding_radius,
        }
    }

    /// The pseudo-atoms (body frame, centroid at the origin).
    pub fn beads(&self) -> &[Bead] {
        &self.beads
    }

    /// Number of pseudo-atoms.
    pub fn bead_count(&self) -> usize {
        self.beads.len()
    }

    /// Radius of the bounding sphere (Å).
    pub fn bounding_radius(&self) -> f64 {
        self.bounding_radius
    }

    /// Net charge of the protein (sum of bead charges, in e).
    pub fn net_charge(&self) -> f64 {
        self.beads.iter().map(|b| b.kind.charge()).sum()
    }

    /// Radius of gyration (Å) — used by the synthetic library to tune
    /// realistic shapes.
    pub fn radius_of_gyration(&self) -> f64 {
        let n = self.beads.len() as f64;
        (self.beads.iter().map(|b| b.position.norm_sq()).sum::<f64>() / n).sqrt()
    }

    /// An *effective interaction surface radius*: the bounding radius plus
    /// one bead diameter of padding. Starting positions for the ligand are
    /// generated on spheres derived from this (see [`crate::sampling`]).
    pub fn surface_radius(&self) -> f64 {
        self.bounding_radius + 6.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tetra_beads() -> Vec<Bead> {
        // A regular-ish tetrahedron, deliberately NOT centred.
        [
            Vec3::new(10.0, 10.0, 10.0),
            Vec3::new(11.0, 10.0, 10.0),
            Vec3::new(10.0, 11.0, 10.0),
            Vec3::new(10.0, 10.0, 11.0),
        ]
        .into_iter()
        .enumerate()
        .map(|(i, position)| Bead {
            position,
            kind: BeadKind::ALL[i % 5],
        })
        .collect()
    }

    #[test]
    fn construction_recentres_on_centroid() {
        let p = Protein::new(ProteinId(0), "t", tetra_beads());
        let centroid =
            p.beads().iter().fold(Vec3::ZERO, |a, b| a + b.position) / p.bead_count() as f64;
        assert!(centroid.norm() < 1e-12);
    }

    #[test]
    fn bounding_radius_covers_all_beads() {
        let p = Protein::new(ProteinId(1), "t", tetra_beads());
        for b in p.beads() {
            assert!(b.position.norm() <= p.bounding_radius() + 1e-12);
        }
        assert!(p.bounding_radius() > 0.0);
    }

    #[test]
    fn surface_radius_exceeds_bounding_radius() {
        let p = Protein::new(ProteinId(2), "t", tetra_beads());
        assert!(p.surface_radius() > p.bounding_radius());
    }

    #[test]
    fn net_charge_sums_bead_charges() {
        let beads = vec![
            Bead {
                position: Vec3::new(0.0, 0.0, 0.0),
                kind: BeadKind::Positive,
            },
            Bead {
                position: Vec3::new(1.0, 0.0, 0.0),
                kind: BeadKind::Positive,
            },
            Bead {
                position: Vec3::new(0.0, 1.0, 0.0),
                kind: BeadKind::Negative,
            },
        ];
        let p = Protein::new(ProteinId(3), "t", beads);
        assert!((p.net_charge() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn radius_of_gyration_single_bead_is_zero() {
        let p = Protein::new(
            ProteinId(4),
            "t",
            vec![Bead {
                position: Vec3::new(5.0, 5.0, 5.0),
                kind: BeadKind::Backbone,
            }],
        );
        assert_eq!(p.radius_of_gyration(), 0.0);
        assert_eq!(p.bounding_radius(), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one bead")]
    fn empty_protein_rejected() {
        Protein::new(ProteinId(5), "t", Vec::new());
    }

    #[test]
    fn bead_kind_tables_are_physical() {
        for k in BeadKind::ALL {
            assert!(k.radius() > 1.0 && k.radius() < 5.0);
            assert!(k.epsilon() > 0.0 && k.epsilon() < 1.0);
            assert!(k.charge().abs() <= 1.0);
        }
        assert_eq!(BeadKind::Positive.charge(), 1.0);
        assert_eq!(BeadKind::Negative.charge(), -1.0);
    }

    #[test]
    fn protein_id_display() {
        assert_eq!(ProteinId(7).to_string(), "P007");
        assert_eq!(ProteinId(123).to_string(), "P123");
    }
}

//! The MAXDo result-file text format.
//!
//! §5.2: "The output of the MAXDo program is a simple text file that
//! contains on each line the coordinate of the ligand and its orientation,
//! and then the interaction energies values."
//!
//! Layout (one header line, then one data line per `(isep, irot)` docking
//! cell in canonical order):
//!
//! ```text
//! MAXDO p1 p2 isep_start isep_end nrot
//! isep irot x y z alpha beta gamma elj eelec
//! ...
//! ```

use maxdo::{DockingRow, EulerZyz, ProteinId, Vec3};
use serde::{Deserialize, Serialize};

/// A parsed (or to-be-written) result file: the output of one workunit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResultFile {
    /// Receptor protein.
    pub receptor: ProteinId,
    /// Ligand protein.
    pub ligand: ProteinId,
    /// First starting position covered (inclusive, 1-based).
    pub isep_start: u32,
    /// Last starting position covered (inclusive).
    pub isep_end: u32,
    /// Orientation couples per position (21 for HCMD).
    pub nrot: u32,
    /// Data rows in canonical (isep-major) order.
    pub rows: Vec<DockingRow>,
}

impl ResultFile {
    /// The number of rows a well-formed file must contain.
    pub fn expected_rows(&self) -> usize {
        ((self.isep_end - self.isep_start + 1) * self.nrot) as usize
    }
}

/// Serialises a result file to its text form.
pub fn write_result_file(file: &ResultFile) -> String {
    let mut out = String::with_capacity(64 + file.rows.len() * 96);
    out.push_str(&format!(
        "MAXDO {} {} {} {} {}\n",
        file.receptor.0, file.ligand.0, file.isep_start, file.isep_end, file.nrot
    ));
    for r in &file.rows {
        out.push_str(&format!(
            "{} {} {:.6} {:.6} {:.6} {:.6} {:.6} {:.6} {:.6} {:.6}\n",
            r.isep,
            r.irot,
            r.position.x,
            r.position.y,
            r.position.z,
            r.orientation.alpha,
            r.orientation.beta,
            r.orientation.gamma,
            r.elj,
            r.eelec
        ));
    }
    out
}

/// Errors from [`parse_result_file`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// First line is not a `MAXDO` header with 5 fields.
    BadHeader,
    /// A data line does not have exactly 10 fields.
    BadRowShape {
        /// 1-based line number.
        line: usize,
    },
    /// A field failed to parse as a number.
    BadNumber {
        /// 1-based line number.
        line: usize,
    },
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::BadHeader => write!(f, "missing or malformed MAXDO header"),
            ParseError::BadRowShape { line } => write!(f, "line {line}: wrong field count"),
            ParseError::BadNumber { line } => write!(f, "line {line}: unparseable number"),
        }
    }
}

impl std::error::Error for ParseError {}

/// Parses the text form back into a [`ResultFile`].
///
/// Purely syntactic: semantic validity (row counts, ranges) is the job of
/// [`crate::checks`], exactly as the paper separates transport from the
/// three content checks.
pub fn parse_result_file(text: &str) -> Result<ResultFile, ParseError> {
    let mut lines = text.lines().enumerate();
    let (_, header) = lines.next().ok_or(ParseError::BadHeader)?;
    let h: Vec<&str> = header.split_whitespace().collect();
    if h.len() != 6 || h[0] != "MAXDO" {
        return Err(ParseError::BadHeader);
    }
    let parse_u32 = |s: &str| s.parse::<u32>().map_err(|_| ParseError::BadHeader);
    let receptor = ProteinId(parse_u32(h[1])?);
    let ligand = ProteinId(parse_u32(h[2])?);
    let isep_start = parse_u32(h[3])?;
    let isep_end = parse_u32(h[4])?;
    let nrot = parse_u32(h[5])?;
    let mut rows = Vec::new();
    for (idx, line) in lines {
        if line.trim().is_empty() {
            continue;
        }
        let toks: Vec<&str> = line.split_whitespace().collect();
        if toks.len() != 10 {
            return Err(ParseError::BadRowShape { line: idx + 1 });
        }
        let f = |i: usize| {
            toks[i]
                .parse::<f64>()
                .map_err(|_| ParseError::BadNumber { line: idx + 1 })
        };
        let u = |i: usize| {
            toks[i]
                .parse::<u32>()
                .map_err(|_| ParseError::BadNumber { line: idx + 1 })
        };
        rows.push(DockingRow {
            isep: u(0)?,
            irot: u(1)?,
            position: Vec3::new(f(2)?, f(3)?, f(4)?),
            orientation: EulerZyz {
                alpha: f(5)?,
                beta: f(6)?,
                gamma: f(7)?,
            },
            elj: f(8)?,
            eelec: f(9)?,
        });
    }
    Ok(ResultFile {
        receptor,
        ligand,
        isep_start,
        isep_end,
        nrot,
        rows,
    })
}

/// Builds the result file of a docked workunit from engine output.
pub fn result_file_from_output(
    receptor: ProteinId,
    ligand: ProteinId,
    isep_start: u32,
    isep_end: u32,
    output: &maxdo::DockingOutput,
) -> ResultFile {
    ResultFile {
        receptor,
        ligand,
        isep_start,
        isep_end,
        nrot: maxdo::NROT_COUPLES as u32,
        rows: output.rows.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_file() -> ResultFile {
        ResultFile {
            receptor: ProteinId(3),
            ligand: ProteinId(7),
            isep_start: 2,
            isep_end: 3,
            nrot: 2,
            rows: vec![
                DockingRow {
                    isep: 2,
                    irot: 1,
                    position: Vec3::new(1.0, -2.5, 3.25),
                    orientation: EulerZyz {
                        alpha: 0.1,
                        beta: 0.2,
                        gamma: 0.3,
                    },
                    elj: -4.125,
                    eelec: 1.5,
                },
                DockingRow {
                    isep: 2,
                    irot: 2,
                    position: Vec3::new(0.0, 0.0, 0.0),
                    orientation: EulerZyz::default(),
                    elj: -1.0,
                    eelec: -2.0,
                },
                DockingRow {
                    isep: 3,
                    irot: 1,
                    position: Vec3::new(5.0, 5.0, 5.0),
                    orientation: EulerZyz::default(),
                    elj: 0.5,
                    eelec: 0.25,
                },
                DockingRow {
                    isep: 3,
                    irot: 2,
                    position: Vec3::new(-1.0, 2.0, -3.0),
                    orientation: EulerZyz::default(),
                    elj: -0.75,
                    eelec: 0.0,
                },
            ],
        }
    }

    #[test]
    fn round_trip_preserves_everything() {
        let f = sample_file();
        let text = write_result_file(&f);
        let parsed = parse_result_file(&text).unwrap();
        assert_eq!(parsed.receptor, f.receptor);
        assert_eq!(parsed.ligand, f.ligand);
        assert_eq!(parsed.isep_start, f.isep_start);
        assert_eq!(parsed.isep_end, f.isep_end);
        assert_eq!(parsed.nrot, f.nrot);
        assert_eq!(parsed.rows.len(), f.rows.len());
        for (a, b) in parsed.rows.iter().zip(&f.rows) {
            assert_eq!((a.isep, a.irot), (b.isep, b.irot));
            assert!((a.elj - b.elj).abs() < 1e-6);
            assert!((a.eelec - b.eelec).abs() < 1e-6);
            assert!((a.position.x - b.position.x).abs() < 1e-6);
        }
    }

    #[test]
    fn expected_rows_counts_cells() {
        assert_eq!(sample_file().expected_rows(), 4);
    }

    #[test]
    fn header_is_human_readable() {
        let text = write_result_file(&sample_file());
        assert!(text.starts_with("MAXDO 3 7 2 3 2\n"));
    }

    #[test]
    fn parse_rejects_bad_inputs() {
        assert_eq!(parse_result_file(""), Err(ParseError::BadHeader));
        assert_eq!(
            parse_result_file("NOTMAXDO 1 2 3 4 5"),
            Err(ParseError::BadHeader)
        );
        assert_eq!(
            parse_result_file("MAXDO 1 2 3 4"),
            Err(ParseError::BadHeader)
        );
        assert_eq!(
            parse_result_file("MAXDO 1 2 3 4 5\n1 2 3\n"),
            Err(ParseError::BadRowShape { line: 2 })
        );
        assert_eq!(
            parse_result_file("MAXDO 1 2 3 4 5\n1 2 x 0 0 0 0 0 0 0\n"),
            Err(ParseError::BadNumber { line: 2 })
        );
    }

    #[test]
    fn blank_lines_are_skipped() {
        let mut text = write_result_file(&sample_file());
        text.push('\n');
        assert_eq!(parse_result_file(&text).unwrap().rows.len(), 4);
    }

    #[test]
    fn real_docking_output_round_trips() {
        use maxdo::{DockingEngine, EnergyParams, LibraryConfig, MinimizeParams, ProteinLibrary};
        let lib = ProteinLibrary::generate(LibraryConfig::tiny(2), 11);
        let engine = DockingEngine::for_couple(
            &lib,
            ProteinId(0),
            ProteinId(1),
            EnergyParams::default(),
            MinimizeParams {
                max_iterations: 5,
                ..Default::default()
            },
        );
        let out = engine.dock_range(1, 2);
        let file = result_file_from_output(ProteinId(0), ProteinId(1), 1, 2, &out);
        assert_eq!(file.rows.len(), file.expected_rows());
        let parsed = parse_result_file(&write_result_file(&file)).unwrap();
        assert_eq!(parsed.rows.len(), file.rows.len());
    }
}

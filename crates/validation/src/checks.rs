//! The three §5.2 validation checks.
//!
//! "we validated those results with 3 different checks: check if there are
//! the correct number of files, check if there are the correct number of
//! lines in the files, check if the values in the file are within a valid
//! range."
//!
//! The value-range check is also what allowed World Community Grid to drop
//! comparison validation mid-campaign ("there are some specific boundary
//! conditions on each value") — the same ranges drive the simulator's
//! bounds-check validator.

use crate::format::ResultFile;
use maxdo::ProteinId;
use serde::{Deserialize, Serialize};

/// Physical bounds every result value must respect.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ValueRanges {
    /// Maximum distance of the ligand mass centre from the receptor
    /// centre, Å (a docked ligand cannot be arbitrarily far away).
    pub max_center_distance: f64,
    /// Inclusive bounds on each energy term, kcal·mol⁻¹.
    pub energy: (f64, f64),
}

impl Default for ValueRanges {
    fn default() -> Self {
        Self {
            max_center_distance: 500.0,
            energy: (-1.0e5, 1.0e7),
        }
    }
}

/// One validation failure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CheckFailure {
    /// Check 1: wrong number of files for the couple.
    FileCount {
        /// The couple.
        receptor: ProteinId,
        ligand: ProteinId,
        /// Files expected.
        expected: usize,
        /// Files present.
        got: usize,
    },
    /// Check 2: a file has the wrong number of lines.
    LineCount {
        receptor: ProteinId,
        ligand: ProteinId,
        isep_start: u32,
        expected: usize,
        got: usize,
    },
    /// Check 3: a value is out of range.
    ValueRange {
        receptor: ProteinId,
        ligand: ProteinId,
        /// 0-based row index inside the file.
        row: usize,
        /// Which field violated the range.
        field: &'static str,
    },
    /// Row indices are not the canonical `(isep, irot)` sequence.
    BadIndices {
        receptor: ProteinId,
        ligand: ProteinId,
        row: usize,
    },
}

/// Check 2 + 3 (+ index sanity) for one file.
pub fn check_file(file: &ResultFile, ranges: &ValueRanges) -> Vec<CheckFailure> {
    let mut failures = Vec::new();
    let expected = file.expected_rows();
    if file.rows.len() != expected {
        failures.push(CheckFailure::LineCount {
            receptor: file.receptor,
            ligand: file.ligand,
            isep_start: file.isep_start,
            expected,
            got: file.rows.len(),
        });
    }
    let mut want_isep = file.isep_start;
    let mut want_irot = 1u32;
    for (i, row) in file.rows.iter().enumerate() {
        // Value ranges (check 3).
        let d = row.position.norm();
        if !d.is_finite() || d > ranges.max_center_distance {
            failures.push(CheckFailure::ValueRange {
                receptor: file.receptor,
                ligand: file.ligand,
                row: i,
                field: "position",
            });
        }
        for (field, v) in [("elj", row.elj), ("eelec", row.eelec)] {
            if !v.is_finite() || v < ranges.energy.0 || v > ranges.energy.1 {
                failures.push(CheckFailure::ValueRange {
                    receptor: file.receptor,
                    ligand: file.ligand,
                    row: i,
                    field,
                });
            }
        }
        // Canonical ordering.
        if row.isep != want_isep || row.irot != want_irot {
            failures.push(CheckFailure::BadIndices {
                receptor: file.receptor,
                ligand: file.ligand,
                row: i,
            });
            // Resynchronise on the row's own indices so one slip doesn't
            // cascade into a failure per row.
            want_isep = row.isep;
            want_irot = row.irot;
        }
        if want_irot == file.nrot {
            want_irot = 1;
            want_isep += 1;
        } else {
            want_irot += 1;
        }
    }
    failures
}

/// Check 1 + 2 + 3 for the batch of files of one couple: `expected_files`
/// is the number of workunits the couple was split into.
pub fn check_batch(
    receptor: ProteinId,
    ligand: ProteinId,
    files: &[ResultFile],
    expected_files: usize,
    ranges: &ValueRanges,
) -> Vec<CheckFailure> {
    let mut failures = Vec::new();
    if files.len() != expected_files {
        failures.push(CheckFailure::FileCount {
            receptor,
            ligand,
            expected: expected_files,
            got: files.len(),
        });
    }
    for f in files {
        debug_assert_eq!((f.receptor, f.ligand), (receptor, ligand));
        failures.extend(check_file(f, ranges));
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;
    use maxdo::{DockingRow, EulerZyz, Vec3};

    fn good_file() -> ResultFile {
        ResultFile {
            receptor: ProteinId(0),
            ligand: ProteinId(1),
            isep_start: 1,
            isep_end: 2,
            nrot: 2,
            rows: (1..=2u32)
                .flat_map(|isep| {
                    (1..=2u32).map(move |irot| DockingRow {
                        isep,
                        irot,
                        position: Vec3::new(10.0, 0.0, 0.0),
                        orientation: EulerZyz::default(),
                        elj: -3.0,
                        eelec: 1.0,
                    })
                })
                .collect(),
        }
    }

    #[test]
    fn clean_file_passes_all_checks() {
        assert!(check_file(&good_file(), &ValueRanges::default()).is_empty());
    }

    #[test]
    fn missing_line_detected() {
        let mut f = good_file();
        f.rows.pop();
        let fails = check_file(&f, &ValueRanges::default());
        assert!(fails.iter().any(|x| matches!(
            x,
            CheckFailure::LineCount {
                expected: 4,
                got: 3,
                ..
            }
        )));
    }

    #[test]
    fn out_of_range_energy_detected() {
        let mut f = good_file();
        f.rows[1].elj = f64::INFINITY;
        f.rows[2].eelec = -1.0e9;
        let fails = check_file(&f, &ValueRanges::default());
        let fields: Vec<&str> = fails
            .iter()
            .filter_map(|x| match x {
                CheckFailure::ValueRange { field, .. } => Some(*field),
                _ => None,
            })
            .collect();
        assert_eq!(fields, vec!["elj", "eelec"]);
    }

    #[test]
    fn runaway_ligand_detected() {
        let mut f = good_file();
        f.rows[0].position = Vec3::new(1e4, 0.0, 0.0);
        let fails = check_file(&f, &ValueRanges::default());
        assert!(fails.iter().any(|x| matches!(
            x,
            CheckFailure::ValueRange {
                field: "position",
                ..
            }
        )));
    }

    #[test]
    fn scrambled_indices_detected_once() {
        let mut f = good_file();
        f.rows.swap(1, 2);
        let fails = check_file(&f, &ValueRanges::default());
        let bad: Vec<_> = fails
            .iter()
            .filter(|x| matches!(x, CheckFailure::BadIndices { .. }))
            .collect();
        // Two rows out of place, but resync keeps it at those rows only.
        assert!(!bad.is_empty() && bad.len() <= 3, "failures: {fails:?}");
    }

    #[test]
    fn batch_checks_file_count() {
        let files = vec![good_file()];
        let fails = check_batch(
            ProteinId(0),
            ProteinId(1),
            &files,
            2,
            &ValueRanges::default(),
        );
        assert!(fails.iter().any(|x| matches!(
            x,
            CheckFailure::FileCount {
                expected: 2,
                got: 1,
                ..
            }
        )));
    }

    #[test]
    fn batch_with_correct_count_and_clean_files_passes() {
        let files = vec![good_file()];
        assert!(check_batch(
            ProteinId(0),
            ProteinId(1),
            &files,
            1,
            &ValueRanges::default()
        )
        .is_empty());
    }
}

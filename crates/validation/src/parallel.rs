//! Parallel batch validation.
//!
//! §5.2's pipeline processed millions of result files; the three checks
//! are embarrassingly parallel across files. This module fans a batch
//! out over the shared rayon thread pool — `workers` caps the thread
//! count for the call — and merges the failures in file order,
//! preserving the sequential API's results exactly (asserted by the
//! equivalence test below).

use crate::checks::{check_file, CheckFailure, ValueRanges};
use crate::format::ResultFile;
use rayon::prelude::*;

/// Runs [`check_file`] over `files` in parallel using up to `workers`
/// threads, returning all failures (order: by file index, then by the
/// sequential check order inside each file — identical to a sequential
/// pass).
pub fn check_files_parallel(
    files: &[ResultFile],
    ranges: &ValueRanges,
    workers: usize,
) -> Vec<CheckFailure> {
    assert!(workers >= 1, "need at least one worker");
    if files.is_empty() {
        return Vec::new();
    }
    let per_file: Vec<Vec<CheckFailure>> = rayon::with_threads(workers.min(files.len()), || {
        files.par_iter().map(|f| check_file(f, ranges)).collect()
    });
    per_file.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use maxdo::{DockingRow, EulerZyz, ProteinId, Vec3};

    fn file(seed: u32, corrupt: bool) -> ResultFile {
        let mut rows: Vec<DockingRow> = (1..=3u32)
            .flat_map(|isep| {
                (1..=2u32).map(move |irot| DockingRow {
                    isep,
                    irot,
                    position: Vec3::new(seed as f64, 0.0, 0.0),
                    orientation: EulerZyz::default(),
                    elj: -1.0,
                    eelec: 0.5,
                })
            })
            .collect();
        if corrupt {
            rows[2].elj = f64::NAN;
        }
        ResultFile {
            receptor: ProteinId(0),
            ligand: ProteinId(seed),
            isep_start: 1,
            isep_end: 3,
            nrot: 2,
            rows,
        }
    }

    #[test]
    fn parallel_matches_sequential_exactly() {
        let files: Vec<ResultFile> = (0..40).map(|i| file(i, i % 7 == 3)).collect();
        let ranges = ValueRanges::default();
        let sequential: Vec<CheckFailure> =
            files.iter().flat_map(|f| check_file(f, &ranges)).collect();
        for workers in [1, 2, 4, 8] {
            let parallel = check_files_parallel(&files, &ranges, workers);
            assert_eq!(parallel, sequential, "workers = {workers}");
        }
    }

    #[test]
    fn clean_batch_has_no_failures() {
        let files: Vec<ResultFile> = (0..10).map(|i| file(i, false)).collect();
        assert!(check_files_parallel(&files, &ValueRanges::default(), 4).is_empty());
    }

    #[test]
    fn empty_batch() {
        assert!(check_files_parallel(&[], &ValueRanges::default(), 4).is_empty());
    }

    #[test]
    fn more_workers_than_files_is_fine() {
        let files = vec![file(1, true)];
        let failures = check_files_parallel(&files, &ValueRanges::default(), 16);
        assert_eq!(failures.len(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        check_files_parallel(&[], &ValueRanges::default(), 0);
    }
}

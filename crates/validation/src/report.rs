//! Dataset accounting.
//!
//! §5.2 / §8: phase I produced "123 Gb of text files (45 Gb compressed) and
//! there are 168² files". This module estimates the dataset size of a
//! campaign analytically from the row counts and the result-file format —
//! useful both to check the reproduction against the paper's number and to
//! size the scaled runs.

use maxdo::ProteinLibrary;
use serde::{Deserialize, Serialize};

/// Mean bytes of one data line of the result format (ten ~11-char fields).
pub const BYTES_PER_ROW: f64 = 96.0;

/// Compression ratio of the text (the paper: 123 GB → 45 GB ≈ 0.366).
pub const COMPRESSION_RATIO: f64 = 45.0 / 123.0;

/// Estimated size and shape of a campaign's result dataset.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DatasetReport {
    /// Number of merged files (one per ordered couple = n²).
    pub file_count: u64,
    /// Total data rows across all files: `Σ Nsep(p1) × Nrot × n`.
    pub total_rows: u64,
    /// Estimated uncompressed bytes.
    pub uncompressed_bytes: f64,
    /// Estimated compressed bytes.
    pub compressed_bytes: f64,
}

impl DatasetReport {
    /// Estimates the dataset of a library's full cross-docking campaign.
    pub fn for_library(library: &ProteinLibrary) -> Self {
        let n = library.len() as u64;
        let nsep_sum: u64 = library.nsep_table().iter().map(|&x| x as u64).sum();
        let total_rows = nsep_sum * maxdo::NROT_COUPLES as u64 * n;
        let uncompressed_bytes = total_rows as f64 * BYTES_PER_ROW;
        Self {
            file_count: n * n,
            total_rows,
            uncompressed_bytes,
            compressed_bytes: uncompressed_bytes * COMPRESSION_RATIO,
        }
    }

    /// Uncompressed size in gigabytes (10⁹ bytes).
    pub fn uncompressed_gb(&self) -> f64 {
        self.uncompressed_bytes / 1e9
    }

    /// Compressed size in gigabytes.
    pub fn compressed_gb(&self) -> f64 {
        self.compressed_bytes / 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maxdo::LibraryConfig;

    #[test]
    fn counts_follow_the_library() {
        let lib = ProteinLibrary::generate(LibraryConfig::tiny(4), 3);
        let r = DatasetReport::for_library(&lib);
        assert_eq!(r.file_count, 16);
        let nsep_sum: u64 = lib.nsep_table().iter().map(|&x| x as u64).sum();
        assert_eq!(r.total_rows, nsep_sum * 21 * 4);
        assert!(r.compressed_bytes < r.uncompressed_bytes);
    }

    /// The headline §5.2 number: the phase-I dataset is on the order of
    /// 123 GB of text (one line per docking cell).
    #[test]
    fn phase1_dataset_is_on_the_papers_scale() {
        let lib = ProteinLibrary::phase1_catalog();
        let r = DatasetReport::for_library(&lib);
        assert_eq!(r.file_count, 168 * 168);
        let gb = r.uncompressed_gb();
        assert!(
            (60.0..250.0).contains(&gb),
            "dataset {gb} GB too far from the paper's 123 GB"
        );
    }

    #[test]
    fn compression_matches_the_papers_ratio() {
        let lib = ProteinLibrary::generate(LibraryConfig::tiny(2), 3);
        let r = DatasetReport::for_library(&lib);
        assert!((r.compressed_gb() / r.uncompressed_gb() - 45.0 / 123.0).abs() < 1e-12);
    }
}

//! §5.2 — result processing and verification.
//!
//! "During the project, the World Community Grid team sent results that
//! were calculated by the volunteers to a storage server in France. Then we
//! were in charge of validating those results. ... Each time we received
//! the results, we validated those results with 3 different checks: check
//! if there are the correct number of files, check if there are the correct
//! number of lines in the files, check if the values in the file are within
//! a valid range. Then when the files were checked, we merged result files
//! in order to have one result file for one couple of proteins."
//!
//! * [`mod@format`] — the MAXDo result text file (one line per docking cell:
//!   ligand coordinates, orientation, energies) and its parser;
//! * [`checks`] — the three §5.2 validation checks;
//! * [`merge`] — merging workunit chunk files into one file per couple;
//! * [`report`] — dataset accounting (the "123 Gb of text files, 168²
//!   files" bookkeeping).

pub mod checks;
pub mod format;
pub mod merge;
pub mod parallel;
pub mod pipeline;
pub mod report;

pub use checks::{check_batch, CheckFailure, ValueRanges};
pub use format::{parse_result_file, write_result_file, ResultFile};
pub use merge::{merge_couple_files, MergeError};
pub use parallel::check_files_parallel;
pub use pipeline::{BatchOutcome, ReceptionPipeline};
pub use report::DatasetReport;

//! Merging workunit result files into one file per protein couple.
//!
//! §5.2: "Then when the files were checked, we merged result files in order
//! to have one result file for one couple of proteins. All these result
//! files represents 123 Gb of text files (45 Gb compressed) and there are
//! 168² files."
//!
//! The §4.2 packaging constraint exists precisely to make this step
//! trivial: every workunit covers a contiguous `isep` range of a single
//! couple, so merging is concatenation in `isep` order — provided the
//! chunks tile the range exactly. [`merge_couple_files`] enforces that.

use crate::format::ResultFile;
use serde::{Deserialize, Serialize};

/// Why a merge was refused.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum MergeError {
    /// No files given.
    Empty,
    /// Files disagree on receptor, ligand or nrot.
    MixedCouples,
    /// The first chunk does not start at `isep = 1`.
    MissingPrefix {
        /// First position actually present.
        first: u32,
    },
    /// A gap between consecutive chunks.
    Gap {
        /// Last position of the earlier chunk.
        after: u32,
        /// First position of the later chunk.
        next: u32,
    },
    /// Two chunks overlap.
    Overlap {
        /// Position where the overlap begins.
        at: u32,
    },
    /// The merged file does not reach the receptor's `Nsep`.
    Truncated {
        /// Last position present.
        last: u32,
        /// Expected last position.
        expected: u32,
    },
}

impl std::fmt::Display for MergeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MergeError::Empty => write!(f, "no result files to merge"),
            MergeError::MixedCouples => write!(f, "result files from different couples"),
            MergeError::MissingPrefix { first } => {
                write!(f, "coverage starts at isep {first}, expected 1")
            }
            MergeError::Gap { after, next } => {
                write!(f, "gap in coverage between isep {after} and {next}")
            }
            MergeError::Overlap { at } => write!(f, "overlapping coverage at isep {at}"),
            MergeError::Truncated { last, expected } => {
                write!(f, "coverage ends at isep {last}, expected {expected}")
            }
        }
    }
}

impl std::error::Error for MergeError {}

/// Merges the workunit chunks of one couple into the couple's single
/// result file covering `isep ∈ [1, nsep_total]`.
///
/// Chunks may arrive in any order; they are sorted by `isep_start`. The
/// merge fails on any gap, overlap, mixed couple or truncation — the §5.2
/// pipeline rejects the batch and waits for the missing workunits instead
/// of producing a partial file.
pub fn merge_couple_files(
    mut files: Vec<ResultFile>,
    nsep_total: u32,
) -> Result<ResultFile, MergeError> {
    if files.is_empty() {
        return Err(MergeError::Empty);
    }
    let receptor = files[0].receptor;
    let ligand = files[0].ligand;
    let nrot = files[0].nrot;
    if files
        .iter()
        .any(|f| f.receptor != receptor || f.ligand != ligand || f.nrot != nrot)
    {
        return Err(MergeError::MixedCouples);
    }
    files.sort_by_key(|f| f.isep_start);
    if files[0].isep_start != 1 {
        return Err(MergeError::MissingPrefix {
            first: files[0].isep_start,
        });
    }
    let mut rows = Vec::with_capacity(files.iter().map(|f| f.rows.len()).sum());
    let mut covered_through = 0u32;
    for f in &files {
        if f.isep_start <= covered_through {
            return Err(MergeError::Overlap { at: f.isep_start });
        }
        if f.isep_start != covered_through + 1 {
            return Err(MergeError::Gap {
                after: covered_through,
                next: f.isep_start,
            });
        }
        covered_through = f.isep_end;
        rows.extend(f.rows.iter().copied());
    }
    if covered_through != nsep_total {
        return Err(MergeError::Truncated {
            last: covered_through,
            expected: nsep_total,
        });
    }
    Ok(ResultFile {
        receptor,
        ligand,
        isep_start: 1,
        isep_end: nsep_total,
        nrot,
        rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use maxdo::{DockingRow, EulerZyz, ProteinId, Vec3};

    fn chunk(isep_start: u32, isep_end: u32) -> ResultFile {
        ResultFile {
            receptor: ProteinId(1),
            ligand: ProteinId(2),
            isep_start,
            isep_end,
            nrot: 3,
            rows: (isep_start..=isep_end)
                .flat_map(|isep| {
                    (1..=3u32).map(move |irot| DockingRow {
                        isep,
                        irot,
                        position: Vec3::new(1.0, 2.0, 3.0),
                        orientation: EulerZyz::default(),
                        elj: -1.0,
                        eelec: 0.5,
                    })
                })
                .collect(),
        }
    }

    #[test]
    fn contiguous_chunks_merge_in_any_order() {
        let merged = merge_couple_files(vec![chunk(4, 6), chunk(1, 3), chunk(7, 10)], 10).unwrap();
        assert_eq!(merged.isep_start, 1);
        assert_eq!(merged.isep_end, 10);
        assert_eq!(merged.rows.len(), 30);
        // Rows come out in canonical order.
        for (i, r) in merged.rows.iter().enumerate() {
            assert_eq!(r.isep as usize, i / 3 + 1);
            assert_eq!(r.irot as usize, i % 3 + 1);
        }
    }

    #[test]
    fn single_chunk_covering_everything() {
        let merged = merge_couple_files(vec![chunk(1, 5)], 5).unwrap();
        assert_eq!(merged.rows.len(), 15);
    }

    #[test]
    fn gap_is_detected() {
        let err = merge_couple_files(vec![chunk(1, 3), chunk(5, 8)], 8).unwrap_err();
        assert_eq!(err, MergeError::Gap { after: 3, next: 5 });
    }

    #[test]
    fn overlap_is_detected() {
        let err = merge_couple_files(vec![chunk(1, 4), chunk(3, 8)], 8).unwrap_err();
        assert_eq!(err, MergeError::Overlap { at: 3 });
    }

    #[test]
    fn missing_prefix_detected() {
        let err = merge_couple_files(vec![chunk(2, 8)], 8).unwrap_err();
        assert_eq!(err, MergeError::MissingPrefix { first: 2 });
    }

    #[test]
    fn truncation_detected() {
        let err = merge_couple_files(vec![chunk(1, 6)], 9).unwrap_err();
        assert_eq!(
            err,
            MergeError::Truncated {
                last: 6,
                expected: 9
            }
        );
    }

    #[test]
    fn mixed_couples_rejected() {
        let mut other = chunk(4, 6);
        other.ligand = ProteinId(9);
        let err = merge_couple_files(vec![chunk(1, 3), other], 6).unwrap_err();
        assert_eq!(err, MergeError::MixedCouples);
    }

    #[test]
    fn empty_input_rejected() {
        assert_eq!(
            merge_couple_files(Vec::new(), 5).unwrap_err(),
            MergeError::Empty
        );
    }
}

//! The reception pipeline — §5.2's operational workflow.
//!
//! "The World Community Grid team sent us the results when one protein has
//! been docked with the 168 others. Each time we received the results, we
//! validated those results with 3 different checks ... Then when the files
//! were checked, we merged result files in order to have one result file
//! for one couple of proteins."
//!
//! [`ReceptionPipeline`] tracks workunit result files as they arrive,
//! detects when a receptor is fully docked against the whole set, runs the
//! three checks on the receptor's batch, merges per couple, and keeps the
//! running statistics behind the Figure 7 progression graphics ("In
//! addition to these controls, we provide the graphics ... which
//! represents the progression of the project").

use crate::checks::{check_batch, CheckFailure, ValueRanges};
use crate::format::ResultFile;
use crate::merge::{merge_couple_files, MergeError};
use maxdo::ProteinId;
use std::collections::HashMap;

/// Outcome of processing one receptor's completed batch.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchOutcome {
    /// The receptor whose batch completed.
    pub receptor: ProteinId,
    /// Check failures found (empty = batch accepted).
    pub failures: Vec<CheckFailure>,
    /// Merge errors per ligand, if any.
    pub merge_errors: Vec<(ProteinId, MergeError)>,
    /// Merged files (one per ligand) when everything passed.
    pub merged: Vec<ResultFile>,
}

impl BatchOutcome {
    /// True when the batch passed all checks and merged cleanly.
    pub fn accepted(&self) -> bool {
        self.failures.is_empty() && self.merge_errors.is_empty()
    }
}

/// Tracks arriving result files and processes per-receptor batches.
#[derive(Debug)]
pub struct ReceptionPipeline {
    /// Number of proteins in the set (168 for phase I).
    set_size: u32,
    /// `Nsep` per receptor (indexed by protein id).
    nsep: Vec<u32>,
    /// Expected workunit-file count per couple, `(receptor, ligand)`.
    expected_files: HashMap<(u32, u32), u32>,
    /// Received (but not yet consumed) files per couple.
    pending: HashMap<(u32, u32), Vec<ResultFile>>,
    /// Ranges used for the value check.
    ranges: ValueRanges,
    /// Receptors already processed.
    done: Vec<bool>,
    /// Total files received.
    pub files_received: u64,
}

impl ReceptionPipeline {
    /// Creates a pipeline for a protein set.
    ///
    /// `expected_files(receptor, ligand)` tells the pipeline how many
    /// workunit files each couple was split into (check 1 needs it);
    /// `nsep[receptor]` bounds the merged coverage (checks 2/3 + merge).
    pub fn new(
        nsep: Vec<u32>,
        expected_files: HashMap<(u32, u32), u32>,
        ranges: ValueRanges,
    ) -> Self {
        let set_size = nsep.len() as u32;
        assert!(set_size > 0, "empty protein set");
        assert_eq!(
            expected_files.len(),
            (set_size * set_size) as usize,
            "need an expected file count for every ordered couple"
        );
        Self {
            set_size,
            done: vec![false; nsep.len()],
            nsep,
            expected_files,
            pending: HashMap::new(),
            ranges,
            files_received: 0,
        }
    }

    /// Number of files received so far for a couple.
    pub fn received_for(&self, receptor: ProteinId, ligand: ProteinId) -> usize {
        self.pending
            .get(&(receptor.0, ligand.0))
            .map_or(0, |v| v.len())
    }

    /// Whether a receptor's batch (all `set_size` couples complete) is
    /// ready for processing.
    pub fn receptor_ready(&self, receptor: ProteinId) -> bool {
        !self.done[receptor.0 as usize]
            && (0..self.set_size).all(|l| {
                let expected = self.expected_files[&(receptor.0, l)];
                self.received_for(receptor, ProteinId(l)) as u32 >= expected
            })
    }

    /// Ingests one workunit result file. When this file completes its
    /// receptor's batch, the batch is validated and merged and the outcome
    /// returned.
    pub fn ingest(&mut self, file: ResultFile) -> Option<BatchOutcome> {
        assert!(
            file.receptor.0 < self.set_size && file.ligand.0 < self.set_size,
            "file references a protein outside the set"
        );
        self.files_received += 1;
        let receptor = file.receptor;
        self.pending
            .entry((file.receptor.0, file.ligand.0))
            .or_default()
            .push(file);
        if self.receptor_ready(receptor) {
            Some(self.process_batch(receptor))
        } else {
            None
        }
    }

    /// Runs checks + merge on a ready receptor batch.
    fn process_batch(&mut self, receptor: ProteinId) -> BatchOutcome {
        let mut failures = Vec::new();
        let mut merge_errors = Vec::new();
        let mut merged = Vec::new();
        for l in 0..self.set_size {
            let ligand = ProteinId(l);
            let files = self.pending.remove(&(receptor.0, l)).unwrap_or_default();
            let expected = self.expected_files[&(receptor.0, l)] as usize;
            failures.extend(check_batch(
                receptor,
                ligand,
                &files,
                expected,
                &self.ranges,
            ));
            match merge_couple_files(files, self.nsep[receptor.0 as usize]) {
                Ok(f) => merged.push(f),
                Err(e) => merge_errors.push((ligand, e)),
            }
        }
        self.done[receptor.0 as usize] = true;
        BatchOutcome {
            receptor,
            failures,
            merge_errors,
            merged,
        }
    }

    /// Receptors fully processed so far.
    pub fn receptors_done(&self) -> usize {
        self.done.iter().filter(|&&d| d).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maxdo::{DockingRow, EulerZyz, Vec3};

    /// A file for couple `(r, l)` covering `isep_start..=isep_end`, nrot 2.
    fn file(r: u32, l: u32, isep_start: u32, isep_end: u32) -> ResultFile {
        ResultFile {
            receptor: ProteinId(r),
            ligand: ProteinId(l),
            isep_start,
            isep_end,
            nrot: 2,
            rows: (isep_start..=isep_end)
                .flat_map(|isep| {
                    (1..=2u32).map(move |irot| DockingRow {
                        isep,
                        irot,
                        position: Vec3::new(5.0, 0.0, 0.0),
                        orientation: EulerZyz::default(),
                        elj: -1.0,
                        eelec: 0.25,
                    })
                })
                .collect(),
        }
    }

    /// A 2-protein set: each receptor has nsep 4, split as 2 files of 2.
    fn pipeline() -> ReceptionPipeline {
        let mut expected = HashMap::new();
        for r in 0..2 {
            for l in 0..2 {
                expected.insert((r, l), 2);
            }
        }
        ReceptionPipeline::new(vec![4, 4], expected, ValueRanges::default())
    }

    #[test]
    fn batch_triggers_when_the_last_file_lands() {
        let mut p = pipeline();
        assert!(p.ingest(file(0, 0, 1, 2)).is_none());
        assert!(p.ingest(file(0, 0, 3, 4)).is_none());
        assert!(p.ingest(file(0, 1, 1, 2)).is_none());
        let outcome = p.ingest(file(0, 1, 3, 4)).expect("batch complete");
        assert_eq!(outcome.receptor, ProteinId(0));
        assert!(outcome.accepted(), "{outcome:?}");
        assert_eq!(outcome.merged.len(), 2);
        assert_eq!(p.receptors_done(), 1);
        assert_eq!(p.files_received, 4);
    }

    #[test]
    fn batches_are_per_receptor() {
        let mut p = pipeline();
        // Interleave files of both receptors.
        assert!(p.ingest(file(0, 0, 1, 2)).is_none());
        assert!(p.ingest(file(1, 0, 1, 2)).is_none());
        assert!(p.ingest(file(1, 1, 1, 2)).is_none());
        assert!(p.ingest(file(0, 1, 1, 2)).is_none());
        assert!(p.ingest(file(0, 0, 3, 4)).is_none());
        let first = p.ingest(file(0, 1, 3, 4)).expect("receptor 0 done");
        assert_eq!(first.receptor, ProteinId(0));
        assert!(p.ingest(file(1, 0, 3, 4)).is_none());
        let second = p.ingest(file(1, 1, 3, 4)).expect("receptor 1 done");
        assert_eq!(second.receptor, ProteinId(1));
        assert_eq!(p.receptors_done(), 2);
    }

    #[test]
    fn corrupted_file_fails_the_batch_checks() {
        let mut p = pipeline();
        let mut bad = file(0, 0, 1, 2);
        bad.rows[0].eelec = f64::NAN;
        p.ingest(bad);
        p.ingest(file(0, 0, 3, 4));
        p.ingest(file(0, 1, 1, 2));
        let outcome = p.ingest(file(0, 1, 3, 4)).unwrap();
        assert!(!outcome.accepted());
        assert!(outcome
            .failures
            .iter()
            .any(|f| matches!(f, CheckFailure::ValueRange { .. })));
        // The clean couple still merged; the batch as a whole is flagged.
        assert_eq!(outcome.merged.len(), 2);
    }

    #[test]
    fn overlapping_files_fail_the_merge() {
        let mut p = pipeline();
        p.ingest(file(0, 0, 1, 2));
        p.ingest(file(0, 0, 2, 4)); // overlaps position 2 — counts as 2 files
        p.ingest(file(0, 1, 1, 2));
        let outcome = p.ingest(file(0, 1, 3, 4)).unwrap();
        assert!(!outcome.accepted());
        assert!(outcome
            .merge_errors
            .iter()
            .any(|(l, e)| *l == ProteinId(0) && matches!(e, MergeError::Overlap { .. })));
    }

    #[test]
    #[should_panic(expected = "outside the set")]
    fn foreign_protein_rejected() {
        pipeline().ingest(file(5, 0, 1, 2));
    }

    #[test]
    #[should_panic(expected = "every ordered couple")]
    fn incomplete_expectation_table_rejected() {
        ReceptionPipeline::new(vec![4, 4], HashMap::new(), ValueRanges::default());
    }
}

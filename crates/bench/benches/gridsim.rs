//! Benchmarks of the discrete-event substrate: raw event-queue
//! throughput, host execution planning, task-server issue/report cycles,
//! and a whole scaled campaign per iteration.

use criterion::{criterion_group, criterion_main, Criterion};
use gridsim::{
    EventQueue, HeapQueue, Host, HostId, HostParams, Scheduler, ServerConfig, SimTime, TaskServer,
    VolunteerGridConfig, VolunteerGridSim,
};
use std::hint::black_box;

/// Schedules 10k scattered events and drains them on engine `S` — the
/// shared body of the wheel-vs-heap A/B pair below.
fn schedule_pop_10k<S: Scheduler<u64>>() -> u64 {
    let mut q = S::default();
    for i in 0..10_000u64 {
        // Scatter times deterministically.
        let t = ((i * 2_654_435_761) % 1_000_000) as f64;
        q.schedule(SimTime::new(t), i);
    }
    let mut acc = 0u64;
    while let Some((_, e)) = q.pop() {
        acc = acc.wrapping_add(e);
    }
    acc
}

fn bench_event_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue_schedule_pop_10k");
    group.bench_function("wheel", |b| {
        b.iter(|| black_box(schedule_pop_10k::<EventQueue<u64>>()))
    });
    group.bench_function("heap", |b| {
        b.iter(|| black_box(schedule_pop_10k::<HeapQueue<u64>>()))
    });
    group.finish();
}

fn bench_host_planning(c: &mut Criterion) {
    let params = HostParams::wcg_2007();
    let mut host = Host::sample(HostId(7), &params, 1);
    c.bench_function("host_plan_execution", |b| {
        b.iter(|| black_box(host.plan_execution(black_box(14_400.0), black_box(400.0))))
    });
}

fn bench_task_server(c: &mut Criterion) {
    c.bench_function("server_issue_report_10k_wus", |b| {
        b.iter(|| {
            let catalog: Vec<_> = (0..10_000)
                .map(|i| gridsim::server::WorkunitCatalogEntry {
                    ref_seconds: 1000.0 + i as f32,
                    position_ref_seconds: 100.0,
                    receptor: (i % 168) as u16,
                })
                .collect();
            let mut server = TaskServer::new(
                catalog,
                ServerConfig {
                    validation_switch_day: Some(0),
                    ..Default::default()
                },
            );
            let now = SimTime::new(86_400.0);
            let mut done = 0u64;
            while let Some(assign) = server.fetch_work(now) {
                let out = server.report_result(now, assign.replica, false);
                done += u64::from(out.completed_workunit);
            }
            black_box(done)
        })
    });
}

fn bench_campaign(c: &mut Criterion) {
    let mut group = c.benchmark_group("campaign");
    group.sample_size(10);
    group.bench_function("hcmd_phase1_scale_200", |b| {
        // Build inputs once; the simulation itself is the benchmark body.
        let full = maxdo::ProteinLibrary::phase1_catalog();
        let model = maxdo::CostModel::reference(&full);
        let matrix = timemodel::CostMatrix::from_cost_model(&full, &model);
        let lib = full.with_scaled_nsep(200);
        let pkg = workunit::CampaignPackage::new(&lib, &matrix, workunit::PRODUCTION_WU_SECONDS);
        b.iter(|| {
            let config = VolunteerGridConfig::hcmd_phase1(200, 2007);
            black_box(VolunteerGridSim::new(&pkg, config).run())
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_host_planning,
    bench_task_server,
    bench_campaign
);
criterion_main!(benches);

//! Micro-benchmarks of the energy kernel — the inner loop of the 80
//! CPU-centuries — including the cell-list ablation called out in
//! DESIGN.md (cell-list evaluation vs brute-force all-pairs).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use maxdo::energy::{energy_and_gradient, interaction_energy, CellList};
use maxdo::{EnergyParams, EulerZyz, LibraryConfig, Pose, Protein, ProteinLibrary, Vec3};
use std::hint::black_box;

fn protein_of_size(residues: f64, seed: u64) -> Protein {
    let lib = ProteinLibrary::generate(
        LibraryConfig {
            count: 1,
            median_residues: residues,
            sigma_log_residues: 0.0,
            min_residues: 10,
            max_residues: 5000,
            include_giant: false,
            separation_spacing: 6.0,
        },
        seed,
    );
    lib.proteins()[0].clone()
}

fn contact_pose(receptor: &Protein, ligand: &Protein) -> Pose {
    Pose::from_euler(
        EulerZyz::default(),
        Vec3::new(
            receptor.bounding_radius() + ligand.bounding_radius() * 0.3,
            0.0,
            0.0,
        ),
    )
}

/// Brute-force all-pairs energy (the ablation baseline).
fn brute_force(receptor: &Protein, ligand: &Protein, pose: &Pose, params: &EnergyParams) -> f64 {
    let cutoff_sq = params.cutoff * params.cutoff;
    let delta_sq = params.softening * params.softening;
    let rc_sq = cutoff_sq + delta_sq;
    let mut total = 0.0;
    for lb in ligand.beads() {
        let lp = pose.apply(lb.position);
        for rb in receptor.beads() {
            let r_sq = (lp - rb.position).norm_sq();
            if r_sq >= cutoff_sq {
                continue;
            }
            let eps = (lb.kind.epsilon() * rb.kind.epsilon()).sqrt();
            let rmin = lb.kind.radius() + rb.kind.radius();
            let rr_sq = r_sq + delta_sq;
            let s6 = (rmin * rmin / rr_sq).powi(3);
            let c6 = (rmin * rmin / rc_sq).powi(3);
            total += eps * ((s6 * s6 - 2.0 * s6) - (c6 * c6 - 2.0 * c6));
            total += maxdo::energy::COULOMB_KCAL * lb.kind.charge() * rb.kind.charge()
                / params.dielectric
                * (1.0 / rr_sq - 1.0 / rc_sq);
        }
    }
    total
}

fn bench_energy(c: &mut Criterion) {
    let params = EnergyParams::default();
    let mut group = c.benchmark_group("energy_evaluation");
    for residues in [50.0, 150.0, 400.0] {
        let receptor = protein_of_size(residues, 1);
        let ligand = protein_of_size(residues * 0.6, 2);
        let pose = contact_pose(&receptor, &ligand);
        let cells = CellList::build(&receptor, params.cutoff);
        group.bench_with_input(
            BenchmarkId::new("cell_list", residues as u64),
            &residues,
            |b, _| {
                b.iter(|| {
                    black_box(interaction_energy(
                        &receptor,
                        &cells,
                        &ligand,
                        black_box(&pose),
                        &params,
                    ))
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("brute_force", residues as u64),
            &residues,
            |b, _| b.iter(|| black_box(brute_force(&receptor, &ligand, black_box(&pose), &params))),
        );
        group.bench_with_input(
            BenchmarkId::new("with_gradient", residues as u64),
            &residues,
            |b, _| {
                b.iter(|| {
                    black_box(energy_and_gradient(
                        &receptor,
                        &cells,
                        &ligand,
                        black_box(&pose),
                        &params,
                    ))
                })
            },
        );
    }
    group.finish();

    // Cell-list construction cost (amortised over a whole docking map).
    let receptor = protein_of_size(400.0, 1);
    c.bench_function("cell_list_build_400res", |b| {
        b.iter(|| black_box(CellList::build(black_box(&receptor), params.cutoff)))
    });
}

criterion_group!(benches, bench_energy);
criterion_main!(benches);

//! Measures what the *enabled* telemetry instrumentation costs the
//! gridsim event loop.
//!
//! The comparison is within one binary: the same schedule/pop cycle runs
//! bare, and then with the instrumentation the simulator performs — the
//! per-event sampled-emit check (stride test plus the no-sink fast path),
//! and the day-granularity flush of the engine's plain pop/depth fields
//! into the global counter and gauge (the engine batches exactly this
//! way: the hot loop itself touches no atomics). Run with the feature on
//! to measure the real cost:
//!
//! ```text
//! cargo bench --bench telemetry_overhead --features telemetry
//! ```
//!
//! Without `--features telemetry` the instrumented loop compiles to the
//! bare loop (zero-sized no-ops), so the overhead reads as noise around
//! 0 % — which is itself the zero-cost-when-disabled claim.

use criterion::black_box;
use gridsim::event::{EventQueue, SimTime};
use std::time::Instant;

const EVENTS_PER_PASS: usize = 10_000;

/// Events per simulated day: the flush cadence the engine uses. The
/// campaign engine processes far more events per `DayTick` than this, so
/// the bench over-counts flush cost, not under.
const EVENTS_PER_DAY: u32 = 1_024;

/// One schedule/pop pass over the event queue; returns a checksum so the
/// optimizer cannot discard the work.
fn bare_pass() -> u64 {
    let mut q: EventQueue<u32> = EventQueue::new();
    let mut acc = 0u64;
    for i in 0..EVENTS_PER_PASS as u32 {
        q.schedule(SimTime::new(f64::from(i)), i);
    }
    while let Some((t, e)) = q.pop() {
        acc = acc
            .wrapping_add(t.seconds() as u64)
            .wrapping_add(u64::from(e));
    }
    acc
}

/// The same pass with the instrumentation the simulator adds.
fn instrumented_pass(events: &'static telemetry::Counter, depth: &'static telemetry::Gauge) -> u64 {
    let mut q: EventQueue<u32> = EventQueue::new();
    let mut acc = 0u64;
    let mut flushed = 0u64;
    for i in 0..EVENTS_PER_PASS as u32 {
        q.schedule(SimTime::new(f64::from(i)), i);
    }
    while let Some((t, e)) = q.pop() {
        // The sampled lifecycle emit: stride check plus the no-sink
        // fast path (one relaxed load) for the sampled events.
        if e % 512 == 0 {
            telemetry::emit(Some(t.seconds()), || telemetry::Event::WorkunitValidated {
                workunit: u64::from(e),
            });
        }
        // The day-tick flush: publish the queue's plain pop/depth
        // counters to the global registry.
        if e % EVENTS_PER_DAY == 0 {
            let pops = q.pops();
            events.add(pops - flushed);
            flushed = pops;
            depth.record_max(q.peak_len() as i64);
        }
        acc = acc
            .wrapping_add(t.seconds() as u64)
            .wrapping_add(u64::from(e));
    }
    events.add(q.pops() - flushed);
    acc
}

/// Mean nanoseconds per pass over `iters` timed passes.
fn time_passes<F: FnMut() -> u64>(mut f: F, iters: u32) -> f64 {
    let start = Instant::now();
    for _ in 0..iters {
        black_box(f());
    }
    start.elapsed().as_nanos() as f64 / f64::from(iters)
}

fn main() {
    let events = telemetry::counter("bench.event_loop.pops");
    let depth = telemetry::gauge("bench.event_loop.peak_depth");

    // Warm both paths (heap allocations, branch predictors).
    for _ in 0..5 {
        black_box(bare_pass());
        black_box(instrumented_pass(events, depth));
    }

    const ITERS: u32 = 50;
    // Interleave measurement blocks so frequency drift hits both paths.
    let mut bare = 0.0;
    let mut instrumented = 0.0;
    for _ in 0..5 {
        bare += time_passes(bare_pass, ITERS / 5);
        instrumented += time_passes(|| instrumented_pass(events, depth), ITERS / 5);
    }
    bare /= 5.0;
    instrumented /= 5.0;

    let overhead = (instrumented - bare) / bare * 100.0;
    let per_event = (instrumented - bare) / EVENTS_PER_PASS as f64;
    println!(
        "telemetry {}: event loop {EVENTS_PER_PASS} events/pass",
        if telemetry::ENABLED {
            "ENABLED"
        } else {
            "disabled"
        },
    );
    println!("  bare loop          {bare:>12.0} ns/pass");
    println!("  instrumented loop  {instrumented:>12.0} ns/pass");
    println!("  overhead           {overhead:>11.2} %  ({per_event:.2} ns/event)");
    if telemetry::ENABLED && overhead >= 2.0 {
        eprintln!("warning: overhead above the 2 % budget");
        std::process::exit(1);
    }
}

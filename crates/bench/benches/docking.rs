//! Benchmarks of the docking driver: one minimisation, one docking cell
//! (10 γ twists), one starting position (21 couples), and the parallel
//! map speedup (rayon over starting positions — the dedicated-grid
//! execution style).

use criterion::{criterion_group, criterion_main, Criterion};
use maxdo::minimize::minimize_from_distance;
use maxdo::{DockingEngine, EnergyParams, LibraryConfig, MinimizeParams, ProteinLibrary};
use std::hint::black_box;

fn bench_docking(c: &mut Criterion) {
    let library = ProteinLibrary::generate(LibraryConfig::tiny(2), 77);
    let ep = EnergyParams::default();
    let mp = MinimizeParams {
        max_iterations: 30,
        ..Default::default()
    };
    let receptor = &library.proteins()[0];
    let ligand = &library.proteins()[1];
    let engine = DockingEngine::new(receptor, ligand, 24, ep, mp);

    let mut minimizer_group = c.benchmark_group("minimizer_ablation");
    minimizer_group.bench_function("steepest_descent", |b| {
        b.iter(|| {
            black_box(minimize_from_distance(
                receptor,
                ligand,
                black_box(receptor.surface_radius() + 2.0),
                &ep,
                &mp,
            ))
        })
    });
    minimizer_group.bench_function("fire", |b| {
        let cells = maxdo::CellList::build(receptor, ep.cutoff);
        let start = maxdo::Pose::from_euler(
            maxdo::EulerZyz::default(),
            maxdo::Vec3::new(receptor.surface_radius() + 2.0, 0.0, 0.0),
        );
        let fp = maxdo::FireParams::default();
        b.iter(|| {
            black_box(maxdo::minimize_fire(
                receptor,
                &cells,
                ligand,
                black_box(start),
                &ep,
                &fp,
            ))
        })
    });
    minimizer_group.finish();

    c.bench_function("dock_cell_10_gammas", |b| {
        b.iter(|| black_box(engine.dock_cell(black_box(1), black_box(1))))
    });

    let mut group = c.benchmark_group("dock_position_21_couples");
    group.sample_size(10);
    group.bench_function("sequential", |b| {
        b.iter(|| black_box(engine.dock_position(black_box(2))))
    });
    group.finish();

    let mut map_group = c.benchmark_group("dock_map_24_positions");
    map_group.sample_size(10);
    map_group.bench_function("sequential", |b| {
        b.iter(|| black_box(engine.dock_range(1, 24)))
    });
    map_group.bench_function("rayon_parallel", |b| {
        b.iter(|| black_box(engine.dock_map_parallel()))
    });
    map_group.finish();
}

criterion_group!(benches, bench_docking);
criterion_main!(benches);

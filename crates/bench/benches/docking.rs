//! Benchmarks of the docking driver: one minimisation, one docking cell
//! (10 γ twists), one starting position (21 couples), the parallel map
//! speedup (rayon over starting positions — the dedicated-grid
//! execution style), and a thread sweep that records measured speedups
//! to `BENCH_parallel.json`.

use criterion::{criterion_group, criterion_main, Criterion};
use maxdo::minimize::minimize_from_distance;
use maxdo::{DockingEngine, EnergyParams, LibraryConfig, MinimizeParams, ProteinLibrary};
use std::hint::black_box;
use std::time::Instant;

fn bench_docking(c: &mut Criterion) {
    let library = ProteinLibrary::generate(LibraryConfig::tiny(2), 77);
    let ep = EnergyParams::default();
    let mp = MinimizeParams {
        max_iterations: 30,
        ..Default::default()
    };
    let receptor = &library.proteins()[0];
    let ligand = &library.proteins()[1];
    let engine = DockingEngine::new(receptor, ligand, 24, ep, mp);

    let mut minimizer_group = c.benchmark_group("minimizer_ablation");
    minimizer_group.bench_function("steepest_descent", |b| {
        b.iter(|| {
            black_box(minimize_from_distance(
                receptor,
                ligand,
                black_box(receptor.surface_radius() + 2.0),
                &ep,
                &mp,
            ))
        })
    });
    minimizer_group.bench_function("fire", |b| {
        let cells = maxdo::CellList::build(receptor, ep.cutoff);
        let start = maxdo::Pose::from_euler(
            maxdo::EulerZyz::default(),
            maxdo::Vec3::new(receptor.surface_radius() + 2.0, 0.0, 0.0),
        );
        let fp = maxdo::FireParams::default();
        b.iter(|| {
            black_box(maxdo::minimize_fire(
                receptor,
                &cells,
                ligand,
                black_box(start),
                &ep,
                &fp,
            ))
        })
    });
    minimizer_group.finish();

    c.bench_function("dock_cell_10_gammas", |b| {
        b.iter(|| black_box(engine.dock_cell(black_box(1), black_box(1))))
    });

    let mut group = c.benchmark_group("dock_position_21_couples");
    group.sample_size(10);
    group.bench_function("sequential", |b| {
        b.iter(|| black_box(engine.dock_position(black_box(2))))
    });
    group.finish();

    let mut map_group = c.benchmark_group("dock_map_24_positions");
    map_group.sample_size(10);
    map_group.bench_function("sequential", |b| {
        b.iter(|| black_box(engine.dock_range(1, 24)))
    });
    map_group.bench_function("rayon_parallel", |b| {
        b.iter(|| black_box(engine.dock_map_parallel()))
    });
    map_group.finish();
}

/// Times `f` as the best (minimum) wall clock over `reps` runs.
fn best_of<T>(reps: u32, mut f: impl FnMut() -> T) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        black_box(f());
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

/// One row of the thread sweep in `BENCH_parallel.json`.
#[derive(serde::Serialize)]
struct SweepPoint {
    threads: usize,
    seconds: f64,
    speedup_vs_serial: f64,
}

/// The `BENCH_parallel.json` document.
#[derive(serde::Serialize)]
struct SweepReport {
    bench: String,
    host_parallelism: usize,
    /// False when the host cannot actually run threads concurrently
    /// (`host_parallelism == 1`): the sweep still runs for the
    /// bit-identity check, but its ~1.0x "speedups" are time-slicing
    /// artifacts, not measurements.
    speedup_valid: bool,
    nsep: u32,
    reps_best_of: u32,
    smoke: bool,
    serial_seconds: f64,
    sweep: Vec<SweepPoint>,
    bit_identical_to_serial: bool,
}

/// Sweeps `dock_map_parallel` over 1/2/4/N threads against the serial
/// `dock_range` baseline, asserts the parallel output is bit-identical,
/// and writes the measured speedups to `BENCH_parallel.json`.
fn bench_thread_sweep(_c: &mut Criterion) {
    let library = ProteinLibrary::generate(LibraryConfig::tiny(2), 77);
    let ep = EnergyParams::default();
    let mp = MinimizeParams {
        max_iterations: 30,
        ..Default::default()
    };
    let engine = DockingEngine::new(&library.proteins()[0], &library.proteins()[1], 24, ep, mp);
    let host = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let speedup_valid = host > 1;
    if !speedup_valid {
        eprintln!(
            "bench: host has a single hardware thread; thread-sweep \
             speedups are time-slicing artifacts and will be marked \
             \"speedup_valid\": false"
        );
    }
    let mut counts = vec![1usize, 2, 4, host];
    counts.sort_unstable();
    counts.dedup();

    let reps = if criterion::smoke_mode() { 1 } else { 5 };
    let serial_out = engine.dock_range(1, engine.nsep());
    let serial_seconds = best_of(reps, || engine.dock_range(1, engine.nsep()));

    let mut sweep = Vec::new();
    let mut bit_identical = true;
    for &threads in &counts {
        let out = rayon::with_threads(threads, || engine.dock_map_parallel());
        bit_identical &= out == serial_out;
        let seconds = best_of(reps, || {
            rayon::with_threads(threads, || engine.dock_map_parallel())
        });
        let speedup = serial_seconds / seconds;
        println!(
            "bench dock_map_parallel/threads={threads:<2} \
             {:>10.3} ms/map  speedup {speedup:>5.2}x",
            seconds * 1e3
        );
        sweep.push(SweepPoint {
            threads,
            seconds,
            speedup_vs_serial: speedup,
        });
    }
    assert!(
        bit_identical,
        "parallel docking output diverged from serial"
    );

    let report = SweepReport {
        bench: "dock_map_parallel_thread_sweep".to_string(),
        host_parallelism: host,
        speedup_valid,
        nsep: engine.nsep(),
        reps_best_of: reps,
        smoke: criterion::smoke_mode(),
        serial_seconds,
        sweep,
        bit_identical_to_serial: bit_identical,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    // Cargo runs benches with cwd = the package dir; anchor the report
    // at the workspace root where the docs reference it.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_parallel.json");
    match std::fs::write(path, json + "\n") {
        Ok(()) => println!("bench thread sweep -> {path}"),
        Err(e) => eprintln!("bench: cannot write {path}: {e}"),
    }
}

criterion_group!(benches, bench_docking, bench_thread_sweep);
criterion_main!(benches);

//! Micro-benchmark of the two wire codecs: JSON (protocol v1) against
//! the fixed-width binary codec (protocol v2) on a production-sized
//! `ResultReport` frame — the frame that dominates bytes on the wire,
//! since one report carries a whole workunit's docking rows.
//!
//! Writes `BENCH_codec.json` at the workspace root with ns-per-frame
//! for each codec/direction and the binary-over-JSON speedups;
//! `tools/bench_guard` warns if binary ever fails to beat JSON.

use criterion::{criterion_group, criterion_main, Criterion};
use maxdo::{DockingOutput, DockingRow, EulerZyz, Vec3};
use netgrid::protocol::{decode_versioned, encode_with, Message};
use netgrid::Codec;
use std::hint::black_box;
use std::time::Instant;

/// A production-sized report: ~36 starting positions × 21 rotations,
/// the workunit granularity the docs size the campaign around.
fn representative_report() -> Message {
    let rows = (1..=36u32)
        .flat_map(|isep| {
            (1..=21u32).map(move |irot| DockingRow {
                isep,
                irot,
                position: Vec3::new(12.5, -3.25, 8.0 + isep as f64),
                orientation: EulerZyz {
                    alpha: 1.0,
                    beta: 0.5,
                    gamma: 0.1 * irot as f64,
                },
                elj: -12.345_678,
                eelec: 3.25,
            })
        })
        .collect::<Vec<_>>();
    Message::ResultReport {
        replica: 7,
        workunit: 3,
        output: DockingOutput {
            rows,
            evaluations: 99_000,
        },
    }
}

fn bench_frame_codec(c: &mut Criterion) {
    let msg = representative_report();
    let json_frame = encode_with(&msg, Codec::Json);
    let binary_frame = encode_with(&msg, Codec::Binary);

    let mut group = c.benchmark_group("frame_codec");
    group.bench_function("json_encode", |b| {
        b.iter(|| black_box(encode_with(black_box(&msg), Codec::Json)))
    });
    group.bench_function("binary_encode", |b| {
        b.iter(|| black_box(encode_with(black_box(&msg), Codec::Binary)))
    });
    group.bench_function("json_decode", |b| {
        b.iter(|| black_box(decode_versioned(black_box(&json_frame)).unwrap()))
    });
    group.bench_function("binary_decode", |b| {
        b.iter(|| black_box(decode_versioned(black_box(&binary_frame)).unwrap()))
    });
    group.finish();
}

/// Times `f` as the best (minimum) wall clock over `reps` runs.
fn best_of<T>(reps: u32, mut f: impl FnMut() -> T) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        black_box(f());
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

/// The `BENCH_codec.json` document.
#[derive(serde::Serialize)]
struct CodecReport {
    bench: String,
    smoke: bool,
    reps_best_of: u32,
    /// Docking rows in the measured report frame.
    rows: usize,
    frame_bytes_json: usize,
    frame_bytes_binary: usize,
    json_encode_ns: f64,
    json_decode_ns: f64,
    binary_encode_ns: f64,
    binary_decode_ns: f64,
    binary_encode_speedup: f64,
    binary_decode_speedup: f64,
}

/// Measures both codecs with a best-of batch timer (steadier than the
/// calibrated mean on a noisy CI box) and writes `BENCH_codec.json`.
fn bench_codec_report(_c: &mut Criterion) {
    let msg = representative_report();
    let rows = match &msg {
        Message::ResultReport { output, .. } => output.rows.len(),
        _ => unreachable!(),
    };
    let json_frame = encode_with(&msg, Codec::Json);
    let binary_frame = encode_with(&msg, Codec::Binary);

    let reps = if criterion::smoke_mode() { 1 } else { 7 };
    let batch = if criterion::smoke_mode() { 1 } else { 50 };
    let per_frame = |total: f64| total / batch as f64 * 1e9;

    let json_encode_ns = per_frame(best_of(reps, || {
        for _ in 0..batch {
            black_box(encode_with(black_box(&msg), Codec::Json));
        }
    }));
    let binary_encode_ns = per_frame(best_of(reps, || {
        for _ in 0..batch {
            black_box(encode_with(black_box(&msg), Codec::Binary));
        }
    }));
    let json_decode_ns = per_frame(best_of(reps, || {
        for _ in 0..batch {
            black_box(decode_versioned(black_box(&json_frame)).unwrap());
        }
    }));
    let binary_decode_ns = per_frame(best_of(reps, || {
        for _ in 0..batch {
            black_box(decode_versioned(black_box(&binary_frame)).unwrap());
        }
    }));

    let report = CodecReport {
        bench: "frame_codec".to_string(),
        smoke: criterion::smoke_mode(),
        reps_best_of: reps,
        rows,
        frame_bytes_json: json_frame.len(),
        frame_bytes_binary: binary_frame.len(),
        json_encode_ns,
        json_decode_ns,
        binary_encode_ns,
        binary_decode_ns,
        binary_encode_speedup: json_encode_ns / binary_encode_ns,
        binary_decode_speedup: json_decode_ns / binary_decode_ns,
    };
    println!(
        "bench frame_codec: {} rows, {} B json vs {} B binary ({:.1}x smaller), \
         encode {:.1}x faster, decode {:.1}x faster",
        rows,
        report.frame_bytes_json,
        report.frame_bytes_binary,
        report.frame_bytes_json as f64 / report.frame_bytes_binary as f64,
        report.binary_encode_speedup,
        report.binary_decode_speedup,
    );
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    // Cargo runs benches with cwd = the package dir; anchor the report
    // at the workspace root where the docs and bench_guard reference it.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_codec.json");
    match std::fs::write(path, json + "\n") {
        Ok(()) => println!("bench frame_codec -> {path}"),
        Err(e) => eprintln!("bench: cannot write {path}: {e}"),
    }
}

criterion_group!(benches, bench_frame_codec, bench_codec_report);
criterion_main!(benches);

//! Benchmarks of the §5.2 result-processing pipeline: serialising,
//! parsing, checking and merging result files at the throughput the real
//! pipeline needed (3.9 million files over the campaign).

use criterion::{criterion_group, criterion_main, Criterion};
use maxdo::{DockingRow, EulerZyz, ProteinId, Vec3};
use std::hint::black_box;
use validation::checks::{check_file, ValueRanges};
use validation::format::{parse_result_file, write_result_file, ResultFile};
use validation::merge_couple_files;

/// A synthetic result file with `positions × 21` rows.
fn synthetic_file(isep_start: u32, positions: u32) -> ResultFile {
    let isep_end = isep_start + positions - 1;
    ResultFile {
        receptor: ProteinId(0),
        ligand: ProteinId(1),
        isep_start,
        isep_end,
        nrot: 21,
        rows: (isep_start..=isep_end)
            .flat_map(|isep| {
                (1..=21u32).map(move |irot| DockingRow {
                    isep,
                    irot,
                    position: Vec3::new(12.5, -3.25, 8.0),
                    orientation: EulerZyz {
                        alpha: 1.0,
                        beta: 0.5,
                        gamma: 2.0,
                    },
                    elj: -12.345_678,
                    eelec: 3.25,
                })
            })
            .collect(),
    }
}

fn bench_validation(c: &mut Criterion) {
    // A production-sized workunit: ~36 positions (h=4h / 400 s).
    let file = synthetic_file(1, 36);
    let text = write_result_file(&file);
    let ranges = ValueRanges::default();

    c.bench_function("result_file_write_36pos", |b| {
        b.iter(|| black_box(write_result_file(black_box(&file))))
    });

    c.bench_function("result_file_parse_36pos", |b| {
        b.iter(|| black_box(parse_result_file(black_box(&text)).unwrap()))
    });

    c.bench_function("checks_36pos", |b| {
        b.iter(|| black_box(check_file(black_box(&file), &ranges)))
    });

    c.bench_function("merge_couple_50_chunks", |b| {
        b.iter(|| {
            let chunks: Vec<ResultFile> = (0..50).map(|k| synthetic_file(k * 36 + 1, 36)).collect();
            black_box(merge_couple_files(chunks, 50 * 36).unwrap())
        })
    });
}

criterion_group!(benches, bench_validation);
criterion_main!(benches);

//! Benchmarks of the §4.1/§4.2 planning layer on the *full-scale* phase-I
//! inputs: building the 168² compute-time matrix, deriving the workload,
//! and packaging 1.4–3.6 million workunits.

use bench_support::catalog_and_matrix;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use maxdo::CostModel;
use std::hint::black_box;
use timemodel::{CostMatrix, Workload};
use workunit::{CampaignPackage, LaunchSchedule};

fn bench_planning(c: &mut Criterion) {
    let (library, matrix) = catalog_and_matrix();

    let mut group = c.benchmark_group("planning");
    group.sample_size(10);

    group.bench_function("cost_matrix_168x168", |b| {
        let model = CostModel::reference(library);
        b.iter(|| black_box(CostMatrix::from_cost_model(black_box(library), &model)))
    });

    group.bench_function("workload_derive", |b| {
        b.iter(|| black_box(Workload::derive(black_box(library), matrix)))
    });

    group.bench_function("table1", |b| {
        b.iter(|| black_box(timemodel::table1(black_box(library), matrix)))
    });

    for h_hours in [10.0, 4.0] {
        group.bench_with_input(
            BenchmarkId::new("package_count", h_hours as u64),
            &h_hours,
            |b, &h| {
                let pkg = CampaignPackage::new(library, matrix, h * 3600.0);
                b.iter(|| black_box(pkg.count()))
            },
        );
    }

    group.bench_function("launch_schedule", |b| {
        let pkg = CampaignPackage::new(library, matrix, 4.0 * 3600.0);
        b.iter(|| black_box(LaunchSchedule::cheapest_first(black_box(&pkg))))
    });

    group.bench_function("distribution_report_h4", |b| {
        let pkg = CampaignPackage::new(library, matrix, 4.0 * 3600.0);
        b.iter(|| black_box(workunit::distribution_report(black_box(&pkg))))
    });

    group.finish();
}

criterion_group!(benches, bench_planning);
criterion_main!(benches);

//! TAB3 — Table 3: evaluation of HCMD phase II (§7).
//!
//! Derives the phase-II projection twice: once from the paper's own
//! assumptions (reproducing Table 3's columns exactly) and once from a
//! simulated phase-I campaign's measured consumption.
//!
//! Run: `cargo run -p hcmd-bench --release --bin tab3_phase2 [scale] [seed]`

use bench_support::header;
use hcmd::campaign::Phase1Campaign;
use hcmd::config::paper;
use hcmd::phase2::Phase2Assumptions;

fn main() {
    let mut args = std::env::args().skip(1);
    let scale: u32 = args.next().and_then(|s| s.parse().ok()).unwrap_or(10);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(2007);
    let session = bench_support::RunSession::start("tab3_phase2", seed, u64::from(scale));
    header("TAB3", "evaluation of the HCMD phase II");

    println!("--- from the paper's assumptions ---");
    let a = Phase2Assumptions::paper();
    let p = a.project();
    println!("{}", p.render_table3(&a));
    println!(
        "paper Table 3: cpu 254,897,774,144 / 1,444,998,719,637 s; weeks 16 / 40; \
         vftp 26,341 / 59,730; members 132,490 / 300,430\n"
    );
    println!(
        "work ratio 4000²/(168²·100)      : {:.2}  (paper 5.66)",
        p.work_ratio
    );
    println!(
        "weeks at the phase-I rate        : {:.0}  (paper 90, \"1 year and 9 months\")",
        p.weeks_at_phase1_rate
    );
    println!(
        "WCG members needed (25% share)   : {:.2} M  (paper 1,300,000)",
        p.wcg_members_needed / 1e6
    );
    println!(
        "new volunteers needed            : {:.2} M  (paper \"nearly 1,000,000\")\n",
        p.new_members_needed / 1e6
    );

    println!("--- from the simulated campaign (scale 1/{scale}, seed {seed}) ---");
    let report = Phase1Campaign::new(scale, seed).run();
    let measured_cpu = report.trace.consumed_cpu_seconds() * scale as f64;
    let a2 = Phase2Assumptions::paper().with_measured_phase1(measured_cpu, paper::PHASE1_WEEKS);
    let p2 = a2.project();
    println!("{}", p2.render_table3(&a2));
    println!(
        "measured-campaign projection: {:.0} VFTP for 40 weeks ({:+.1}% vs the paper's 59,730)",
        p2.phase2_vftp,
        100.0 * (p2.phase2_vftp / paper::PHASE2_VFTP - 1.0)
    );
    session.finish();
}

//! Live-grid end-to-end bench: the real `hcmd-netgrid` server and a
//! fleet of real agents over loopback TCP, faults on.
//!
//! This is the wire-level counterpart of `sim_scale`: instead of a
//! synthetic event fleet it runs an actual campaign — length-prefixed
//! frames, maxdo docking in agent threads, quorum validation on the
//! server — and reports throughput plus request-latency percentiles.
//! The fleet always includes one agent that vanishes mid-workunit and
//! one saboteur that corrupts every payload, so a single run exercises
//! the §5.1 timeout-reissue path and the quorum-rejection path, and the
//! report carries those counts.
//!
//! The campaign runs three times: once plain, once with
//! `--journal`-style durability (write-ahead log + snapshots under a
//! scratch directory), and once with the `--ops-addr` observability
//! endpoint enabled while a scraper thread polls `/metrics` through the
//! whole run. The report carries the journaled and ops-enabled
//! throughputs, their overhead fractions, and the scrape latency
//! percentiles (`ops_scrape_p99_ms`) so `tools/bench_guard` can flag a
//! journal or an ops endpoint that gets in the way of the wire.
//!
//! Writes `BENCH_netgrid.json` at the workspace root (override with
//! `--out`); `tools/bench_guard` compares fresh runs against the
//! committed baseline in CI (warn-only). `--quick` shrinks the fleet
//! and the deadline so the loopback smoke stays seconds-scale.

use bench_support::RunSession;
use metrics::quantile;
use netgrid::{
    http_get, run_agent, AgentConfig, CampaignParams, FaultProfile, JournalConfig, NetCampaign,
    NetRunReport, NetServer, NetServerConfig,
};
use std::thread;
use std::time::{Duration, Instant};

/// The `BENCH_netgrid.json` document.
#[derive(serde::Serialize)]
struct NetgridReport {
    bench: String,
    quick: bool,
    seed: u64,
    /// Honest (flaky-profile) agents; the victim and the saboteur ride
    /// on top of these.
    agents: usize,
    workunits: usize,
    wall_seconds: f64,
    workunits_per_sec: f64,
    /// `RequestWork` round trips observed across the whole fleet.
    requests: usize,
    request_latency_p50_ms: f64,
    request_latency_p99_ms: f64,
    timeout_reissues: u64,
    quorum_rejects: u64,
    /// Injected fault totals, for context next to the reissue counts.
    disconnect_faults: u64,
    stall_faults: u64,
    corrupt_faults: u64,
    merged_matches_baseline: bool,
    /// Throughput of the same campaign with the write-ahead journal on.
    journal_workunits_per_sec: f64,
    /// `(plain - journaled) / plain` throughput; noise makes small
    /// negative values normal. Guarded warn-only at 10% by bench_guard.
    journal_overhead_frac: f64,
    journal_merged_matches_baseline: bool,
    /// Throughput of the same campaign with the `--ops-addr` endpoint
    /// enabled and a scraper polling `/metrics` through the whole run.
    ops_workunits_per_sec: f64,
    /// `(plain - ops) / plain` throughput; guarded warn-only by
    /// bench_guard.
    ops_overhead_frac: f64,
    /// `/metrics` scrapes completed during the ops-enabled run.
    ops_scrapes: usize,
    ops_scrape_p50_ms: f64,
    /// Guarded warn-only by bench_guard.
    ops_scrape_p99_ms: f64,
    ops_merged_matches_baseline: bool,
}

/// One full wire-level campaign: fleet, faults and all. Returns the
/// server report plus the fleet's request latencies, fault totals, and
/// — when `ops` is on — the per-scrape `/metrics` latencies (ms) of a
/// scraper thread that polls the observability endpoint throughout.
fn run_campaign(
    campaign_params: CampaignParams,
    deadline_seconds: f64,
    honest_agents: usize,
    seed: u64,
    journal: Option<JournalConfig>,
    ops: bool,
) -> (NetRunReport, Vec<f64>, (u64, u64, u64), Vec<f64>) {
    let config = NetServerConfig {
        campaign: campaign_params,
        sweep_ms: 25,
        journal,
        ops_addr: ops.then(|| "127.0.0.1:0".to_string()),
        ..NetServerConfig::loopback(deadline_seconds)
    };
    let server = NetServer::bind(config).expect("bind loopback");
    let addr = server.local_addr().expect("local addr").to_string();
    // Scrape `/metrics` continuously while the campaign runs, timing
    // each round trip; stop once the endpoint closes after its linger.
    let scraper = server.ops_addr().map(|ops_addr| {
        thread::spawn(move || {
            let mut scrape_ms: Vec<f64> = Vec::new();
            let deadline = Instant::now() + Duration::from_secs(120);
            while Instant::now() < deadline {
                let t0 = Instant::now();
                match http_get(ops_addr, "/metrics") {
                    Ok((200, _)) => scrape_ms.push(t0.elapsed().as_secs_f64() * 1e3),
                    _ if !scrape_ms.is_empty() => break,
                    _ => {}
                }
                thread::sleep(Duration::from_millis(20));
            }
            scrape_ms
        })
    });
    let server = thread::spawn(move || server.run());

    // The fleet: one victim that takes a workunit and vanishes (forces
    // a timeout reissue), one saboteur that corrupts everything it
    // touches (forces quorum rejections), and the honest-but-flaky
    // majority that actually carries the campaign.
    let victim = {
        let addr = addr.clone();
        thread::spawn(move || {
            run_agent(AgentConfig {
                die_after: Some(1),
                seed,
                ..AgentConfig::new(addr, 100)
            })
        })
    };
    victim.join().unwrap().expect("victim agent ran");
    let saboteur = {
        let addr = addr.clone();
        thread::spawn(move || {
            run_agent(AgentConfig {
                profile: FaultProfile {
                    disconnect: 0.0,
                    stall: 0.0,
                    corrupt: 1.0,
                },
                seed,
                ..AgentConfig::new(addr, 666)
            })
        })
    };
    thread::sleep(Duration::from_millis(50));
    let honest: Vec<_> = (1..=honest_agents as u64)
        .map(|agent| {
            let addr = addr.clone();
            thread::spawn(move || {
                run_agent(AgentConfig {
                    profile: FaultProfile::flaky(),
                    threads: if agent == 1 { 2 } else { 1 },
                    seed,
                    ..AgentConfig::new(addr, agent)
                })
            })
        })
        .collect();

    let mut latencies: Vec<f64> = Vec::new();
    let mut faults = (0u64, 0u64, 0u64);
    for h in honest {
        let r = h.join().unwrap().expect("honest agent ran");
        latencies.extend_from_slice(&r.request_latencies_ms);
        faults.0 += r.disconnect_faults;
        faults.1 += r.stall_faults;
        faults.2 += r.corrupt_faults;
    }
    if let Ok(r) = saboteur.join().unwrap() {
        latencies.extend_from_slice(&r.request_latencies_ms);
        faults.2 += r.corrupt_faults;
    }
    let run = server.join().unwrap().expect("server ran");
    let scrape_ms = scraper.map(|s| s.join().unwrap()).unwrap_or_default();
    (run, latencies, faults, scrape_ms)
}

fn main() {
    let mut quick = false;
    let mut seed = 42u64;
    let mut agents: Option<usize> = None;
    let mut out: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--seed" => {
                seed = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--seed <n>")
            }
            "--agents" => {
                agents = Some(
                    args.next()
                        .and_then(|s| s.parse().ok())
                        .expect("--agents <n>"),
                )
            }
            "--out" => out = Some(args.next().expect("--out <path>")),
            other => {
                eprintln!("netgrid_e2e: unknown argument {other}");
                eprintln!(
                    "usage: netgrid_e2e [--quick] [--seed <n>] [--agents <n>] [--out <path>]"
                );
                std::process::exit(2);
            }
        }
    }
    // Quick keeps the tiny 2-protein campaign and a short deadline so
    // the victim's abandoned replica expires fast; the full run grows
    // the library and the fleet.
    let honest_agents = agents.unwrap_or(if quick { 4 } else { 6 });
    let deadline_seconds = if quick { 2.0 } else { 4.0 };
    let campaign_params = CampaignParams {
        proteins: if quick { 2 } else { 3 },
        lib_seed: seed,
        ..CampaignParams::tiny()
    };

    let mut session = RunSession::start("netgrid_e2e", seed, 1);

    let (run, latencies, faults, _) = run_campaign(
        campaign_params,
        deadline_seconds,
        honest_agents,
        seed,
        None,
        false,
    );

    // Same campaign again, durably: every transition through the
    // write-ahead log at the default fsync cadence.
    let journal_dir = std::env::temp_dir().join(format!("hcmd-bench-journal-{}", seed));
    let _ = std::fs::remove_dir_all(&journal_dir);
    let (journaled_run, _, _, _) = run_campaign(
        campaign_params,
        deadline_seconds,
        honest_agents,
        seed,
        Some(JournalConfig::new(&journal_dir)),
        false,
    );
    let _ = std::fs::remove_dir_all(&journal_dir);

    // And once more with the observability endpoint on and a scraper
    // hammering `/metrics` the whole time, to price the ops path.
    let (ops_run, _, _, scrape_ms) = run_campaign(
        campaign_params,
        deadline_seconds,
        honest_agents,
        seed,
        None,
        true,
    );

    let baseline = NetCampaign::build(campaign_params).baseline_outputs();
    let baseline_json = serde_json::to_string(&baseline).expect("baseline serializes");
    let merged_matches_baseline =
        serde_json::to_string(&run.outputs).expect("outputs serialize") == baseline_json;
    let journal_merged_matches_baseline =
        serde_json::to_string(&journaled_run.outputs).expect("outputs serialize") == baseline_json;
    let ops_merged_matches_baseline =
        serde_json::to_string(&ops_run.outputs).expect("outputs serialize") == baseline_json;

    let workunits_per_sec = run.workunits as f64 / run.wall_seconds.max(1e-9);
    let journal_workunits_per_sec =
        journaled_run.workunits as f64 / journaled_run.wall_seconds.max(1e-9);
    let ops_workunits_per_sec = ops_run.workunits as f64 / ops_run.wall_seconds.max(1e-9);
    let report = NetgridReport {
        bench: "netgrid_e2e".to_string(),
        quick,
        seed,
        agents: honest_agents,
        workunits: run.workunits,
        wall_seconds: run.wall_seconds,
        workunits_per_sec,
        requests: latencies.len(),
        request_latency_p50_ms: quantile(&latencies, 0.50).unwrap_or(0.0),
        request_latency_p99_ms: quantile(&latencies, 0.99).unwrap_or(0.0),
        timeout_reissues: run.server_stats.timeout_reissues,
        quorum_rejects: run.net_stats.quorum_rejected,
        disconnect_faults: faults.0,
        stall_faults: faults.1,
        corrupt_faults: faults.2,
        merged_matches_baseline,
        journal_workunits_per_sec,
        journal_overhead_frac: (workunits_per_sec - journal_workunits_per_sec)
            / workunits_per_sec.max(1e-9),
        journal_merged_matches_baseline,
        ops_workunits_per_sec,
        ops_overhead_frac: (workunits_per_sec - ops_workunits_per_sec)
            / workunits_per_sec.max(1e-9),
        ops_scrapes: scrape_ms.len(),
        ops_scrape_p50_ms: quantile(&scrape_ms, 0.50).unwrap_or(0.0),
        ops_scrape_p99_ms: quantile(&scrape_ms, 0.99).unwrap_or(0.0),
        ops_merged_matches_baseline,
    };
    println!(
        "{} workunits in {:.2} s over loopback ({:.1} wu/s, {} agents + victim + saboteur)",
        report.workunits, report.wall_seconds, report.workunits_per_sec, report.agents
    );
    println!(
        "request latency p50 {:.2} ms, p99 {:.2} ms over {} requests",
        report.request_latency_p50_ms, report.request_latency_p99_ms, report.requests
    );
    println!(
        "faults: {} timeout reissues, {} quorum rejects ({} disconnects, {} stalls, {} corruptions injected)",
        report.timeout_reissues,
        report.quorum_rejects,
        report.disconnect_faults,
        report.stall_faults,
        report.corrupt_faults
    );
    println!(
        "journaled: {:.1} wu/s ({:+.1}% overhead vs plain)",
        report.journal_workunits_per_sec,
        report.journal_overhead_frac * 100.0
    );
    println!(
        "ops endpoint on: {:.1} wu/s ({:+.1}% overhead vs plain), {} scrapes, scrape p50 {:.2} ms p99 {:.2} ms",
        report.ops_workunits_per_sec,
        report.ops_overhead_frac * 100.0,
        report.ops_scrapes,
        report.ops_scrape_p50_ms,
        report.ops_scrape_p99_ms
    );
    println!(
        "merged output matches in-process baseline: plain {}, journaled {}, ops {}",
        report.merged_matches_baseline,
        report.journal_merged_matches_baseline,
        report.ops_merged_matches_baseline
    );
    if !report.merged_matches_baseline
        || !report.journal_merged_matches_baseline
        || !report.ops_merged_matches_baseline
    {
        eprintln!("netgrid_e2e: ERROR: merged output diverged from the baseline");
    }
    if report.timeout_reissues == 0 || report.quorum_rejects == 0 {
        eprintln!("netgrid_e2e: WARNING: a fault path went unexercised this run");
    }

    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    let default_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_netgrid.json");
    let path = out.as_deref().unwrap_or(default_path);
    match std::fs::write(path, json + "\n") {
        Ok(()) => println!("netgrid_e2e -> {path}"),
        Err(e) => {
            eprintln!("netgrid_e2e: cannot write {path}: {e}");
            std::process::exit(1);
        }
    }
    let ok = report.merged_matches_baseline
        && report.journal_merged_matches_baseline
        && report.ops_merged_matches_baseline;
    session.record_engine(report.requests as u64, 0, report.workunits as u64);
    session.finish();
    if !ok {
        std::process::exit(1);
    }
}

//! Live-grid end-to-end bench: the real `hcmd-netgrid` server and a
//! fleet of real agents over loopback TCP, faults on.
//!
//! This is the wire-level counterpart of `sim_scale`: instead of a
//! synthetic event fleet it runs an actual campaign — length-prefixed
//! frames, maxdo docking in agent threads, quorum validation on the
//! server — and reports throughput plus request-latency percentiles.
//! The fleet always includes one agent that vanishes mid-workunit and
//! one saboteur that corrupts every payload, so a single run exercises
//! the §5.1 timeout-reissue path and the quorum-rejection path, and the
//! report carries those counts.
//!
//! The campaign runs three times: once plain, once with
//! `--journal`-style durability (write-ahead log + snapshots under a
//! scratch directory), and once with the `--ops-addr` observability
//! endpoint enabled while a scraper thread polls `/metrics` through the
//! whole run. The report carries the journaled and ops-enabled
//! throughputs, their overhead fractions, and the scrape latency
//! percentiles (`ops_scrape_p99_ms`) so `tools/bench_guard` can flag a
//! journal or an ops endpoint that gets in the way of the wire.
//!
//! A fourth, *scale* campaign then drives `--scale-agents` (default
//! 10 000) simulated volunteers through the multiplexed driver
//! (`netgrid::run_mux_fleet`) against the same event-loop server —
//! the `scale_*` columns report its throughput and request-latency
//! percentiles. `--agents` beyond 64 switches the classic fleet itself
//! to the mux driver (journal/ops campaigns are skipped and their
//! columns go null; the separate scale campaign too, since the classic
//! run *is* the scale run then).
//!
//! A final *trust* pair prices trust-adaptive replication: the same
//! campaign with an honest-but-unreliable fleet plus the saboteur,
//! once under the fixed-quorum policy and once with `--trust on`. The
//! `trust_*` columns report the redundancy fraction (replicas issued
//! per workunit), quorum-rejection counts, wasted reference
//! CPU-seconds, spot-check tallies and whether the saboteur was
//! quarantined — the CI `netgrid-trust-smoke` job asserts the last
//! plus artifact identity.
//!
//! A *sharded* block then splits the same campaign across N
//! `NetServer` shards (2-shard, 2-shard `--trust on` and 4-shard by
//! default; `--shards N` overrides the topology, `--shards 0` skips the
//! block) with the mux fleet round-robined across every shard. Each row
//! in the `shard_campaigns` column reports redirect and lease (steal)
//! counts, per-shard and aggregate throughput, and whether the merged
//! per-shard artifacts are byte-identical to a like-for-like
//! single-server run — the CI `netgrid-shard-smoke` job asserts that
//! flag, and bench_guard warns when steering degrades aggregate
//! throughput below 0.9x the single server.
//!
//! A *multi-campaign* block then hosts a 70/30 pair of campaigns
//! (same recipe, different library seeds) on one server, with a small
//! threaded fleet volunteering for both over protocol v4. The
//! `campaign_*` columns report each campaign's delivered share,
//! borrow count and whether its merged artifact is byte-identical to
//! a solo run of the same recipe, plus the fair-share error sampled
//! while both campaigns still had fresh work — bench_guard warns when
//! that error exceeds 0.05 or an artifact diverges.
//!
//! `--codec` picks the wire codec for every agent frame: `binary`
//! (protocol v2, the default) or `json` (protocol v1 — the old-agent
//! interop path). The sharded campaigns always speak `v3` — steering
//! needs the shard message family.
//!
//! `--merge p0.json,p1.json[,...]` skips the bench entirely and runs
//! the artifact merge step instead: reads the per-shard partials the
//! sharded servers wrote with `--out`, combines them with
//! `netgrid::merge_artifact_json`, and writes the single-server byte
//! stream to `--out` (or stdout). This is how a real sharded operation
//! — and the CI interop smoke — assembles the final catalog.
//!
//! Writes `BENCH_netgrid.json` at the workspace root (override with
//! `--out`); `tools/bench_guard` compares fresh runs against the
//! committed baseline in CI (warn-only). `--quick` shrinks the fleet
//! and the deadline so the loopback smoke stays seconds-scale.

use bench_support::RunSession;
use metrics::quantile;
use netgrid::{
    http_get, merge_artifact_json, merge_artifacts, run_agent, run_mux_fleet, AgentConfig,
    CampaignDef, CampaignParams, Codec, FaultProfile, JournalConfig, MuxFleetConfig,
    MuxFleetReport, NetCampaign, NetRunReport, NetServer, NetServerConfig, ShardSpec,
    ShardTopology, TrustConfig,
};
use std::net::TcpListener;
use std::thread;
use std::time::{Duration, Instant};

/// Threaded-fleet ceiling: more honest agents than this and the classic
/// campaign switches to the multiplexed driver.
const THREADED_FLEET_MAX: usize = 64;

/// The `BENCH_netgrid.json` document.
#[derive(serde::Serialize)]
struct NetgridReport {
    bench: String,
    quick: bool,
    seed: u64,
    /// Wire codec every agent frame used: "binary" (v2) or "json" (v1).
    codec: String,
    /// Honest (flaky-profile) agents; the victim and the saboteur ride
    /// on top of these.
    agents: usize,
    /// Whether the classic fleet ran through the multiplexed driver
    /// (`--agents` beyond the threaded ceiling).
    mux: bool,
    workunits: usize,
    wall_seconds: f64,
    workunits_per_sec: f64,
    /// `RequestWork` round trips observed across the whole fleet.
    requests: usize,
    request_latency_p50_ms: f64,
    request_latency_p99_ms: f64,
    timeout_reissues: u64,
    quorum_rejects: u64,
    /// Injected fault totals, for context next to the reissue counts.
    disconnect_faults: u64,
    stall_faults: u64,
    corrupt_faults: u64,
    merged_matches_baseline: bool,
    /// Throughput of the same campaign with the write-ahead journal on.
    /// Null when the classic fleet is mux-driven (journal campaign
    /// skipped).
    journal_workunits_per_sec: Option<f64>,
    /// `(plain - journaled) / plain` throughput; noise makes small
    /// negative values normal. Guarded warn-only at 10% by bench_guard.
    journal_overhead_frac: Option<f64>,
    journal_merged_matches_baseline: Option<bool>,
    /// Throughput of the same campaign with the `--ops-addr` endpoint
    /// enabled and a scraper polling `/metrics` through the whole run.
    ops_workunits_per_sec: Option<f64>,
    /// `(plain - ops) / plain` throughput; guarded warn-only by
    /// bench_guard.
    ops_overhead_frac: Option<f64>,
    /// `/metrics` scrapes completed during the ops-enabled run.
    ops_scrapes: Option<usize>,
    ops_scrape_p50_ms: Option<f64>,
    /// Guarded warn-only by bench_guard.
    ops_scrape_p99_ms: Option<f64>,
    ops_merged_matches_baseline: Option<bool>,
    /// Simulated volunteers in the scale campaign (0 = skipped).
    scale_agents: usize,
    scale_wall_seconds: Option<f64>,
    scale_workunits_per_sec: Option<f64>,
    scale_requests: Option<usize>,
    scale_request_latency_p50_ms: Option<f64>,
    /// Guarded warn-only by bench_guard against an absolute ceiling.
    scale_request_latency_p99_ms: Option<f64>,
    scale_connections: Option<u64>,
    scale_merged_matches_baseline: Option<bool>,
    /// Honest (reliable-profile) agents in the trust comparison pair;
    /// the same corrupt-everything saboteur rides along in both runs.
    trust_agents: usize,
    /// Replicas issued per workunit with the fixed-quorum policy
    /// (`--trust off`): initial + quorum + reissues, over workunits.
    trust_off_redundancy_frac: f64,
    /// Replicas issued per workunit with trust-adaptive replication on
    /// (single-replica issues to trusted agents + seeded spot checks).
    trust_on_redundancy_frac: f64,
    /// `(off - on) / off` — the headline saving. Guarded warn-only by
    /// bench_guard against regressing to ~0.
    trust_redundancy_reduction_frac: f64,
    trust_off_quorum_rejects: u64,
    /// With trust on the saboteur is quarantined after a short run of
    /// rejections and stops burning quorum slots; the acceptance bar is
    /// a >= 2x reduction vs `trust_off_quorum_rejects`.
    trust_on_quorum_rejects: u64,
    /// Reference CPU-seconds burned on redundant replicas of
    /// already-validated workunits, fixed-quorum policy.
    trust_off_wasted_ref_seconds: f64,
    /// Same measure with trust on. Guarded warn-only by bench_guard.
    trust_on_wasted_ref_seconds: f64,
    trust_on_spot_checks_passed: u64,
    trust_on_spot_checks_failed: u64,
    /// True when the trust-on run ever quarantined an agent (the
    /// saboteur); the CI trust-smoke job asserts this.
    trust_saboteur_quarantined: bool,
    trust_off_merged_matches_baseline: bool,
    trust_on_merged_matches_baseline: bool,
    /// Throughput of the like-for-like single-server run the sharded
    /// campaigns are scored against: same campaign, same mux fleet, one
    /// unsharded server. Null when `--shards 0` skipped the block.
    shard_single_workunits_per_sec: Option<f64>,
    /// One row per sharded campaign (2-shard, 2-shard trust-on and
    /// 4-shard by default). Null when `--shards 0` skipped the block.
    shard_campaigns: Option<Vec<ShardBenchRow>>,
    /// Fair-share error of the two-campaign run, sampled at the last
    /// report where both campaigns still had fresh work (the ±5%
    /// convergence figure; bench_guard warns above 0.05).
    campaign_share_error: f64,
    /// One row per hosted campaign in the 70/30 two-campaign run.
    campaign_rows: Vec<CampaignBenchRow>,
}

/// One hosted campaign of the multi-campaign run, in roster order.
#[derive(serde::Serialize)]
struct CampaignBenchRow {
    name: String,
    /// Configured fair-share weight (normalised).
    share: f64,
    priority: u32,
    workunits: usize,
    /// Validated reference CPU-seconds this campaign received.
    delivered_ref_seconds: f64,
    /// This campaign's fraction of everything delivered.
    delivered_frac: f64,
    /// Issues taken while higher-deficit campaigns had nothing to give.
    borrows: u64,
    /// The isolation invariant: this campaign's merged artifact is
    /// byte-identical to a solo run of the same recipe.
    matches_solo_baseline: bool,
}

/// One sharded campaign in the `shard_campaigns` column.
#[derive(serde::Serialize)]
struct ShardBenchRow {
    /// Topology size: the campaign catalog was hash-split across this
    /// many `NetServer` shards.
    shards: u16,
    /// Whether every shard ran trust-adaptive replication.
    trust: bool,
    /// Workunits validated across all shards (the whole catalog).
    workunits: usize,
    /// Fleet-side wall clock, start of the fleet to global completion.
    /// (Server-side `wall_seconds` includes the sharded shutdown grace,
    /// which would understate throughput.)
    wall_seconds: f64,
    /// Aggregate throughput across the topology; bench_guard warns when
    /// this falls below 0.9x the single-server reference.
    workunits_per_sec: f64,
    /// Validated-workunit throughput of each shard, in shard order. A
    /// shard that drained early and kept leasing work still shows up
    /// here — steering is why these stay comparable.
    per_shard_workunits_per_sec: Vec<f64>,
    /// `RequestWork` round trips across the fleet; the natural bound on
    /// `redirects` (one redirect answers one ask).
    requests: usize,
    /// `Redirect` frames sent across all shards.
    redirects: u64,
    /// Work-stealing leases granted across all shards (the steal count).
    leases: u64,
    /// Workunits that moved shard-to-shard under those leases.
    leased_workunits: u64,
    /// The headline invariant: the merged per-shard partials are
    /// byte-identical to the single-server reference artifact.
    merged_matches_single: bool,
    /// `workunits_per_sec / shard_single_workunits_per_sec`; guarded
    /// warn-only at 0.9 by bench_guard.
    throughput_vs_single_frac: f64,
}

/// Everything one campaign run yields, whichever driver carried it.
struct CampaignOutcome {
    run: NetRunReport,
    latencies: Vec<f64>,
    faults: (u64, u64, u64),
    scrape_ms: Vec<f64>,
    connections: u64,
}

/// One full wire-level campaign: fleet, faults and all. The honest
/// majority runs as real threaded agents up to [`THREADED_FLEET_MAX`],
/// then switches to the multiplexed driver; the victim (takes a
/// workunit and vanishes) and the saboteur (corrupts every payload)
/// are always real threaded agents.
fn run_campaign(
    campaign_params: CampaignParams,
    deadline_seconds: f64,
    honest_agents: usize,
    seed: u64,
    codec: Codec,
    journal: Option<JournalConfig>,
    ops: bool,
) -> CampaignOutcome {
    run_campaign_with(
        campaign_params,
        deadline_seconds,
        honest_agents,
        seed,
        codec,
        journal,
        ops,
        FaultProfile::flaky(),
        false,
    )
}

#[allow(clippy::too_many_arguments)]
fn run_campaign_with(
    campaign_params: CampaignParams,
    deadline_seconds: f64,
    honest_agents: usize,
    seed: u64,
    codec: Codec,
    journal: Option<JournalConfig>,
    ops: bool,
    honest_profile: FaultProfile,
    trust: bool,
) -> CampaignOutcome {
    let mut config = NetServerConfig {
        campaign: campaign_params,
        sweep_ms: 25,
        journal,
        ops_addr: ops.then(|| "127.0.0.1:0".to_string()),
        ..NetServerConfig::loopback(deadline_seconds)
    };
    if trust {
        config.faults.trust = TrustConfig::on();
    }
    if honest_agents > THREADED_FLEET_MAX {
        // The default 64-connection Busy limit models a small server;
        // the scale campaign measures the event loop itself, so the
        // brush-off path must not throttle the fleet.
        config.faults.max_connections = 0;
    }
    let server = NetServer::bind(config).expect("bind loopback");
    let addr = server.local_addr().expect("local addr").to_string();
    // Scrape `/metrics` continuously while the campaign runs, timing
    // each round trip; stop once the endpoint closes after its linger.
    let scraper = server.ops_addr().map(|ops_addr| {
        thread::spawn(move || {
            let mut scrape_ms: Vec<f64> = Vec::new();
            let deadline = Instant::now() + Duration::from_secs(120);
            while Instant::now() < deadline {
                let t0 = Instant::now();
                match http_get(ops_addr, "/metrics") {
                    Ok((200, _)) => scrape_ms.push(t0.elapsed().as_secs_f64() * 1e3),
                    _ if !scrape_ms.is_empty() => break,
                    _ => {}
                }
                thread::sleep(Duration::from_millis(20));
            }
            scrape_ms
        })
    });
    let server = thread::spawn(move || server.run());

    // The fleet: one victim that takes a workunit and vanishes (forces
    // a timeout reissue), one saboteur that corrupts everything it
    // touches (forces quorum rejections), and the honest-but-flaky
    // majority that actually carries the campaign.
    let victim = {
        let addr = addr.clone();
        thread::spawn(move || {
            run_agent(AgentConfig {
                die_after: Some(1),
                seed,
                codec,
                ..AgentConfig::new(addr, 100)
            })
        })
    };
    victim.join().unwrap().expect("victim agent ran");
    let saboteur = {
        let addr = addr.clone();
        thread::spawn(move || {
            run_agent(AgentConfig {
                profile: FaultProfile::saboteur(),
                seed,
                codec,
                ..AgentConfig::new(addr, 666)
            })
        })
    };
    thread::sleep(Duration::from_millis(50));

    let mut latencies: Vec<f64> = Vec::new();
    let mut faults = (0u64, 0u64, 0u64);
    if honest_agents > THREADED_FLEET_MAX {
        let fleet = run_mux_fleet(MuxFleetConfig {
            seed,
            profile: honest_profile,
            codec,
            timeout: Duration::from_secs(280),
            ..MuxFleetConfig::new(addr, honest_agents)
        })
        .expect("mux fleet ran");
        let MuxFleetReport {
            disconnect_faults,
            stall_faults,
            corrupt_faults,
            request_latencies_ms,
            ..
        } = fleet;
        latencies = request_latencies_ms;
        faults = (disconnect_faults, stall_faults, corrupt_faults);
        // Debug hook: dump every mux request latency (one ms value per
        // line) for offline histogramming of the tail.
        if let Ok(path) = std::env::var("HCMD_LAT_DUMP") {
            let mut s = String::with_capacity(latencies.len() * 8);
            for v in &latencies {
                s.push_str(&format!("{v:.3}\n"));
            }
            let _ = std::fs::write(path, s);
        }
    } else {
        let honest: Vec<_> = (1..=honest_agents as u64)
            .map(|agent| {
                let addr = addr.clone();
                thread::spawn(move || {
                    run_agent(AgentConfig {
                        profile: honest_profile,
                        threads: if agent == 1 { 2 } else { 1 },
                        seed,
                        codec,
                        ..AgentConfig::new(addr, agent)
                    })
                })
            })
            .collect();
        for h in honest {
            let r = h.join().unwrap().expect("honest agent ran");
            latencies.extend_from_slice(&r.request_latencies_ms);
            faults.0 += r.disconnect_faults;
            faults.1 += r.stall_faults;
            faults.2 += r.corrupt_faults;
        }
    }
    if let Ok(r) = saboteur.join().unwrap() {
        latencies.extend_from_slice(&r.request_latencies_ms);
        faults.2 += r.corrupt_faults;
    }
    let run = server.join().unwrap().expect("server ran");
    let scrape_ms = scraper.map(|s| s.join().unwrap()).unwrap_or_default();
    let connections = run.connections;
    CampaignOutcome {
        run,
        latencies,
        faults,
        scrape_ms,
        connections,
    }
}

/// The multi-campaign run: one server hosting `defs` (a 70/30 pair in
/// practice), a reliable threaded fleet volunteering for every
/// campaign over protocol v4. The returned report's `campaigns` rows
/// carry per-campaign delivery and artifacts; its `share_error` is the
/// fair-share error sampled while every campaign still had fresh work.
fn run_multi_campaign(
    defs: Vec<CampaignDef>,
    deadline_seconds: f64,
    agents: usize,
    seed: u64,
) -> NetRunReport {
    let config = NetServerConfig {
        campaigns: defs,
        sweep_ms: 25,
        ..NetServerConfig::loopback(deadline_seconds)
    };
    let server = NetServer::bind(config).expect("bind loopback");
    let addr = server.local_addr().expect("local addr").to_string();
    let server = thread::spawn(move || server.run());
    let fleet: Vec<_> = (1..=agents as u64)
        .map(|agent| {
            let addr = addr.clone();
            thread::spawn(move || {
                run_agent(AgentConfig {
                    profile: FaultProfile::reliable(),
                    seed,
                    codec: Codec::BinaryV4,
                    campaigns: vec!["*".into()],
                    ..AgentConfig::new(addr, agent)
                })
            })
        })
        .collect();
    for h in fleet {
        h.join().unwrap().expect("multi-campaign agent ran");
    }
    server.join().unwrap().expect("multi-campaign server ran")
}

/// Everything one sharded campaign yields, across all its shards.
struct ShardedOutcome {
    reports: Vec<NetRunReport>,
    /// Fleet-side wall clock (the per-shard server reports include the
    /// sharded shutdown grace, so they are not a throughput clock).
    wall_seconds: f64,
    requests: usize,
    merged_json: String,
}

/// Reserves `n` distinct loopback addresses: all listeners are held
/// until every port is known, then dropped together so the shards can
/// rebind them.
fn free_addrs(n: u16) -> Vec<String> {
    let listeners: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("reserve loopback port"))
        .collect();
    listeners
        .iter()
        .map(|l| l.local_addr().expect("local addr").to_string())
        .collect()
}

/// One campaign split across `shards` servers by the deterministic
/// shard map, with the mux fleet round-robined across every shard.
/// Always speaks protocol v3 — steering needs the shard messages.
fn run_sharded_campaign(
    campaign_params: CampaignParams,
    deadline_seconds: f64,
    shards: u16,
    agents: usize,
    seed: u64,
    trust: bool,
) -> ShardedOutcome {
    let addrs = free_addrs(shards);
    let handles: Vec<_> = (0..shards)
        .map(|shard_id| {
            let mut config = NetServerConfig {
                campaign: campaign_params,
                sweep_ms: 25,
                ..NetServerConfig::loopback(deadline_seconds)
            };
            if trust {
                config.faults.trust = TrustConfig::on();
            }
            config.addr = addrs[shard_id as usize].clone();
            config.shard = Some(ShardTopology {
                spec: ShardSpec { shard_id, shards },
                addrs: addrs.clone(),
            });
            let server = NetServer::bind(config).expect("bind shard");
            thread::spawn(move || server.run())
        })
        .collect();

    let t0 = Instant::now();
    let fleet = run_mux_fleet(MuxFleetConfig {
        seed,
        codec: Codec::BinaryV3,
        addrs: addrs.clone(),
        timeout: Duration::from_secs(280),
        ..MuxFleetConfig::new(addrs[0].clone(), agents)
    })
    .expect("sharded mux fleet ran");
    let wall_seconds = t0.elapsed().as_secs_f64();
    assert!(
        fleet.saw_completion,
        "sharded fleet should see global completion"
    );
    let reports: Vec<NetRunReport> = handles
        .into_iter()
        .map(|h| h.join().unwrap().expect("shard ran"))
        .collect();
    let parts: Vec<_> = reports.iter().map(|r| r.partial_outputs.clone()).collect();
    let merged = merge_artifacts(&parts).expect("shards cover the campaign");
    ShardedOutcome {
        merged_json: serde_json::to_string(&merged).expect("merged artifact serializes"),
        requests: fleet.request_latencies_ms.len(),
        reports,
        wall_seconds,
    }
}

/// The like-for-like single-server run the sharded campaigns are scored
/// against: same campaign, same fleet size, same driver and codec, one
/// unsharded server. Returns the artifact JSON and the fleet-side
/// workunits/sec.
fn run_shard_reference(
    campaign_params: CampaignParams,
    deadline_seconds: f64,
    agents: usize,
    seed: u64,
) -> (String, f64) {
    let config = NetServerConfig {
        campaign: campaign_params,
        sweep_ms: 25,
        ..NetServerConfig::loopback(deadline_seconds)
    };
    let server = NetServer::bind(config).expect("bind single reference");
    let addr = server.local_addr().expect("local addr").to_string();
    let server = thread::spawn(move || server.run());
    let t0 = Instant::now();
    let fleet = run_mux_fleet(MuxFleetConfig {
        seed,
        codec: Codec::BinaryV3,
        timeout: Duration::from_secs(280),
        ..MuxFleetConfig::new(addr, agents)
    })
    .expect("reference mux fleet ran");
    let wall = t0.elapsed().as_secs_f64();
    assert!(fleet.saw_completion, "reference fleet saw completion");
    let run = server.join().unwrap().expect("reference server ran");
    let json = serde_json::to_string(&run.outputs).expect("outputs serialize");
    (json, run.workunits as f64 / wall.max(1e-9))
}

fn main() {
    let mut quick = false;
    let mut seed = 42u64;
    let mut agents: Option<usize> = None;
    let mut scale_agents: Option<usize> = None;
    let mut shards: Option<u16> = None;
    let mut merge: Option<String> = None;
    let mut codec = Codec::Binary;
    let mut out: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--seed" => {
                seed = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--seed <n>")
            }
            "--agents" => {
                agents = Some(
                    args.next()
                        .and_then(|s| s.parse().ok())
                        .expect("--agents <n>"),
                )
            }
            "--scale-agents" => {
                scale_agents = Some(
                    args.next()
                        .and_then(|s| s.parse().ok())
                        .expect("--scale-agents <n>"),
                )
            }
            "--shards" => {
                shards = Some(
                    args.next()
                        .and_then(|s| s.parse().ok())
                        .expect("--shards <n>"),
                )
            }
            "--merge" => merge = Some(args.next().expect("--merge <p0.json,p1.json,...>")),
            "--codec" => {
                codec = args
                    .next()
                    .as_deref()
                    .map(Codec::parse)
                    .expect("--codec <json|binary>")
                    .unwrap_or_else(|e| panic!("--codec: {e}"))
            }
            "--out" => out = Some(args.next().expect("--out <path>")),
            other => {
                eprintln!("netgrid_e2e: unknown argument {other}");
                eprintln!(
                    "usage: netgrid_e2e [--quick] [--seed <n>] [--agents <n>] \
                     [--scale-agents <n>] [--shards <n>] [--codec json|binary] \
                     [--out <path>] | --merge <p0.json,p1.json,...> [--out <path>]"
                );
                std::process::exit(2);
            }
        }
    }

    // Merge mode: no campaign at all — combine per-shard partial
    // artifacts (what a sharded `hcmd-server --out` writes) into the
    // single-server byte stream and exit. The CI shard-interop smoke
    // drives this path against real server processes.
    if let Some(list) = merge {
        let parts: Vec<String> = list
            .split(',')
            .map(|p| {
                std::fs::read_to_string(p).unwrap_or_else(|e| {
                    eprintln!("netgrid_e2e: cannot read partial artifact {p}: {e}");
                    std::process::exit(2);
                })
            })
            .collect();
        let merged = merge_artifact_json(&parts).unwrap_or_else(|e| {
            eprintln!("netgrid_e2e: merge failed: {e}");
            std::process::exit(1);
        });
        match &out {
            Some(path) => match std::fs::write(path, &merged) {
                Ok(()) => println!("netgrid_e2e: merged {} partials -> {path}", parts.len()),
                Err(e) => {
                    eprintln!("netgrid_e2e: cannot write {path}: {e}");
                    std::process::exit(1);
                }
            },
            None => println!("{merged}"),
        }
        return;
    }
    // Quick keeps the tiny 2-protein campaign and a short deadline so
    // the victim's abandoned replica expires fast; the full run grows
    // the library and the fleet.
    let honest_agents = agents.unwrap_or(if quick { 4 } else { 6 });
    let mux = honest_agents > THREADED_FLEET_MAX;
    // A mux-driven classic fleet IS the scale run; a separate scale
    // campaign would just repeat it.
    let scale_agents = if mux {
        0
    } else {
        scale_agents.unwrap_or(if quick { 256 } else { 10_000 })
    };
    let deadline_seconds = if quick { 2.0 } else { 4.0 };
    let campaign_params = CampaignParams {
        proteins: if quick { 2 } else { 3 },
        lib_seed: seed,
        ..CampaignParams::tiny()
    };

    let mut session = RunSession::start("netgrid_e2e", seed, 1);

    let plain = run_campaign(
        campaign_params,
        deadline_seconds,
        honest_agents,
        seed,
        codec,
        None,
        false,
    );

    // Same campaign again, durably (threaded classic only): every
    // transition through the write-ahead log at the default fsync
    // cadence. And once more with the observability endpoint on and a
    // scraper hammering `/metrics` the whole time, to price each path.
    let (journaled, ops_enabled) = if mux {
        (None, None)
    } else {
        let journal_dir = std::env::temp_dir().join(format!("hcmd-bench-journal-{}", seed));
        let _ = std::fs::remove_dir_all(&journal_dir);
        let journaled = run_campaign(
            campaign_params,
            deadline_seconds,
            honest_agents,
            seed,
            codec,
            Some(JournalConfig::new(&journal_dir)),
            false,
        );
        let _ = std::fs::remove_dir_all(&journal_dir);
        let ops_enabled = run_campaign(
            campaign_params,
            deadline_seconds,
            honest_agents,
            seed,
            codec,
            None,
            true,
        );
        (Some(journaled), Some(ops_enabled))
    };

    // The scale campaign: the same server, thousands of multiplexed
    // volunteers.
    let scale = (scale_agents > 0).then(|| {
        run_campaign(
            campaign_params,
            deadline_seconds,
            scale_agents,
            seed,
            codec,
            None,
            false,
        )
    });

    // The trust comparison pair: an honest-but-unreliable fleet (drops
    // and stalls, never corrupts — the fleet the policy is designed to
    // reward) plus the same corrupt-everything saboteur, once under the
    // fixed-quorum policy and once with trust-adaptive replication on.
    // A small threaded fleet regardless of `--agents`: the pair
    // measures replication policy, not driver throughput.
    let trust_fleet = honest_agents.min(8);
    let trust_run = |trust: bool| {
        run_campaign_with(
            campaign_params,
            deadline_seconds,
            trust_fleet,
            seed,
            codec,
            None,
            false,
            FaultProfile::reliable(),
            trust,
        )
    };
    let trust_off = trust_run(false);
    let trust_on = trust_run(true);

    // The multi-campaign block: one server hosting a 70/30 pair of
    // campaigns (same recipe, different library seeds), every agent
    // volunteering for both. Priorities differ so exact deficit ties
    // exercise the tie-break.
    let campaign_defs = vec![
        CampaignDef {
            name: "alpha".into(),
            params: campaign_params,
            share: 0.7,
            priority: 1,
        },
        CampaignDef {
            name: "beta".into(),
            params: CampaignParams {
                lib_seed: seed + 1,
                ..campaign_params
            },
            share: 0.3,
            priority: 0,
        },
    ];
    let multi = run_multi_campaign(
        campaign_defs.clone(),
        deadline_seconds,
        honest_agents.min(8),
        seed,
    );

    // The sharded block: the same campaign hash-split across N servers,
    // the mux fleet round-robined across every shard, scored against a
    // like-for-like single-server run. 2-shard (plain and trust-on) and
    // 4-shard by default; `--shards N` narrows to one topology (plain
    // and trust-on), `--shards 0` (or 1) skips the block.
    let shard_rows: Vec<(u16, bool)> = match shards {
        None => vec![(2, false), (2, true), (4, false)],
        Some(0) | Some(1) => Vec::new(),
        Some(n) => vec![(n, false), (n, true)],
    };
    let sharded = (!shard_rows.is_empty()).then(|| {
        let max_shards = shard_rows.iter().map(|&(n, _)| n).max().unwrap() as usize;
        let shard_fleet = honest_agents.min(8).max(max_shards);
        // A larger catalog than the classic campaigns: global completion
        // travels by gossip (one ~100 ms steering tick), a fixed lag
        // that would dominate the throughput ratio on a sub-second
        // campaign. The single-server reference uses these same params,
        // so the comparison stays like-for-like.
        let shard_params = CampaignParams {
            proteins: if quick { 5 } else { 6 },
            ..campaign_params
        };
        let (single_json, single_wps) =
            run_shard_reference(shard_params, deadline_seconds, shard_fleet, seed);
        let rows: Vec<ShardBenchRow> = shard_rows
            .iter()
            .map(|&(n, trust)| {
                let o = run_sharded_campaign(
                    shard_params,
                    deadline_seconds,
                    n,
                    shard_fleet,
                    seed,
                    trust,
                );
                let validated = |r: &NetRunReport| r.partial_outputs.iter().flatten().count();
                let workunits: usize = o.reports.iter().map(&validated).sum();
                let workunits_per_sec = workunits as f64 / o.wall_seconds.max(1e-9);
                ShardBenchRow {
                    shards: n,
                    trust,
                    workunits,
                    wall_seconds: o.wall_seconds,
                    workunits_per_sec,
                    per_shard_workunits_per_sec: o
                        .reports
                        .iter()
                        .map(|r| validated(r) as f64 / o.wall_seconds.max(1e-9))
                        .collect(),
                    requests: o.requests,
                    redirects: o.reports.iter().map(|r| r.net_stats.shard_redirects).sum(),
                    leases: o.reports.iter().map(|r| r.net_stats.shard_leases_out).sum(),
                    leased_workunits: o
                        .reports
                        .iter()
                        .map(|r| r.net_stats.shard_wus_leased_out)
                        .sum(),
                    merged_matches_single: o.merged_json == single_json,
                    throughput_vs_single_frac: workunits_per_sec / single_wps.max(1e-9),
                }
            })
            .collect();
        (single_wps, rows)
    });

    let baseline = NetCampaign::build(campaign_params).baseline_outputs();
    let baseline_json = serde_json::to_string(&baseline).expect("baseline serializes");
    let matches_baseline = |run: &NetRunReport| {
        serde_json::to_string(&run.outputs).expect("outputs serialize") == baseline_json
    };
    let merged_matches_baseline = matches_baseline(&plain.run);
    let total_delivered: f64 = multi
        .campaigns
        .iter()
        .map(|c| c.delivered_ref_seconds)
        .sum();
    let campaign_rows: Vec<CampaignBenchRow> = multi
        .campaigns
        .iter()
        .map(|c| {
            let def = campaign_defs
                .iter()
                .find(|d| d.name == c.name)
                .expect("configured campaign");
            let solo_json =
                serde_json::to_string(&NetCampaign::build(def.params).baseline_outputs())
                    .expect("solo baseline serializes");
            let artifact_json =
                serde_json::to_string(&c.outputs).expect("campaign outputs serialize");
            CampaignBenchRow {
                name: c.name.clone(),
                share: c.share,
                priority: c.priority,
                workunits: c.workunits,
                delivered_ref_seconds: c.delivered_ref_seconds,
                delivered_frac: c.delivered_ref_seconds / total_delivered.max(1e-9),
                borrows: c.borrows,
                matches_solo_baseline: artifact_json == solo_json,
            }
        })
        .collect();
    let journal_merged_matches_baseline = journaled.as_ref().map(|o| matches_baseline(&o.run));
    let ops_merged_matches_baseline = ops_enabled.as_ref().map(|o| matches_baseline(&o.run));
    let scale_merged_matches_baseline = scale.as_ref().map(|o| matches_baseline(&o.run));

    // Replicas issued per workunit: every issue class the scheduler
    // has, over the campaign size. The fixed-quorum floor is 2.0; trust
    // pulls it toward 1.0 plus the spot-check fraction.
    let redundancy_frac = |o: &CampaignOutcome| {
        let s = &o.run.server_stats;
        (s.initial_issues
            + s.quorum_issues
            + s.timeout_reissues
            + s.error_reissues
            + s.spot_check_issues) as f64
            / (o.run.workunits as f64).max(1.0)
    };
    let trust_off_redundancy_frac = redundancy_frac(&trust_off);
    let trust_on_redundancy_frac = redundancy_frac(&trust_on);
    let trust_summary = trust_on.run.trust.expect("trust-on run has a summary");

    let wu_per_sec = |o: &CampaignOutcome| o.run.workunits as f64 / o.run.wall_seconds.max(1e-9);
    let workunits_per_sec = wu_per_sec(&plain);
    let journal_workunits_per_sec = journaled.as_ref().map(&wu_per_sec);
    let ops_workunits_per_sec = ops_enabled.as_ref().map(&wu_per_sec);
    let report = NetgridReport {
        bench: "netgrid_e2e".to_string(),
        quick,
        seed,
        codec: codec.to_string(),
        agents: honest_agents,
        mux,
        workunits: plain.run.workunits,
        wall_seconds: plain.run.wall_seconds,
        workunits_per_sec,
        requests: plain.latencies.len(),
        request_latency_p50_ms: quantile(&plain.latencies, 0.50).unwrap_or(0.0),
        request_latency_p99_ms: quantile(&plain.latencies, 0.99).unwrap_or(0.0),
        timeout_reissues: plain.run.server_stats.timeout_reissues,
        quorum_rejects: plain.run.net_stats.quorum_rejected,
        disconnect_faults: plain.faults.0,
        stall_faults: plain.faults.1,
        corrupt_faults: plain.faults.2,
        merged_matches_baseline,
        journal_workunits_per_sec,
        journal_overhead_frac: journal_workunits_per_sec
            .map(|j| (workunits_per_sec - j) / workunits_per_sec.max(1e-9)),
        journal_merged_matches_baseline,
        ops_workunits_per_sec,
        ops_overhead_frac: ops_workunits_per_sec
            .map(|o| (workunits_per_sec - o) / workunits_per_sec.max(1e-9)),
        ops_scrapes: ops_enabled.as_ref().map(|o| o.scrape_ms.len()),
        ops_scrape_p50_ms: ops_enabled
            .as_ref()
            .map(|o| quantile(&o.scrape_ms, 0.50).unwrap_or(0.0)),
        ops_scrape_p99_ms: ops_enabled
            .as_ref()
            .map(|o| quantile(&o.scrape_ms, 0.99).unwrap_or(0.0)),
        ops_merged_matches_baseline,
        scale_agents,
        scale_wall_seconds: scale.as_ref().map(|o| o.run.wall_seconds),
        scale_workunits_per_sec: scale.as_ref().map(&wu_per_sec),
        scale_requests: scale.as_ref().map(|o| o.latencies.len()),
        scale_request_latency_p50_ms: scale
            .as_ref()
            .map(|o| quantile(&o.latencies, 0.50).unwrap_or(0.0)),
        scale_request_latency_p99_ms: scale
            .as_ref()
            .map(|o| quantile(&o.latencies, 0.99).unwrap_or(0.0)),
        scale_connections: scale.as_ref().map(|o| o.connections),
        scale_merged_matches_baseline,
        trust_agents: trust_fleet,
        trust_off_redundancy_frac,
        trust_on_redundancy_frac,
        trust_redundancy_reduction_frac: (trust_off_redundancy_frac - trust_on_redundancy_frac)
            / trust_off_redundancy_frac.max(1e-9),
        trust_off_quorum_rejects: trust_off.run.net_stats.quorum_rejected,
        trust_on_quorum_rejects: trust_on.run.net_stats.quorum_rejected,
        trust_off_wasted_ref_seconds: trust_off.run.wasted_ref_seconds,
        trust_on_wasted_ref_seconds: trust_on.run.wasted_ref_seconds,
        trust_on_spot_checks_passed: trust_summary.spot_checks_passed,
        trust_on_spot_checks_failed: trust_summary.spot_checks_failed,
        trust_saboteur_quarantined: trust_summary.ever_quarantined >= 1,
        trust_off_merged_matches_baseline: matches_baseline(&trust_off.run),
        trust_on_merged_matches_baseline: matches_baseline(&trust_on.run),
        shard_single_workunits_per_sec: sharded.as_ref().map(|(wps, _)| *wps),
        shard_campaigns: sharded.map(|(_, rows)| rows),
        campaign_share_error: multi.share_error,
        campaign_rows,
    };
    println!(
        "{} workunits in {:.2} s over loopback ({:.1} wu/s, {} agents [{}] + victim + saboteur, {} codec)",
        report.workunits,
        report.wall_seconds,
        report.workunits_per_sec,
        report.agents,
        if mux { "mux" } else { "threaded" },
        report.codec,
    );
    println!(
        "request latency p50 {:.2} ms, p99 {:.2} ms over {} requests",
        report.request_latency_p50_ms, report.request_latency_p99_ms, report.requests
    );
    println!(
        "faults: {} timeout reissues, {} quorum rejects ({} disconnects, {} stalls, {} corruptions injected)",
        report.timeout_reissues,
        report.quorum_rejects,
        report.disconnect_faults,
        report.stall_faults,
        report.corrupt_faults
    );
    if let (Some(j), Some(frac)) = (
        report.journal_workunits_per_sec,
        report.journal_overhead_frac,
    ) {
        println!(
            "journaled: {:.1} wu/s ({:+.1}% overhead vs plain)",
            j,
            frac * 100.0
        );
    }
    if let (Some(o), Some(frac)) = (report.ops_workunits_per_sec, report.ops_overhead_frac) {
        println!(
            "ops endpoint on: {:.1} wu/s ({:+.1}% overhead vs plain), {} scrapes, scrape p50 {:.2} ms p99 {:.2} ms",
            o,
            frac * 100.0,
            report.ops_scrapes.unwrap_or(0),
            report.ops_scrape_p50_ms.unwrap_or(0.0),
            report.ops_scrape_p99_ms.unwrap_or(0.0)
        );
    }
    if report.scale_agents > 0 {
        println!(
            "scale: {} mux agents, {:.1} wu/s in {:.2} s, request p50 {:.3} ms p99 {:.3} ms over {} requests ({} connections)",
            report.scale_agents,
            report.scale_workunits_per_sec.unwrap_or(0.0),
            report.scale_wall_seconds.unwrap_or(0.0),
            report.scale_request_latency_p50_ms.unwrap_or(0.0),
            report.scale_request_latency_p99_ms.unwrap_or(0.0),
            report.scale_requests.unwrap_or(0),
            report.scale_connections.unwrap_or(0),
        );
    }
    println!(
        "trust: redundancy {:.2} -> {:.2} replicas/wu ({:.0}% saved), quorum rejects {} -> {}, \
         wasted {:.0} -> {:.0} ref-s, spot checks {} passed / {} failed, saboteur quarantined: {}",
        report.trust_off_redundancy_frac,
        report.trust_on_redundancy_frac,
        report.trust_redundancy_reduction_frac * 100.0,
        report.trust_off_quorum_rejects,
        report.trust_on_quorum_rejects,
        report.trust_off_wasted_ref_seconds,
        report.trust_on_wasted_ref_seconds,
        report.trust_on_spot_checks_passed,
        report.trust_on_spot_checks_failed,
        report.trust_saboteur_quarantined,
    );
    if let Some(rows) = &report.shard_campaigns {
        for row in rows {
            println!(
                "sharded: {} shards{} -> {:.1} wu/s aggregate ({:.2}x single-server {:.1}), \
                 {} redirects, {} leases ({} wus stolen), merge matches single: {}",
                row.shards,
                if row.trust { " (trust on)" } else { "" },
                row.workunits_per_sec,
                row.throughput_vs_single_frac,
                report.shard_single_workunits_per_sec.unwrap_or(0.0),
                row.redirects,
                row.leases,
                row.leased_workunits,
                row.merged_matches_single,
            );
        }
    }
    for row in &report.campaign_rows {
        println!(
            "campaign {}: share {:.0}% -> delivered {:.1}% ({:.0} ref-s, {} workunits, {} borrows), artifact matches solo: {}",
            row.name,
            row.share * 100.0,
            row.delivered_frac * 100.0,
            row.delivered_ref_seconds,
            row.workunits,
            row.borrows,
            row.matches_solo_baseline,
        );
    }
    println!(
        "multi-campaign fair-share error {:.3} (sampled while contended)",
        report.campaign_share_error
    );
    println!(
        "merged output matches in-process baseline: plain {}, journaled {:?}, ops {:?}, scale {:?}, trust off/on {}/{}",
        report.merged_matches_baseline,
        report.journal_merged_matches_baseline,
        report.ops_merged_matches_baseline,
        report.scale_merged_matches_baseline,
        report.trust_off_merged_matches_baseline,
        report.trust_on_merged_matches_baseline,
    );
    let ok = report.merged_matches_baseline
        && report.journal_merged_matches_baseline.unwrap_or(true)
        && report.ops_merged_matches_baseline.unwrap_or(true)
        && report.scale_merged_matches_baseline.unwrap_or(true)
        && report.trust_off_merged_matches_baseline
        && report.trust_on_merged_matches_baseline
        && report
            .shard_campaigns
            .as_ref()
            .is_none_or(|rows| rows.iter().all(|r| r.merged_matches_single))
        && report.campaign_rows.iter().all(|r| r.matches_solo_baseline);
    if !ok {
        eprintln!("netgrid_e2e: ERROR: merged output diverged from the baseline");
    }
    if report.timeout_reissues == 0 || report.quorum_rejects == 0 {
        eprintln!("netgrid_e2e: WARNING: a fault path went unexercised this run");
    }
    if !report.trust_saboteur_quarantined {
        eprintln!("netgrid_e2e: WARNING: the saboteur escaped quarantine this run");
    }

    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    let default_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_netgrid.json");
    let path = out.as_deref().unwrap_or(default_path);
    match std::fs::write(path, json + "\n") {
        Ok(()) => println!("netgrid_e2e -> {path}"),
        Err(e) => {
            eprintln!("netgrid_e2e: cannot write {path}: {e}");
            std::process::exit(1);
        }
    }
    session.record_engine(report.requests as u64, 0, report.workunits as u64);
    session.finish();
    if !ok {
        std::process::exit(1);
    }
}

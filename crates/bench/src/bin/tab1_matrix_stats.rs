//! TAB1 — Table 1: statistics of the 168×168 computation-time matrix,
//! plus the §4.1 numbers that hang off it (the 1,488-year total, the
//! top-10 concentration, the minimal-workunit count, and the Grid'5000
//! calibration campaign itself).
//!
//! Run: `cargo run -p hcmd-bench --release --bin tab1_matrix_stats`

use bench_support::{catalog_and_matrix, header, thousands};
use maxdo::CostModel;
use timemodel::CalibrationCampaign;

fn main() {
    let session = bench_support::RunSession::start("tab1_matrix_stats", 0, 1);
    header(
        "TAB1",
        "statistics of the computation-time matrix (seconds)",
    );
    let (library, matrix) = catalog_and_matrix();
    let t1 = timemodel::table1(library, matrix);
    println!("{}\n", t1.render());

    println!("paper Table 1      :        671              968.04        6    46347      384");
    println!("paper total        : 1,488:237:19:45:54");
    println!("paper top-10 share : ~30%");
    println!(
        "paper minimal wus  : {}  (ours {})\n",
        thousands(49_481_544),
        thousands(t1.minimal_workunits)
    );

    // The calibration campaign that measured the matrix (§4.1): 640
    // processors on Grid'5000, one day.
    let model = CostModel::reference(library);
    let report = CalibrationCampaign { processors: 640 }.run(library, &model);
    println!("calibration campaign (640 dedicated processors, LPT):");
    println!("  jobs            : {} (168²)", report.jobs);
    println!(
        "  total cpu time  : {} ({:.0} days; paper: \"more than 73 days\")",
        report.total_cpu,
        report.total_cpu.total_days()
    );
    println!(
        "  makespan        : {:.1} h (fits one day: {})",
        report.makespan_seconds / 3600.0,
        report.fits_in_one_day()
    );
    session.finish();
}

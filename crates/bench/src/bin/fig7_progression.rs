//! FIG7 — Figure 7: per-protein progression of the HCMD project at the
//! four snapshot dates (2007-03-20, 04-11, 05-02, 06-11).
//!
//! The paper's headline reading of this figure: on 05-02-07, "85% of the
//! proteins were docked, but this represents only 47% of the ... total
//! computation" — a consequence of the cheapest-first launch order plus
//! the extreme skew of per-protein cost.
//!
//! Run: `cargo run -p hcmd-bench --release --bin fig7_progression [scale] [seed]`

use bench_support::header;
use hcmd::campaign::Phase1Campaign;

fn main() {
    let mut args = std::env::args().skip(1);
    let scale: u32 = args.next().and_then(|s| s.parse().ok()).unwrap_or(10);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(2007);
    let session = bench_support::RunSession::start("fig7_progression", seed, u64::from(scale));
    header("FIG7", "HCMD project progression");
    println!("simulating at scale 1/{scale} (seed {seed})...\n");
    let report = Phase1Campaign::new(scale, seed).run();
    let trace = &report.trace;

    // The four panels. Campaign days 91/113/134/174 correspond to the
    // paper's dates (launch 2006-12-19).
    let paper_dates = [
        (91usize, "03/20/07"),
        (113, "04/11/07"),
        (134, "05/02/07"),
        (174, "06/11/07"),
    ];
    for snapshot in &trace.snapshots {
        let date = paper_dates
            .iter()
            .find(|(d, _)| *d == snapshot.day)
            .map(|(_, s)| *s)
            .unwrap_or("—");
        let p = trace.progression(snapshot);
        println!(
            "day {:>3} ({date}): proteins docked {:>5.1}%   computation done {:>5.1}%",
            snapshot.day,
            p.fraction_proteins_complete() * 100.0,
            p.fraction_work_complete() * 100.0
        );
        // One character per protein in launch order: '#' docked, digit =
        // decile in progress, '.' untouched — the green/red strip.
        println!("        [{}]\n", p.render_strip(84));
    }
    println!(
        "paper reading at 05-02-07: 85% of proteins docked = only 47% of the total\n\
         computation (1,488:237:19:45:54). The skew: 10 proteins hold ~30% of the time."
    );
    session.finish();
}

//! FIG4 — Figure 4: workunit execution-time distributions for the two
//! packagings the paper plots: h = 10 h (1,364,476 workunits) and
//! h = 4 h (3,599,937 workunits).
//!
//! Run: `cargo run -p hcmd-bench --release --bin fig4_workunit_distribution`

use bench_support::{catalog_and_matrix, header, thousands};
use workunit::{distribution_report, CampaignPackage};

fn main() {
    let session = bench_support::RunSession::start("fig4_workunit_distribution", 0, 1);
    header("FIG4", "workunit execution-time distribution");
    let (library, matrix) = catalog_and_matrix();
    for (h_hours, paper_count) in [(10.0, 1_364_476u64), (4.0, 3_599_937u64)] {
        let pkg = CampaignPackage::new(library, matrix, h_hours * 3600.0);
        let rep = distribution_report(&pkg);
        println!("--- {} ---", rep.caption());
        println!(
            "paper: WantedWuExecTime = {h_hours} h, Nb wu = {}",
            thousands(paper_count)
        );
        println!(
            "mean estimated duration: {}   over-target units: {} ({:.2}%)",
            rep.mean_hms(),
            thousands(rep.over_target),
            100.0 * rep.over_target as f64 / rep.count as f64
        );
        println!("{}", rep.histogram.render(48));
    }
    println!(
        "paper: \"the number of workunits increases when the workunit execution \
         time wanted decreases\""
    );
    session.finish();
}

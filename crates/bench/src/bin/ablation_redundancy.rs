//! ABL2 — the redundancy policy ablation.
//!
//! §5.1: redundancy "was higher at the beginning, because the results were
//! compared to each other to be validated, but later we provided a method
//! to validate the results by checking the values returned". This ablation
//! sweeps the day of that validation switch and reports the campaign-wide
//! redundancy factor, useful fraction, consumed CPU and completion day —
//! quantifying what the bounds-check validator bought the project.
//!
//! Run: `cargo run -p hcmd-bench --release --bin ablation_redundancy [scale] [seed]`

use bench_support::header;
use gridsim::{ServerConfig, VolunteerGridConfig, VolunteerGridSim};
use maxdo::ProteinLibrary;
use timemodel::CostMatrix;
use workunit::CampaignPackage;

fn main() {
    let mut args = std::env::args().skip(1);
    let scale: u32 = args.next().and_then(|s| s.parse().ok()).unwrap_or(25);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(2007);
    let session = bench_support::RunSession::start("ablation_redundancy", seed, u64::from(scale));
    header("ABL2", "validation-policy switch day vs redundancy (§5.1)");
    let full = ProteinLibrary::phase1_catalog();
    let matrix = CostMatrix::phase1(&full);
    let lib = full.with_scaled_nsep(scale);
    let pkg = CampaignPackage::new(&lib, &matrix, workunit::PRODUCTION_WU_SECONDS);

    println!(
        "{:>12} {:>12} {:>10} {:>14} {:>12}",
        "switch day", "redundancy", "useful %", "consumed (y)", "finish day"
    );
    for switch in [None, Some(0usize), Some(55), Some(110), Some(182)] {
        let mut config = VolunteerGridConfig::hcmd_phase1(scale, seed);
        config.server = ServerConfig {
            validation_switch_day: switch,
            ..ServerConfig::default()
        };
        let trace = VolunteerGridSim::new(&pkg, config).run();
        let label = match switch {
            None => "never".to_string(),
            Some(d) => d.to_string(),
        };
        println!(
            "{:>12} {:>12.2} {:>9.0}% {:>14.0} {:>12}",
            label,
            trace.redundancy_factor(),
            trace.useful_fraction() * 100.0,
            trace.consumed_cpu_seconds() * scale as f64 / (365.0 * 86_400.0),
            trace.completion_day.map_or("n/a".into(), |d| d.to_string())
        );
    }
    println!(
        "\npaper operating point: factor 1.37, 73% useful (switch mid-campaign). \
         'never' = permanent quorum-2 comparison: ~2x redundancy and a much longer \
         campaign; 'day 0' = bounds-check from the start: minimal redundancy (only \
         errors and timeouts) but no cross-validation in the early failure-detection \
         period the operators wanted (§5.1)."
    );
    session.finish();
}

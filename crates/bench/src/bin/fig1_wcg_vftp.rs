//! FIG1 — Figure 1: virtual full-time processors of World Community Grid
//! since its launch (November 16, 2004).
//!
//! Regenerates the grid-wide VFTP curve from the membership model: global
//! growth, weekend dips, and the Christmas 2005/2006 and summer 2006
//! troughs the paper points out.
//!
//! Run: `cargo run -p hcmd-bench --release --bin fig1_wcg_vftp`

use bench_support::{ascii_series, header};
use gridsim::membership::{HCMD_CAMPAIGN_DAYS, HCMD_LAUNCH_DAY};
use gridsim::MembershipModel;

fn main() {
    let session = bench_support::RunSession::start("fig1_wcg_vftp", 0, 1);
    header(
        "FIG1",
        "virtual full-time processors of World Community Grid",
    );
    let model = MembershipModel::wcg();
    let days = 1100;
    let series = model.vftp_series(days);

    // Weekly means for the plotted curve (the paper's curve is also an
    // aggregate of the daily statistics page).
    let weekly: Vec<f64> = series
        .chunks(7)
        .map(|w| w.iter().sum::<f64>() / w.len() as f64)
        .collect();
    let labels: Vec<String> = (0..weekly.len())
        .step_by(8)
        .map(|w| format!("week {w}"))
        .collect();
    let sampled: Vec<f64> = weekly.iter().step_by(8).copied().collect();
    println!("{}", ascii_series(&labels, &sampled, 56));

    // The paper's qualitative observations, quantified.
    println!("anchors:");
    println!(
        "  VFTP in the week the paper was written (~day 1090): {:>8.0}  (paper ~74,825)",
        model.mean_vftp(1083, 1090)
    );
    println!(
        "  mean VFTP over the HCMD campaign window           : {:>8.0}  (paper  54,947)",
        model.mean_vftp(HCMD_LAUNCH_DAY, HCMD_LAUNCH_DAY + HCMD_CAMPAIGN_DAYS)
    );
    // Dips measured as observed VFTP against the deseasonalised baseline
    // over the same days (growth would otherwise mask them).
    let dip = |from: usize, to: usize| {
        let observed: f64 = (from..to).map(|d| model.vftp(d)).sum();
        let baseline: f64 = (from..to).map(|d| model.base_vftp(d)).sum();
        100.0 * (observed / baseline - 1.0)
    };
    println!("  Christmas 2005 dip: {:+.0}% vs baseline", dip(402, 413));
    println!("  summer 2006 dip   : {:+.0}% vs baseline", dip(592, 654));
    let weekend = model.vftp(900); // a Saturday well clear of holidays
    let weekday = model.vftp(902); // the following Monday
    println!(
        "  weekend dip       : {:.0} (Sat) vs {:.0} (Mon) ({:+.0}%)",
        weekend,
        weekday,
        100.0 * (weekend / weekday - 1.0)
    );
    session.finish();
}

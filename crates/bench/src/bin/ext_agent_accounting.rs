//! EXT1 — the §8 future-work study: UD vs BOINC agents, and points-based
//! VFTP estimation.
//!
//! The paper's conclusion flags two open issues for phase II:
//!
//! 1. "in phase II the program will only be run on the BOINC agent. There
//!    exists differences between the way the two middleware systems
//!    account for run-time which may introduce differences in what
//!    represents a virtual full-time processor";
//! 2. "Another way ... is to base the estimate on the number of points
//!    awarded instead of run-time. ... This approach should reduce the
//!    differences between each platform therefore be more middleware
//!    independent. This approach should also allow us to observe the
//!    trend toward more powerful processors in desktop computers."
//!
//! This experiment runs the same campaign under both agents and compares
//! the run-time-based and points-based VFTP estimates, then reruns with a
//! host-speed trend to show the points estimator exposing it.
//!
//! Run: `cargo run -p hcmd-bench --release --bin ext_agent_accounting [scale] [seed]`

use bench_support::header;
use gridsim::{HostParams, VolunteerGridConfig, VolunteerGridSim};
use maxdo::ProteinLibrary;
use timemodel::CostMatrix;
use workunit::CampaignPackage;

fn run(params: HostParams, scale: u32, seed: u64) -> gridsim::CampaignTrace {
    let full = ProteinLibrary::phase1_catalog();
    let matrix = CostMatrix::phase1(&full);
    let lib = full.with_scaled_nsep(scale);
    let pkg = CampaignPackage::new(&lib, &matrix, workunit::PRODUCTION_WU_SECONDS);
    let mut config = VolunteerGridConfig::hcmd_phase1(scale, seed);
    config.host_params = params;
    VolunteerGridSim::new(&pkg, config).run()
}

fn main() {
    let mut args = std::env::args().skip(1);
    let scale: u32 = args.next().and_then(|s| s.parse().ok()).unwrap_or(20);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(2008);
    let session = bench_support::RunSession::start("ext_agent_accounting", seed, u64::from(scale));
    header(
        "EXT1",
        "UD vs BOINC run-time accounting and points-based VFTP (§8)",
    );
    println!("simulating the same campaign under both agents (scale 1/{scale}, seed {seed})...\n");

    let ud = run(HostParams::wcg_2007(), scale, seed);
    let boinc = run(HostParams::wcg_boinc(), scale, seed);

    // Both campaigns computed the *same* workload; compare what each
    // middleware's statistics claim for it.
    let ref_total = ud.reference_total_seconds;
    println!("{:<42} {:>12} {:>12}", "", "UD agent", "BOINC agent");
    println!(
        "{:<42} {:>12.2} {:>12.2}",
        "accounted run time / reference workload",
        ud.consumed_cpu_seconds() / ref_total,
        boinc.consumed_cpu_seconds() / ref_total
    );
    println!(
        "{:<42} {:>12.2} {:>12.2}",
        "awarded points / reference workload",
        ud.credit.total_points / ref_total,
        boinc.credit.total_points / ref_total
    );
    println!(
        "{:<42} {:>12} {:>12}",
        "campaign length (days)",
        ud.completion_day.map_or("n/a".into(), |d| d.to_string()),
        boinc.completion_day.map_or("n/a".into(), |d| d.to_string()),
    );
    println!();
    let rt_gap = ud.consumed_cpu_seconds() / boinc.consumed_cpu_seconds();
    let pt_gap = ud.credit.total_points / boinc.credit.total_points;
    println!(
        "run-time gap UD/BOINC : {rt_gap:.2}x  (the §8 middleware artifact — wall-clock \
         accounting under the 60% throttle inflates UD numbers)"
    );
    println!(
        "points gap UD/BOINC   : {pt_gap:.2}x  (the §8 claim: benchmark-weighted points \
         are middleware independent — the residual is redundancy/replay noise)"
    );
    println!(
        "\nThe BOINC campaign also *finishes sooner* ({} vs {} days): the removed \
         throttle is real compute, not just accounting.\n",
        boinc.completion_day.unwrap_or(0),
        ud.completion_day.unwrap_or(0)
    );

    // Part 2: the processor-power trend, observed through the agent
    // benchmark (§8: points "should also allow us to observe the trend
    // toward more powerful processors in desktop computers").
    println!("--- the trend toward more powerful processors ---");
    let mut trending = HostParams::wcg_boinc();
    trending.speed_growth_per_year = 0.30;
    println!("mean benchmark weight of hosts joining on a given campaign day (+30%/year):");
    for day in [0usize, 90, 180, 365, 730] {
        let mean: f64 = (0..400)
            .map(|id| {
                let h = gridsim::Host::sample_at_day(gridsim::HostId(id), &trending, seed, day);
                gridsim::credit::benchmark_weight(&h)
            })
            .sum::<f64>()
            / 400.0;
        println!("  day {day:>4}: {mean:.3}");
    }
    println!(
        "(phase-I calibration keeps the population stationary; this knob is the §5.1 \
         observation that \"new members join the grid with brand new machines\")"
    );
    session.finish();
}

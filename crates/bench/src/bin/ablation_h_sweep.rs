//! ABL3 — the workunit-size ablation: run the campaign at several target
//! durations `h` and measure what the §4.2 packaging choice actually
//! buys.
//!
//! Smaller workunits mean more server transactions (the §3.2 constraint:
//! the 10-hour guideline "determines the rate of transactions with World
//! Community Grid servers") but less work lost per timeout/abandon; larger
//! workunits strain the deadline and the volunteer's patience (§3.2's
//! "human factor"). This sweep exposes the trade-off the operators
//! navigated when they shipped h = 4 h instead of the ideal 10 h.
//!
//! Run: `cargo run -p hcmd-bench --release --bin ablation_h_sweep [scale] [seed]`

use bench_support::{header, thousands};
use gridsim::{VolunteerGridConfig, VolunteerGridSim};
use maxdo::ProteinLibrary;
use timemodel::CostMatrix;
use workunit::CampaignPackage;

fn main() {
    let mut args = std::env::args().skip(1);
    let scale: u32 = args.next().and_then(|s| s.parse().ok()).unwrap_or(25);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(2007);
    let session = bench_support::RunSession::start("ablation_h_sweep", seed, u64::from(scale));
    header("ABL3", "workunit duration h vs campaign behaviour (§4.2)");
    let full = ProteinLibrary::phase1_catalog();
    let matrix = CostMatrix::phase1(&full);
    let lib = full.with_scaled_nsep(scale);

    println!(
        "{:>6} {:>14} {:>12} {:>12} {:>12} {:>12}",
        "h (h)", "workunits", "results", "redundancy", "consumed(y)", "finish day"
    );
    for h_hours in [1.0, 2.0, 4.0, 10.0, 24.0] {
        let pkg = CampaignPackage::new(&lib, &matrix, h_hours * 3600.0);
        let config = VolunteerGridConfig::hcmd_phase1(scale, seed);
        let trace = VolunteerGridSim::new(&pkg, config).run();
        println!(
            "{:>6} {:>14} {:>12} {:>12.2} {:>12.0} {:>12}",
            h_hours,
            thousands(pkg.count() * scale as u64),
            thousands(trace.results_received * scale as u64),
            trace.redundancy_factor(),
            trace.consumed_cpu_seconds() * scale as f64 / (365.0 * 86_400.0),
            trace.completion_day.map_or("n/a".into(), |d| d.to_string())
        );
    }
    println!(
        "\nsmall h: millions of extra server transactions for the same work; \
         large h: longer turnarounds push replicas into the 10-day deadline \
         (reissues → redundancy) and raise the work lost per abandoned unit. \
         The paper's production point (4 h) sits in the flat middle."
    );
    session.finish();
}

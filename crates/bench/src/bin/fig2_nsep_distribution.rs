//! FIG2 — Figure 2: distribution of the number of starting positions
//! (`Nsep`) over the 168 proteins.
//!
//! The paper: "most of the proteins have less than 3000 starting positions
//! to compute. One of them has more than 8000."
//!
//! Run: `cargo run -p hcmd-bench --release --bin fig2_nsep_distribution`

use bench_support::{catalog_and_matrix, header};
use metrics::Histogram;

fn main() {
    let session = bench_support::RunSession::start("fig2_nsep_distribution", 0, 1);
    header("FIG2", "Nsep distribution over the phase-I proteins");
    let (library, _) = catalog_and_matrix();
    let mut hist = Histogram::new(0.0, 12_000.0, 24);
    for &n in library.nsep_table() {
        hist.record(n as f64);
    }
    println!("{}", hist.render(48));

    let nsep = library.nsep_table();
    let below_3000 = nsep.iter().filter(|&&n| n < 3000).count();
    let above_8000 = nsep.iter().filter(|&&n| n > 8000).count();
    let mut sorted: Vec<u32> = nsep.to_vec();
    sorted.sort_unstable();
    println!("proteins with Nsep < 3000 : {below_3000} / 168  (paper: \"most\")");
    println!("proteins with Nsep > 8000 : {above_8000}        (paper: \"one of them\")");
    println!(
        "min {} | median {} | mean {:.0} | max {}",
        sorted[0],
        sorted[sorted.len() / 2],
        sorted.iter().map(|&n| n as f64).sum::<f64>() / sorted.len() as f64,
        sorted[sorted.len() - 1]
    );
    session.finish();
}

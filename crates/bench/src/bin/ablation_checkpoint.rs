//! ABL4 — checkpoint granularity vs replayed work (§4.3).
//!
//! "the checkpoint occurs only between starting positions. If the program
//! is stopped during the computation of one starting position, the MAXDo
//! program has to be relaunched from this position." The coarser the
//! checkpoint grain, the more work an interruption destroys. This
//! ablation runs the session-level host executor across a population for
//! several position sizes and reports the replay overhead — quantifying
//! why between-positions checkpointing was "essential" and what a
//! finer-grained scheme would have bought.
//!
//! Run: `cargo run -p hcmd-bench --release --bin ablation_checkpoint`

use bench_support::header;
use gridsim::rng::{stream, Domain};
use gridsim::sessions::execute_with_sessions;
use gridsim::{Host, HostId, HostParams};

fn main() {
    let session = bench_support::RunSession::start("ablation_checkpoint", 0, 1);
    header("ABL4", "checkpoint granularity vs replayed work (§4.3)");
    let params = HostParams::wcg_2007();
    let workunit_ref = 14_400.0; // the production 4-hour workunit
    let hosts = 600u64;

    println!(
        "{:>22} {:>14} {:>14} {:>14}",
        "checkpoint grain", "replay %", "attached (h)", "sessions"
    );
    for (label, position_ref) in [
        ("30 s (fine)", 30.0),
        ("400 s (paper: 1 isep)", 400.0),
        ("1,800 s", 1_800.0),
        ("7,200 s", 7_200.0),
        ("14,400 s (none)", 14_400.0),
    ] {
        let (mut replay, mut attached, mut sessions) = (0.0, 0.0, 0u64);
        for id in 0..hosts {
            let host = Host::sample(HostId(id), &params, 2024);
            let mut rng = stream(2024, Domain::HostExecution, id);
            let e = execute_with_sessions(&host, workunit_ref, position_ref, &mut rng);
            replay += e.replayed_ref_seconds;
            attached += e.attached_seconds;
            sessions += e.sessions as u64;
        }
        println!(
            "{:>22} {:>13.1}% {:>14.1} {:>14.1}",
            label,
            100.0 * replay / (hosts as f64 * workunit_ref),
            attached / hosts as f64 / 3600.0,
            sessions as f64 / hosts as f64
        );
    }
    println!(
        "\nthe paper's between-positions grain (~400 s of reference CPU for a median\n\
         couple) keeps replay to a few percent; checkpointing a whole 4-hour workunit\n\
         as one unit (no intra-workunit checkpoints) wastes a large share of every\n\
         interrupted attempt — the §4.3 'essential' claim, quantified."
    );
    session.finish();
}

//! Event-engine scaling bench: synthetic volunteer fleets at paper
//! scale (1k → 500k hosts, the paper's grid held ~836k devices),
//! driven through both event engines — the legacy `BinaryHeap`
//! ([`HeapQueue`]) and the hierarchical timing wheel ([`EventQueue`]) —
//! over a compressed campaign.
//!
//! The workload reproduces the engine-visible shape of a real campaign
//! rather than its science: staggered initial fetches, hours-scale
//! turnarounds, a 10-day deadline event per issued task (these pile up
//! in the wheel's coarse tier and are what make the queue deep), and a
//! short re-fetch delay after every report. Both engines must pop the
//! exact same sequence — an order checksum is asserted — so the numbers
//! compare identical work.
//!
//! Writes `BENCH_simscale.json` at the workspace root (override with
//! `--out`); `tools/bench_guard` compares fresh runs against the
//! committed baseline in CI. `--quick` runs the two small fleets only.

use bench_support::{thousands, RunSession};
use gridsim::{EventQueue, HeapQueue, Scheduler, SimTime};
use std::time::Instant;

/// One synthetic fleet event. Small and `Copy`, like the real
/// `SimEvent`, so bucket `Vec`s hold it inline.
#[derive(Clone, Copy)]
enum Ev {
    /// Host asks for work.
    Fetch(u32),
    /// Host returns a finished task.
    Report(u32),
    /// A task's 10-day deadline expired (usually after its report —
    /// pure queue ballast, exactly as in the real server).
    Timeout(u32),
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Order-sensitive digest of a pop sequence: identical iff the two
/// engines popped the same events at the same times in the same order.
fn mix(checksum: u64, at: SimTime, ev: Ev) -> u64 {
    let tag = match ev {
        Ev::Fetch(h) => 1u64 << 32 | h as u64,
        Ev::Report(h) => 2u64 << 32 | h as u64,
        Ev::Timeout(h) => 3u64 << 32 | h as u64,
    };
    (checksum.rotate_left(7) ^ at.seconds().to_bits() ^ tag).wrapping_mul(0x100_0000_01B3)
}

struct FleetOutcome {
    pops: u64,
    peak_depth: usize,
    checksum: u64,
    wall_seconds: f64,
}

/// Runs one fleet to completion on engine `S` and digests the order.
fn run_fleet<S: Scheduler<Ev>>(hosts: u32, tasks_per_host: u32, seed: u64) -> FleetOutcome {
    let mut q = S::default();
    let mut remaining = vec![tasks_per_host; hosts as usize];
    // Arrivals spread over the first day, as the membership model does.
    for h in 0..hosts {
        let offset = 86_400.0 * (h as f64 + 0.5) / hosts as f64;
        q.schedule(SimTime::new(offset), Ev::Fetch(h));
    }
    let mut checksum = 0u64;
    let started = Instant::now();
    while let Some((now, ev)) = q.pop() {
        checksum = mix(checksum, now, ev);
        match ev {
            Ev::Fetch(h) => {
                let rem = &mut remaining[h as usize];
                if *rem > 0 {
                    *rem -= 1;
                    // Turnaround in [2 h, 30 h), a per-(host, task)
                    // deterministic draw.
                    let mut s = seed ^ ((h as u64) << 32) ^ *rem as u64;
                    let r = splitmix64(&mut s);
                    let turnaround = 3600.0 * (2.0 + 28.0 * (r % 1_000_000) as f64 / 1e6);
                    q.schedule(now.after(turnaround), Ev::Report(h));
                    q.schedule(now.after(10.0 * 86_400.0), Ev::Timeout(h));
                }
            }
            Ev::Report(h) => {
                // Hosts poll again shortly; the spread keeps re-fetches
                // from synchronizing into one bucket.
                q.schedule(now.after(60.0 + (h % 601) as f64), Ev::Fetch(h));
            }
            Ev::Timeout(_) => {}
        }
    }
    let wall_seconds = started.elapsed().as_secs_f64();
    assert!(remaining.iter().all(|&r| r == 0), "campaign did not drain");
    FleetOutcome {
        pops: q.pops(),
        peak_depth: q.peak_len(),
        checksum,
        wall_seconds,
    }
}

/// Best-of-`reps` timing of one engine on one fleet (the checksum and
/// the structural counters are identical across reps by construction).
fn measure<S: Scheduler<Ev>>(hosts: u32, tasks: u32, seed: u64, reps: u32) -> FleetOutcome {
    let mut best = run_fleet::<S>(hosts, tasks, seed);
    for _ in 1..reps {
        let next = run_fleet::<S>(hosts, tasks, seed);
        assert_eq!(next.checksum, best.checksum, "nondeterministic engine");
        if next.wall_seconds < best.wall_seconds {
            best = next;
        }
    }
    best
}

/// One engine's measurements in `BENCH_simscale.json`.
#[derive(serde::Serialize)]
struct EngineRow {
    wall_seconds: f64,
    events_per_sec: f64,
    peak_queue_depth: u64,
}

impl EngineRow {
    fn from(o: &FleetOutcome) -> Self {
        Self {
            wall_seconds: o.wall_seconds,
            events_per_sec: o.pops as f64 / o.wall_seconds.max(1e-9),
            peak_queue_depth: o.peak_depth as u64,
        }
    }
}

/// One fleet scenario in `BENCH_simscale.json`.
#[derive(serde::Serialize)]
struct ScenarioRow {
    hosts: u32,
    tasks_per_host: u32,
    events: u64,
    heap: EngineRow,
    wheel: EngineRow,
    wheel_speedup: f64,
    checksum_match: bool,
}

/// The `BENCH_simscale.json` document.
#[derive(serde::Serialize)]
struct ScaleReport {
    bench: String,
    seed: u64,
    quick: bool,
    reps_best_of_small: u32,
    tick_seconds: f64,
    scenarios: Vec<ScenarioRow>,
}

fn main() {
    let mut quick = false;
    let mut seed = 42u64;
    let mut out: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--seed" => {
                seed = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--seed <n>")
            }
            "--out" => out = Some(args.next().expect("--out <path>")),
            other => {
                eprintln!("sim_scale: unknown argument {other}");
                eprintln!("usage: sim_scale [--quick] [--seed <n>] [--out <path>]");
                std::process::exit(2);
            }
        }
    }

    let mut session = RunSession::start("sim_scale", seed, 1);
    // Larger fleets carry fewer tasks per host so the compressed
    // campaign stays minutes-scale while the *queue depth* still grows
    // with the fleet (every in-flight task parks a 10-day deadline).
    let scenarios: &[(u32, u32)] = if quick {
        &[(1_000, 8), (10_000, 4)]
    } else {
        &[(1_000, 64), (10_000, 16), (100_000, 8), (500_000, 4)]
    };
    let reps_small = if quick { 1 } else { 3 };

    println!(
        "{:>8} {:>6} {:>12} {:>14} {:>14} {:>10} {:>8}",
        "hosts", "tasks", "events", "heap ev/s", "wheel ev/s", "peak q", "speedup"
    );
    let mut rows = Vec::new();
    let (mut total_pops, mut peak_depth) = (0u64, 0u64);
    for &(hosts, tasks) in scenarios {
        let reps = if hosts <= 10_000 { reps_small } else { 1 };
        let label = format!("fleet_{hosts}");
        let (heap, wheel) = session.phase(&label, || {
            let heap = measure::<HeapQueue<Ev>>(hosts, tasks, seed, reps);
            let wheel = measure::<EventQueue<Ev>>(hosts, tasks, seed, reps);
            (heap, wheel)
        });
        assert_eq!(
            heap.checksum, wheel.checksum,
            "engines diverged at {hosts} hosts"
        );
        assert_eq!(heap.pops, wheel.pops);
        assert_eq!(heap.peak_depth, wheel.peak_depth);
        let speedup = heap.wall_seconds / wheel.wall_seconds.max(1e-9);
        println!(
            "{:>8} {:>6} {:>12} {:>14.0} {:>14.0} {:>10} {:>7.2}x",
            hosts,
            tasks,
            thousands(wheel.pops),
            heap.pops as f64 / heap.wall_seconds.max(1e-9),
            wheel.pops as f64 / wheel.wall_seconds.max(1e-9),
            thousands(wheel.peak_depth as u64),
            speedup
        );
        total_pops += wheel.pops;
        peak_depth = peak_depth.max(wheel.peak_depth as u64);
        rows.push(ScenarioRow {
            hosts,
            tasks_per_host: tasks,
            events: wheel.pops,
            heap: EngineRow::from(&heap),
            wheel: EngineRow::from(&wheel),
            wheel_speedup: speedup,
            checksum_match: true,
        });
    }

    let report = ScaleReport {
        bench: "sim_scale".to_string(),
        seed,
        quick,
        reps_best_of_small: reps_small,
        tick_seconds: gridsim::wheel::TICK_SECONDS,
        scenarios: rows,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    let default_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_simscale.json");
    let path = out.as_deref().unwrap_or(default_path);
    match std::fs::write(path, json + "\n") {
        Ok(()) => println!("sim_scale -> {path}"),
        Err(e) => {
            eprintln!("sim_scale: cannot write {path}: {e}");
            std::process::exit(1);
        }
    }
    session.record_engine(total_pops, peak_depth, 0);
    session.finish();
}

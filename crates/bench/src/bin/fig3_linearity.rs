//! FIG3 — Figure 3: linearity of MAXDo's computing time in the number of
//! orientations (a) and starting positions (b).
//!
//! Unlike the other experiments this one runs the *real* docking kernel:
//! it measures cumulative computational work while sweeping `irot` at
//! fixed `isep` and vice versa, fits a line through each series, and
//! reports the correlation coefficients. The paper checked 400 random
//! couples and found r ≈ 0.99 everywhere; we sweep a sample of synthetic
//! couples (adjustable via the first CLI argument).
//!
//! Run: `cargo run -p hcmd-bench --release --bin fig3_linearity [couples]`

use maxdo::{LibraryConfig, MinimizeParams, ProteinLibrary};
use timemodel::{nrot_linearity, nsep_linearity};

fn main() {
    let session = bench_support::RunSession::start("fig3_linearity", 0, 1);
    bench_support::header("FIG3", "linearity in Nrot (a) and Nsep (b)");
    let couples: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(12);
    // A pool of small proteins so the kernel sweeps run in seconds.
    let library = ProteinLibrary::generate(LibraryConfig::tiny(8), 2024);
    let mp = MinimizeParams {
        max_iterations: 15,
        ..Default::default()
    };

    let mut worst_rot: f64 = 1.0;
    let mut worst_sep: f64 = 1.0;
    println!(
        "{:>8} {:>8} {:>10} {:>10}",
        "couple", "", "r(Nrot)", "r(Nsep)"
    );
    for k in 0..couples {
        let p1 = &library.proteins()[k % 8];
        let p2 = &library.proteins()[(k * 3 + 1) % 8];
        if p1.id == p2.id {
            continue;
        }
        let rot = nrot_linearity(p1, p2, 21, &mp);
        let sep = nsep_linearity(p1, p2, 15, &mp);
        worst_rot = worst_rot.min(rot.r());
        worst_sep = worst_sep.min(sep.r());
        println!(
            "{:>8} {:>8} {:>10.5} {:>10.5}",
            p1.name,
            p2.name,
            rot.r(),
            sep.r()
        );
    }
    println!("\nworst correlation coefficients: Nrot {worst_rot:.5}, Nsep {worst_sep:.5}");
    println!("paper: \"The correlation coefficient is always around 0,99.\"");

    // Show one series in full (the shape of Figure 3(a)).
    let p1 = &library.proteins()[0];
    let p2 = &library.proteins()[1];
    let rot = nrot_linearity(p1, p2, 21, &mp);
    println!("\nsample series (cumulative work vs number of orientation couples):");
    println!("{:>6} {:>14} {:>14}", "nrot", "work", "fit");
    for (x, y) in rot.xs.iter().zip(&rot.ys) {
        println!("{:>6} {:>14.0} {:>14.0}", x, y, rot.fit.predict(*x));
    }
    session.finish();
}

//! EXT2 — phase-II sizing with the fluid model.
//!
//! §7 answers "how many VFTP finish phase II in 40 weeks?" with closed-form
//! arithmetic. The fluid campaign model lets us ask the richer operational
//! questions behind it: given a grid share and a membership level, how
//! long does phase II actually take — including the ramp-up and the
//! middleware switch to BOINC agents (§8)?
//!
//! Run: `cargo run -p hcmd-bench --release --bin ext_phase2_sizing`

use bench_support::header;
use gridsim::fluid::FluidModel;
use gridsim::{HostParams, MembershipModel, ProjectPhases, SharePhase};
use hcmd::config::paper;

fn phase2_model(members_multiplier: f64, share: f64, boinc: bool) -> FluidModel {
    let mut model = FluidModel::hcmd_phase1();
    // Phase II starts from the §7 grid level (~60k VFTP at ~day 1090) and
    // scales with recruited membership.
    model.membership = MembershipModel {
        reference_vftp: 60_000.0 * members_multiplier,
        reference_day: 1,
        growth_exponent: 0.0,
        seasonality: gridsim::SeasonalityModel::flat(),
        ..MembershipModel::wcg()
    };
    model.membership_start_day = 1;
    model.phases = ProjectPhases::new(vec![SharePhase {
        start_day: 0,
        share_start: share,
        share_end: share,
        days: 10 * 365,
        name: "phase II",
    }]);
    if boinc {
        model.host_params = HostParams::wcg_boinc();
        // BOINC CPU-time accounting; redundancy policy assumed unchanged.
    }
    model
}

fn main() {
    let session = bench_support::RunSession::start("ext_phase2_sizing", 0, 1);
    header("EXT2", "phase-II sizing sweeps (fluid model, §7/§8)");
    // Phase-II workload in reference seconds: the §7 ratio over our
    // measured phase-I reference workload.
    let phase2_ref = 1508.0 * 365.0 * 86_400.0 * paper::PHASE2_WORK_RATIO;

    println!("--- weeks to finish phase II vs membership (share fixed at 25%) ---");
    println!(
        "{:>22} {:>14} {:>14}",
        "members (×today)", "UD agents", "BOINC agents"
    );
    for mult in [1.0, 2.0, 3.0, 4.0] {
        let weeks = |boinc: bool| {
            phase2_model(mult, paper::PHASE2_SHARE, boinc)
                .run(phase2_ref)
                .completion_day
                .map(|d| format!("{:.0} weeks", d as f64 / 7.0))
                .unwrap_or_else(|| ">3 years".into())
        };
        println!(
            "{:>18.1}x... {:>14} {:>14}",
            mult,
            weeks(false),
            weeks(true)
        );
    }
    println!(
        "\npaper anchor: 40 weeks needs 59,730 VFTP ≈ 4x today's membership at a 25% \
         share (§7: \"1,300,000 members ... nearly 1,000,000 new volunteers\")."
    );

    println!("\n--- weeks vs grid share (membership fixed at 4x today) ---");
    println!("{:>10} {:>14}", "share", "UD agents");
    for share in [0.10, 0.25, 0.45, 0.80] {
        let t = phase2_model(4.0, share, false).run(phase2_ref);
        println!(
            "{:>9.0}% {:>14}",
            share * 100.0,
            t.completion_day
                .map(|d| format!("{:.0} weeks", d as f64 / 7.0))
                .unwrap_or_else(|| ">3 years".into())
        );
    }
    println!(
        "\nthe BOINC column shows the §8 effect operationally: dropping the UD agent's \
         60% throttle shortens phase II by roughly a third at every membership level."
    );
    session.finish();
}

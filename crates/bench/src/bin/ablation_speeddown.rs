//! ABL1 — attribution of the §6 speed-down factor.
//!
//! §6 enumerates the causes of the 3.96× net factor qualitatively
//! ("these items can explain about half..."); this ablation measures each
//! cause by switching host-model components off one at a time and
//! recording the population speed-down that remains. The product of the
//! single-cause factors reproduces the full factor (the causes compose
//! multiplicatively, as the decomposition in `metrics::speeddown` models).
//!
//! Run: `cargo run -p hcmd-bench --release --bin ablation_speeddown`

use bench_support::header;
use gridsim::{Host, HostId, HostParams};

/// Population speed-down (accounted / reference) over `n` hosts for a
/// production-like workunit.
fn population_factor(params: &HostParams, n: u64) -> f64 {
    let mut accounted = 0.0;
    for id in 0..n {
        let mut h = Host::sample(HostId(id), params, 77);
        accounted += h.plan_execution(12_000.0, 400.0).accounted_seconds;
    }
    accounted / (n as f64 * 12_000.0)
}

fn main() {
    let session = bench_support::RunSession::start("ablation_speeddown", 0, 1);
    header("ABL1", "speed-down attribution (§6)");
    let n = 2000;
    let full = HostParams::wcg_2007();
    let baseline = population_factor(&full, n);
    println!("full WCG host model: {baseline:.2}x  (paper net speed-down: 3.96)\n");

    let cases: Vec<(&str, HostParams)> = vec![
        (
            "no 60% throttle (BOINC-style agent)",
            HostParams {
                throttle: 1.0,
                ..full
            },
        ),
        (
            "no owner contention / screensaver",
            HostParams {
                contention: (0.0, 0.0),
                ..full
            },
        ),
        (
            "reference-speed hardware",
            HostParams {
                speed_median: 1.0,
                speed_sigma: 0.0,
                ..full
            },
        ),
        (
            "no interruptions (no checkpoint replay)",
            HostParams {
                mean_session_seconds: f64::INFINITY,
                ..full
            },
        ),
    ];

    println!(
        "{:<44} {:>10} {:>16}",
        "component removed", "factor", "cause share"
    );
    let mut product = 1.0;
    for (label, params) in &cases {
        let without = population_factor(params, n);
        let share = baseline / without;
        product *= share;
        println!("{label:<44} {without:>9.2}x {share:>15.2}x");
    }
    println!(
        "\nproduct of single-cause shares: {product:.2}x (vs measured {baseline:.2}x — \
         multiplicative composition)"
    );
    let narrative = metrics::speeddown::SpeedDownDecomposition::paper_narrative();
    println!(
        "paper narrative decomposition: {:.2}x, accounting artifacts explain {:.0}% \
         (\"about half\")",
        narrative.predicted_factor(),
        narrative.accounting_share() * 100.0
    );
    session.finish();
}

//! FIG6 — Figure 6: the HCMD campaign on World Community Grid.
//!
//! (a) the number of virtual full-time processors (grid and project) per
//!     week, with the three §5.1 phases; (b) results received per week,
//!     split useful vs redundant — plus the §6 headline aggregates
//!     (consumed CPU time, redundancy factor 1.37, speed-down 5.43/3.96).
//!
//! Run: `cargo run -p hcmd-bench --release --bin fig6_campaign [scale] [seed] [--json]`
//! (default scale 1/10 — the highest-fidelity quick setting; scale 1 is
//! the full 3.6M-workunit campaign; `--json` dumps the plotted series as
//! JSON for external plotting instead of the ASCII rendering).

use bench_support::{ascii_series, header, thousands, RunSession};
use gridsim::ProjectPhases;
use hcmd::campaign::Phase1Campaign;
use hcmd::phases::{phase_summaries, render_phase_table};

#[derive(serde::Serialize)]
struct Fig6Json {
    scale_divisor: u32,
    seed: u64,
    project_vftp_daily: Vec<f64>,
    grid_vftp_daily: Vec<f64>,
    results_weekly: Vec<f64>,
    useful_results_weekly: Vec<f64>,
    completion_day: Option<usize>,
    redundancy_factor: f64,
    raw_speed_down: f64,
    net_speed_down: f64,
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let json = argv.iter().any(|a| a == "--json");
    let mut args = argv.iter().filter(|a| *a != "--json");
    let scale: u32 = args.next().and_then(|s| s.parse().ok()).unwrap_or(10);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(2007);
    let mut session = RunSession::start("fig6_campaign", seed, u64::from(scale));
    if json {
        let report = session.phase("simulation", || Phase1Campaign::new(scale, seed).run());
        session.record_engine(
            report.trace.events_processed,
            report.trace.peak_queue_depth,
            report.trace.results_received,
        );
        let sd = report.trace.speed_down();
        let out = Fig6Json {
            scale_divisor: scale,
            seed,
            project_vftp_daily: report.trace.project_vftp_daily(),
            grid_vftp_daily: report.trace.grid_vftp_daily(),
            results_weekly: report.trace.results_weekly(),
            useful_results_weekly: report.trace.useful_results_weekly(),
            completion_day: report.trace.completion_day,
            redundancy_factor: report.trace.redundancy_factor(),
            raw_speed_down: sd.raw_factor(),
            net_speed_down: sd.net_factor(),
        };
        println!(
            "{}",
            serde_json::to_string_pretty(&out).expect("serializable")
        );
        session.finish();
        return;
    }
    header("FIG6", "the HCMD project on World Community Grid");
    println!("simulating at scale 1/{scale} (seed {seed})...\n");
    let report = session.phase("simulation", || Phase1Campaign::new(scale, seed).run());
    session.record_engine(
        report.trace.events_processed,
        report.trace.peak_queue_depth,
        report.trace.results_received,
    );
    let trace = &report.trace;

    println!("--- Figure 6(a): virtual full-time processors per week ---");
    let project = trace.project_vftp_daily();
    let weekly: Vec<f64> = project
        .chunks(7)
        .map(|w| w.iter().sum::<f64>() / w.len() as f64)
        .collect();
    let labels: Vec<String> = (0..weekly.len()).map(|w| format!("week {w}")).collect();
    println!("{}", ascii_series(&labels, &weekly, 48));
    println!(
        "{}",
        render_phase_table(&phase_summaries(trace, &ProjectPhases::hcmd_phase1()))
    );
    println!("paper: grid average 54,947 | project whole period 16,450 | full power 26,248\n");

    println!("--- Figure 6(b): results received per week (full-scale equivalents) ---");
    let results = trace.results_weekly();
    let useful = trace.useful_results_weekly();
    println!(
        "{:>6} {:>12} {:>12} {:>12}",
        "week", "received", "useful", "redundant"
    );
    for (w, (r, u)) in results.iter().zip(&useful).enumerate() {
        println!("{:>6} {:>12.0} {:>12.0} {:>12.0}", w, r, u, r - u);
    }
    println!();

    println!("--- §6 headline aggregates ---");
    let sd = trace.speed_down();
    println!(
        "results received  : {:>12}  (paper 5,418,010)",
        thousands(trace.results_received * scale as u64)
    );
    println!(
        "useful results    : {:>12}  (paper 3,936,010)",
        thousands(trace.results_useful * scale as u64)
    );
    println!(
        "useful fraction   : {:>11.0}%  (paper 73%)",
        trace.useful_fraction() * 100.0
    );
    println!(
        "redundancy factor : {:>12.2}  (paper 1.37)",
        trace.redundancy_factor()
    );
    println!(
        "consumed cpu time : {}  (paper 8,082:275:17:15:44)",
        report.consumed_full_scale()
    );
    println!(
        "raw speed-down    : {:>12.2}  (paper 5.43)",
        sd.raw_factor()
    );
    println!(
        "net speed-down    : {:>12.2}  (paper 3.96)",
        sd.net_factor()
    );
    println!(
        "campaign length   : {:>9} days (paper 182 = 26 weeks)",
        trace.completion_day.map_or("n/a".into(), |d| d.to_string())
    );
    let st = &trace.server_stats;
    println!(
        "\nissue breakdown (scaled): {} initial + {} quorum siblings + {} timeout \
         reissues + {} error reissues; {} late results",
        st.initial_issues,
        st.quorum_issues,
        st.timeout_reissues,
        st.error_reissues,
        st.late_results
    );
    session.finish();
}

//! FIG8 — Figure 8: distribution of *realized* workunit run times on the
//! volunteers, against the packaged estimates.
//!
//! The paper: workunits were tuned for 3–4 hours of reference CPU (mean
//! 3 h 18 m 47 s), but the average run time reported by the UD agents was
//! ≈ 13 hours — "this confirms the speed down value 3.96
//! (13 hours / 3.96 = 3h15)".
//!
//! Run: `cargo run -p hcmd-bench --release --bin fig8_realized_runtime [scale] [seed]`

use bench_support::header;
use hcmd::campaign::Phase1Campaign;
use metrics::Histogram;

fn main() {
    let mut args = std::env::args().skip(1);
    let scale: u32 = args.next().and_then(|s| s.parse().ok()).unwrap_or(10);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(2007);
    let session = bench_support::RunSession::start("fig8_realized_runtime", seed, u64::from(scale));
    header("FIG8", "realized workunit run-time distribution");
    println!("simulating at scale 1/{scale} (seed {seed})...\n");
    let report = Phase1Campaign::new(scale, seed).run();

    println!(
        "--- packaged estimates (reference processor): {} ---",
        report.distribution.caption()
    );
    println!(
        "mean {}   (paper: 3h 18m 47s, \"most ... between 3 and 4 hours\")\n",
        report.distribution.mean_hms()
    );

    println!("--- realized run times on volunteers (accounted by the agent) ---");
    let mut hist = Histogram::new(0.0, 48.0 * 3600.0, 24);
    for &r in &report.trace.realized_runtimes {
        hist.record(r as f64);
    }
    println!("{}", hist.render(48));
    let mean_h = report.trace.mean_realized_runtime() / 3600.0;
    println!("mean realized run time : {mean_h:.1} h   (paper ≈ 13 h)");
    let runtimes: Vec<f64> = report
        .trace
        .realized_runtimes
        .iter()
        .map(|&r| r as f64)
        .collect();
    if let Some(p) = metrics::Percentiles::of(&runtimes) {
        println!("percentiles            : {}", p.render_hours());
    }
    let implied = report.trace.mean_realized_runtime() / report.trace.speed_down().net_factor();
    println!(
        "mean / net speed-down  : {:.0} s = {:.0} h {:.0} m  (paper: 13 h / 3.96 = 3 h 15)",
        implied,
        (implied / 3600.0).floor(),
        (implied % 3600.0) / 60.0
    );
    session.finish();
}

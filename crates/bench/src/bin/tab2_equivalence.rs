//! TAB2 — Table 2: equivalence between World Community Grid's virtual
//! full-time processors and dedicated-grid processors.
//!
//! Prints both the paper's own arithmetic (16,450 and 26,248 VFTP over
//! speed-down 5.43 → 3,029 and 4,833 Opterons) and the same table derived
//! from a simulated campaign, plus the §6 closing estimate of the whole
//! grid's power and a dedicated-grid makespan cross-check.
//!
//! Run: `cargo run -p hcmd-bench --release --bin tab2_equivalence [scale] [seed]`

use bench_support::{catalog_and_matrix, header};
use gridsim::DedicatedGrid;
use hcmd::campaign::Phase1Campaign;
use hcmd::config::paper;
use workunit::CampaignPackage;

fn main() {
    let mut args = std::env::args().skip(1);
    let scale: u32 = args.next().and_then(|s| s.parse().ok()).unwrap_or(10);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(2007);
    let session = bench_support::RunSession::start("tab2_equivalence", seed, u64::from(scale));
    header("TAB2", "volunteer vs dedicated grid equivalence");

    println!("--- from the paper's published inputs ---");
    let from_paper = hcmd::table2(
        paper::PROJECT_MEAN_VFTP,
        paper::PROJECT_FULL_POWER_VFTP,
        paper::RAW_SPEED_DOWN,
    );
    println!("{}", from_paper.render());
    println!("paper Table 2: 16,450 → 3,029 and 26,248 → 4,833\n");

    println!("--- from the simulated campaign (scale 1/{scale}, seed {seed}) ---");
    let report = Phase1Campaign::new(scale, seed).run();
    let trace = &report.trace;
    let end = trace.completion_day.unwrap_or(182);
    let measured = hcmd::table2(
        trace.mean_project_vftp(0, end),
        trace.mean_project_vftp(76, end),
        trace.speed_down().raw_factor(),
    );
    println!("{}", measured.render());

    println!("--- §6 closing estimate ---");
    println!(
        "74,825 VFTP (writing week) / net speed-down {:.2} = {:.0} Opteron-2GHz equivalents \
         (paper: 18,895)\n",
        paper::NET_SPEED_DOWN,
        hcmd::Table2::wcg_power_estimate(74_825.0, paper::NET_SPEED_DOWN)
    );

    // Cross-check the equivalence with an actual dedicated-grid schedule:
    // the full-scale campaign on the whole-period equivalent processor
    // count should take about the campaign's length.
    let (library, matrix) = catalog_and_matrix();
    let pkg = CampaignPackage::new(library, matrix, workunit::PRODUCTION_WU_SECONDS);
    let processors = measured.rows[0].dedicated.round() as usize;
    let run = DedicatedGrid::new(processors.max(1)).run_campaign(&pkg);
    println!(
        "cross-check: the full phase-I workload on {} dedicated processors (LPT) takes \
         {:.0} days at {:.1}% utilisation (campaign took {} days on the volunteer grid)",
        processors,
        run.makespan_seconds / 86_400.0,
        run.utilization * 100.0,
        end
    );
    println!(
        "footnote 2 of the paper applies: the comparison assumes the dedicated grid is \
         optimally used."
    );
    session.finish();
}

//! Generates the consolidated markdown campaign report (every §4–§7
//! artifact from one simulated campaign).
//!
//! Run: `cargo run -p hcmd-bench --release --bin full_report [scale] [seed] > REPORT.md`
//!
//! With `--features telemetry` an observability appendix — the live
//! metric table from the run — is printed to *stderr*, so redirected
//! markdown stays clean.

fn main() {
    let mut args = std::env::args().skip(1);
    let scale: u32 = args.next().and_then(|s| s.parse().ok()).unwrap_or(10);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(2007);
    let session = bench_support::RunSession::start("full_report", seed, u64::from(scale));
    print!("{}", hcmd::generate_report(scale, seed));
    if telemetry::ENABLED {
        eprintln!("\n{}", telemetry::summary());
    }
    session.finish();
}

//! Generates the consolidated markdown campaign report (every §4–§7
//! artifact from one simulated campaign).
//!
//! Run: `cargo run -p hcmd-bench --release --bin full_report [scale] [seed] > REPORT.md`

fn main() {
    let mut args = std::env::args().skip(1);
    let scale: u32 = args.next().and_then(|s| s.parse().ok()).unwrap_or(10);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(2007);
    print!("{}", hcmd::generate_report(scale, seed));
}

//! Shared plumbing for the figure/table regeneration binaries.
//!
//! Each binary in `src/bin/` regenerates one artifact of the paper's
//! evaluation (see DESIGN.md's experiment index) and prints it as text:
//! the same rows and series the paper reports, next to the paper's own
//! values where it publishes them. EXPERIMENTS.md records a run of each.

use maxdo::{CostModel, ProteinLibrary};
use std::sync::OnceLock;
use timemodel::CostMatrix;

/// The phase-I catalog and its calibrated compute-time matrix, built once
/// per process (the matrix takes ~100 ms; several binaries need both).
pub fn catalog_and_matrix() -> (&'static ProteinLibrary, &'static CostMatrix) {
    static DATA: OnceLock<(ProteinLibrary, CostMatrix)> = OnceLock::new();
    let (lib, m) = DATA.get_or_init(|| {
        let lib = ProteinLibrary::phase1_catalog();
        let model = CostModel::reference(&lib);
        let m = CostMatrix::from_cost_model(&lib, &model);
        (lib, m)
    });
    (lib, m)
}

/// Renders a numeric series as an ASCII chart: one row per point with a
/// proportional bar — the terminal stand-in for the paper's line plots.
pub fn ascii_series(labels: &[String], values: &[f64], width: usize) -> String {
    assert_eq!(labels.len(), values.len());
    let peak = values.iter().cloned().fold(f64::MIN, f64::max).max(1e-12);
    let mut out = String::new();
    for (label, &v) in labels.iter().zip(values) {
        let bar = "█".repeat(((v / peak) * width as f64).round().max(0.0) as usize);
        out.push_str(&format!("{label:>12} {v:>12.0} {bar}\n"));
    }
    out
}

/// Groups a u64 with thousands separators (`1364476` → `1,364,476`).
pub fn thousands(n: u64) -> String {
    let digits = n.to_string();
    let bytes = digits.as_bytes();
    let mut out = String::with_capacity(digits.len() + digits.len() / 3);
    for (i, b) in bytes.iter().enumerate() {
        if i > 0 && (bytes.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(*b as char);
    }
    out
}

/// Prints the standard experiment header.
pub fn header(id: &str, caption: &str) {
    println!("=== {id}: {caption} ===\n");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thousands_grouping() {
        assert_eq!(thousands(0), "0");
        assert_eq!(thousands(999), "999");
        assert_eq!(thousands(1_364_476), "1,364,476");
    }

    #[test]
    fn ascii_series_scales_bars() {
        let labels = vec!["a".to_string(), "b".to_string()];
        let s = ascii_series(&labels, &[1.0, 2.0], 10);
        let rows: Vec<&str> = s.lines().collect();
        assert_eq!(rows.len(), 2);
        assert!(rows[1].matches('█').count() > rows[0].matches('█').count());
    }

    #[test]
    fn shared_catalog_is_cached() {
        let (a, _) = catalog_and_matrix();
        let (b, _) = catalog_and_matrix();
        assert!(std::ptr::eq(a, b));
    }
}

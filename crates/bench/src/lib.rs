//! Shared plumbing for the figure/table regeneration binaries.
//!
//! Each binary in `src/bin/` regenerates one artifact of the paper's
//! evaluation (see DESIGN.md's experiment index) and prints it as text:
//! the same rows and series the paper reports, next to the paper's own
//! values where it publishes them. EXPERIMENTS.md records a run of each.

use maxdo::{CostModel, ProteinLibrary};
use std::path::PathBuf;
use std::sync::OnceLock;
use std::time::Instant;
use timemodel::CostMatrix;

/// One observed run of a bench binary: opens the JSONL event log, brackets
/// phases, and writes a [`telemetry::RunManifest`] next to the figure
/// output when it finishes.
///
/// With telemetry compiled out every method is a cheap no-op except
/// [`finish`](RunSession::finish), which still writes the manifest — run
/// provenance (seed, scale, git revision, wall-clock) is useful even
/// without counters.
pub struct RunSession {
    manifest: telemetry::RunManifest,
    started: Instant,
}

impl RunSession {
    /// Starts a session: installs `target/telemetry/<bin>.jsonl` as the
    /// event sink (when telemetry is enabled) and emits `RunStart`.
    pub fn start(bin: &str, seed: u64, scale_divisor: u64) -> Self {
        if telemetry::ENABLED {
            let path = PathBuf::from("target/telemetry").join(format!("{bin}.jsonl"));
            if let Err(e) = telemetry::install_jsonl(&path) {
                eprintln!("telemetry: cannot open {}: {e}", path.display());
            } else {
                eprintln!("telemetry: event log -> {}", path.display());
            }
        }
        let manifest = telemetry::RunManifest::new(bin, seed, scale_divisor);
        let (b, s, d) = (manifest.bin.clone(), seed, scale_divisor);
        telemetry::emit(None, move || telemetry::Event::RunStart {
            bin: b,
            seed: s,
            scale_divisor: d,
        });
        Self {
            manifest,
            started: Instant::now(),
        }
    }

    /// Runs `f` inside a named phase span (emits `PhaseStart`/`PhaseEnd`).
    pub fn phase<R>(&self, name: &str, f: impl FnOnce() -> R) -> R {
        let n = name.to_string();
        telemetry::emit(None, move || telemetry::Event::PhaseStart { name: n });
        let t0 = Instant::now();
        let out = f();
        let (n, wall) = (name.to_string(), t0.elapsed().as_secs_f64());
        telemetry::emit(None, move || telemetry::Event::PhaseEnd {
            name: n,
            wall_seconds: wall,
        });
        out
    }

    /// Records the engine-side outcome of a simulated campaign.
    pub fn record_engine(&mut self, events_processed: u64, peak_queue_depth: u64, results: u64) {
        self.manifest.events_processed = events_processed;
        self.manifest.peak_queue_depth = peak_queue_depth;
        let wall = self.started.elapsed().as_secs_f64();
        if wall > 0.0 {
            self.manifest.results_per_second = results as f64 / wall;
        }
    }

    /// Emits `RunEnd`, closes the event log, and writes the manifest to
    /// `target/run-manifests/<bin>.json`.
    pub fn finish(mut self) {
        self.manifest.wall_seconds = self.started.elapsed().as_secs_f64();
        self.manifest.metrics = telemetry::snapshot();
        let (wall, events) = (self.manifest.wall_seconds, self.manifest.events_processed);
        telemetry::emit(None, move || telemetry::Event::RunEnd {
            wall_seconds: wall,
            events_processed: events,
        });
        telemetry::shutdown();
        let path =
            PathBuf::from("target/run-manifests").join(format!("{}.json", self.manifest.bin));
        match self.manifest.write(&path) {
            Ok(()) => eprintln!("telemetry: run manifest -> {}", path.display()),
            Err(e) => eprintln!("telemetry: cannot write {}: {e}", path.display()),
        }
    }
}

/// The phase-I catalog and its calibrated compute-time matrix, built once
/// per process (the matrix takes ~100 ms; several binaries need both).
pub fn catalog_and_matrix() -> (&'static ProteinLibrary, &'static CostMatrix) {
    static DATA: OnceLock<(ProteinLibrary, CostMatrix)> = OnceLock::new();
    let (lib, m) = DATA.get_or_init(|| {
        let lib = ProteinLibrary::phase1_catalog();
        let model = CostModel::reference(&lib);
        let m = CostMatrix::from_cost_model(&lib, &model);
        (lib, m)
    });
    (lib, m)
}

/// Renders a numeric series as an ASCII chart: one row per point with a
/// proportional bar — the terminal stand-in for the paper's line plots.
pub fn ascii_series(labels: &[String], values: &[f64], width: usize) -> String {
    assert_eq!(labels.len(), values.len());
    let peak = values.iter().cloned().fold(f64::MIN, f64::max).max(1e-12);
    let mut out = String::new();
    for (label, &v) in labels.iter().zip(values) {
        let bar = "█".repeat(((v / peak) * width as f64).round().max(0.0) as usize);
        out.push_str(&format!("{label:>12} {v:>12.0} {bar}\n"));
    }
    out
}

/// Groups a u64 with thousands separators (`1364476` → `1,364,476`).
pub fn thousands(n: u64) -> String {
    let digits = n.to_string();
    let bytes = digits.as_bytes();
    let mut out = String::with_capacity(digits.len() + digits.len() / 3);
    for (i, b) in bytes.iter().enumerate() {
        if i > 0 && (bytes.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(*b as char);
    }
    out
}

/// Prints the standard experiment header.
pub fn header(id: &str, caption: &str) {
    println!("=== {id}: {caption} ===\n");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thousands_grouping() {
        assert_eq!(thousands(0), "0");
        assert_eq!(thousands(999), "999");
        assert_eq!(thousands(1_364_476), "1,364,476");
    }

    #[test]
    fn ascii_series_scales_bars() {
        let labels = vec!["a".to_string(), "b".to_string()];
        let s = ascii_series(&labels, &[1.0, 2.0], 10);
        let rows: Vec<&str> = s.lines().collect();
        assert_eq!(rows.len(), 2);
        assert!(rows[1].matches('█').count() > rows[0].matches('█').count());
    }

    #[test]
    fn shared_catalog_is_cached() {
        let (a, _) = catalog_and_matrix();
        let (b, _) = catalog_and_matrix();
        assert!(std::ptr::eq(a, b));
    }
}

//! One-shot campaign report: every §4–§7 artifact in a single markdown
//! document.
//!
//! [`generate_report`] runs the calibration, the packaging, the campaign
//! simulation and the closing analyses, and renders them as the markdown
//! report a project operator would circulate — the repository's
//! equivalent of the paper's evaluation section, regenerated from one
//! seed.

use crate::campaign::Phase1Campaign;
use crate::phase2::Phase2Assumptions;
use crate::phases::{phase_summaries, render_phase_table};
use gridsim::ProjectPhases;
use metrics::Percentiles;

/// Runs the full pipeline and renders the markdown report.
pub fn generate_report(scale_divisor: u32, seed: u64) -> String {
    let campaign = Phase1Campaign::new(scale_divisor, seed);
    let report = campaign.run();
    let trace = &report.trace;
    let end = trace.completion_day.unwrap_or(182);
    let sd = trace.speed_down();

    let mut out = String::with_capacity(8 * 1024);
    out.push_str(&format!(
        "# HCMD phase I — simulated campaign report\n\n\
         seed {seed}, scale 1/{scale_divisor}. All volunteer-grid quantities are scaled\n\
         back to full scale; compute times are reference-processor (Opteron 2 GHz)\n\
         seconds.\n\n"
    ));

    out.push_str("## Table 1 — computation-time matrix\n\n```text\n");
    out.push_str(&report.table1.render());
    out.push_str("\n```\n\n");

    out.push_str("## Packaging (§4.2)\n\n");
    out.push_str(&format!(
        "- {}\n- mean estimated workunit: {}\n- over-target (irreducible) units: {}\n\n",
        report.distribution.caption(),
        report.distribution.mean_hms(),
        report.distribution.over_target,
    ));

    out.push_str("## Campaign (§5–§6)\n\n```text\n");
    out.push_str(&report.render_summary());
    out.push_str("\n```\n\n### Phases (Figure 6a)\n\n```text\n");
    out.push_str(&render_phase_table(&phase_summaries(
        trace,
        &ProjectPhases::hcmd_phase1(),
    )));
    out.push_str("```\n\n");

    let runtimes: Vec<f64> = trace.realized_runtimes.iter().map(|&r| r as f64).collect();
    if let Some(p) = Percentiles::of(&runtimes) {
        out.push_str(&format!(
            "### Realized workunit run times (Figure 8)\n\n- {}\n\n",
            p.render_hours()
        ));
    }

    let st = &trace.server_stats;
    out.push_str(&format!(
        "### Server issue accounting\n\n\
         | cause | replicas |\n|---|---|\n\
         | initial issues | {} |\n| quorum siblings | {} |\n\
         | timeout reissues | {} |\n| error reissues | {} |\n\
         | late results | {} |\n\n",
        st.initial_issues,
        st.quorum_issues,
        st.timeout_reissues,
        st.error_reissues,
        st.late_results
    ));

    out.push_str("## Table 2 — volunteer vs dedicated grid\n\n```text\n");
    let t2 = crate::table2(
        trace.mean_project_vftp(0, end),
        trace.mean_project_vftp(76, end),
        sd.raw_factor(),
    );
    out.push_str(&t2.render());
    out.push_str("```\n\n");

    out.push_str("## Table 3 — phase II projection (§7)\n\n```text\n");
    let assumptions = Phase2Assumptions::paper().with_measured_phase1(
        trace.consumed_cpu_seconds() * scale_divisor as f64,
        crate::config::paper::PHASE1_WEEKS,
    );
    let projection = assumptions.project();
    out.push_str(&projection.render_table3(&assumptions));
    out.push_str("```\n\n");
    out.push_str(&format!(
        "- at the phase-I rate phase II takes {:.0} weeks; {:.0} VFTP finish it in 40\n\
         - membership needed at a 25 % share: {:.2} M ({:.2} M new volunteers)\n",
        projection.weeks_at_phase1_rate,
        projection.phase2_vftp,
        projection.wcg_members_needed / 1e6,
        projection.new_members_needed / 1e6,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_contains_every_section() {
        let text = generate_report(400, 7);
        for needle in [
            "# HCMD phase I",
            "## Table 1",
            "## Packaging",
            "## Campaign",
            "### Phases",
            "### Server issue accounting",
            "## Table 2",
            "## Table 3",
        ] {
            assert!(text.contains(needle), "missing section {needle}");
        }
    }

    #[test]
    fn report_is_deterministic() {
        assert_eq!(generate_report(400, 7), generate_report(400, 7));
    }
}

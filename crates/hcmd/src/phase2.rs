//! §7 — the phase-II projection (Table 3).
//!
//! The scientists plan to dock ~4,000 proteins in phase II, using
//! evolutionary information to cut the number of docking points by a
//! factor of 100. Because the total work grows with the square of the
//! protein count (formula (1)), phase II is `4000² / (168² · 100) ≈ 5.66`
//! times phase I. The paper then answers three questions:
//!
//! 1. how long would it take if the grid behaves like phase I? → 90 weeks;
//! 2. how many VFTP finish it in 40 weeks? → 59,730 (Table 3);
//! 3. how many members is that, given HCMD would get 25 % of a grid that
//!    will host three other projects? → ~1.3 million members, i.e. nearly
//!    a million new volunteers.

use metrics::SECONDS_PER_WEEK;
use serde::Serialize;

/// The assumptions of the §7 projection.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct Phase2Assumptions {
    /// Proteins in phase I.
    pub phase1_proteins: usize,
    /// Proteins targeted in phase II.
    pub phase2_proteins: usize,
    /// Docking-point reduction factor from evolutionary information.
    pub reduction_factor: f64,
    /// Phase-I consumed CPU seconds (run-time accounted by the grid).
    pub phase1_cpu_seconds: f64,
    /// Effective full-rate weeks of phase I (Table 3 uses 16: the campaign
    /// normalised to its steady rate).
    pub phase1_weeks: f64,
    /// Phase-I member count behind that rate.
    pub phase1_members: f64,
    /// Target duration for phase II, weeks.
    pub phase2_weeks: f64,
    /// Current WCG membership (§7: ~325,000).
    pub wcg_members: f64,
    /// VFTP the current membership generates (§7: ~60,000).
    pub wcg_member_vftp: f64,
    /// Share of the grid HCMD will get during phase II (§7: 25 %).
    pub phase2_share: f64,
}

impl Phase2Assumptions {
    /// The paper's published assumptions.
    pub fn paper() -> Self {
        use crate::config::paper;
        Self {
            phase1_proteins: paper::PROTEIN_COUNT,
            phase2_proteins: paper::PHASE2_PROTEINS,
            reduction_factor: paper::PHASE2_REDUCTION,
            phase1_cpu_seconds: paper::PHASE1_CPU_SECONDS,
            phase1_weeks: paper::PHASE1_WEEKS,
            phase1_members: paper::PHASE1_MEMBERS,
            phase2_weeks: paper::PHASE2_WEEKS,
            wcg_members: paper::WCG_MEMBERS,
            wcg_member_vftp: paper::WCG_MEMBER_VFTP,
            phase2_share: paper::PHASE2_SHARE,
        }
    }

    /// The same assumptions but with the phase-I cost taken from a
    /// *measured* campaign (consumed CPU seconds at full scale), so the
    /// projection can be regenerated from the simulator instead of the
    /// paper's constants.
    pub fn with_measured_phase1(mut self, consumed_cpu_seconds: f64, weeks: f64) -> Self {
        self.phase1_cpu_seconds = consumed_cpu_seconds;
        self.phase1_weeks = weeks;
        self
    }
}

/// The derived projection (Table 3 plus the §7 narrative numbers).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct Phase2Projection {
    /// Work ratio phase II / phase I.
    pub work_ratio: f64,
    /// Phase-II CPU seconds.
    pub phase2_cpu_seconds: f64,
    /// Phase-I VFTP (from its CPU total and weeks).
    pub phase1_vftp: f64,
    /// Weeks phase II takes at the phase-I rate.
    pub weeks_at_phase1_rate: f64,
    /// VFTP needed to finish phase II in the target weeks.
    pub phase2_vftp: f64,
    /// Members generating that VFTP (at the phase-I members-per-VFTP).
    pub phase2_members: f64,
    /// Total WCG members needed when HCMD only gets its §7 share.
    pub wcg_members_needed: f64,
    /// New volunteers to recruit.
    pub new_members_needed: f64,
}

impl Phase2Assumptions {
    /// Derives the projection.
    pub fn project(&self) -> Phase2Projection {
        assert!(self.reduction_factor > 0.0 && self.phase2_weeks > 0.0);
        let work_ratio = (self.phase2_proteins as f64).powi(2)
            / ((self.phase1_proteins as f64).powi(2) * self.reduction_factor);
        let phase2_cpu_seconds = self.phase1_cpu_seconds * work_ratio;
        let phase1_vftp = self.phase1_cpu_seconds / (self.phase1_weeks * SECONDS_PER_WEEK);
        let weeks_at_phase1_rate = self.phase1_weeks * work_ratio;
        let phase2_vftp = phase2_cpu_seconds / (self.phase2_weeks * SECONDS_PER_WEEK);
        // Members per VFTP from the phase-I anchor.
        let members_per_vftp = self.phase1_members / phase1_vftp;
        let phase2_members = phase2_vftp * members_per_vftp;
        // Members the *whole grid* needs so that HCMD's share suffices,
        // using the §7 whole-grid anchor (325,000 members ↔ 60,000 VFTP).
        let grid_members_per_vftp = self.wcg_members / self.wcg_member_vftp;
        let wcg_members_needed = phase2_vftp / self.phase2_share * grid_members_per_vftp;
        Phase2Projection {
            work_ratio,
            phase2_cpu_seconds,
            phase1_vftp,
            weeks_at_phase1_rate,
            phase2_vftp,
            phase2_members,
            wcg_members_needed,
            new_members_needed: (wcg_members_needed - self.wcg_members).max(0.0),
        }
    }
}

impl Phase2Projection {
    /// Renders Table 3 in the paper's layout.
    pub fn render_table3(&self, assumptions: &Phase2Assumptions) -> String {
        format!(
            "{:<34} {:>18} {:>18}\n\
             {:<34} {:>18.0} {:>18.0}\n\
             {:<34} {:>18.0} {:>18.0}\n\
             {:<34} {:>18.0} {:>18.0}\n\
             {:<34} {:>18.0} {:>18.0}\n",
            "",
            "HCMD phase I",
            "HCMD phase II",
            "cpu time in s",
            assumptions.phase1_cpu_seconds,
            self.phase2_cpu_seconds,
            "Nb weeks",
            assumptions.phase1_weeks,
            assumptions.phase2_weeks,
            "Nb virtual full-time processors",
            self.phase1_vftp,
            self.phase2_vftp,
            "Nb members",
            assumptions.phase1_members,
            self.phase2_members,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::paper;

    #[test]
    fn table3_is_reproduced_from_the_papers_assumptions() {
        let a = Phase2Assumptions::paper();
        let p = a.project();
        assert!((p.work_ratio - paper::PHASE2_WORK_RATIO).abs() < 0.01);
        assert!(
            (p.phase2_cpu_seconds - paper::PHASE2_CPU_SECONDS).abs() / paper::PHASE2_CPU_SECONDS
                < 0.002
        );
        assert!(
            (p.phase1_vftp - paper::PHASE1_VFTP).abs() < 5.0,
            "{}",
            p.phase1_vftp
        );
        assert!(
            (p.phase2_vftp - paper::PHASE2_VFTP).abs() < 15.0,
            "{}",
            p.phase2_vftp
        );
        assert!(
            (p.phase2_members - paper::PHASE2_MEMBERS).abs() < 200.0,
            "{}",
            p.phase2_members
        );
    }

    #[test]
    fn ninety_weeks_at_phase1_rate() {
        let p = Phase2Assumptions::paper().project();
        assert!(
            (p.weeks_at_phase1_rate - 90.0).abs() < 1.5,
            "weeks {}",
            p.weeks_at_phase1_rate
        );
    }

    #[test]
    fn membership_targets_match_the_narrative() {
        // §7: "the HCMD project needs 1,300,000 World Community Grid
        // members ... nearly 1,000,000 new volunteers".
        let p = Phase2Assumptions::paper().project();
        assert!(
            (1.2e6..1.4e6).contains(&p.wcg_members_needed),
            "members needed {}",
            p.wcg_members_needed
        );
        assert!(
            (0.85e6..1.1e6).contains(&p.new_members_needed),
            "new members {}",
            p.new_members_needed
        );
    }

    #[test]
    fn measured_phase1_override() {
        let a =
            Phase2Assumptions::paper().with_measured_phase1(2.0 * paper::PHASE1_CPU_SECONDS, 16.0);
        let p = a.project();
        assert!(
            (p.phase2_vftp / Phase2Assumptions::paper().project().phase2_vftp - 2.0).abs() < 1e-9
        );
    }

    #[test]
    fn render_contains_all_rows() {
        let a = Phase2Assumptions::paper();
        let text = a.project().render_table3(&a);
        for needle in [
            "cpu time in s",
            "Nb weeks",
            "Nb virtual full-time processors",
            "Nb members",
        ] {
            assert!(text.contains(needle));
        }
    }
}

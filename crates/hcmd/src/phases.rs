//! Per-period analysis of a campaign trace — the numbers under
//! Figure 6(a).
//!
//! §5.1 reads three periods off the VFTP curve (control, prioritization,
//! full power) and reports the project's average processor counts over the
//! whole period (16,450) and over the full-power phase (26,248). This
//! module computes those summaries from a simulated trace and the phase
//! definitions.

use gridsim::{CampaignTrace, ProjectPhases};
use serde::Serialize;

/// Mean VFTP of one named campaign phase.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct PhaseSummary {
    /// Phase name (from [`ProjectPhases`]).
    pub name: &'static str,
    /// Day range `[start, end)` of the phase, clipped to the campaign.
    pub days: (usize, usize),
    /// Mean project VFTP over the phase, full scale.
    pub mean_project_vftp: f64,
    /// Mean grid VFTP over the phase, full scale.
    pub mean_grid_vftp: f64,
    /// The project's share of the grid's computing (from the VFTP means).
    pub observed_share: f64,
}

/// Summarises every declared phase of the campaign plus the whole period.
pub fn phase_summaries(trace: &CampaignTrace, phases: &ProjectPhases) -> Vec<PhaseSummary> {
    let campaign_end = trace
        .completion_day
        .map(|d| d + 1)
        .unwrap_or_else(|| trace.project_cpu_daily.len())
        .max(1);
    let mut out = Vec::new();
    for p in phases.phases() {
        let start = p.start_day.min(campaign_end);
        let end = (p.start_day + p.days).min(campaign_end);
        if end <= start {
            continue;
        }
        out.push(summary_for(trace, p.name, start, end));
    }
    out.push(summary_for(trace, "whole period", 0, campaign_end));
    out
}

fn summary_for(
    trace: &CampaignTrace,
    name: &'static str,
    start: usize,
    end: usize,
) -> PhaseSummary {
    let mean_project_vftp = trace.mean_project_vftp(start, end);
    let grid: Vec<f64> = trace.grid_vftp_daily();
    let mean_grid_vftp =
        grid.iter().skip(start).take(end - start).sum::<f64>() / (end - start).max(1) as f64;
    PhaseSummary {
        name,
        days: (start, end),
        mean_project_vftp,
        mean_grid_vftp,
        observed_share: if mean_grid_vftp > 0.0 {
            mean_project_vftp / mean_grid_vftp
        } else {
            0.0
        },
    }
}

/// Renders the summaries as an aligned table.
pub fn render_phase_table(summaries: &[PhaseSummary]) -> String {
    let mut s = format!(
        "{:<28} {:>12} {:>14} {:>12} {:>8}\n",
        "phase", "days", "project vftp", "grid vftp", "share"
    );
    for p in summaries {
        s.push_str(&format!(
            "{:<28} {:>5}..{:<5} {:>14.0} {:>12.0} {:>7.0}%\n",
            p.name,
            p.days.0,
            p.days.1,
            p.mean_project_vftp,
            p.mean_grid_vftp,
            p.observed_share * 100.0
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridsim::SharePhase;
    use metrics::DailySeries;

    fn trace_with_ramp() -> CampaignTrace {
        let mut project = DailySeries::new();
        let mut grid = DailySeries::new();
        for day in 0..20 {
            let share = if day < 10 { 0.1 } else { 0.5 };
            grid.add(day, 1000.0 * 86_400.0);
            project.add(day, share * 1000.0 * 86_400.0);
        }
        CampaignTrace {
            scale_divisor: 1,
            project_cpu_daily: project,
            grid_cpu_daily: grid,
            results_daily: DailySeries::new(),
            useful_results_daily: DailySeries::new(),
            realized_runtimes: Vec::new(),
            credit: gridsim::CreditLedger::new(),
            receptor_total: vec![1.0],
            receptor_wu_total: vec![1],
            snapshots: Vec::new(),
            completion_day: Some(19),
            results_received: 0,
            results_useful: 0,
            server_stats: gridsim::ServerStats::default(),
            reference_total_seconds: 1.0,
            events_processed: 0,
            peak_queue_depth: 0,
        }
    }

    fn two_phases() -> ProjectPhases {
        ProjectPhases::new(vec![
            SharePhase {
                start_day: 0,
                share_start: 0.1,
                share_end: 0.1,
                days: 10,
                name: "low",
            },
            SharePhase {
                start_day: 10,
                share_start: 0.5,
                share_end: 0.5,
                days: 10,
                name: "high",
            },
        ])
    }

    #[test]
    fn per_phase_means_are_separated() {
        let summaries = phase_summaries(&trace_with_ramp(), &two_phases());
        assert_eq!(summaries.len(), 3);
        let low = &summaries[0];
        let high = &summaries[1];
        let whole = &summaries[2];
        assert_eq!(low.name, "low");
        assert!((low.mean_project_vftp - 100.0).abs() < 1e-9);
        assert!((high.mean_project_vftp - 500.0).abs() < 1e-9);
        assert_eq!(whole.name, "whole period");
        assert!((whole.mean_project_vftp - 300.0).abs() < 1e-9);
    }

    #[test]
    fn observed_share_matches_construction() {
        let summaries = phase_summaries(&trace_with_ramp(), &two_phases());
        assert!((summaries[0].observed_share - 0.1).abs() < 1e-9);
        assert!((summaries[1].observed_share - 0.5).abs() < 1e-9);
    }

    #[test]
    fn phases_clip_to_campaign_end() {
        let mut t = trace_with_ramp();
        t.completion_day = Some(14); // campaign ends mid-phase
        let summaries = phase_summaries(&t, &two_phases());
        assert_eq!(summaries[1].days, (10, 15));
        assert_eq!(summaries.last().unwrap().days, (0, 15));
    }

    #[test]
    fn render_contains_phase_names() {
        let text = render_phase_table(&phase_summaries(&trace_with_ramp(), &two_phases()));
        assert!(text.contains("low"));
        assert!(text.contains("high"));
        assert!(text.contains("whole period"));
    }
}

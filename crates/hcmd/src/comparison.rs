//! Table 2 — equivalence between the volunteer grid and a dedicated grid.
//!
//! §6: "Table 2 represents the equivalence between the average number of
//! virtual full-time processors which were consumed during the HCMD project
//! and the number of processors which would be necessary on a dedicated
//! grid such as Grid'5000." The conversion divides the volunteer VFTP by
//! the measured speed-down factor (16,450 / 5.43 ≈ 3,029;
//! 26,248 / 5.43 ≈ 4,833), with the paper's caveat that it assumes the
//! dedicated grid is optimally used.

use serde::Serialize;

/// One row of Table 2.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Table2Row {
    /// Period label.
    pub period: &'static str,
    /// Volunteer-grid VFTP over the period.
    pub wcg_vftp: f64,
    /// Equivalent dedicated reference processors.
    pub dedicated: f64,
}

/// Table 2: whole-period and full-power equivalences.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Table2 {
    /// The speed-down factor used for the conversion.
    pub speed_down: f64,
    /// The two periods of the paper's table.
    pub rows: Vec<Table2Row>,
}

/// Builds Table 2 from measured VFTP averages and the speed-down factor.
pub fn table2(whole_period_vftp: f64, full_power_vftp: f64, speed_down: f64) -> Table2 {
    assert!(speed_down > 0.0, "speed-down must be positive");
    Table2 {
        speed_down,
        rows: vec![
            Table2Row {
                period: "whole period",
                wcg_vftp: whole_period_vftp,
                dedicated: metrics::vftp::dedicated_equivalent(whole_period_vftp, speed_down),
            },
            Table2Row {
                period: "full power working phase",
                wcg_vftp: full_power_vftp,
                dedicated: metrics::vftp::dedicated_equivalent(full_power_vftp, speed_down),
            },
        ],
    }
}

impl Table2 {
    /// Renders in the paper's layout.
    pub fn render(&self) -> String {
        let mut s = format!(
            "{:<26} {:>14} {:>16}\n",
            "Grid", "whole period", "full power phase"
        );
        s.push_str(&format!(
            "{:<26} {:>14.0} {:>16.0}\n",
            "World Community Grid", self.rows[0].wcg_vftp, self.rows[1].wcg_vftp
        ));
        s.push_str(&format!(
            "{:<26} {:>14.0} {:>16.0}\n",
            "Dedicated Grid", self.rows[0].dedicated, self.rows[1].dedicated
        ));
        s
    }

    /// The §6 closing estimate: the whole grid's current dedicated-grid
    /// equivalent (74,825 VFTP / 3.96 ≈ 18,895 Opterons).
    pub fn wcg_power_estimate(grid_vftp: f64, net_speed_down: f64) -> f64 {
        metrics::vftp::dedicated_equivalent(grid_vftp, net_speed_down)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::paper;

    #[test]
    fn papers_table2_is_reproduced_from_its_inputs() {
        let t = table2(
            paper::PROJECT_MEAN_VFTP,
            paper::PROJECT_FULL_POWER_VFTP,
            paper::RAW_SPEED_DOWN,
        );
        assert!((t.rows[0].dedicated - paper::DEDICATED_WHOLE_PERIOD).abs() < 2.0);
        assert!((t.rows[1].dedicated - paper::DEDICATED_FULL_POWER).abs() < 2.0);
    }

    #[test]
    fn render_has_the_papers_shape() {
        let t = table2(16_450.0, 26_248.0, 5.43);
        let text = t.render();
        assert!(text.contains("World Community Grid"));
        assert!(text.contains("Dedicated Grid"));
        assert!(text.contains("16450"));
        assert!(text.contains("3029") || text.contains("3030"));
    }

    #[test]
    fn closing_power_estimate() {
        let est = Table2::wcg_power_estimate(74_825.0, paper::NET_SPEED_DOWN);
        assert!((est - 18_895.0).abs() < 10.0, "estimate {est}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_speed_down_rejected() {
        table2(1.0, 1.0, 0.0);
    }
}

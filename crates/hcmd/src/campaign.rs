//! The end-to-end phase-I campaign.
//!
//! [`Phase1Campaign`] strings the whole pipeline together exactly as the
//! paper did:
//!
//! 1. assemble the 168-protein target set (§2.1);
//! 2. calibrate the compute-time matrix on the dedicated grid (§4.1);
//! 3. package the workload into workunits at the production duration
//!    (§4.2, h = 4 h per Figure 8);
//! 4. launch on the volunteer grid, cheapest protein first (§5.1);
//! 5. account everything the evaluation reports (§5–§6).
//!
//! Scaled runs divide `Nsep` and the host population by the same factor,
//! preserving every intensive quantity (see `gridsim`).

use gridsim::{CampaignTrace, VolunteerGridConfig, VolunteerGridSim};
use maxdo::{CostModel, ProteinLibrary};
use metrics::Ydhms;
use timemodel::{CostMatrix, Table1};
use workunit::{CampaignPackage, DistributionReport};

/// A configured phase-I campaign.
#[derive(Debug, Clone)]
pub struct Phase1Campaign {
    /// Scale divisor (1 = full scale; 10–100 for quick runs).
    pub scale_divisor: u32,
    /// Master seed.
    pub seed: u64,
    /// Target workunit duration, seconds (production value: 4 h).
    pub h_seconds: f64,
}

/// Everything a campaign run produces.
#[derive(Debug, Clone)]
pub struct Phase1Report {
    /// Scale the run used.
    pub scale_divisor: u32,
    /// Table 1 of the (full-scale) calibration.
    pub table1: Table1,
    /// Workunit-distribution report of the (scaled) packaging.
    pub distribution: DistributionReport,
    /// The simulated campaign trace.
    pub trace: CampaignTrace,
}

impl Phase1Campaign {
    /// A campaign at the given scale with the production workunit duration.
    pub fn new(scale_divisor: u32, seed: u64) -> Self {
        assert!(scale_divisor >= 1, "scale divisor must be at least 1");
        Self {
            scale_divisor,
            seed,
            h_seconds: workunit::PRODUCTION_WU_SECONDS,
        }
    }

    /// Runs the campaign end to end.
    pub fn run(&self) -> Phase1Report {
        // §2.1 + §4.1: target set and calibrated compute-time matrix
        // (always calibrated at full scale — scaling only thins the
        // starting positions, not the per-position costs).
        let full_library = ProteinLibrary::phase1_catalog();
        let model = CostModel::reference(&full_library);
        let matrix = CostMatrix::from_cost_model(&full_library, &model);
        let table1 = timemodel::table1(&full_library, &matrix);

        // §4.2: package the (possibly scaled) workload.
        let library = full_library.with_scaled_nsep(self.scale_divisor);
        let pkg = CampaignPackage::new(&library, &matrix, self.h_seconds);
        let distribution = workunit::distribution_report(&pkg);

        // §5: run on the volunteer grid.
        let config = VolunteerGridConfig::hcmd_phase1(self.scale_divisor, self.seed);
        let trace = VolunteerGridSim::new(&pkg, config).run();

        Phase1Report {
            scale_divisor: self.scale_divisor,
            table1,
            distribution,
            trace,
        }
    }
}

impl Phase1Report {
    /// The campaign's consumed CPU time scaled back to full scale.
    pub fn consumed_full_scale(&self) -> Ydhms {
        Ydhms::from_seconds_f64(self.trace.consumed_cpu_seconds() * self.scale_divisor as f64)
    }

    /// Renders the §5/§6 headline summary next to the paper's values.
    pub fn render_summary(&self) -> String {
        let sd = self.trace.speed_down();
        let end = self
            .trace
            .completion_day
            .unwrap_or(crate::config::paper::CAMPAIGN_WEEKS * 7);
        format!(
            "HCMD phase I (scale 1/{})\n\
             reference workload  : {}  (paper 1,488:237:19:45:54)\n\
             consumed cpu time   : {}  (paper 8,082:275:17:15:44)\n\
             campaign length     : {} days  (paper {} days)\n\
             results received    : {}  (paper 5,418,010)\n\
             useful results      : {}  (paper 3,936,010)\n\
             redundancy factor   : {:.2}  (paper 1.37)\n\
             raw speed-down      : {:.2}  (paper 5.43)\n\
             net speed-down      : {:.2}  (paper 3.96)\n\
             mean realized wu    : {:.1} h  (paper ~13 h)\n\
             mean project vftp   : {:.0}  (paper 16,450)",
            self.scale_divisor,
            Ydhms::from_seconds_f64(self.trace.reference_total_seconds * self.scale_divisor as f64),
            self.consumed_full_scale(),
            end,
            crate::config::paper::CAMPAIGN_WEEKS * 7,
            self.trace.results_received * self.scale_divisor as u64,
            self.trace.results_useful * self.scale_divisor as u64,
            self.trace.redundancy_factor(),
            sd.raw_factor(),
            sd.net_factor(),
            self.trace.mean_realized_runtime() / 3600.0,
            self.trace.mean_project_vftp(0, end),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::paper;

    /// One shared small-scale campaign for the assertions below (running
    /// it once keeps the test suite fast). Scale 1/100 exercises the whole
    /// pipeline; the scale distortion on redundancy/speed-down is a little
    /// larger than at the bench's 1/10 scale, so the bands here are wider
    /// than EXPERIMENTS.md's.
    fn report() -> &'static Phase1Report {
        use std::sync::OnceLock;
        static REPORT: OnceLock<Phase1Report> = OnceLock::new();
        REPORT.get_or_init(|| Phase1Campaign::new(100, 2007).run())
    }

    #[test]
    fn campaign_completes_within_the_papers_timescale() {
        let day = report().trace.completion_day.expect("completes");
        // 26 weeks ± 25 % — the tail at 1/200 scale is noisier than at
        // 1/10, but the order of magnitude must hold.
        assert!((130..=230).contains(&day), "completion day {day}");
    }

    #[test]
    fn redundancy_lands_near_1_37() {
        let r = report().trace.redundancy_factor();
        assert!(
            (r - paper::REDUNDANCY_FACTOR).abs() < 0.25,
            "redundancy {r}"
        );
    }

    #[test]
    fn speed_down_lands_near_the_papers_factors() {
        let sd = report().trace.speed_down();
        assert!(
            (sd.raw_factor() - paper::RAW_SPEED_DOWN).abs() < 0.8,
            "raw {}",
            sd.raw_factor()
        );
        assert!(
            (sd.net_factor() - paper::NET_SPEED_DOWN).abs() < 0.7,
            "net {}",
            sd.net_factor()
        );
    }

    #[test]
    fn table1_embedded_in_the_report_matches_the_paper() {
        let t1 = &report().table1;
        assert!((t1.summary.mean - paper::MCT_MEAN).abs() < 1.0);
        assert!((t1.summary.median - paper::MCT_MEDIAN).abs() / paper::MCT_MEDIAN < 0.1);
    }

    #[test]
    fn summary_renders_every_headline() {
        let s = report().render_summary();
        for needle in [
            "reference workload",
            "redundancy factor",
            "net speed-down",
            "paper 5.43",
        ] {
            assert!(s.contains(needle), "missing {needle} in summary:\n{s}");
        }
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_scale_rejected() {
        Phase1Campaign::new(0, 1);
    }
}

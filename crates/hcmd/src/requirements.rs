//! The §3.2 "Needs and requirement" checklist.
//!
//! "Scientific projects must meet three basic technological requirements
//! to ensure benefits from World Community Grid computing power:
//! \[1\] Projects should have a need for millions of cpu hours ...
//! \[2\] the computations should be such that they can be subdivided into
//! many smaller independent computations.
//! \[3\] if very large amounts of data are required, there should also be a
//! way to partition the data into sufficiently small units ..."
//!
//! plus the two operational guidelines: workunits around 10 hours, and a
//! per-workunit payload small enough for volunteer links ("the 2 proteins
//! files + program + parameters (no more than 2 Mo)").
//!
//! [`RequirementsReport::evaluate`] runs the checklist against a packaged
//! campaign — the admission review the World Community Grid advisory board
//! performs on a proposal.

use maxdo::ProteinLibrary;
use serde::Serialize;
use timemodel::CostMatrix;
use workunit::CampaignPackage;

/// Size budget for one workunit's payload, bytes (§4.1: "no more than
/// 2 Mo").
pub const PAYLOAD_BUDGET_BYTES: f64 = 2.0 * 1024.0 * 1024.0;

/// Approximate bytes per bead of a reduced-model protein file (position,
/// type, charge in text form).
pub const BYTES_PER_BEAD: f64 = 48.0;

/// Size of the MAXDo program binary shipped with each workunit, bytes.
pub const PROGRAM_BYTES: f64 = 1.2 * 1024.0 * 1024.0;

/// One requirement's verdict.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Requirement {
    /// Short name.
    pub name: &'static str,
    /// Measured value, human units.
    pub measured: String,
    /// Whether the requirement is met.
    pub satisfied: bool,
}

/// The §3.2 admission review of a campaign.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct RequirementsReport {
    /// The individual checks.
    pub requirements: Vec<Requirement>,
}

impl RequirementsReport {
    /// Evaluates the checklist for a packaged campaign.
    pub fn evaluate(
        library: &ProteinLibrary,
        matrix: &CostMatrix,
        pkg: &CampaignPackage<'_>,
    ) -> Self {
        let mut requirements = Vec::new();

        // 1. Millions of CPU hours.
        let total_hours = timemodel::total_cpu_seconds(library, matrix) / 3600.0;
        requirements.push(Requirement {
            name: "needs millions of cpu hours",
            measured: format!("{:.1} M cpu hours", total_hours / 1e6),
            satisfied: total_hours >= 1e6,
        });

        // 2. Subdividable into many independent computations.
        let count = pkg.count();
        requirements.push(Requirement {
            name: "subdividable into many independent pieces",
            measured: format!("{count} independent workunits"),
            satisfied: count >= 100_000,
        });

        // 3. Data partitions into small units: the largest workunit
        // payload (two protein files + program + parameters) fits the
        // 2 MB budget.
        let max_beads = library
            .proteins()
            .iter()
            .map(|p| p.bead_count())
            .max()
            .unwrap_or(0) as f64;
        let worst_payload = 2.0 * max_beads * BYTES_PER_BEAD + PROGRAM_BYTES + 4096.0;
        requirements.push(Requirement {
            name: "data partitions into small units (≤ 2 MB/workunit)",
            measured: format!("worst payload {:.2} MB", worst_payload / 1024.0 / 1024.0),
            satisfied: worst_payload <= PAYLOAD_BUDGET_BYTES,
        });

        // Guideline: workunits of roughly the target duration (the mean
        // estimate within a factor 2 of h).
        let rep = workunit::distribution_report(pkg);
        requirements.push(Requirement {
            name: "workunits near the target duration",
            measured: format!(
                "mean {} for a {:.0} h target",
                rep.mean_hms(),
                pkg.h_seconds / 3600.0
            ),
            satisfied: rep.mean_seconds >= pkg.h_seconds / 2.0
                && rep.mean_seconds <= pkg.h_seconds * 2.0,
        });

        Self { requirements }
    }

    /// Whether every requirement passed.
    pub fn admitted(&self) -> bool {
        self.requirements.iter().all(|r| r.satisfied)
    }

    /// Renders the checklist.
    pub fn render(&self) -> String {
        let mut s = String::new();
        for r in &self.requirements {
            s.push_str(&format!(
                "[{}] {:<48} {}\n",
                if r.satisfied { "ok" } else { "!!" },
                r.name,
                r.measured
            ));
        }
        s.push_str(if self.admitted() {
            "verdict: admissible to World Community Grid\n"
        } else {
            "verdict: NOT admissible as configured\n"
        });
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maxdo::CostModel;
    use std::sync::OnceLock;

    fn phase1() -> &'static (ProteinLibrary, CostMatrix) {
        static DATA: OnceLock<(ProteinLibrary, CostMatrix)> = OnceLock::new();
        DATA.get_or_init(|| {
            let lib = ProteinLibrary::phase1_catalog();
            let m = CostMatrix::from_cost_model(&lib, &CostModel::reference(&lib));
            (lib, m)
        })
    }

    #[test]
    fn phase1_satisfies_all_requirements() {
        let (lib, m) = phase1();
        let pkg = CampaignPackage::new(lib, m, workunit::PRODUCTION_WU_SECONDS);
        let report = RequirementsReport::evaluate(lib, m, &pkg);
        assert!(report.admitted(), "{}", report.render());
        // The paper's own framing: "more than 14 centuries" of CPU ⇒
        // thousands of millions of hours? No: 1,488 years ≈ 13 M hours.
        assert!(report.requirements[0].measured.contains("13."));
    }

    #[test]
    fn tiny_project_is_rejected() {
        // A 3-protein toy workload fails the millions-of-hours bar — the
        // advisory board would not admit it.
        let lib = ProteinLibrary::generate(maxdo::LibraryConfig::tiny(3), 5);
        let m = CostMatrix::from_cost_model(&lib, &CostModel::with_kappa(0.01));
        let pkg = CampaignPackage::new(&lib, &m, 600.0);
        let report = RequirementsReport::evaluate(&lib, &m, &pkg);
        assert!(!report.admitted());
        assert!(!report.requirements[0].satisfied);
    }

    #[test]
    fn render_lists_every_requirement() {
        let (lib, m) = phase1();
        let pkg = CampaignPackage::new(lib, m, workunit::PRODUCTION_WU_SECONDS);
        let text = RequirementsReport::evaluate(lib, m, &pkg).render();
        assert_eq!(
            text.matches("[ok]").count() + text.matches("[!!]").count(),
            4
        );
        assert!(text.contains("verdict"));
    }

    #[test]
    fn oversized_payload_fails_partitioning() {
        // The ideal-h packaging still passes; the data check is about
        // protein size, independent of h. Force a failure via the budget.
        let (lib, _) = phase1();
        let max_beads = lib.proteins().iter().map(|p| p.bead_count()).max().unwrap() as f64;
        let worst = 2.0 * max_beads * BYTES_PER_BEAD + PROGRAM_BYTES + 4096.0;
        assert!(
            worst <= PAYLOAD_BUDGET_BYTES,
            "phase-1 payload {worst} B fits"
        );
    }
}

//! Every number the paper publishes, in one place.
//!
//! The reproduction targets live here so benches, tests and EXPERIMENTS.md
//! all compare against the same constants, each tagged with where in the
//! paper it appears.

/// Published values from the paper, used as reproduction targets.
pub mod paper {
    use metrics::Ydhms;

    /// §2.1: proteins in the phase-I target set.
    pub const PROTEIN_COUNT: usize = 168;

    /// §2.1: orientation couples per starting position (`Nrot`).
    pub const NROT: u32 = 21;

    /// Footnote 1: actual starting orientations (21 couples × 10 γ).
    pub const TOTAL_ORIENTATIONS: u32 = 210;

    /// Table 1: mean of the compute-time matrix, seconds.
    pub const MCT_MEAN: f64 = 671.0;
    /// Table 1: standard deviation, seconds.
    pub const MCT_STD_DEV: f64 = 968.04;
    /// Table 1: minimum, seconds.
    pub const MCT_MIN: f64 = 6.0;
    /// Table 1: maximum, seconds.
    pub const MCT_MAX: f64 = 46_347.0;
    /// Table 1: median, seconds.
    pub const MCT_MEDIAN: f64 = 384.0;

    /// §4.1: the Grid'5000 calibration used 640 processors for one day.
    pub const CALIBRATION_PROCESSORS: usize = 640;

    /// §4.1: the phase-I reference workload, `1,488:237:19:45:54`.
    pub fn phase1_total() -> Ydhms {
        Ydhms::new(1488, 237, 19, 45, 54)
    }

    /// §4.1: potential (minimal) workunits.
    pub const MINIMAL_WORKUNITS: u64 = 49_481_544;

    /// Figure 4(a): workunits at h = 10 h.
    pub const WORKUNITS_H10: u64 = 1_364_476;
    /// Figure 4(b): workunits at h = 4 h.
    pub const WORKUNITS_H4: u64 = 3_599_937;

    /// §5.1: average VFTP available on the grid during the campaign.
    pub const GRID_MEAN_VFTP: f64 = 54_947.0;
    /// §5.1 / Table 2: average VFTP of the project over the whole period.
    pub const PROJECT_MEAN_VFTP: f64 = 16_450.0;
    /// §5.1 / Table 2: average VFTP during the full-power phase.
    pub const PROJECT_FULL_POWER_VFTP: f64 = 26_248.0;

    /// §5.1: results disclosed by World Community Grid.
    pub const RESULTS_RECEIVED: u64 = 5_418_010;
    /// §5.1: effective (useful) results.
    pub const RESULTS_USEFUL: u64 = 3_936_010;
    /// §5.1: the redundancy factor.
    pub const REDUNDANCY_FACTOR: f64 = 1.37;

    /// §6: total CPU time consumed, `8,082:275:17:15:44`.
    pub fn consumed_total() -> Ydhms {
        Ydhms::new(8082, 275, 17, 15, 44)
    }

    /// §6: consumed / estimated.
    pub const RAW_SPEED_DOWN: f64 = 5.43;
    /// §6: after dividing out redundancy.
    pub const NET_SPEED_DOWN: f64 = 3.96;

    /// Figure 8: mean packaged workunit duration, `3 h 18 m 47 s`.
    pub const PACKAGED_MEAN_SECONDS: f64 = 3.0 * 3600.0 + 18.0 * 60.0 + 47.0;
    /// Figure 8: mean realized duration on volunteers, ≈ 13 h.
    pub const REALIZED_MEAN_SECONDS: f64 = 13.0 * 3600.0;

    /// §1/§8: campaign length, 26 weeks (2006-12-19 → 2007-06-11).
    pub const CAMPAIGN_WEEKS: usize = 26;

    /// Table 2: dedicated-grid equivalent of the whole-period VFTP.
    pub const DEDICATED_WHOLE_PERIOD: f64 = 3_029.0;
    /// Table 2: dedicated-grid equivalent during full power.
    pub const DEDICATED_FULL_POWER: f64 = 4_833.0;

    /// §5.2: the phase-I dataset, uncompressed gigabytes.
    pub const DATASET_GB: f64 = 123.0;

    /// Table 3: phase-I CPU seconds.
    pub const PHASE1_CPU_SECONDS: f64 = 254_897_774_144.0;
    /// Table 3: phase-I effective weeks.
    pub const PHASE1_WEEKS: f64 = 16.0;
    /// Table 3: phase-I VFTP.
    pub const PHASE1_VFTP: f64 = 26_341.0;
    /// Table 3: phase-I members.
    pub const PHASE1_MEMBERS: f64 = 132_490.0;
    /// Table 3: phase-II CPU seconds.
    pub const PHASE2_CPU_SECONDS: f64 = 1_444_998_719_637.0;
    /// Table 3: phase-II weeks target.
    pub const PHASE2_WEEKS: f64 = 40.0;
    /// Table 3: phase-II VFTP needed.
    pub const PHASE2_VFTP: f64 = 59_730.0;
    /// Table 3: phase-II members needed.
    pub const PHASE2_MEMBERS: f64 = 300_430.0;

    /// §7: proteins targeted by phase II.
    pub const PHASE2_PROTEINS: usize = 4_000;
    /// §7: docking-point reduction factor expected from evolutionary data.
    pub const PHASE2_REDUCTION: f64 = 100.0;
    /// §7: phase-II work relative to phase I (`4000² / (168² · 100)`).
    pub const PHASE2_WORK_RATIO: f64 = 5.66;
    /// §7: WCG membership when the paper was written.
    pub const WCG_MEMBERS: f64 = 325_000.0;
    /// §7: the VFTP those members correspond to.
    pub const WCG_MEMBER_VFTP: f64 = 60_000.0;
    /// §7: share of the grid HCMD would get in phase II (3 other projects).
    pub const PHASE2_SHARE: f64 = 0.25;

    /// §3.1: registered members at the time of writing.
    pub const MEMBERS_REGISTERED: u64 = 344_000;
    /// §3.1: registered devices.
    pub const DEVICES_REGISTERED: u64 = 836_000;
}

#[cfg(test)]
mod tests {
    use super::paper;

    #[test]
    fn published_totals_are_internally_consistent() {
        // consumed / estimated = 5.43 (§6).
        let ratio = paper::consumed_total().total_seconds() as f64
            / paper::phase1_total().total_seconds() as f64;
        assert!((ratio - paper::RAW_SPEED_DOWN).abs() < 0.01);
        // 5.43 / 1.37 = 3.96.
        assert!(
            (paper::RAW_SPEED_DOWN / paper::REDUNDANCY_FACTOR - paper::NET_SPEED_DOWN).abs() < 0.01
        );
        // Redundancy factor from result counts.
        let r = paper::RESULTS_RECEIVED as f64 / paper::RESULTS_USEFUL as f64;
        assert!((r - paper::REDUNDANCY_FACTOR).abs() < 0.01);
    }

    #[test]
    fn table3_columns_are_consistent() {
        // VFTP = cpu_seconds / (weeks × week_seconds).
        let week = 7.0 * 86_400.0;
        let v1 = paper::PHASE1_CPU_SECONDS / (paper::PHASE1_WEEKS * week);
        assert!((v1 - paper::PHASE1_VFTP).abs() < 2.0, "v1 = {v1}");
        let v2 = paper::PHASE2_CPU_SECONDS / (paper::PHASE2_WEEKS * week);
        assert!((v2 - paper::PHASE2_VFTP).abs() < 2.0, "v2 = {v2}");
        // Members scale with VFTP at a fixed per-member contribution.
        let ratio1 = paper::PHASE1_VFTP / paper::PHASE1_MEMBERS;
        let ratio2 = paper::PHASE2_VFTP / paper::PHASE2_MEMBERS;
        assert!((ratio1 - ratio2).abs() < 1e-3);
    }

    #[test]
    fn phase2_work_ratio_matches_its_formula() {
        let ratio = (paper::PHASE2_PROTEINS as f64).powi(2)
            / ((paper::PROTEIN_COUNT as f64).powi(2) * paper::PHASE2_REDUCTION);
        assert!((ratio - paper::PHASE2_WORK_RATIO).abs() < 0.01);
        // And the published CPU totals respect it.
        let from_cpu = paper::PHASE2_CPU_SECONDS / paper::PHASE1_CPU_SECONDS;
        assert!((from_cpu - paper::PHASE2_WORK_RATIO).abs() < 0.01);
    }

    #[test]
    fn packaged_vs_realized_confirms_speed_down() {
        // §6: 13 h / 3.96 ≈ 3 h 17 m ≈ the packaged mean.
        let implied = paper::REALIZED_MEAN_SECONDS / paper::NET_SPEED_DOWN;
        assert!(
            (implied - paper::PACKAGED_MEAN_SECONDS).abs() / paper::PACKAGED_MEAN_SECONDS < 0.02
        );
    }
}

//! Help Cure Muscular Dystrophy, phase I — the end-to-end campaign.
//!
//! This crate is the paper's top-level narrative as a library: it wires
//! the MAXDo substrate, the §4.1 behaviour model, the §4.2 packaging, the
//! volunteer-grid simulator and the §5.2 validation pipeline into one
//! reproducible campaign, and implements the two analyses that close the
//! paper: the volunteer-vs-dedicated grid comparison of Table 2 (§6) and
//! the phase-II projection of Table 3 (§7).
//!
//! * [`config`] — every constant the paper publishes, in one place;
//! * [`campaign`] — the end-to-end phase-I campaign runner;
//! * [`phases`] — per-period analysis of a campaign trace (Figure 6a);
//! * [`comparison`] — Table 2;
//! * [`phase2`] — §7 and Table 3.
//!
//! # Example
//!
//! ```no_run
//! use hcmd::campaign::Phase1Campaign;
//!
//! // A 1/100-scale phase-I campaign (fast; ratios preserved).
//! let campaign = Phase1Campaign::new(100, 2007);
//! let report = campaign.run();
//! println!("{}", report.render_summary());
//! assert!(report.trace.redundancy_factor() > 1.0);
//! ```

pub mod campaign;
pub mod comparison;
pub mod config;
pub mod phase2;
pub mod phases;
pub mod report;
pub mod requirements;

pub use campaign::{Phase1Campaign, Phase1Report};
pub use comparison::{table2, Table2};
pub use config::paper;
pub use phase2::{Phase2Assumptions, Phase2Projection};
pub use phases::{phase_summaries, PhaseSummary};
pub use report::generate_report;
pub use requirements::RequirementsReport;

//! The live grid: a wire-level task server and volunteer agent.
//!
//! Everything before this crate exercised the HCMD campaign in a single
//! process — the simulator models volunteers statistically, and the
//! scheduler sees only booleans. Here the campaign runs over actual TCP
//! sockets: `hcmd-server` owns the workunit queue, deadlines, reissue
//! and quorum validation; `hcmd-agent` fetches work, runs the real
//! maxdo docking kernel, checkpoints between starting positions, and
//! reports results. The scheduling brain is *shared with the simulator*
//! (`gridsim::SchedulerCore`), so simulated and live campaigns make
//! identical issue/validate decisions by construction.
//!
//! Module map:
//! * [`protocol`] — length-prefixed, versioned, checksummed JSON frames;
//! * [`campaign`] — deterministic campaign expansion from a tiny recipe
//!   (both ends derive the same library and launch-ordered catalog);
//! * [`state`] — the transport-free server state: `SchedulerCore` plus
//!   real-payload validation (bounds + byte-level quorum), wall-clock
//!   deadlines, per-agent backoff;
//! * [`server`] — the TCP daemon (accept loop, handler threads,
//!   deadline sweeper);
//! * [`agent`] — the volunteer loop (fetch → dock → checkpoint →
//!   report) with real multicore docking;
//! * [`faults`] — deterministic fault injection: disconnects, stalls
//!   past the deadline, bit-flipped payloads, connection limits;
//! * [`journal`] — write-ahead journal + compacting snapshots, so a
//!   `kill -9` mid-campaign resumes from disk and finishes with the
//!   identical merged artifact.
//!
//! See DESIGN.md §6 for the frame layout, both state machines, how
//! each injected fault maps to a §5.1 failure class, and the journal's
//! durability/recovery invariants.

pub mod agent;
pub mod campaign;
pub mod faults;
pub mod journal;
pub mod ops;
pub mod protocol;
pub mod server;
pub mod state;

pub use agent::{run_agent, AgentConfig, AgentReport};
pub use campaign::NetCampaign;
pub use faults::{FaultAction, FaultDice, FaultProfile, ServerFaults};
pub use journal::{open_journaled, FsyncPolicy, Journal, JournalConfig, JournalRecord};
pub use ops::{http_get, OpsServer};
pub use protocol::{CampaignParams, DecodeError, Message};
pub use server::{NetRunReport, NetServer, NetServerConfig};
pub use state::{
    AgentLedger, GridSnapshot, GridState, JournalOps, NetStats, OpsSnapshot, ResultDisposition,
    Verdict, WorkReply,
};

//! The live grid: a wire-level task server and volunteer agent.
//!
//! Everything before this crate exercised the HCMD campaign in a single
//! process — the simulator models volunteers statistically, and the
//! scheduler sees only booleans. Here the campaign runs over actual TCP
//! sockets: `hcmd-server` owns the workunit queue, deadlines, reissue
//! and quorum validation; `hcmd-agent` fetches work, runs the real
//! maxdo docking kernel, checkpoints between starting positions, and
//! reports results. The scheduling brain is *shared with the simulator*
//! (`gridsim::SchedulerCore`), so simulated and live campaigns make
//! identical issue/validate decisions by construction.
//!
//! Module map:
//! * [`protocol`] — length-prefixed, versioned, checksummed frames,
//!   in two codecs: JSON (v1) and a compact fixed-width binary (v2),
//!   negotiated per connection with v1 interop preserved;
//! * [`campaign`] — deterministic campaign expansion from a tiny recipe
//!   (both ends derive the same library and launch-ordered catalog);
//! * [`state`] — the transport-free server state: `SchedulerCore` plus
//!   real-payload validation (bounds + byte-level quorum), wall-clock
//!   deadlines, per-agent backoff;
//! * [`sys`] — a dependency-free readiness shim: epoll on Linux with a
//!   portable `poll(2)` fallback, via direct `extern "C"` declarations;
//! * [`server`] — the TCP daemon: a single-threaded nonblocking event
//!   loop driving per-connection state machines, with the deadline
//!   sweeper and journal fsync folded in as timer events;
//! * [`agent`] — the volunteer loop (fetch → dock → checkpoint →
//!   report) with real multicore docking;
//! * [`mux`] — a multiplexed fleet driver: one thread pushing thousands
//!   of simulated agent connections through nonblocking sockets, for
//!   scale benchmarking without a thread per agent;
//! * [`registry`] — the multi-campaign registry: N isolated campaign
//!   states under one server, arbitrated by a deficit-weighted
//!   fair-share ledger over delivered reference-seconds;
//! * [`shard`] — multi-server sharding: the deterministic shard map
//!   splitting one catalog across N servers, work-stealing leases, and
//!   the byte-identical cross-shard artifact merge;
//! * [`faults`] — deterministic fault injection: disconnects, stalls
//!   past the deadline, bit-flipped payloads, connection limits;
//! * [`journal`] — write-ahead journal + compacting snapshots, so a
//!   `kill -9` mid-campaign resumes from disk and finishes with the
//!   identical merged artifact;
//! * [`trust`] — the trust-adaptive replication policy: a journaled
//!   per-agent accept/reject ledger drives three replication bands
//!   (trusted singles with seeded spot checks, probation quorum,
//!   untrusted quarantine with exponential re-admission).
//!
//! See DESIGN.md §6 for the frame layout, both state machines, how
//! each injected fault maps to a §5.1 failure class, and the journal's
//! durability/recovery invariants.

pub mod agent;
pub mod campaign;
pub mod faults;
pub mod journal;
pub mod mux;
pub mod ops;
pub mod protocol;
pub mod registry;
pub mod server;
pub mod shard;
pub mod state;
pub mod sys;
pub mod trust;

pub use agent::{run_agent, AgentConfig, AgentReport};
pub use campaign::NetCampaign;
pub use faults::{FaultAction, FaultDice, FaultProfile, ServerFaults};
pub use journal::{open_journaled, FsyncPolicy, Journal, JournalConfig, JournalRecord};
pub use mux::{run_mux_fleet, MuxFleetConfig, MuxFleetReport};
pub use ops::{http_get, OpsServer};
pub use protocol::{CampaignParams, Codec, DecodeError, Message};
pub use registry::{CampaignDef, MultiGrid, Slot};
pub use server::{CampaignRunReport, NetRunReport, NetServer, NetServerConfig, ShardTopology};
pub use shard::{merge_artifact_json, merge_artifacts, shard_of, ShardSpec};
pub use state::{
    AgentLedger, CampaignOps, GridSnapshot, GridState, JournalOps, NetStats, OpsSnapshot,
    ResultDisposition, ShardOps, TrustSummary, Verdict, WorkReply,
};
pub use trust::{AgentTrust, TrustBand, TrustConfig};

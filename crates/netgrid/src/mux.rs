//! The multiplexed fleet driver: thousands of simulated volunteers on
//! one thread.
//!
//! The threaded agent ([`crate::agent::run_agent`]) is the *reference*
//! volunteer — one OS thread, blocking sockets, real docking. It is
//! faithful but it cannot scale a loopback bench past a few dozen
//! agents: 10 000 volunteers would need 10 000 stacks. This module
//! drives N agent state machines through nonblocking sockets on a
//! single thread, mirroring the reference agent's protocol behaviour
//! exactly — Hello/HelloAck, request → compute → report, Busy retries,
//! server-directed backoff, and the same per-agent [`FaultDice`]
//! stream (disconnects, stalls past the deadline, corrupted payloads)
//! folded into the state machine as timer events.
//!
//! Two deliberate departures from the reference agent, both chosen for
//! scale rather than fidelity:
//!
//! * **Memoized docking.** Every unique workunit is computed once, on a
//!   helper thread, and the result shared; a corrupting agent mutates
//!   its own clone. 10 000 agents re-docking the same 33 workunits
//!   would measure the docking kernel, not the server's wire path —
//!   and a stalled compute on the driver thread would poison every
//!   other agent's latency sample.
//! * **Sessions close across backoffs.** The reference agent sleeps on
//!   an open socket; here an agent told `NoWork` says `Bye`, closes,
//!   and reconnects when its backoff expires. That is how periodic
//!   BOINC volunteers actually behave, and it keeps the peak open-fd
//!   count under [`MuxFleetConfig::max_open`] — a 10k-agent loopback
//!   run owns *both* ends of every socket, which would otherwise need
//!   20 001 descriptors against a typical 1024-or-so rlimit.
//! * **Admission-controlled asks.** At most
//!   [`MuxFleetConfig::max_inflight_asks`] `RequestWork` frames are in
//!   flight at once; agents past the cap park in a FIFO until a reply
//!   frees a slot. The single-threaded server answers one frame at a
//!   time, so a synchronized wave of 10 000 asks serializes into a
//!   ~200 ms queue for whoever lands last — a deep-but-bounded pipeline
//!   keeps the server saturated (throughput is unchanged) while holding
//!   its queue, and therefore request latency, to a few hundred service
//!   times.

use crate::campaign::NetCampaign;
use crate::faults::{FaultAction, FaultDice, FaultProfile};
use crate::protocol::{decode_versioned, encode_with, Codec, DecodeError, Message};
use crate::sys::{Event as IoEvent, Poller};
use maxdo::DockingOutput;
use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::os::unix::io::AsRawFd;
use std::sync::{mpsc, Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// Multiplexed fleet configuration.
#[derive(Debug, Clone)]
pub struct MuxFleetConfig {
    /// Server address (`host:port`).
    pub addr: String,
    /// Sharded topology: when non-empty, agent *i* dials
    /// `addrs[i % addrs.len()]` instead of `addr`, spreading the fleet
    /// round-robin across every shard of a multi-server campaign.
    pub addrs: Vec<String>,
    /// Number of simulated agents; ids run `1..=agents`.
    pub agents: usize,
    /// Run seed shared with the rest of the campaign fleet.
    pub seed: u64,
    /// Fault profile applied to every simulated agent (each agent still
    /// draws from its own id-salted dice stream).
    pub profile: FaultProfile,
    /// The first `saboteurs` agent ids (1..=saboteurs) corrupt *every*
    /// payload instead of drawing from `profile` — the adversary the
    /// trust policy is designed to starve. Low ids, so a saboteur fleet
    /// is deterministic regardless of fleet size.
    pub saboteurs: usize,
    /// Wire codec for every frame the fleet sends.
    pub codec: Codec,
    /// Campaign attachments every fleet agent announces in its Hello
    /// (v4 codec only). Empty = the default campaign; `["*"]` = all.
    pub campaigns: Vec<String>,
    /// Peak simultaneously-open connections; agents beyond it queue for
    /// a connect slot. Remember the loopback bench owns both socket
    /// ends, so the process fd bill is twice this number.
    pub max_open: usize,
    /// Connect dispatches per driver iteration. Dialing happens on a
    /// small connector-thread pool — this only bounds how fast the
    /// driver feeds it, so a ramp cannot flood the dial queue.
    pub connect_batch: usize,
    /// Peak `RequestWork` frames in flight at once. The server answers
    /// one frame at a time, so a synchronized burst of N asks queues the
    /// last one behind N − 1 service times (~200 ms at N = 10 000); this
    /// admission cap turns the burst into a pipeline deep enough to keep
    /// the server saturated while bounding its queue.
    pub max_inflight_asks: usize,
    /// Hard wall-clock cap; the driver returns what it has when this
    /// expires (`saw_completion: false`).
    pub timeout: Duration,
}

impl MuxFleetConfig {
    /// A clean (no-fault, binary-codec) fleet of `agents` volunteers.
    pub fn new(addr: impl Into<String>, agents: usize) -> Self {
        Self {
            addr: addr.into(),
            addrs: Vec::new(),
            agents,
            seed: 0,
            profile: FaultProfile::none(),
            saboteurs: 0,
            codec: Codec::Binary,
            campaigns: Vec::new(),
            max_open: 8_000,
            connect_batch: 64,
            max_inflight_asks: 16,
            timeout: Duration::from_secs(300),
        }
    }
}

/// What the whole fleet did, aggregated — the mux analogue of summing
/// N [`crate::agent::AgentReport`]s.
#[derive(Debug, Clone, Default)]
pub struct MuxFleetReport {
    /// Assignments received across the fleet.
    pub assignments: u64,
    /// Results reported (honest + corrupted + stalled).
    pub reported: u64,
    /// Reports the server accepted.
    pub accepted: u64,
    /// Injected disconnects.
    pub disconnect_faults: u64,
    /// Injected stalls.
    pub stall_faults: u64,
    /// Injected corruptions.
    pub corrupt_faults: u64,
    /// Round-trip latency of every `RequestWork`, milliseconds.
    pub request_latencies_ms: Vec<f64>,
    /// Whether any agent saw the campaign complete before the timeout.
    pub saw_completion: bool,
    /// Connections the fleet opened over its lifetime.
    pub connections: u64,
}

/// One simulated agent's protocol position.
enum AState {
    /// Not connected; wants a connect slot once `until` passes.
    Offline { until: Instant },
    /// Handed to the connector pool; waiting for the dialed socket.
    Connecting,
    /// Hello sent, awaiting `HelloAck`.
    Greeting,
    /// Ready to ask but held back by the in-flight ask cap; queued in
    /// the driver's `ask_queue`.
    AskPending,
    /// `RequestWork` sent at `asked`, awaiting the reply.
    Asking { asked: Instant },
    /// Assignment in hand, waiting for the shared compute of its
    /// workunit; the fault drawn on receipt is applied at delivery.
    AwaitCompute {
        replica: u64,
        campaign: u16,
        workunit: u32,
        action: FaultAction,
    },
    /// Stall fault: the finished result is deliberately held past the
    /// deadline, then reported.
    Stalling {
        until: Instant,
        replica: u64,
        campaign: u16,
        workunit: u32,
    },
    /// Report sent, awaiting `ResultAck`.
    AwaitAck,
    /// Saw campaign completion (or was shut down with the fleet).
    Done,
}

/// One agent: identity, fault dice, state, and (while connected) its
/// socket with buffered bytes each way.
struct MuxAgent {
    id: u64,
    dice: FaultDice,
    state: AState,
    conn: Option<MuxConn>,
}

struct MuxConn {
    stream: TcpStream,
    read_buf: Vec<u8>,
    write_buf: Vec<u8>,
    write_pos: usize,
    interest: (bool, bool),
}

impl MuxConn {
    fn flush(&mut self) -> io::Result<bool> {
        while self.write_pos < self.write_buf.len() {
            match self.stream.write(&self.write_buf[self.write_pos..]) {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(n) => self.write_pos += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        self.write_buf.clear();
        self.write_pos = 0;
        Ok(true)
    }
}

/// The shared docking cache: each workunit is computed exactly once.
enum CacheEntry {
    /// Compute in flight; these agent indices are waiting on it.
    Pending(Vec<usize>),
    Ready(Arc<DockingOutput>),
}

/// How often the driver scans agent timers (backoffs, stalls, connect
/// queue) when no socket is ready — also the poll-timeout ceiling.
const TIMER_TICK: Duration = Duration::from_millis(5);

/// Reconnect delay after an injected disconnect (matches the reference
/// agent's 20 ms pause before it re-dials).
const DISCONNECT_PAUSE: Duration = Duration::from_millis(20);

/// Reconnect delay after an unexpected socket error.
const ERROR_PAUSE: Duration = Duration::from_millis(50);

/// Connector-pool width. Dialing is blocking (a dropped SYN under
/// backlog pressure stalls `connect` for a full retransmit timeout),
/// so it happens on these helper threads: one slow dial delays at most
/// the dials queued behind it on the same worker, never the driver.
const CONNECT_WORKERS: usize = 4;

/// Compute-pool width: all spare cores, at least one. Docking runs on
/// a few persistent nice-19 workers rather than a thread per workunit —
/// dozens of runnable compute threads would out-weigh the driver and
/// server in the scheduler even at the lowest priority, and on a
/// loopback bench every millisecond the kernel holds the core shows up
/// directly in the request-latency tail.
fn compute_workers() -> usize {
    thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .saturating_sub(2)
        .max(1)
}

/// Runs the whole fleet to campaign completion (or the timeout) on the
/// calling thread.
pub fn run_mux_fleet(config: MuxFleetConfig) -> io::Result<MuxFleetReport> {
    Driver::new(config)?.run()
}

struct Driver {
    config: MuxFleetConfig,
    poller: Poller,
    agents: Vec<MuxAgent>,
    /// fd → agent index, for routing readiness events.
    by_fd: HashMap<i32, usize>,
    /// Hosted campaigns the fleet is attached to, indexed by the wire
    /// campaign id (one entry, index 0, on a single-campaign server).
    roster: Vec<Arc<NetCampaign>>,
    deadline_seconds: f64,
    /// Memoized docking results, keyed by campaign id + workunit — the
    /// same workunit index names different work in different campaigns.
    cache: HashMap<(u16, u32), CacheEntry>,
    /// Finished docking results from the compute pool.
    compute_rx: mpsc::Receiver<((u16, u32), DockingOutput)>,
    /// Docking jobs for the persistent compute pool.
    compute_job_tx: mpsc::Sender<(u16, u32, u32, u32, Arc<NetCampaign>)>,
    dial_tx: mpsc::Sender<(usize, String)>,
    dialed_rx: mpsc::Receiver<(usize, io::Result<TcpStream>)>,
    /// Dials handed to the pool and not yet back; counts against
    /// `max_open` so in-flight connects can't overshoot the fd budget.
    pending_connects: usize,
    /// `RequestWork` frames awaiting a reply (agents in `Asking`).
    inflight_asks: usize,
    /// Agents in `AskPending`, oldest first. Entries can go stale when
    /// a queued session drops; `pump_asks` skips those.
    ask_queue: VecDeque<usize>,
    report: MuxFleetReport,
    open: usize,
    complete: bool,
}

impl Driver {
    fn new(config: MuxFleetConfig) -> io::Result<Self> {
        let start = Instant::now();
        let agents = (1..=config.agents as u64)
            .map(|id| {
                // Saboteurs corrupt unconditionally; everyone else rolls
                // the configured profile.
                let profile = if id <= config.saboteurs as u64 {
                    FaultProfile::saboteur()
                } else {
                    config.profile
                };
                MuxAgent {
                    id,
                    dice: FaultDice::new(config.seed, id, profile),
                    state: AState::Offline { until: start },
                    conn: None,
                }
            })
            .collect();
        let (compute_tx, compute_rx) = mpsc::channel();
        let (compute_job_tx, compute_jobs) =
            mpsc::channel::<(u16, u32, u32, u32, Arc<NetCampaign>)>();
        let compute_jobs = Arc::new(Mutex::new(compute_jobs));
        for _ in 0..compute_workers() {
            let jobs = Arc::clone(&compute_jobs);
            let done = compute_tx.clone();
            thread::spawn(move || {
                // The docking kernel must not starve the driver (or the
                // server, on a loopback bench sharing its core): compute
                // runs at the lowest scheduling priority.
                crate::sys::deprioritize_current_thread();
                loop {
                    let Ok((cidx, workunit, isep_start, positions, campaign)) =
                        jobs.lock().expect("compute queue").recv()
                    else {
                        return;
                    };
                    let spec = campaign.spec(workunit);
                    debug_assert_eq!((spec.isep_start, spec.positions), (isep_start, positions));
                    let output = campaign.compute(spec);
                    // Fails only once the driver is gone; then the job
                    // queue is closed too and the next recv ends us.
                    let _ = done.send(((cidx, workunit), output));
                }
            });
        }
        let (dial_tx, dial_jobs) = mpsc::channel::<(usize, String)>();
        let (dialed_tx, dialed_rx) = mpsc::channel();
        let dial_jobs = Arc::new(Mutex::new(dial_jobs));
        for _ in 0..CONNECT_WORKERS {
            let jobs = Arc::clone(&dial_jobs);
            let done = dialed_tx.clone();
            thread::spawn(move || loop {
                let Ok((idx, addr)) = jobs.lock().expect("dial queue").recv() else {
                    return;
                };
                // Sends fail only once the driver is gone — then the
                // queue is closed too and the next recv ends the worker.
                let _ = done.send((idx, TcpStream::connect(&addr)));
            });
        }
        Ok(Self {
            poller: Poller::new()?,
            agents,
            by_fd: HashMap::new(),
            roster: Vec::new(),
            deadline_seconds: 0.0,
            cache: HashMap::new(),
            compute_rx,
            compute_job_tx,
            dial_tx,
            dialed_rx,
            pending_connects: 0,
            inflight_asks: 0,
            ask_queue: VecDeque::new(),
            report: MuxFleetReport::default(),
            open: 0,
            complete: false,
            config,
        })
    }

    fn run(mut self) -> io::Result<MuxFleetReport> {
        let deadline = Instant::now() + self.config.timeout;
        let mut events: Vec<IoEvent> = Vec::new();
        while !self.complete {
            if Instant::now() > deadline {
                break;
            }
            self.drain_compute_results();
            self.drain_dialed();
            self.fire_timers();
            self.pump_asks();
            self.poller.wait(Some(TIMER_TICK), &mut events)?;
            for ev in events.drain(..) {
                if self.complete {
                    break;
                }
                if let Some(&idx) = self.by_fd.get(&ev.fd) {
                    self.advance_io(idx, ev);
                }
            }
        }
        // Fleet shutdown: every socket drops at once; the server sees
        // the EOFs and drains within its grace window.
        for idx in 0..self.agents.len() {
            self.disconnect(idx);
            self.agents[idx].state = AState::Done;
        }
        self.report.saw_completion = self.complete;
        Ok(self.report)
    }

    /// Applies finished docking computes: the workunit's waiters get
    /// their (possibly fault-shaped) reports queued.
    fn drain_compute_results(&mut self) {
        while let Ok((key, output)) = self.compute_rx.try_recv() {
            let output = Arc::new(output);
            let waiters = match self
                .cache
                .insert(key, CacheEntry::Ready(Arc::clone(&output)))
            {
                Some(CacheEntry::Pending(w)) => w,
                _ => Vec::new(),
            };
            for idx in waiters {
                self.deliver_compute(idx, key, &output);
            }
        }
    }

    /// Moves one agent from `AwaitCompute` toward its report, honouring
    /// the fault it drew when the assignment arrived.
    fn deliver_compute(&mut self, idx: usize, key: (u16, u32), output: &Arc<DockingOutput>) {
        let AState::AwaitCompute {
            replica,
            campaign,
            workunit,
            action,
        } = self.agents[idx].state
        else {
            return;
        };
        if (campaign, workunit) != key {
            return;
        }
        match action {
            FaultAction::Stall => {
                self.agents[idx].state = AState::Stalling {
                    until: Instant::now()
                        + Duration::from_secs_f64(self.deadline_seconds.max(0.0) + 0.3),
                    replica,
                    campaign,
                    workunit,
                };
            }
            FaultAction::Corrupt => {
                let mut corrupted = (**output).clone();
                self.agents[idx].dice.corrupt(&mut corrupted);
                self.send_report(idx, replica, campaign, workunit, corrupted);
            }
            FaultAction::None | FaultAction::Disconnect => {
                self.send_report(idx, replica, campaign, workunit, (**output).clone());
            }
        }
    }

    fn send_report(
        &mut self,
        idx: usize,
        replica: u64,
        campaign: u16,
        workunit: u32,
        output: DockingOutput,
    ) {
        self.queue_frame(
            idx,
            &Message::ResultReport {
                replica,
                workunit,
                campaign,
                output,
            },
        );
        self.report.reported += 1;
        self.agents[idx].state = AState::AwaitAck;
    }

    /// Timer scan: expire stalls, wake offline agents whose backoff
    /// passed (bounded by the connect batch and the open-socket cap).
    fn fire_timers(&mut self) {
        let now = Instant::now();
        let mut budget = self.config.connect_batch;
        for idx in 0..self.agents.len() {
            match self.agents[idx].state {
                AState::Stalling {
                    until,
                    replica,
                    campaign,
                    workunit,
                } if now >= until => {
                    if let Some(CacheEntry::Ready(out)) = self.cache.get(&(campaign, workunit)) {
                        let out = Arc::clone(out);
                        self.send_report(idx, replica, campaign, workunit, (*out).clone());
                    } else {
                        // Compute lost in a shutdown race: nothing to
                        // report, start the session over.
                        self.agents[idx].state = AState::Offline { until: now };
                    }
                }
                AState::Offline { until }
                    if now >= until
                        && budget > 0
                        && self.open + self.pending_connects < self.config.max_open =>
                {
                    budget -= 1;
                    self.pending_connects += 1;
                    self.agents[idx].state = AState::Connecting;
                    let addr = self.home_addr(idx).to_string();
                    if self.dial_tx.send((idx, addr)).is_err() {
                        // Connector pool gone (only on teardown): retry
                        // later so the state machine stays coherent.
                        self.pending_connects -= 1;
                        self.agents[idx].state = AState::Offline {
                            until: now + ERROR_PAUSE,
                        };
                    }
                }
                _ => {}
            }
        }
    }

    /// The shard this agent calls home: round-robin over `addrs` when a
    /// sharded topology is configured, else the single `addr`.
    fn home_addr(&self, idx: usize) -> &str {
        if self.config.addrs.is_empty() {
            &self.config.addr
        } else {
            &self.config.addrs[idx % self.config.addrs.len()]
        }
    }

    /// Collects dialed sockets from the connector pool and installs
    /// them on their agents.
    fn drain_dialed(&mut self) {
        while let Ok((idx, dialed)) = self.dialed_rx.try_recv() {
            self.pending_connects -= 1;
            if !matches!(self.agents[idx].state, AState::Connecting) || self.complete {
                continue; // Stale dial; the socket drops here.
            }
            match dialed {
                Ok(stream) => self.install_conn(idx, stream),
                Err(_) => {
                    self.agents[idx].state = AState::Offline {
                        until: Instant::now() + ERROR_PAUSE,
                    };
                }
            }
        }
    }

    /// Wires a freshly-dialed socket into the poller and queues the
    /// agent's `Hello`.
    fn install_conn(&mut self, idx: usize, stream: TcpStream) {
        let _ = stream.set_nodelay(true);
        if stream.set_nonblocking(true).is_err() {
            self.agents[idx].state = AState::Offline {
                until: Instant::now() + ERROR_PAUSE,
            };
            return;
        }
        let fd = stream.as_raw_fd();
        self.agents[idx].conn = Some(MuxConn {
            stream,
            read_buf: Vec::new(),
            write_buf: Vec::new(),
            write_pos: 0,
            interest: (false, false),
        });
        self.by_fd.insert(fd, idx);
        self.open += 1;
        self.report.connections += 1;
        if self.poller.register(fd, true, false).is_err() {
            self.drop_session(idx, ERROR_PAUSE);
            return;
        }
        if let Some(c) = self.agents[idx].conn.as_mut() {
            c.interest = (true, false);
        }
        let threads = 1u32;
        let id = self.agents[idx].id;
        self.queue_frame(
            idx,
            &Message::Hello {
                agent: id,
                threads,
                campaigns: self.config.campaigns.clone(),
            },
        );
        self.agents[idx].state = AState::Greeting;
    }

    /// Encodes `msg` onto the agent's connection and flushes what fits;
    /// leftover bytes raise write interest.
    fn queue_frame(&mut self, idx: usize, msg: &Message) {
        let frame = encode_with(msg, self.config.codec);
        let Some(conn) = self.agents[idx].conn.as_mut() else {
            return;
        };
        conn.write_buf.extend_from_slice(&frame);
        if conn.flush().is_err() {
            self.drop_session(idx, ERROR_PAUSE);
            return;
        }
        self.update_interest(idx);
    }

    fn update_interest(&mut self, idx: usize) {
        let Some(conn) = self.agents[idx].conn.as_mut() else {
            return;
        };
        let wanted = (true, conn.write_pos < conn.write_buf.len());
        if wanted != conn.interest {
            let fd = conn.stream.as_raw_fd();
            conn.interest = wanted;
            let _ = self.poller.reregister(fd, wanted.0, wanted.1);
        }
    }

    /// Tears the socket down (if any) without touching agent state.
    fn disconnect(&mut self, idx: usize) {
        if let Some(conn) = self.agents[idx].conn.take() {
            let fd = conn.stream.as_raw_fd();
            let _ = self.poller.deregister(fd);
            self.by_fd.remove(&fd);
            self.open -= 1;
        }
    }

    /// Sends `RequestWork` now if an in-flight slot is free, else parks
    /// the agent in `AskPending` until one opens.
    fn begin_ask(&mut self, idx: usize) {
        if self.inflight_asks >= self.config.max_inflight_asks {
            self.agents[idx].state = AState::AskPending;
            self.ask_queue.push_back(idx);
            return;
        }
        self.inflight_asks += 1;
        self.agents[idx].state = AState::Asking {
            asked: Instant::now(),
        };
        // On a flush error this drops the session, which releases the
        // slot again via `end_ask`.
        self.queue_frame(idx, &Message::RequestWork);
    }

    /// Releases the agent's in-flight ask slot if it holds one,
    /// returning the send time. Call before overwriting an `Asking`
    /// state, from reply handlers and teardown paths alike.
    fn end_ask(&mut self, idx: usize) -> Option<Instant> {
        if let AState::Asking { asked } = self.agents[idx].state {
            self.inflight_asks -= 1;
            // Leave `Asking` with the release so a nested teardown
            // (e.g. `drop_session` after a reply handler already called
            // this) cannot free the slot twice; every caller overwrites
            // this placeholder state before returning to the driver.
            self.agents[idx].state = AState::AskPending;
            Some(asked)
        } else {
            None
        }
    }

    /// Admits parked asks as in-flight slots free up (once per driver
    /// iteration, so reply handlers never re-enter each other).
    fn pump_asks(&mut self) {
        while self.inflight_asks < self.config.max_inflight_asks {
            let Some(idx) = self.ask_queue.pop_front() else {
                return;
            };
            if !matches!(self.agents[idx].state, AState::AskPending) {
                continue; // Session dropped while queued.
            }
            self.inflight_asks += 1;
            self.agents[idx].state = AState::Asking {
                asked: Instant::now(),
            };
            self.queue_frame(idx, &Message::RequestWork);
        }
    }

    /// Socket loss mid-session: close and schedule a reconnect, exactly
    /// like the reference agent's `continue 'session`.
    fn drop_session(&mut self, idx: usize, pause: Duration) {
        self.end_ask(idx);
        self.disconnect(idx);
        self.agents[idx].state = AState::Offline {
            until: Instant::now() + pause,
        };
    }

    /// Readiness on one agent's socket: read, decode, dispatch, flush.
    fn advance_io(&mut self, idx: usize, ev: IoEvent) {
        if ev.readable || ev.hangup {
            let mut chunk = [0u8; 16 * 1024];
            let mut lost = false;
            loop {
                let Some(conn) = self.agents[idx].conn.as_mut() else {
                    return;
                };
                match conn.stream.read(&mut chunk) {
                    Ok(0) => {
                        lost = true;
                        break;
                    }
                    Ok(n) => conn.read_buf.extend_from_slice(&chunk[..n]),
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(_) => {
                        lost = true;
                        break;
                    }
                }
            }
            loop {
                let Some(conn) = self.agents[idx].conn.as_mut() else {
                    return;
                };
                match decode_versioned(&conn.read_buf) {
                    Ok((msg, consumed, _codec)) => {
                        conn.read_buf.drain(..consumed);
                        self.on_message(idx, msg);
                    }
                    Err(DecodeError::Incomplete { .. }) => break,
                    Err(_) => {
                        self.drop_session(idx, ERROR_PAUSE);
                        return;
                    }
                }
            }
            if lost && self.agents[idx].conn.is_some() {
                self.drop_session(idx, ERROR_PAUSE);
                return;
            }
        }
        if ev.writable {
            let Some(conn) = self.agents[idx].conn.as_mut() else {
                return;
            };
            if conn.flush().is_err() {
                self.drop_session(idx, ERROR_PAUSE);
                return;
            }
        }
        self.update_interest(idx);
    }

    /// One server frame against this agent's state machine — the mux
    /// mirror of the reference agent's session-loop `match`.
    fn on_message(&mut self, idx: usize, msg: Message) {
        match msg {
            Message::HelloAck {
                campaign: params,
                deadline_seconds,
                campaigns,
                ..
            } => {
                if self.roster.is_empty() {
                    self.roster = if campaigns.is_empty() {
                        vec![Arc::new(NetCampaign::build(params))]
                    } else {
                        campaigns
                            .iter()
                            .map(|(_, p)| Arc::new(NetCampaign::build(*p)))
                            .collect()
                    };
                }
                self.deadline_seconds = deadline_seconds;
                self.begin_ask(idx);
            }
            Message::Busy { retry_after_ms } => {
                self.drop_session(idx, Duration::from_millis(retry_after_ms.min(2_000)));
            }
            Message::NoWork {
                campaign_complete,
                retry_after_ms,
            } => {
                if let Some(asked) = self.end_ask(idx) {
                    self.report
                        .request_latencies_ms
                        .push(asked.elapsed().as_secs_f64() * 1e3);
                }
                if campaign_complete {
                    self.queue_frame(idx, &Message::Bye);
                    self.disconnect(idx);
                    self.agents[idx].state = AState::Done;
                    self.complete = true;
                    return;
                }
                // Unlike the reference agent, release the socket across
                // the backoff (see the module docs on fd budgets). The
                // deterministic per-agent jitter (up to +25%) spreads
                // reconnects: the server's own backoff jitter is small
                // relative to the exponential steps, and ten thousand
                // agents re-dialing on the same step is a SYN storm.
                let base = retry_after_ms.min(2_000);
                let jitter = (self.agents[idx].id.wrapping_mul(0x9e37_79b9) >> 7) % (base / 4 + 1);
                self.queue_frame(idx, &Message::Bye);
                self.drop_session(idx, Duration::from_millis(base + jitter));
            }
            Message::Assignment {
                replica,
                workunit,
                isep_start,
                positions,
                campaign,
                ..
            } => {
                if let Some(asked) = self.end_ask(idx) {
                    self.report
                        .request_latencies_ms
                        .push(asked.elapsed().as_secs_f64() * 1e3);
                }
                self.report.assignments += 1;
                let action = self.agents[idx].dice.draw();
                if action == FaultAction::Disconnect {
                    self.report.disconnect_faults += 1;
                    self.drop_session(idx, DISCONNECT_PAUSE);
                    return;
                }
                if action == FaultAction::Stall {
                    self.report.stall_faults += 1;
                }
                if action == FaultAction::Corrupt {
                    self.report.corrupt_faults += 1;
                }
                self.agents[idx].state = AState::AwaitCompute {
                    replica,
                    campaign,
                    workunit,
                    action,
                };
                self.request_compute(idx, campaign, workunit, isep_start, positions);
            }
            Message::ResultAck {
                accepted,
                campaign_complete,
                ..
            } => {
                if accepted {
                    self.report.accepted += 1;
                }
                if campaign_complete {
                    self.queue_frame(idx, &Message::Bye);
                    self.disconnect(idx);
                    self.agents[idx].state = AState::Done;
                    self.complete = true;
                    return;
                }
                self.begin_ask(idx);
            }
            // Agent-to-server frames or a second HelloAck mean a
            // confused peer: start the session over.
            _ => self.drop_session(idx, ERROR_PAUSE),
        }
    }

    /// Ensures `workunit`'s docking result exists or is being computed;
    /// delivers immediately on a cache hit.
    fn request_compute(
        &mut self,
        idx: usize,
        campaign: u16,
        workunit: u32,
        isep_start: u32,
        positions: u32,
    ) {
        let key = (campaign, workunit);
        match self.cache.get_mut(&key) {
            Some(CacheEntry::Ready(out)) => {
                let out = Arc::clone(out);
                self.deliver_compute(idx, key, &out);
            }
            Some(CacheEntry::Pending(waiters)) => waiters.push(idx),
            None => {
                self.cache.insert(key, CacheEntry::Pending(vec![idx]));
                let Some(params) = self.roster.get(usize::from(campaign)).map(Arc::clone) else {
                    // HelloAck always precedes assignments; defensive.
                    self.cache.remove(&key);
                    self.drop_session(idx, ERROR_PAUSE);
                    return;
                };
                if self
                    .compute_job_tx
                    .send((campaign, workunit, isep_start, positions, params))
                    .is_err()
                {
                    // Compute pool gone (only on teardown).
                    self.cache.remove(&key);
                    self.drop_session(idx, ERROR_PAUSE);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{NetServer, NetServerConfig};
    use crate::trust::{TrustBand, TrustConfig};

    /// A mux fleet alone must carry a campaign to completion and the
    /// server's merged artifact must equal the in-process baseline —
    /// the same bar the threaded fleet is held to.
    #[test]
    fn mux_fleet_completes_a_campaign_with_the_baseline_artifact() {
        for codec in [Codec::Binary, Codec::Json] {
            let config = NetServerConfig {
                sweep_ms: 25,
                ..NetServerConfig::loopback(5.0)
            };
            let params = config.campaign;
            let server = NetServer::bind(config).expect("bind");
            let addr = server.local_addr().expect("addr").to_string();
            let server = thread::spawn(move || server.run());

            let fleet = run_mux_fleet(MuxFleetConfig {
                seed: 7,
                codec,
                timeout: Duration::from_secs(60),
                ..MuxFleetConfig::new(addr, 8)
            })
            .expect("fleet ran");
            let run = server.join().unwrap().expect("server ran");

            assert!(fleet.saw_completion, "fleet should see completion");
            assert!(fleet.assignments > 0 && fleet.reported > 0);
            assert!(!fleet.request_latencies_ms.is_empty());
            let baseline = NetCampaign::build(params).baseline_outputs();
            assert_eq!(
                serde_json::to_string(&run.outputs).unwrap(),
                serde_json::to_string(&baseline).unwrap(),
                "merged artifact must match the baseline under {codec}"
            );
        }
    }

    /// Faulty mux agents must exercise the reissue and quorum paths
    /// without wedging the campaign.
    #[test]
    fn mux_fleet_with_faults_still_converges() {
        let config = NetServerConfig {
            sweep_ms: 25,
            ..NetServerConfig::loopback(2.0)
        };
        let params = config.campaign;
        let server = NetServer::bind(config).expect("bind");
        let addr = server.local_addr().expect("addr").to_string();
        let server = thread::spawn(move || server.run());

        let fleet = run_mux_fleet(MuxFleetConfig {
            seed: 11,
            profile: FaultProfile::flaky(),
            timeout: Duration::from_secs(120),
            ..MuxFleetConfig::new(addr, 8)
        })
        .expect("fleet ran");
        let run = server.join().unwrap().expect("server ran");

        assert!(fleet.saw_completion);
        assert!(
            fleet.disconnect_faults + fleet.stall_faults + fleet.corrupt_faults > 0,
            "flaky profile should have injected something: {fleet:?}"
        );
        let baseline = NetCampaign::build(params).baseline_outputs();
        assert_eq!(
            serde_json::to_string(&run.outputs).unwrap(),
            serde_json::to_string(&baseline).unwrap(),
        );
    }

    /// A saboteur that corrupts every payload, against a trust-on
    /// server: the campaign must still finish with the baseline
    /// artifact, and the saboteur must end the run quarantined —
    /// starved of work instead of burning replicas.
    #[test]
    fn mux_saboteur_is_quarantined_under_trust() {
        let mut config = NetServerConfig {
            sweep_ms: 25,
            ..NetServerConfig::loopback(2.0)
        };
        config.faults.trust = TrustConfig::on();
        let trust_cfg = config.faults.trust;
        let params = config.campaign;
        let server = NetServer::bind(config).expect("bind");
        let addr = server.local_addr().expect("addr").to_string();
        let server = thread::spawn(move || server.run());

        let fleet = run_mux_fleet(MuxFleetConfig {
            seed: 13,
            saboteurs: 1,
            timeout: Duration::from_secs(120),
            ..MuxFleetConfig::new(addr, 8)
        })
        .expect("fleet ran");
        let run = server.join().unwrap().expect("server ran");

        assert!(fleet.saw_completion);
        assert!(fleet.corrupt_faults > 0, "saboteur never got to corrupt");
        let trust = run.trust.expect("trust summary present when enabled");
        assert!(
            trust.ever_quarantined >= 1,
            "saboteur should have been quarantined: {trust:?}"
        );
        let saboteur = run
            .agent_trust
            .iter()
            .find(|(a, _)| *a == 1)
            .map(|(_, t)| *t)
            .expect("saboteur fetched work");
        assert_eq!(
            saboteur.band(f64::MAX, &trust_cfg),
            TrustBand::Probation,
            "a quarantined window resets to a fresh probation ledger"
        );
        assert!(saboteur.quarantine_count >= 1);
        let baseline = NetCampaign::build(params).baseline_outputs();
        assert_eq!(
            serde_json::to_string(&run.outputs).unwrap(),
            serde_json::to_string(&baseline).unwrap(),
            "trust must never cost artifact correctness"
        );
    }
}

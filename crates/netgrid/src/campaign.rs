//! Campaign materialisation shared by server and agents.
//!
//! The real grid ships protein structures inside each workunit download.
//! Here the whole campaign is synthetic and deterministic, so the server
//! ships only the *recipe* ([`crate::protocol::CampaignParams`], a few
//! dozen bytes inside `HelloAck`) and both sides expand it into the same
//! library, cost matrix, and launch-ordered workunit catalog. An agent
//! can therefore never dock against the wrong catalog: workunit indices
//! in `Assignment` frames refer to a structure both ends derived from
//! identical inputs.
//!
//! The catalog order matters: it must match the simulator byte for byte
//! (same `LaunchSchedule::cheapest_first` traversal the in-process
//! `VolunteerGridSim` uses), because the e2e bench asserts the merged
//! wire-level output is identical to the in-process baseline.

use crate::protocol::CampaignParams;
use gridsim::server::WorkunitCatalogEntry;
use maxdo::{
    DockingEngine, DockingOutput, EnergyParams, LibraryConfig, MinimizeParams, ProteinLibrary,
};
use timemodel::CostMatrix;
use validation::ResultFile;
use workunit::{CampaignPackage, LaunchSchedule, WorkunitSpec};

/// κ of the cost model used for catalog cost estimates. The estimates
/// only steer scheduling order and deadlines — any fixed value keeps the
/// two ends consistent — so this matches the simulator's tests.
const COST_KAPPA: f64 = 0.3;

/// A fully materialised campaign: the synthetic library plus the
/// launch-ordered workunit list, identical on server and agent.
pub struct NetCampaign {
    params: CampaignParams,
    lib: ProteinLibrary,
    /// Workunits in launch order; `Assignment.workunit` indexes this.
    specs: Vec<WorkunitSpec>,
    /// Scheduler catalog entries, parallel to `specs`.
    catalog: Vec<WorkunitCatalogEntry>,
    minimize: MinimizeParams,
}

impl NetCampaign {
    /// Expands a recipe into the full campaign. Deterministic: equal
    /// `params` yield equal catalogs on every host.
    pub fn build(params: CampaignParams) -> Self {
        let config = LibraryConfig {
            separation_spacing: params.separation_spacing,
            ..LibraryConfig::tiny(params.proteins as usize)
        };
        let lib = ProteinLibrary::generate(config, params.lib_seed);
        let matrix = CostMatrix::from_cost_model(&lib, &maxdo::CostModel::with_kappa(COST_KAPPA));
        let pkg = CampaignPackage::new(&lib, &matrix, params.h_seconds);
        let schedule = LaunchSchedule::cheapest_first(&pkg);
        // Mirror the simulator's catalog construction exactly: workunits
        // in launch order, receptor field = launch index of the receptor.
        let mut receptor_index = vec![0u16; schedule.len()];
        for (launch_idx, &pid) in schedule.order().iter().enumerate() {
            receptor_index[pid.0 as usize] = launch_idx as u16;
        }
        let mut specs = Vec::new();
        let mut catalog = Vec::new();
        schedule.for_each_workunit_in_order(&pkg, |wu| {
            let mct = matrix.get(wu.receptor.0 as usize, wu.ligand.0 as usize);
            catalog.push(WorkunitCatalogEntry {
                ref_seconds: (wu.positions as f64 * mct) as f32,
                position_ref_seconds: mct as f32,
                receptor: receptor_index[wu.receptor.0 as usize],
            });
            specs.push(wu);
        });
        Self {
            params,
            lib,
            specs,
            catalog,
            minimize: MinimizeParams {
                max_iterations: params.max_iterations as usize,
                ..MinimizeParams::default()
            },
        }
    }

    /// The recipe this campaign was built from.
    pub fn params(&self) -> CampaignParams {
        self.params
    }

    /// Workunits in launch order.
    pub fn specs(&self) -> &[WorkunitSpec] {
        &self.specs
    }

    /// Workunit `wu`'s spec.
    pub fn spec(&self, wu: u32) -> WorkunitSpec {
        self.specs[wu as usize]
    }

    /// The scheduler catalog (consumed by `SchedulerCore::new`).
    pub fn catalog(&self) -> Vec<WorkunitCatalogEntry> {
        self.catalog.clone()
    }

    /// Total workunits in the campaign.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// True for the degenerate empty campaign.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// A docking engine for one workunit's couple. Engines borrow the
    /// library, so they are built per workunit rather than cached.
    pub fn engine(&self, spec: WorkunitSpec) -> DockingEngine<'_> {
        DockingEngine::for_couple(
            &self.lib,
            spec.receptor,
            spec.ligand,
            EnergyParams::default(),
            self.minimize,
        )
    }

    /// Computes one workunit in-process (the agent-free reference path).
    pub fn compute(&self, spec: WorkunitSpec) -> DockingOutput {
        self.engine(spec)
            .dock_range(spec.isep_start, spec.isep_end())
    }

    /// Computes every workunit in catalog order — the baseline the
    /// wire-level campaign's merged output must match byte for byte.
    pub fn baseline_outputs(&self) -> Vec<DockingOutput> {
        self.specs.iter().map(|&s| self.compute(s)).collect()
    }

    /// Wraps a reported output as a §5.2 result file so the standard
    /// validation checks (line count, value ranges, canonical indices)
    /// can judge it.
    pub fn result_file(&self, wu: u32, output: &DockingOutput) -> ResultFile {
        let spec = self.specs[wu as usize];
        ResultFile {
            receptor: spec.receptor,
            ligand: spec.ligand,
            isep_start: spec.isep_start,
            isep_end: spec.isep_end(),
            nrot: maxdo::NROT_COUPLES as u32,
            rows: output.rows.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::CampaignParams;

    #[test]
    fn same_params_build_identical_catalogs() {
        let a = NetCampaign::build(CampaignParams::tiny());
        let b = NetCampaign::build(CampaignParams::tiny());
        assert_eq!(a.specs(), b.specs());
        assert!(!a.is_empty());
        for (x, y) in a.catalog().iter().zip(b.catalog()) {
            assert_eq!(x.ref_seconds, y.ref_seconds);
            assert_eq!(x.receptor, y.receptor);
        }
    }

    #[test]
    fn catalog_matches_the_simulator_construction() {
        // The simulator builds its catalog from the same package +
        // schedule; reproduce that path directly and compare.
        let params = CampaignParams::tiny();
        let net = NetCampaign::build(params);
        let config = LibraryConfig {
            separation_spacing: params.separation_spacing,
            ..LibraryConfig::tiny(params.proteins as usize)
        };
        let lib = ProteinLibrary::generate(config, params.lib_seed);
        let matrix = CostMatrix::from_cost_model(&lib, &maxdo::CostModel::with_kappa(COST_KAPPA));
        let pkg = CampaignPackage::new(&lib, &matrix, params.h_seconds);
        let schedule = LaunchSchedule::cheapest_first(&pkg);
        let mut expected = Vec::new();
        schedule.for_each_workunit_in_order(&pkg, |wu| expected.push(wu));
        assert_eq!(net.specs(), &expected[..]);
    }

    #[test]
    fn result_file_of_computed_workunit_passes_validation() {
        let net = NetCampaign::build(CampaignParams::tiny());
        let out = net.compute(net.spec(0));
        let file = net.result_file(0, &out);
        let fails = validation::checks::check_file(&file, &validation::ValueRanges::default());
        assert!(fails.is_empty(), "failures: {fails:?}");
    }
}

//! Write-ahead journal + snapshots: crash-safe server state.
//!
//! The paper's campaign ran for 26 weeks; a server whose scheduling
//! state lives only in RAM cannot survive such a run. This module makes
//! [`GridState`] durable the way BOINC's database does, but with the
//! repo's own machinery: every scheduler transition — replica issue,
//! result report (with verdict), deadline expiry — is appended to a
//! per-campaign write-ahead log as a length-prefixed, FNV-checksummed
//! frame (the exact wire framing from [`crate::protocol`]), and a
//! periodic compacting snapshot bounds replay cost.
//!
//! # File layout
//!
//! A journal directory holds two files:
//!
//! * `wal.bin` — a header frame ([`JournalRecord::Header`]: campaign
//!   recipe, server config, fault knobs, epoch) followed by one frame
//!   per transition, in the exact order the state lock applied them.
//! * `snapshot.bin` — a header frame plus one [`JournalRecord::Snapshot`]
//!   frame holding a complete [`GridSnapshot`]. Written atomically
//!   (tmp + fsync + rename), so it is always either absent, the old
//!   snapshot, or the new one — never torn.
//!
//! # Recovery
//!
//! [`open_journaled`] restores the snapshot (if any) and then replays
//! the wal tail **through the live transition entry points**
//! ([`GridState::fetch`] / [`GridState::report`] / [`GridState::sweep`])
//! rather than through any parallel restore path, asserting at each step
//! that the state makes the *same decision it made live* (same replica
//! issued, same verdict, same expiry count). A divergence means the
//! journal and the code disagree and recovery fails loudly instead of
//! silently forking the campaign.
//!
//! Replayed reports need their payloads only when the payload became
//! server state: accepted artifacts and quorum candidates are journaled
//! in full, while `BoundsRejected`, `Duplicate`, `SpotMismatch` and
//! `SpotVoid` reports — whose payloads the server discards on arrival —
//! are replayed with a synthesized empty payload (an empty result file
//! always fails the §5.2 line-count check, and an empty payload's
//! fingerprint never matches an accepted artifact, reproducing each
//! rejection exactly).
//!
//! # Consistency model
//!
//! A `kill -9` loses at most the un-fsynced suffix of the wal (none
//! under [`FsyncPolicy::Always`]). Replay stops at the first torn or
//! checksum-failing frame and truncates the wal there, so the recovered
//! state is always a *prefix* of the crashed run — a consistent earlier
//! state. Prefix loss is safe by construction: a lost `Fetch` replica
//! ages out of nothing (it was never outstanding in the recovered
//! state), a lost `Report` is re-requested because its replica is still
//! outstanding and will expire, and the §5 validation rules (quorum /
//! bounds) judge the re-computed results exactly as they would have the
//! originals. The merged artifact is therefore byte-identical to an
//! uninterrupted run's no matter where the crash landed — the property
//! `tests/netgrid_restart.rs` and the CI restart-smoke job pin.
//!
//! # Snapshot / epoch handshake
//!
//! Compaction writes the snapshot first, then resets the wal. A crash
//! between the two leaves a snapshot one epoch *ahead* of the wal
//! header; recovery detects this (`snapshot epoch == wal epoch + 1`),
//! discards the stale wal — every record in it is already folded into
//! the snapshot — and resets it to the snapshot's epoch.

use crate::campaign::NetCampaign;
use crate::faults::ServerFaults;
use crate::protocol::{self, CampaignParams, DecodeError};
use crate::shard::ShardSpec;
use crate::state::{GridSnapshot, GridState, Verdict, WorkReply};
use gridsim::server::{ReplicaId, ServerConfig};
use gridsim::SimTime;
use maxdo::DockingOutput;
use serde::{Deserialize, Serialize};
use std::fs::{self, File, OpenOptions};
use std::io::{self, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Wal file name inside the journal directory.
pub const WAL_FILE: &str = "wal.bin";
/// Snapshot file name inside the journal directory.
pub const SNAPSHOT_FILE: &str = "snapshot.bin";
/// Scratch name the snapshot is staged under before the atomic rename.
const SNAPSHOT_TMP: &str = "snapshot.tmp";

/// When appended frames are flushed to disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fdatasync` after every append: a crash loses nothing.
    Always,
    /// `fdatasync` every N appends: a crash loses at most the last N
    /// transitions (replay recovers a consistent earlier state).
    EveryN(u64),
    /// Never fsync explicitly; the OS flushes when it pleases. Fastest,
    /// still torn-tail safe, bounded only by the page cache.
    Never,
}

impl FsyncPolicy {
    /// Parses `always` | `never` | `every=N`, as accepted by
    /// `hcmd-server --fsync`.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "always" => Ok(Self::Always),
            "never" => Ok(Self::Never),
            other => match other.strip_prefix("every=").map(str::parse::<u64>) {
                Some(Ok(n)) if n > 0 => Ok(Self::EveryN(n)),
                _ => Err(format!("bad fsync policy '{other}' (always|never|every=N)")),
            },
        }
    }
}

impl Default for FsyncPolicy {
    fn default() -> Self {
        // Batched durability: a crash costs at most 64 transitions of
        // replay-safe work, and appends stay off the fsync critical
        // path in the common case.
        FsyncPolicy::EveryN(64)
    }
}

/// Journal location and policy knobs.
#[derive(Debug, Clone)]
pub struct JournalConfig {
    /// Directory holding `wal.bin` / `snapshot.bin` (created if absent).
    pub dir: PathBuf,
    /// Flush policy for wal appends.
    pub fsync: FsyncPolicy,
    /// Appends between compacting snapshots (0 = never snapshot).
    pub snapshot_every: u64,
}

impl JournalConfig {
    /// Default policies for a journal rooted at `dir`.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            fsync: FsyncPolicy::default(),
            snapshot_every: 4096,
        }
    }
}

/// One journaled frame. `Header` opens both files; `Snapshot` appears
/// only in `snapshot.bin`; the rest are the wal's transition stream.
// The `Snapshot` variant dwarfs the per-transition records, but the
// vendored serde has no `Box<T>` impls to shrink it with, and records
// only ever live long enough to be framed.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum JournalRecord {
    /// Identity of the journaled campaign. Recovery refuses to replay a
    /// journal whose recipe/config/faults differ from the server's.
    Header {
        /// Snapshot generation this file belongs to (see module docs).
        epoch: u64,
        /// The campaign recipe (both ends re-derive the catalog from it).
        params: CampaignParams,
        /// Scheduler configuration.
        config: ServerConfig,
        /// Server-side fault/limit knobs.
        faults: ServerFaults,
        /// Which shard of the campaign this journal belongs to. Old
        /// (pre-sharding) journals read as solo. Shard 0's WAL refuses
        /// to replay into a server configured as shard 1 — workunit
        /// ownership differs, so replay would diverge or silently fork
        /// the campaign.
        #[serde(default = "ShardSpec::solo")]
        shard: ShardSpec,
    },
    /// One `GridState::fetch` call and its decision.
    Fetch {
        /// Server-clock seconds of the call.
        now_s: f64,
        /// Requesting agent.
        agent: u64,
        /// `Some((replica, workunit))` if work was issued, `None` for a
        /// backoff (journaled too: backoff counters are state).
        assigned: Option<(u64, u32)>,
    },
    /// One `GridState::report` call and its verdict. `output` is kept
    /// exactly when the payload became server state (candidate or
    /// accepted artifact); rejected/duplicate payloads are dropped on
    /// arrival live, so they are not persisted either.
    Report {
        /// Server-clock seconds of the call.
        now_s: f64,
        /// Reporting replica.
        replica: u64,
        /// Its workunit.
        workunit: u32,
        /// The live verdict (replay must reproduce it).
        verdict: Verdict,
        /// The payload, for verdicts whose payload the server kept.
        output: Option<DockingOutput>,
    },
    /// One `GridState::sweep` call that expired at least one replica
    /// (no-op sweeps are not journaled — they change nothing).
    Sweep {
        /// Server-clock seconds of the call.
        now_s: f64,
        /// Replicas expired.
        expired: u64,
    },
    /// One outbound lease: ownership of `wus` left for `to_shard`.
    /// Written *before* the grant is sent, so a crash after the send
    /// can never forget having granted (the unsafe direction — both
    /// shards would own the range).
    LeaseOut {
        /// Server-clock seconds of the grant.
        now_s: f64,
        /// Lease id ([`crate::shard::lease_id`]).
        lease: u64,
        /// The lessee shard.
        to_shard: u16,
        /// The workunits whose ownership moved.
        wus: Vec<u32>,
    },
    /// One inbound lease: ownership of `wus` adopted from the grantor
    /// encoded in the lease id. A crash before this record is written
    /// is safe — the next `ShardStatus` advertisement omits the lease
    /// and the grantor re-sends it.
    LeaseIn {
        /// Server-clock seconds of the adoption.
        now_s: f64,
        /// Lease id ([`crate::shard::lease_id`]).
        lease: u64,
        /// The workunits whose ownership arrived.
        wus: Vec<u32>,
    },
    /// A complete state snapshot (only in `snapshot.bin`). It dwarfs
    /// every per-transition record, but lives only long enough to be
    /// framed (the vendored serde has no `Box<T>` impls to shrink it).
    Snapshot {
        /// Server-clock seconds when the snapshot was cut.
        now_s: f64,
        /// The full wire-level state.
        grid: GridSnapshot,
    },
}

struct Tele {
    appends: &'static telemetry::Counter,
    bytes: &'static telemetry::Counter,
    fsyncs: &'static telemetry::Counter,
    snapshots: &'static telemetry::Counter,
    replayed: &'static telemetry::Counter,
}

impl Tele {
    fn new() -> Self {
        Self {
            appends: telemetry::counter("journal.appends"),
            bytes: telemetry::counter("journal.bytes"),
            fsyncs: telemetry::counter("journal.fsyncs"),
            snapshots: telemetry::counter("journal.snapshots"),
            replayed: telemetry::counter("journal.replayed"),
        }
    }
}

/// An open write-ahead journal. Owned by [`GridState`] (behind the same
/// lock that orders the transitions), so the wal order is exactly the
/// apply order.
pub struct Journal {
    dir: PathBuf,
    wal: File,
    epoch: u64,
    params: CampaignParams,
    config: ServerConfig,
    faults: ServerFaults,
    shard: ShardSpec,
    fsync: FsyncPolicy,
    snapshot_every: u64,
    appends_since_sync: u64,
    appends_since_snapshot: u64,
    tele: Tele,
}

fn frame(rec: &JournalRecord) -> Vec<u8> {
    let json = serde_json::to_string(rec).expect("JournalRecord serializes");
    protocol::frame_payload(json.as_bytes()).to_vec()
}

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

impl Journal {
    fn header(&self) -> JournalRecord {
        JournalRecord::Header {
            epoch: self.epoch,
            params: self.params,
            config: self.config,
            faults: self.faults,
            shard: self.shard,
        }
    }

    /// Appends one transition frame, honouring the fsync policy.
    pub fn append(&mut self, rec: &JournalRecord) -> io::Result<()> {
        let bytes = frame(rec);
        self.wal.write_all(&bytes)?;
        self.tele.appends.inc();
        self.tele.bytes.add(bytes.len() as u64);
        self.appends_since_sync += 1;
        self.appends_since_snapshot += 1;
        let due = match self.fsync {
            FsyncPolicy::Always => true,
            FsyncPolicy::EveryN(n) => self.appends_since_sync >= n,
            FsyncPolicy::Never => false,
        };
        if due {
            self.wal.sync_data()?;
            self.tele.fsyncs.inc();
            self.appends_since_sync = 0;
        }
        Ok(())
    }

    /// Flushes any appends the `EveryN` fsync policy left unsynced. The
    /// server's event loop calls this on its sweep timer, so a burst of
    /// traffic that stops mid-batch still reaches the platter within one
    /// timer tick instead of waiting for the Nth append that may never
    /// come. A no-op under `Always` (nothing pending) and respected as a
    /// no-op under `Never` (the operator opted out of fsync entirely).
    pub fn flush(&mut self) -> io::Result<()> {
        if self.appends_since_sync == 0 || matches!(self.fsync, FsyncPolicy::Never) {
            return Ok(());
        }
        self.wal.sync_data()?;
        self.tele.fsyncs.inc();
        self.appends_since_sync = 0;
        Ok(())
    }

    /// True when enough appends accumulated that the owner should cut a
    /// compacting snapshot.
    pub fn snapshot_due(&self) -> bool {
        self.snapshot_every > 0 && self.appends_since_snapshot >= self.snapshot_every
    }

    /// Current snapshot epoch (bumped by each compacting snapshot).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Wal frames appended since the last compacting snapshot — the
    /// "journal lag" an operator watches to confirm compaction keeps up.
    pub fn appends_since_snapshot(&self) -> u64 {
        self.appends_since_snapshot
    }

    /// Appends since the last fsync: the phase of the `every=N` batch
    /// counter. [`open_journaled`] restores it from the replayed wal
    /// tail so restart does not silently reset the durability window.
    pub fn fsync_phase(&self) -> u64 {
        self.appends_since_sync
    }

    /// Writes a compacting snapshot and resets the wal. Atomic against
    /// crashes at every point: see the epoch handshake in the module
    /// docs.
    pub fn write_snapshot(&mut self, now_s: f64, grid: GridSnapshot) -> io::Result<()> {
        self.epoch += 1;
        let tmp = self.dir.join(SNAPSHOT_TMP);
        {
            let mut f = File::create(&tmp)?;
            f.write_all(&frame(&self.header()))?;
            f.write_all(&frame(&JournalRecord::Snapshot { now_s, grid }))?;
            f.sync_all()?;
        }
        fs::rename(&tmp, self.dir.join(SNAPSHOT_FILE))?;
        sync_dir(&self.dir)?;
        // From here the snapshot alone can recover the state; the old
        // wal epoch is dead weight and can be reset.
        self.wal.set_len(0)?;
        self.wal.seek(SeekFrom::Start(0))?;
        self.wal.write_all(&frame(&self.header()))?;
        self.wal.sync_data()?;
        self.appends_since_snapshot = 0;
        self.appends_since_sync = 0;
        self.tele.snapshots.inc();
        self.tele.fsyncs.inc();
        Ok(())
    }
}

/// Fsyncs a directory so a just-renamed file survives a crash.
fn sync_dir(dir: &Path) -> io::Result<()> {
    File::open(dir)?.sync_all()
}

/// Reads every well-formed frame of `path`, returning the decoded
/// records and the byte offset just past the last good frame. A torn or
/// checksum-failing tail stops the scan (that is the crash-consistency
/// contract); a frame whose checksum passes but whose JSON does not
/// parse is a hard error (the file was written by different code).
fn read_frames(path: &Path) -> io::Result<(Vec<JournalRecord>, u64)> {
    let buf = fs::read(path)?;
    let mut records = Vec::new();
    let mut off = 0usize;
    while off < buf.len() {
        match protocol::deframe(&buf[off..]) {
            Ok((_version, payload, consumed)) => {
                let text = std::str::from_utf8(payload).map_err(|e| {
                    bad(format!("{}: frame at {off} not UTF-8: {e}", path.display()))
                })?;
                let rec: JournalRecord = serde_json::from_str(text).map_err(|e| {
                    bad(format!(
                        "{}: frame at {off} unparsable: {e:?}",
                        path.display()
                    ))
                })?;
                records.push(rec);
                off += consumed;
            }
            Err(DecodeError::Incomplete { .. })
            | Err(DecodeError::Checksum { .. })
            | Err(DecodeError::BadMagic(_)) => break, // torn tail
            Err(e) => return Err(bad(format!("{}: {e:?}", path.display()))),
        }
    }
    Ok((records, off as u64))
}

/// Checks a recovered header against the server's own campaign identity,
/// returning its epoch.
fn check_header(
    rec: Option<&JournalRecord>,
    what: &str,
    params: CampaignParams,
    config: ServerConfig,
    faults: ServerFaults,
    shard: ShardSpec,
) -> io::Result<u64> {
    match rec {
        Some(&JournalRecord::Header {
            epoch,
            params: p,
            config: c,
            faults: f,
            shard: s,
        }) => {
            if p != params || c != config || f != faults {
                return Err(bad(format!(
                    "{what} belongs to a different campaign/config; refusing to replay"
                )));
            }
            if s != shard {
                return Err(bad(format!(
                    "{what} belongs to shard {}/{}, this server is shard {}/{}; \
                     refusing to replay",
                    s.shard_id, s.shards, shard.shard_id, shard.shards
                )));
            }
            Ok(epoch)
        }
        _ => Err(bad(format!("{what} does not start with a Header frame"))),
    }
}

/// Replays one wal transition through the live entry points, asserting
/// the state reproduces the recorded decision.
fn apply(state: &mut GridState, campaign: &NetCampaign, rec: &JournalRecord) -> io::Result<()> {
    match rec {
        JournalRecord::Fetch {
            now_s,
            agent,
            assigned,
        } => {
            let reply = state.fetch(SimTime::new(*now_s), *agent);
            let got = match &reply {
                WorkReply::Assigned(a) => Some((a.replica.0, a.workunit)),
                WorkReply::Backoff { .. } => None,
            };
            if got != *assigned {
                return Err(bad(format!(
                    "replay diverged: fetch(agent={agent}) issued {got:?}, journal says {assigned:?}"
                )));
            }
        }
        JournalRecord::Report {
            now_s,
            replica,
            workunit,
            verdict,
            output,
        } => {
            let payload = match (output, verdict) {
                (Some(out), _) => out.clone(),
                // The server discarded these payloads on arrival; an
                // empty result file fails the §5.2 line-count check, so
                // it reproduces the bounds rejection, and a duplicate is
                // dropped before its payload is ever inspected. A spot
                // mismatch is judged by fingerprint against the accepted
                // artifact — an empty payload never matches a real one,
                // reproducing the mismatch — and a voided spot check
                // never looks at its payload at all.
                (
                    None,
                    Verdict::BoundsRejected
                    | Verdict::Duplicate
                    | Verdict::SpotMismatch
                    | Verdict::SpotVoid,
                ) => DockingOutput {
                    rows: Vec::new(),
                    evaluations: 0,
                },
                (None, v) => {
                    return Err(bad(format!(
                        "journal Report with verdict {v:?} is missing its payload"
                    )))
                }
            };
            let d = state.report(
                SimTime::new(*now_s),
                campaign,
                ReplicaId(*replica),
                *workunit,
                payload,
            );
            if d.verdict != *verdict {
                return Err(bad(format!(
                    "replay diverged: report(replica={replica}, wu={workunit}) judged {:?}, \
                     journal says {verdict:?}",
                    d.verdict
                )));
            }
        }
        JournalRecord::Sweep { now_s, expired } => {
            let got = state.sweep(SimTime::new(*now_s)) as u64;
            if got != *expired {
                return Err(bad(format!(
                    "replay diverged: sweep expired {got}, journal says {expired}"
                )));
            }
        }
        JournalRecord::LeaseOut {
            now_s,
            lease,
            to_shard,
            wus,
        } => {
            // The live grant only journals workunits it actually moved,
            // so replay must move every one of them again.
            let moved = state.apply_lease_out(SimTime::new(*now_s), *lease, *to_shard, wus);
            if moved != wus.len() {
                return Err(bad(format!(
                    "replay diverged: lease {lease:#x} out moved {moved} of {} workunits",
                    wus.len()
                )));
            }
        }
        JournalRecord::LeaseIn { now_s, lease, wus } => {
            let moved = state.adopt_lease(SimTime::new(*now_s), *lease, wus);
            if moved != wus.len() {
                return Err(bad(format!(
                    "replay diverged: lease {lease:#x} in moved {moved} of {} workunits",
                    wus.len()
                )));
            }
        }
        JournalRecord::Header { .. } | JournalRecord::Snapshot { .. } => {
            return Err(bad(
                "Header/Snapshot frame inside the wal transition stream",
            ));
        }
    }
    Ok(())
}

/// Opens (or creates) the journal under `cfg.dir` and returns the
/// recovered [`GridState`] — snapshot restored, wal tail replayed, the
/// journal attached and ready for new appends — plus the server-clock
/// second recovery reached, which the caller must use as its clock
/// offset so time stays monotone across restarts.
pub fn open_journaled(
    cfg: &JournalConfig,
    campaign: &NetCampaign,
    config: ServerConfig,
    faults: ServerFaults,
    shard: ShardSpec,
) -> io::Result<(GridState, f64)> {
    fs::create_dir_all(&cfg.dir)?;
    let params = campaign.params();
    let tele = Tele::new();
    let snap_path = cfg.dir.join(SNAPSHOT_FILE);
    let wal_path = cfg.dir.join(WAL_FILE);
    // A crash can leave a staged snapshot behind; it is dead either way.
    let _ = fs::remove_file(cfg.dir.join(SNAPSHOT_TMP));

    // 1. Restore the snapshot, if one exists.
    let mut epoch = 0u64;
    let mut state = match snap_path.exists() {
        true => {
            let (records, _) = read_frames(&snap_path)?;
            epoch = check_header(records.first(), "snapshot", params, config, faults, shard)?;
            match records.get(1) {
                Some(JournalRecord::Snapshot { grid, .. }) => {
                    GridState::restore(campaign, config, faults, grid.clone()).map_err(bad)?
                }
                _ => return Err(bad("snapshot file has no Snapshot frame")),
            }
        }
        false => GridState::new_sharded(campaign, config, faults, shard),
    };

    // 2. Replay the wal tail through the live entry points.
    let mut wal_valid = 0u64;
    let mut tail_len = 0u64;
    if wal_path.exists() {
        let (records, valid) = read_frames(&wal_path)?;
        let wal_epoch = check_header(records.first(), "wal", params, config, faults, shard)?;
        if wal_epoch == epoch {
            for rec in &records[1..] {
                apply(&mut state, campaign, rec)?;
                tele.replayed.inc();
                tail_len += 1;
            }
            wal_valid = valid;
        } else if wal_epoch + 1 == epoch {
            // Crash between snapshot rename and wal reset: every wal
            // record is already folded into the snapshot. Discard.
            wal_valid = 0;
        } else {
            return Err(bad(format!(
                "wal epoch {wal_epoch} does not match snapshot epoch {epoch}"
            )));
        }
    }

    // 3. Open the wal for appending, truncated to the last good frame
    //    (drops any torn tail / stale epoch).
    let wal = OpenOptions::new()
        .read(true)
        .write(true)
        .create(true)
        .truncate(false) // the valid prefix is set_len() below, not dropped here
        .open(&wal_path)?;
    let mut journal = Journal {
        dir: cfg.dir.clone(),
        wal,
        epoch,
        params,
        config,
        faults,
        shard,
        fsync: cfg.fsync,
        snapshot_every: cfg.snapshot_every,
        // The fsync phase survives the restart: the replayed tail counts
        // against the `every=N` batch exactly as it did live, so the
        // next fsync lands on the same append boundary and a crash
        // shortly after recovery never widens the durability window to
        // up to 2N-1 unsynced appends.
        appends_since_sync: match cfg.fsync {
            FsyncPolicy::EveryN(n) => tail_len % n,
            FsyncPolicy::Always | FsyncPolicy::Never => 0,
        },
        appends_since_snapshot: tail_len,
        tele,
    };
    if wal_valid == 0 {
        journal.wal.set_len(0)?;
        journal.wal.seek(SeekFrom::Start(0))?;
        let hdr = frame(&journal.header());
        journal.wal.write_all(&hdr)?;
        journal.wal.sync_data()?;
    } else {
        journal.wal.set_len(wal_valid)?;
        journal.wal.seek(SeekFrom::Start(wal_valid))?;
    }

    let resume_s = state.last_now();
    state.attach_journal(journal);
    Ok((state, resume_s))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fsync_policy_parses() {
        assert_eq!(FsyncPolicy::parse("always"), Ok(FsyncPolicy::Always));
        assert_eq!(FsyncPolicy::parse("never"), Ok(FsyncPolicy::Never));
        assert_eq!(FsyncPolicy::parse("every=8"), Ok(FsyncPolicy::EveryN(8)));
        assert!(FsyncPolicy::parse("every=0").is_err());
        assert!(FsyncPolicy::parse("sometimes").is_err());
    }

    #[test]
    fn records_round_trip_through_the_wire_framing() {
        let rec = JournalRecord::Fetch {
            now_s: 1.5,
            agent: 42,
            assigned: Some((7, 3)),
        };
        let bytes = frame(&rec);
        let (_version, payload, consumed) = protocol::deframe(&bytes).expect("well-formed frame");
        assert_eq!(consumed, bytes.len());
        let back: JournalRecord =
            serde_json::from_str(std::str::from_utf8(payload).unwrap()).unwrap();
        assert_eq!(back, rec);
    }

    #[test]
    fn torn_tail_stops_the_scan_at_the_last_good_frame() {
        let dir = std::env::temp_dir().join(format!("hcmd-journal-torn-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wal.bin");
        let a = frame(&JournalRecord::Sweep {
            now_s: 1.0,
            expired: 2,
        });
        let b = frame(&JournalRecord::Sweep {
            now_s: 2.0,
            expired: 1,
        });
        let mut bytes = a.clone();
        bytes.extend_from_slice(&b[..b.len() / 2]); // torn mid-frame
        fs::write(&path, &bytes).unwrap();
        let (records, valid) = read_frames(&path).unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(valid, a.len() as u64);
        fs::remove_dir_all(&dir).unwrap();
    }
}

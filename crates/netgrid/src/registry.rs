//! The multi-campaign registry: N isolated campaigns under one server.
//!
//! The paper's grid was one project among many on a shared volunteer
//! pool; BOINC models that as *project shares*. Here the registry holds
//! one [`GridState`] per campaign — its own catalog, journal directory,
//! snapshot cadence, and merged artifact — and a
//! [`gridsim::FairShare`] ledger arbitrates which campaign's queue a
//! volunteer ask is served from: deficit-weighted round robin over
//! *delivered reference-seconds*, priority as the tie-break, with
//! work-starved campaigns lending their idle capacity and being repaid
//! through the same deficit accounting.
//!
//! Isolation rules:
//! - Scheduling, validation, payloads, and journals are strictly
//!   per-campaign. A campaign's merged artifact is byte-identical to
//!   the artifact of a solo run of that campaign, because nothing any
//!   other campaign does can reach its `GridState`.
//! - Trust is per-agent but **global across campaigns**: an agent
//!   quarantined by any campaign's ledger is denied work by all of
//!   them (the gate sits above the per-slot fetch, so per-slot journals
//!   never record the cross-campaign denial and replay stays a pure
//!   function of each slot's own records).
//! - Fair-share deliveries are *derived*, not journaled: recovery
//!   re-seeds each campaign's delivered ref-seconds from
//!   `SchedulerCore::completed_ref_seconds()`, the durable source of
//!   truth.

use crate::campaign::NetCampaign;
use crate::faults::ServerFaults;
use crate::journal::{open_journaled, JournalConfig};
use crate::protocol::CampaignParams;
use crate::shard::ShardSpec;
use crate::state::{GridState, ResultDisposition, WorkReply};
use gridsim::server::{ReplicaId, ServerConfig};
use gridsim::{CampaignShare, FairShare, SimTime};
use maxdo::DockingOutput;
use std::io;
use std::sync::Arc;

/// One campaign's registration: its name (journal subdirectory and
/// artifact suffix), recipe, and fair-share weight.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignDef {
    /// Registry key; also the journal subdirectory and the per-campaign
    /// artifact suffix, so it is restricted to `[A-Za-z0-9._-]`.
    pub name: String,
    /// The campaign recipe announced to attached agents.
    pub params: CampaignParams,
    /// Fair-share weight (normalised against the other campaigns).
    pub share: f64,
    /// Tie-break when deficits are equal: higher wins.
    pub priority: u32,
}

impl CampaignDef {
    /// The implicit single campaign of an unconfigured server.
    pub fn default_solo(params: CampaignParams) -> Self {
        Self {
            name: "default".into(),
            params,
            share: 1.0,
            priority: 0,
        }
    }

    /// Parses one `--campaign` value: `name:share:priority[:k=v,...]`.
    ///
    /// The optional trailing segment overrides recipe knobs on top of
    /// `base`: `proteins`, `seed` (library seed), `hours` (`h` target,
    /// reference-CPU seconds), `spacing` (Å), `iters` (minimiser cap).
    pub fn parse(spec: &str, base: CampaignParams) -> Result<Self, String> {
        let mut parts = spec.splitn(4, ':');
        let name = parts.next().unwrap_or_default().trim();
        if name.is_empty()
            || !name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-'))
        {
            return Err(format!(
                "campaign name {name:?} must be non-empty [A-Za-z0-9._-]"
            ));
        }
        let share: f64 = parts
            .next()
            .ok_or_else(|| format!("campaign {name:?}: missing share"))?
            .parse()
            .map_err(|e| format!("campaign {name:?}: bad share: {e}"))?;
        if share.is_nan() || share <= 0.0 {
            return Err(format!("campaign {name:?}: share must be > 0"));
        }
        let priority: u32 = match parts.next() {
            None | Some("") => 0,
            Some(p) => p
                .parse()
                .map_err(|e| format!("campaign {name:?}: bad priority: {e}"))?,
        };
        let mut params = base;
        if let Some(overrides) = parts.next() {
            for kv in overrides.split(',').filter(|s| !s.is_empty()) {
                let (k, v) = kv
                    .split_once('=')
                    .ok_or_else(|| format!("campaign {name:?}: expected k=v, got {kv:?}"))?;
                let bad = |e: &dyn std::fmt::Display| format!("campaign {name:?}: bad {k}: {e}");
                match k {
                    "proteins" => params.proteins = v.parse().map_err(|e| bad(&e))?,
                    "seed" => params.lib_seed = v.parse().map_err(|e| bad(&e))?,
                    "hours" => params.h_seconds = v.parse().map_err(|e| bad(&e))?,
                    "spacing" => params.separation_spacing = v.parse().map_err(|e| bad(&e))?,
                    "iters" => params.max_iterations = v.parse().map_err(|e| bad(&e))?,
                    other => return Err(format!("campaign {name:?}: unknown knob {other:?}")),
                }
            }
        }
        Ok(Self {
            name: name.into(),
            params,
            share,
            priority,
        })
    }
}

/// One registered campaign: definition, materialised catalog, and the
/// isolated scheduling/validation state.
pub struct Slot {
    /// The registration this slot was built from.
    pub def: CampaignDef,
    /// The materialised catalog (specs + reference outputs).
    pub campaign: Arc<NetCampaign>,
    /// Scheduling, validation, payloads, journal — all per-campaign.
    pub state: GridState,
}

/// N campaigns and the fair-share arbiter over them. Everything the
/// event loop, the ops scraper, and the steering thread touch goes
/// through one `Mutex<MultiGrid>` — the same single-lock discipline the
/// single-campaign server had.
pub struct MultiGrid {
    slots: Vec<Slot>,
    fair: FairShare,
    /// Fetches denied because the agent is quarantined by *another*
    /// campaign's ledger (the cross-campaign trust gate).
    pub cross_quarantine_denials: u64,
    /// Fair-share error sampled at the last report where every campaign
    /// still had fresh work — the convergence figure the bench reports.
    contended_share_error: Option<f64>,
}

impl MultiGrid {
    /// Builds every slot (recovering each from its journal when one is
    /// configured) and seeds the fair-share ledger from the recovered
    /// delivered ref-seconds. Returns the registry plus the clock
    /// offset recovery reached (the max across slots, so the shared
    /// SimTime axis stays monotone for every campaign).
    ///
    /// Journal layout: a single implicit campaign journals directly in
    /// `cfg.dir` (the pre-registry layout, so existing journals keep
    /// recovering); named multi-campaign setups journal in
    /// `cfg.dir/<name>/` each.
    pub fn open(
        defs: Vec<CampaignDef>,
        scheduler: ServerConfig,
        faults: ServerFaults,
        spec: ShardSpec,
        journal: Option<&JournalConfig>,
    ) -> io::Result<(Self, f64)> {
        assert!(!defs.is_empty(), "registry needs at least one campaign");
        for (i, def) in defs.iter().enumerate() {
            if defs[..i].iter().any(|d| d.name == def.name) {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!("duplicate campaign name {:?}", def.name),
                ));
            }
        }
        let multi = defs.len() > 1;
        let mut slots = Vec::with_capacity(defs.len());
        let mut clock_offset = 0.0f64;
        for def in defs {
            let campaign = Arc::new(NetCampaign::build(def.params));
            let (state, offset) = match journal {
                Some(cfg) => {
                    let cfg = if multi {
                        JournalConfig {
                            dir: cfg.dir.join(&def.name),
                            ..cfg.clone()
                        }
                    } else {
                        cfg.clone()
                    };
                    open_journaled(&cfg, &campaign, scheduler, faults, spec)?
                }
                None => (
                    GridState::new_sharded(&campaign, scheduler, faults, spec),
                    0.0,
                ),
            };
            clock_offset = clock_offset.max(offset);
            slots.push(Slot {
                def,
                campaign,
                state,
            });
        }
        let fair = FairShare::new(
            slots
                .iter()
                .map(|s| CampaignShare {
                    share: s.def.share,
                    priority: s.def.priority,
                })
                .collect(),
        );
        let mut grid = Self {
            slots,
            fair,
            cross_quarantine_denials: 0,
            contended_share_error: None,
        };
        grid.reseed_delivered();
        Ok((grid, clock_offset))
    }

    /// Re-derives every campaign's delivered ref-seconds from its
    /// scheduler core — the recovery path and the post-report refresh
    /// share this one definition, so they cannot drift.
    fn reseed_delivered(&mut self) {
        for i in 0..self.slots.len() {
            self.fair
                .set_delivered(i, self.slots[i].state.core().completed_ref_seconds());
        }
    }

    pub fn len(&self) -> usize {
        self.slots.len()
    }

    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    pub fn slots(&self) -> &[Slot] {
        &self.slots
    }

    pub fn slots_mut(&mut self) -> &mut [Slot] {
        &mut self.slots
    }

    pub fn slot(&self, campaign: u16) -> Option<&Slot> {
        self.slots.get(usize::from(campaign))
    }

    pub fn fair(&self) -> &FairShare {
        &self.fair
    }

    /// The roster announced in a v4 `HelloAck`: every campaign's name
    /// and recipe, in campaign-index order (assignments index it).
    pub fn roster(&self) -> Vec<(String, CampaignParams)> {
        self.slots
            .iter()
            .map(|s| (s.def.name.clone(), s.def.params))
            .collect()
    }

    /// Resolves an agent's requested attachments to a slot mask. An
    /// empty request (and every v1–v3 agent) attaches to the default
    /// campaign — slot 0; `"*"` attaches to all; unknown names are
    /// ignored, and a request that matches nothing falls back to the
    /// default so a misconfigured agent still contributes.
    pub fn attach_mask(&self, requested: &[String]) -> Vec<bool> {
        let mut mask = vec![false; self.slots.len()];
        if requested.iter().any(|r| r == "*") {
            mask.fill(true);
            return mask;
        }
        for name in requested {
            if let Some(i) = self.slots.iter().position(|s| &s.def.name == name) {
                mask[i] = true;
            }
        }
        if !mask.iter().any(|&m| m) {
            mask[0] = true;
        }
        mask
    }

    /// True once every campaign's every workunit validated.
    pub fn all_complete(&self) -> bool {
        self.slots.iter().all(|s| s.state.is_campaign_complete())
    }

    /// True once everything `attached` covers validated — what
    /// `campaign_complete` means to that particular agent.
    pub fn attached_complete(&self, attached: &[bool]) -> bool {
        self.slots
            .iter()
            .zip(attached)
            .all(|(s, &a)| !a || s.state.is_campaign_complete())
    }

    /// Owned-everywhere fresh backlog across attached campaigns — the
    /// redirect gate's "is there truly nothing local" check.
    pub fn attached_fresh_backlog(&self, attached: &[bool]) -> usize {
        self.slots
            .iter()
            .zip(attached)
            .filter(|(_, &a)| a)
            .map(|(s, _)| s.state.core().fresh_backlog())
            .sum()
    }

    /// One volunteer ask, arbitrated across the campaigns it is
    /// attached to. Returns the campaign index served (meaningful for
    /// `Assigned`; the deepest-deficit attached campaign otherwise).
    ///
    /// Order of business: the global trust gate (quarantined anywhere =
    /// denied everywhere), then attached incomplete campaigns in
    /// fair-share order until one issues. A campaign with nothing to
    /// issue right now simply yields to the next — that is how a
    /// work-starved campaign lends capacity, and the deficit ledger
    /// repays it once its queue refills.
    pub fn fetch(&mut self, now: SimTime, agent: u64, attached: &[bool]) -> (u16, WorkReply) {
        if let Some(ms) = self.cross_quarantine_ms(now, agent, attached) {
            self.cross_quarantine_denials += 1;
            return (
                self.first_attached(attached),
                WorkReply::Backoff {
                    retry_after_ms: ms,
                    campaign_complete: self.attached_complete(attached),
                },
            );
        }
        let mut eligible: Vec<bool> = self
            .slots
            .iter()
            .zip(attached)
            .map(|(s, &a)| a && !s.state.is_campaign_complete())
            .collect();
        let mut first_pick: Option<u16> = None;
        let mut retry_after_ms: Option<u64> = None;
        while let Some(i) = self.fair.pick(&eligible) {
            first_pick.get_or_insert(i as u16);
            match self.slots[i].state.fetch(now, agent) {
                WorkReply::Assigned(a) => return (i as u16, WorkReply::Assigned(a)),
                WorkReply::Backoff {
                    retry_after_ms: ms, ..
                } => {
                    retry_after_ms = Some(retry_after_ms.map_or(ms, |r: u64| r.min(ms)));
                    eligible[i] = false;
                }
            }
        }
        (
            first_pick.unwrap_or_else(|| self.first_attached(attached)),
            WorkReply::Backoff {
                retry_after_ms: retry_after_ms.unwrap_or(500),
                campaign_complete: self.attached_complete(attached),
            },
        )
    }

    /// Books one reported result against its campaign and refreshes the
    /// fair-share ledger from the (possibly grown) delivered total.
    pub fn report(
        &mut self,
        now: SimTime,
        campaign: u16,
        replica: ReplicaId,
        workunit: u32,
        output: DockingOutput,
    ) -> (u16, ResultDisposition) {
        // A stale or forged index cannot be allowed to cross-book into
        // another campaign: clamp to the roster (replica ids that do
        // not exist in the clamped slot are judged unknown there).
        let i = usize::from(campaign).min(self.slots.len() - 1);
        let slot = &mut self.slots[i];
        let d = slot
            .state
            .report(now, &Arc::clone(&slot.campaign), replica, workunit, output);
        self.fair
            .set_delivered(i, self.slots[i].state.core().completed_ref_seconds());
        // The convergence figure is only meaningful while every
        // campaign still has fresh work: once one drains, the others
        // legitimately absorb its capacity and the instantaneous ratio
        // drifts away from the configured split.
        if self
            .slots
            .iter()
            .all(|s| s.state.core().fresh_backlog() > 0)
        {
            self.contended_share_error = Some(self.fair.share_error());
        }
        (i as u16, d)
    }

    /// The headline ±5% figure: the fair-share error at the last moment
    /// every campaign still had fresh work (falling back to the current
    /// error when contention never happened — e.g. a single campaign).
    pub fn share_error(&self) -> f64 {
        self.contended_share_error
            .unwrap_or_else(|| self.fair.share_error())
    }

    /// Expires deadlines in every campaign. Returns total expiries.
    pub fn sweep(&mut self, now: SimTime) -> usize {
        self.slots.iter_mut().map(|s| s.state.sweep(now)).sum()
    }

    /// Settles every campaign journal's fsync debt.
    pub fn flush_journals(&mut self) {
        for s in &mut self.slots {
            s.state.flush_journal();
        }
    }

    /// The monotone high-water mark of the shared clock across slots.
    pub fn last_now(&self) -> f64 {
        self.slots
            .iter()
            .map(|s| s.state.last_now())
            .fold(0.0, f64::max)
    }

    /// The ops-endpoint snapshot: slot 0's full picture (scrape
    /// continuity for the single-campaign families) plus one
    /// [`crate::state::CampaignOps`] row per campaign and the global
    /// fair-share health figures.
    pub fn ops_snapshot(&self) -> crate::state::OpsSnapshot {
        let mut snap = self.slots[0].state.ops_snapshot();
        snap.campaigns = self
            .slots
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let wu = s.state.core().wu_state_counts();
                crate::state::CampaignOps {
                    name: s.def.name.clone(),
                    share: self.fair.share(i),
                    priority: s.def.priority,
                    delivered_ref_seconds: self.fair.delivered(i),
                    deficit: self.fair.deficit(i),
                    borrows: self.fair.borrows(i),
                    workunits: wu.total,
                    workunits_done: wu.done,
                    fresh_backlog: s.state.core().fresh_backlog(),
                    outstanding_replicas: s.state.outstanding_len(),
                    complete: s.state.is_campaign_complete(),
                }
            })
            .collect();
        snap.campaign_share_error = self.share_error();
        snap.cross_quarantine_denials = self.cross_quarantine_denials;
        snap.last_now = self.last_now();
        snap
    }

    /// Remaining quarantine (ms) imposed on `agent` by any campaign
    /// *other than the ones its own fetch would check* — i.e. by any
    /// slot at all; per-agent trust is global across campaigns.
    fn cross_quarantine_ms(&self, now: SimTime, agent: u64, attached: &[bool]) -> Option<u64> {
        if self.slots.len() < 2 {
            return None; // solo: the slot's own fetch gate handles it
        }
        let _ = attached; // the gate reads every ledger, attached or not
        let trust = self.slots[0].state.trust_config();
        if !trust.enabled {
            return None;
        }
        self.slots
            .iter()
            .filter_map(|s| s.state.agent_trust(agent))
            .map(|t| t.quarantine_remaining_s(now.seconds()))
            .fold(None, |acc, s| {
                if s > 0.0 {
                    let ms = (s * 1_000.0).ceil() as u64;
                    Some(acc.map_or(ms, |a: u64| a.max(ms)))
                } else {
                    acc
                }
            })
    }

    fn first_attached(&self, attached: &[bool]) -> u16 {
        attached.iter().position(|&a| a).unwrap_or(0) as u16
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::Verdict;

    fn defs_70_30() -> Vec<CampaignDef> {
        let base = CampaignParams::tiny();
        vec![
            CampaignDef {
                name: "alpha".into(),
                params: base,
                share: 0.7,
                priority: 0,
            },
            CampaignDef {
                name: "beta".into(),
                params: CampaignParams {
                    lib_seed: base.lib_seed + 1,
                    ..base
                },
                share: 0.3,
                priority: 0,
            },
        ]
    }

    fn open_ram(defs: Vec<CampaignDef>) -> MultiGrid {
        let (grid, offset) = MultiGrid::open(
            defs,
            ServerConfig {
                deadline_seconds: 60.0,
                ..ServerConfig::default()
            },
            ServerFaults::default(),
            ShardSpec::solo(),
            None,
        )
        .expect("open in RAM");
        assert_eq!(offset, 0.0);
        grid
    }

    /// Drives `grid` to completion with `agents` perfect volunteers and
    /// returns every campaign's merged artifact.
    fn run_to_completion(grid: &mut MultiGrid, agents: u64) -> Vec<Vec<DockingOutput>> {
        let mut t = 0.0f64;
        let mut guard = 0u64;
        while !grid.all_complete() {
            guard += 1;
            assert!(guard < 1_000_000, "registry run did not converge");
            for agent in 1..=agents {
                t += 0.01;
                let attached = vec![true; grid.len()];
                let (cidx, reply) = grid.fetch(SimTime::new(t), agent, &attached);
                let WorkReply::Assigned(a) = reply else {
                    continue;
                };
                let slot = grid.slot(cidx).expect("served campaign exists");
                let output = slot.campaign.compute(slot.campaign.spec(a.workunit));
                t += 0.01;
                grid.report(SimTime::new(t), cidx, a.replica, a.workunit, output);
            }
        }
        grid.slots()
            .iter()
            .map(|s| s.state.accepted_outputs().expect("complete"))
            .collect()
    }

    #[test]
    fn parse_accepts_name_share_priority_and_overrides() {
        let base = CampaignParams::tiny();
        let def = CampaignDef::parse("malaria:0.7:2:proteins=3,seed=11", base).expect("parses");
        assert_eq!(def.name, "malaria");
        assert!((def.share - 0.7).abs() < 1e-12);
        assert_eq!(def.priority, 2);
        assert_eq!(def.params.proteins, 3);
        assert_eq!(def.params.lib_seed, 11);
        assert_eq!(def.params.h_seconds, base.h_seconds);

        let short = CampaignDef::parse("d2ome:1", base).expect("priority optional");
        assert_eq!(short.priority, 0);

        for bad in [
            "",
            ":1",
            "a/b:1",
            "x:0",
            "x:-1",
            "x:nan",
            "x:1:z",
            "x:1:0:bogus=1",
            "x:1:0:proteins",
        ] {
            assert!(CampaignDef::parse(bad, base).is_err(), "{bad:?} accepted");
        }
    }

    #[test]
    fn attach_masks_default_star_named_and_unknown() {
        let grid = open_ram(defs_70_30());
        assert_eq!(grid.attach_mask(&[]), vec![true, false]);
        assert_eq!(grid.attach_mask(&["*".into()]), vec![true, true]);
        assert_eq!(grid.attach_mask(&["beta".into()]), vec![false, true]);
        assert_eq!(
            grid.attach_mask(&["beta".into(), "nope".into()]),
            vec![false, true]
        );
        assert_eq!(grid.attach_mask(&["nope".into()]), vec![true, false]);
    }

    #[test]
    fn duplicate_campaign_names_are_refused() {
        let mut defs = defs_70_30();
        defs[1].name = "alpha".into();
        let err = MultiGrid::open(
            defs,
            ServerConfig::default(),
            ServerFaults::default(),
            ShardSpec::solo(),
            None,
        )
        .err()
        .expect("duplicate refused");
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }

    /// The registry isolation invariant: each campaign's merged
    /// artifact under contention equals its solo-run artifact, byte for
    /// byte.
    #[test]
    fn contended_artifacts_match_solo_baselines() {
        let defs = defs_70_30();
        let mut grid = open_ram(defs.clone());
        let contended = run_to_completion(&mut grid, 4);

        for (def, artifact) in defs.into_iter().zip(&contended) {
            let mut solo = open_ram(vec![def]);
            let solo_artifacts = run_to_completion(&mut solo, 4);
            assert_eq!(
                &solo_artifacts[0], artifact,
                "campaign artifact diverged from its solo baseline"
            );
        }
    }

    /// Satellite regression for the ISSUE acceptance bar: a scripted
    /// 70/30 contended history must converge to the configured split
    /// within ±5 points *while both campaigns still have work*. (Once
    /// the smaller campaign drains, the bigger one legitimately borrows
    /// the leftover capacity and the instantaneous ratio drifts — so
    /// the assertion samples the last moment of genuine contention.)
    #[test]
    fn scripted_history_converges_to_the_70_30_split() {
        // A tighter separation grid multiplies the starting positions,
        // and a sub-mct `h` target keeps every workunit at one position:
        // many small uniform workunits, so delivered ref-seconds move in
        // fine steps and the deficit ledger can actually hit the ±5%
        // figure inside the contended phase.
        let mut defs = defs_70_30();
        for def in &mut defs {
            def.params.h_seconds = 0.001;
            def.params.separation_spacing = 12.0;
        }
        let mut grid = open_ram(defs);
        let mut t = 0.0f64;
        let mut guard = 0u64;
        let mut contended_error: Option<f64> = None;
        while !grid.all_complete() {
            guard += 1;
            assert!(guard < 1_000_000, "scripted history did not converge");
            for agent in 1..=4u64 {
                t += 0.01;
                let attached = vec![true, true];
                let (cidx, reply) = grid.fetch(SimTime::new(t), agent, &attached);
                let WorkReply::Assigned(a) = reply else {
                    continue;
                };
                let slot = grid.slot(cidx).expect("served campaign exists");
                let output = slot.campaign.compute(slot.campaign.spec(a.workunit));
                t += 0.01;
                grid.report(SimTime::new(t), cidx, a.replica, a.workunit, output);
                let both_live = grid
                    .slots()
                    .iter()
                    .all(|s| s.state.core().fresh_backlog() > 0);
                if both_live {
                    contended_error = Some(grid.fair().share_error());
                }
            }
        }
        let err = contended_error.expect("history had a contended phase");
        assert!(
            err <= 0.05,
            "70/30 split off by {err:.3} (> 0.05) during contention"
        );
    }

    /// An unknown/forged campaign index cannot cross-book: the report
    /// is clamped into the roster and judged against *that* slot's
    /// replicas (where a forged replica id is simply unknown).
    #[test]
    fn forged_campaign_index_is_clamped_not_trusted() {
        let mut grid = open_ram(defs_70_30());
        let attached = vec![true, true];
        let (cidx, reply) = grid.fetch(SimTime::new(0.1), 1, &attached);
        let WorkReply::Assigned(a) = reply else {
            panic!("first ask assigns");
        };
        let slot = grid.slot(cidx).expect("slot");
        let output = slot.campaign.compute(slot.campaign.spec(a.workunit));
        let (booked, d) = grid.report(SimTime::new(0.2), 999, a.replica, a.workunit, output);
        assert_eq!(usize::from(booked), grid.len() - 1);
        assert!(
            !matches!(d.verdict, Verdict::Accepted),
            "forged index must not validate work in another campaign"
        );
    }
}

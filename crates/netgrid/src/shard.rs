//! Multi-server sharding: the deterministic shard map, work-stealing
//! leases, and the cross-shard artifact merge.
//!
//! One campaign's workunit catalog is split across N `hcmd-server`
//! instances. The split is a pure function of data both ends already
//! share — the FNV-1a hash of the workunit's protein couple, modulo the
//! shard count — so every server, agent, and the merge step compute the
//! identical map with no coordination ([`shard_of`]). Each shard runs
//! the ordinary scheduler over the *full* catalog but owns only its
//! slice (`SchedulerCore::with_ownership`), which keeps workunit
//! indices, replica ids, and the launch order globally consistent.
//!
//! Ownership is not static: the steering channel (see
//! `server::dispatch` and the steering thread) leases never-issued
//! workunits from a loaded shard to a drained one. Leases are
//! journaled on both sides ([`crate::journal`]) and identified by
//! [`lease_id`] so replay after a `kill -9` reconstructs a consistent
//! ownership picture and duplicate gossip frames re-apply as no-ops.
//!
//! The merge invariant: each shard's partial artifact is a
//! catalog-length `Vec<Option<DockingOutput>>` (Some exactly at the
//! workunits it validated), and [`merge_artifacts`] stitches them into
//! the single `Vec<DockingOutput>` a lone server would have produced —
//! byte-identical, because the docking compute is a deterministic
//! function of the spec alone.

use crate::campaign::NetCampaign;
use maxdo::DockingOutput;
use serde::{Deserialize, Serialize};
use workunit::WorkunitSpec;

/// This server's place in the campaign's shard topology. Part of the
/// journal header identity: shard 0's WAL refuses to replay into a
/// server configured as shard 1 (or into a different shard count).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardSpec {
    /// This server's shard id, `0..shards`.
    pub shard_id: u16,
    /// Total shards the catalog is split across.
    pub shards: u16,
}

impl ShardSpec {
    /// The single-server degenerate case (shard 0 of 1).
    pub fn solo() -> Self {
        Self {
            shard_id: 0,
            shards: 1,
        }
    }
}

/// How often a shard gossips its load picture to each peer, ms.
pub const STEER_INTERVAL_MS: u64 = 100;
/// Connect/read timeout of one steering exchange, ms. Gossip runs on a
/// background thread, so a slow peer stalls only the next gossip tick,
/// never the event loop.
pub const STEER_TIMEOUT_MS: u64 = 250;
/// Most workunits one lease moves. Small chunks keep steering smooth:
/// a drained shard asks again next tick if it drains again.
pub const LEASE_CHUNK: usize = 8;

/// The home shard of a workunit: FNV-1a of its protein couple, modulo
/// the shard count. Deterministic from data every party already has.
pub fn shard_of(spec: &WorkunitSpec, shards: u16) -> u16 {
    let mut bytes = [0u8; 8];
    bytes[..4].copy_from_slice(&spec.receptor.0.to_le_bytes());
    bytes[4..].copy_from_slice(&spec.ligand.0.to_le_bytes());
    (crate::protocol::fnv1a64(&bytes) % u64::from(shards.max(1))) as u16
}

/// The ownership bitmap [`gridsim::SchedulerCore::with_ownership`]
/// takes: true where the catalog entry's home is `spec.shard_id`.
pub fn ownership_map(campaign: &NetCampaign, spec: ShardSpec) -> Vec<bool> {
    campaign
        .specs()
        .iter()
        .map(|wu| shard_of(wu, spec.shards) == spec.shard_id)
        .collect()
}

/// Builds a lease id from the granting shard and its grant sequence
/// number. The sequence is the count of grants the shard has journaled,
/// so replay regenerates the same ids in the same order.
pub fn lease_id(from_shard: u16, seq: u64) -> u64 {
    (u64::from(from_shard) << 48) | (seq & 0x0000_FFFF_FFFF_FFFF)
}

/// The granting shard encoded in a lease id.
pub fn lease_grantor(lease: u64) -> u16 {
    (lease >> 48) as u16
}

/// Stitches per-shard partial artifacts into the campaign result.
/// Every part must be catalog-length; every workunit must be present in
/// at least one part. A workunit present in several parts (possible
/// only when a crash landed between a lease's two journal writes and
/// both sides recomputed it) is taken from the first — the compute is
/// deterministic, so the copies are identical.
pub fn merge_artifacts(parts: &[Vec<Option<DockingOutput>>]) -> Result<Vec<DockingOutput>, String> {
    let Some(first) = parts.first() else {
        return Err("no partial artifacts to merge".into());
    };
    let n = first.len();
    if let Some((i, p)) = parts.iter().enumerate().find(|(_, p)| p.len() != n) {
        return Err(format!(
            "partial artifact {i} covers {} workunits, expected {n}",
            p.len()
        ));
    }
    let mut merged = Vec::with_capacity(n);
    for wu in 0..n {
        match parts.iter().find_map(|p| p[wu].as_ref()) {
            Some(out) => merged.push(out.clone()),
            None => {
                return Err(format!(
                    "workunit {wu} is missing from every shard artifact"
                ))
            }
        }
    }
    Ok(merged)
}

/// [`merge_artifacts`] over serialized artifacts: each input is the
/// JSON a sharded `hcmd-server --out` writes
/// (`Vec<Option<DockingOutput>>`), the output is the JSON a
/// single-server run writes (`Vec<DockingOutput>`) — byte-identical to
/// it when the shards covered the campaign.
pub fn merge_artifact_json(parts: &[String]) -> Result<String, String> {
    let parsed: Vec<Vec<Option<DockingOutput>>> = parts
        .iter()
        .enumerate()
        .map(|(i, text)| {
            serde_json::from_str(text).map_err(|e| format!("partial artifact {i}: {e}"))
        })
        .collect::<Result<_, _>>()?;
    let merged = merge_artifacts(&parsed)?;
    serde_json::to_string(&merged).map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::CampaignParams;

    #[test]
    fn shard_map_is_deterministic_and_in_range() {
        let campaign = NetCampaign::build(CampaignParams::tiny());
        for shards in [1u16, 2, 4] {
            for wu in campaign.specs() {
                let s = shard_of(wu, shards);
                assert!(s < shards);
                assert_eq!(s, shard_of(wu, shards), "pure function");
            }
        }
    }

    #[test]
    fn ownership_maps_partition_the_catalog() {
        let campaign = NetCampaign::build(CampaignParams::tiny());
        for shards in [2u16, 4] {
            let maps: Vec<Vec<bool>> = (0..shards)
                .map(|shard_id| ownership_map(&campaign, ShardSpec { shard_id, shards }))
                .collect();
            for wu in 0..campaign.len() {
                let owners = maps.iter().filter(|m| m[wu]).count();
                assert_eq!(owners, 1, "workunit {wu} must have exactly one home");
            }
        }
    }

    #[test]
    fn solo_spec_owns_everything() {
        let campaign = NetCampaign::build(CampaignParams::tiny());
        assert!(ownership_map(&campaign, ShardSpec::solo())
            .iter()
            .all(|&o| o));
    }

    #[test]
    fn lease_id_round_trips_the_grantor() {
        assert_eq!(lease_grantor(lease_id(3, 41)), 3);
        assert_eq!(lease_id(0, 1), 1);
        assert_ne!(lease_id(1, 1), lease_id(2, 1));
    }

    #[test]
    fn merged_partials_equal_the_baseline() {
        let campaign = NetCampaign::build(CampaignParams::tiny());
        let baseline = campaign.baseline_outputs();
        let spec_a = ShardSpec {
            shard_id: 0,
            shards: 2,
        };
        let owned_a = ownership_map(&campaign, spec_a);
        let parts: Vec<Vec<Option<DockingOutput>>> = (0..2)
            .map(|shard| {
                baseline
                    .iter()
                    .enumerate()
                    .map(|(wu, out)| (owned_a[wu] == (shard == 0)).then(|| out.clone()))
                    .collect()
            })
            .collect();
        let merged = merge_artifacts(&parts).expect("partition merges");
        assert_eq!(
            serde_json::to_string(&merged).unwrap(),
            serde_json::to_string(&baseline).unwrap(),
            "merge must be byte-identical to the single-server artifact"
        );
        // The JSON-level merge agrees.
        let part_texts: Vec<String> = parts
            .iter()
            .map(|p| serde_json::to_string(p).unwrap())
            .collect();
        assert_eq!(
            merge_artifact_json(&part_texts).unwrap(),
            serde_json::to_string(&baseline).unwrap()
        );
    }

    #[test]
    fn merge_refuses_holes_and_mismatched_lengths() {
        let campaign = NetCampaign::build(CampaignParams::tiny());
        let n = campaign.len();
        let hole: Vec<Option<DockingOutput>> = vec![None; n];
        assert!(merge_artifacts(&[hole]).is_err(), "all-None part has holes");
        let short: Vec<Option<DockingOutput>> = vec![None; n - 1];
        let full: Vec<Option<DockingOutput>> =
            campaign.baseline_outputs().into_iter().map(Some).collect();
        assert!(merge_artifacts(&[full, short]).is_err(), "length mismatch");
        assert!(merge_artifacts(&[]).is_err(), "empty merge");
    }
}

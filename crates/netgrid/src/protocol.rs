//! The wire protocol: length-prefixed, versioned, checksummed JSON frames.
//!
//! Every message between a volunteer agent and the task server travels as
//! one frame:
//!
//! ```text
//! offset  size  field
//! 0       4     magic  b"HCMD"
//! 4       1     protocol version (1)
//! 5       4     payload length, u32 little-endian
//! 9       8     FNV-1a 64 of the payload, u64 little-endian
//! 17      len   payload: externally-tagged JSON of [`Message`]
//! ```
//!
//! The header is fixed-size so a reader can frame the stream without
//! parsing JSON; the checksum catches wire corruption before the payload
//! reaches serde (value-level corruption injected by a *faulty agent* is
//! re-checksummed by that agent and is deliberately NOT caught here — it
//! is the validation pipeline's job, see DESIGN.md §6). Frames larger
//! than [`MAX_FRAME_BYTES`] are rejected before any allocation, so a
//! malicious or broken peer cannot balloon server memory.
//!
//! [`encode`]/[`decode`] are pure buffer transforms (proptested for
//! round-trip identity, truncation and oversize rejection);
//! [`write_message`]/[`read_message`] adapt them to blocking streams.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use maxdo::DockingOutput;
use serde::{Deserialize, Serialize};
use std::io::{self, Read, Write};

/// Frame magic: `b"HCMD"`.
pub const MAGIC: [u8; 4] = *b"HCMD";
/// Protocol version carried in every frame header.
pub const PROTOCOL_VERSION: u8 = 1;
/// Fixed header size: magic + version + length + checksum.
pub const HEADER_BYTES: usize = 4 + 1 + 4 + 8;
/// Hard cap on the payload size; larger frames are rejected unread.
pub const MAX_FRAME_BYTES: usize = 8 << 20;

/// Campaign parameters both sides must agree on. The synthetic protein
/// library is derived deterministically from `(proteins, lib_seed,
/// separation_spacing)` — the real grid ships protein data inside the
/// workunit; here the `HelloAck` ships the recipe instead, so an agent
/// can never compute against the wrong catalog.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CampaignParams {
    /// Proteins in the set (the paper's 168; tiny for loopback runs).
    pub proteins: u32,
    /// Seed of the synthetic library generator.
    pub lib_seed: u64,
    /// Target workunit duration `h`, reference-CPU seconds.
    pub h_seconds: f64,
    /// Starting-position spacing (Å) — controls `Nsep` and thereby the
    /// real compute cost per workunit.
    pub separation_spacing: f64,
    /// Minimiser iteration cap (small for loopback smoke runs).
    pub max_iterations: u32,
}

impl CampaignParams {
    /// A campaign small enough for loopback smoke tests: a few dozen
    /// workunits of real docking, seconds of total CPU.
    pub fn tiny() -> Self {
        Self {
            proteins: 2,
            lib_seed: 7,
            h_seconds: 40.0,
            separation_spacing: 30.0,
            max_iterations: 10,
        }
    }
}

/// One protocol message. Externally tagged in JSON, exactly like the
/// telemetry event log: `{"RequestWork":null}` / `{"Hello":{...}}`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Message {
    /// Agent → server, first frame on every connection.
    Hello {
        /// Agent identity (stable across reconnects).
        agent: u64,
        /// Worker threads the agent will dock with.
        threads: u32,
    },
    /// Server → agent, reply to `Hello`.
    HelloAck {
        /// Server's protocol version (for future negotiation).
        protocol: u8,
        /// The campaign recipe the agent must build locally.
        campaign: CampaignParams,
        /// Replica deadline, wall seconds — reissue after this.
        deadline_seconds: f64,
    },
    /// Agent → server: "send me work" (BOINC's scheduler request).
    RequestWork,
    /// Server → agent: one replica of one workunit.
    Assignment {
        /// Replica identity (echo it back in `ResultReport`).
        replica: u64,
        /// Workunit index in the launch-ordered catalog.
        workunit: u32,
        /// Receptor protein index.
        receptor: u32,
        /// Ligand protein index.
        ligand: u32,
        /// First starting position (1-based, inclusive).
        isep_start: u32,
        /// Number of starting positions.
        positions: u32,
        /// Deadline for this replica, wall seconds from issue.
        deadline_seconds: f64,
    },
    /// Server → agent: nothing issuable right now (BOINC's "no work
    /// sent, try again"); carries the per-agent backoff.
    NoWork {
        /// True once every workunit has validated — the agent should
        /// say `Bye` and exit.
        campaign_complete: bool,
        /// How long the agent must wait before asking again, ms.
        retry_after_ms: u64,
    },
    /// Server → agent on accept when the connection limit is reached
    /// (server-side fault injection); also legal as a `Hello` reply.
    Busy {
        /// Suggested reconnect delay, ms.
        retry_after_ms: u64,
    },
    /// Agent → server: a computed (or corrupted...) result.
    ResultReport {
        /// The replica this result answers.
        replica: u64,
        /// Its workunit index (redundant, cross-checked server-side).
        workunit: u32,
        /// The docking rows + work accounting — the §5.2 result file.
        output: DockingOutput,
    },
    /// Server → agent, reply to `ResultReport`.
    ResultAck {
        /// False when the result was rejected (bounds or quorum).
        accepted: bool,
        /// True when this result completed (validated) its workunit.
        completed_workunit: bool,
        /// True once the whole campaign is validated.
        campaign_complete: bool,
    },
    /// Agent → server: clean shutdown of the connection.
    Bye,
}

/// Why a buffer failed to decode.
#[derive(Debug, Clone, PartialEq)]
pub enum DecodeError {
    /// Not enough bytes yet; `needed` more would allow progress.
    Incomplete {
        /// Additional bytes required (lower bound).
        needed: usize,
    },
    /// The first four bytes are not [`MAGIC`].
    BadMagic([u8; 4]),
    /// Unknown protocol version.
    UnsupportedVersion(u8),
    /// Declared payload length exceeds [`MAX_FRAME_BYTES`].
    Oversized {
        /// The declared length.
        len: usize,
    },
    /// Payload bytes do not match the header checksum.
    Checksum {
        /// Checksum from the header.
        expected: u64,
        /// Checksum of the received payload.
        got: u64,
    },
    /// Checksummed payload is not a valid [`Message`].
    Payload(String),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Incomplete { needed } => {
                write!(f, "incomplete frame: {needed} more bytes")
            }
            DecodeError::BadMagic(m) => write!(f, "bad magic {m:02x?}"),
            DecodeError::UnsupportedVersion(v) => write!(f, "unsupported protocol version {v}"),
            DecodeError::Oversized { len } => {
                write!(f, "frame of {len} bytes exceeds the {MAX_FRAME_BYTES} cap")
            }
            DecodeError::Checksum { expected, got } => {
                write!(f, "payload checksum {got:#018x} != header {expected:#018x}")
            }
            DecodeError::Payload(e) => write!(f, "bad payload: {e}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// FNV-1a 64-bit — tiny, dependency-free, good enough to catch wire
/// corruption and to fingerprint result payloads for quorum comparison.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Frames an arbitrary payload with the standard header (magic, version,
/// length, FNV-1a checksum). [`encode`] uses this for wire messages; the
/// journal reuses the exact same framing for its on-disk records, so one
/// reader/checksum implementation covers both.
pub fn frame_payload(payload: &[u8]) -> Bytes {
    assert!(
        payload.len() <= MAX_FRAME_BYTES,
        "outgoing frame of {} bytes exceeds the cap",
        payload.len()
    );
    let mut buf = BytesMut::with_capacity(HEADER_BYTES + payload.len());
    buf.put_slice(&MAGIC);
    buf.put_u8(PROTOCOL_VERSION);
    buf.put_u32_le(payload.len() as u32);
    buf.put_u64_le(fnv1a64(payload));
    buf.put_slice(payload);
    buf.freeze()
}

/// Splits one checksum-verified payload off the front of `buf`. On
/// success returns the payload slice and the number of bytes consumed
/// (header + payload).
pub fn deframe(buf: &[u8]) -> Result<(&[u8], usize), DecodeError> {
    if buf.len() < HEADER_BYTES {
        return Err(DecodeError::Incomplete {
            needed: HEADER_BYTES - buf.len(),
        });
    }
    let mut r: &[u8] = buf;
    let mut magic = [0u8; 4];
    r.copy_to_slice(&mut magic);
    if magic != MAGIC {
        return Err(DecodeError::BadMagic(magic));
    }
    let version = r.get_u8();
    if version != PROTOCOL_VERSION {
        return Err(DecodeError::UnsupportedVersion(version));
    }
    let len = r.get_u32_le() as usize;
    if len > MAX_FRAME_BYTES {
        return Err(DecodeError::Oversized { len });
    }
    let expected = r.get_u64_le();
    if r.remaining() < len {
        return Err(DecodeError::Incomplete {
            needed: len - r.remaining(),
        });
    }
    let payload = &buf[HEADER_BYTES..HEADER_BYTES + len];
    let got = fnv1a64(payload);
    if got != expected {
        return Err(DecodeError::Checksum { expected, got });
    }
    Ok((payload, HEADER_BYTES + len))
}

/// Encodes one message as a complete frame.
pub fn encode(msg: &Message) -> Bytes {
    let payload = serde_json::to_string(msg).expect("Message serialization cannot fail");
    frame_payload(payload.as_bytes())
}

/// Decodes one frame from the front of `buf`. On success returns the
/// message and the number of bytes consumed (header + payload).
pub fn decode(buf: &[u8]) -> Result<(Message, usize), DecodeError> {
    let (payload, consumed) = deframe(buf)?;
    let text = std::str::from_utf8(payload)
        .map_err(|e| DecodeError::Payload(format!("not UTF-8: {e}")))?;
    let msg: Message =
        serde_json::from_str(text).map_err(|e| DecodeError::Payload(format!("{e:?}")))?;
    Ok((msg, consumed))
}

/// Writes one framed message to a blocking stream.
pub fn write_message(w: &mut impl Write, msg: &Message) -> io::Result<()> {
    let frame = encode(msg);
    w.write_all(&frame)?;
    w.flush()
}

/// Reads exactly `buf.len()` bytes, treating EOF at offset 0 as a clean
/// close (`Ok(false)`) and EOF mid-buffer as an error.
fn read_full(r: &mut impl Read, buf: &mut [u8]) -> io::Result<bool> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) if filled == 0 => return Ok(false),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    format!("stream closed mid-frame ({filled}/{} bytes)", buf.len()),
                ))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            // A read timeout mid-frame keeps waiting for the rest; a
            // timeout before the first byte surfaces to the caller so
            // connection handlers can poll their shutdown flag.
            Err(e)
                if filled > 0
                    && matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) => {}
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

/// Reads one framed message from a blocking stream. `Ok(None)` means the
/// peer closed the connection cleanly between frames.
pub fn read_message(r: &mut impl Read) -> io::Result<Option<Message>> {
    let mut header = [0u8; HEADER_BYTES];
    if !read_full(r, &mut header)? {
        return Ok(None);
    }
    // Validate the header before allocating for the payload.
    let mut h: &[u8] = &header;
    let mut magic = [0u8; 4];
    h.copy_to_slice(&mut magic);
    let version = h.get_u8();
    let len = h.get_u32_le() as usize;
    if magic != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            DecodeError::BadMagic(magic).to_string(),
        ));
    }
    if version != PROTOCOL_VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            DecodeError::UnsupportedVersion(version).to_string(),
        ));
    }
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            DecodeError::Oversized { len }.to_string(),
        ));
    }
    let mut frame = vec![0u8; HEADER_BYTES + len];
    frame[..HEADER_BYTES].copy_from_slice(&header);
    if !read_full(r, &mut frame[HEADER_BYTES..])? {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "stream closed before frame payload",
        ));
    }
    match decode(&frame) {
        Ok((msg, consumed)) => {
            debug_assert_eq!(consumed, frame.len());
            Ok(Some(msg))
        }
        Err(e) => Err(io::Error::new(io::ErrorKind::InvalidData, e.to_string())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maxdo::{DockingRow, EulerZyz, Vec3};

    fn sample_messages() -> Vec<Message> {
        vec![
            Message::Hello {
                agent: 42,
                threads: 4,
            },
            Message::HelloAck {
                protocol: PROTOCOL_VERSION,
                campaign: CampaignParams::tiny(),
                deadline_seconds: 3.0,
            },
            Message::RequestWork,
            Message::Assignment {
                replica: 7,
                workunit: 3,
                receptor: 0,
                ligand: 1,
                isep_start: 5,
                positions: 2,
                deadline_seconds: 3.0,
            },
            Message::NoWork {
                campaign_complete: false,
                retry_after_ms: 150,
            },
            Message::Busy {
                retry_after_ms: 500,
            },
            Message::ResultReport {
                replica: 7,
                workunit: 3,
                output: DockingOutput {
                    rows: vec![DockingRow {
                        isep: 5,
                        irot: 1,
                        position: Vec3::new(1.0, -2.0, 3.5),
                        orientation: EulerZyz::default(),
                        elj: -4.25,
                        eelec: 0.5,
                    }],
                    evaluations: 99,
                },
            },
            Message::ResultAck {
                accepted: true,
                completed_workunit: false,
                campaign_complete: false,
            },
            Message::Bye,
        ]
    }

    #[test]
    fn every_message_round_trips() {
        for msg in sample_messages() {
            let frame = encode(&msg);
            let (back, consumed) = decode(&frame).expect("decode");
            assert_eq!(back, msg);
            assert_eq!(consumed, frame.len());
        }
    }

    #[test]
    fn every_truncation_is_incomplete() {
        let frame = encode(&Message::RequestWork);
        for cut in 0..frame.len() {
            match decode(&frame[..cut]) {
                Err(DecodeError::Incomplete { needed }) => assert!(needed > 0),
                other => panic!("prefix of {cut} bytes gave {other:?}"),
            }
        }
    }

    #[test]
    fn trailing_bytes_are_left_alone() {
        let frame = encode(&Message::Bye);
        let mut buf = frame.to_vec();
        buf.extend_from_slice(b"next frame starts here");
        let (msg, consumed) = decode(&buf).unwrap();
        assert_eq!(msg, Message::Bye);
        assert_eq!(consumed, frame.len());
    }

    #[test]
    fn bad_magic_rejected() {
        let mut frame = encode(&Message::Bye).to_vec();
        frame[0] = b'X';
        assert!(matches!(decode(&frame), Err(DecodeError::BadMagic(_))));
    }

    #[test]
    fn future_version_rejected() {
        let mut frame = encode(&Message::Bye).to_vec();
        frame[4] = PROTOCOL_VERSION + 1;
        assert!(matches!(
            decode(&frame),
            Err(DecodeError::UnsupportedVersion(_))
        ));
    }

    #[test]
    fn oversized_length_rejected_before_payload() {
        let mut frame = encode(&Message::Bye).to_vec();
        let bad = (MAX_FRAME_BYTES as u32 + 1).to_le_bytes();
        frame[5..9].copy_from_slice(&bad);
        // Only the header is present — the declared length alone must
        // trigger the rejection, not an attempt to buffer 8 MiB.
        assert!(matches!(
            decode(&frame[..HEADER_BYTES]),
            Err(DecodeError::Oversized { .. })
        ));
    }

    #[test]
    fn flipped_payload_bit_fails_the_checksum() {
        let mut frame = encode(&Message::Hello {
            agent: 1,
            threads: 1,
        })
        .to_vec();
        let last = frame.len() - 1;
        frame[last] ^= 0x10;
        assert!(matches!(decode(&frame), Err(DecodeError::Checksum { .. })));
    }

    #[test]
    fn valid_checksum_with_garbage_json_is_a_payload_error() {
        let payload = b"{\"NotAMessage\":1}";
        let mut frame = Vec::new();
        frame.extend_from_slice(&MAGIC);
        frame.push(PROTOCOL_VERSION);
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&fnv1a64(payload).to_le_bytes());
        frame.extend_from_slice(payload);
        assert!(matches!(decode(&frame), Err(DecodeError::Payload(_))));
    }

    #[test]
    fn stream_round_trip_over_a_cursor() {
        let msgs = sample_messages();
        let mut wire = Vec::new();
        for m in &msgs {
            write_message(&mut wire, m).unwrap();
        }
        let mut r: &[u8] = &wire;
        for m in &msgs {
            let got = read_message(&mut r).unwrap().expect("message");
            assert_eq!(&got, m);
        }
        assert_eq!(read_message(&mut r).unwrap(), None, "clean EOF");
    }
}

//! The wire protocol: length-prefixed, versioned, checksummed frames.
//!
//! Every message between a volunteer agent and the task server travels as
//! one frame:
//!
//! ```text
//! offset  size  field
//! 0       4     magic  b"HCMD"
//! 4       1     protocol version (1 = JSON payload, 2 = binary payload)
//! 5       4     payload length, u32 little-endian
//! 9       8     FNV-1a 64 of the payload, u64 little-endian
//! 17      len   payload: v1 externally-tagged JSON of [`Message`],
//!               v2 tag byte + fixed-width little-endian fields
//! ```
//!
//! The header is fixed-size so a reader can frame the stream without
//! parsing the payload; the checksum catches wire corruption before the
//! payload reaches the decoder (value-level corruption injected by a
//! *faulty agent* is re-checksummed by that agent and is deliberately NOT
//! caught here — it is the validation pipeline's job, see DESIGN.md §6).
//! Frames larger than [`MAX_FRAME_BYTES`] are rejected before any
//! allocation, so a malicious or broken peer cannot balloon server memory.
//!
//! Version 2 is the hot-path codec: the same header, but the payload is
//! a compact tag + fixed-width little-endian record instead of JSON —
//! `DockingOutput` rows go from ~200 JSON bytes to 72 binary bytes each
//! and skip float printing/parsing entirely. A peer picks its codec by
//! the version byte of the frames it *sends*; the other side replies in
//! kind, so a v1-only agent and a v2 server interoperate frame by frame
//! (see [`Codec`] and DESIGN.md §6 for the negotiation rules).
//!
//! [`encode`]/[`decode`] are pure buffer transforms (proptested for
//! round-trip identity, cross-version equality, truncation and oversize
//! rejection); [`write_message`]/[`read_message`] adapt them to blocking
//! streams.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use maxdo::DockingOutput;
use serde::{Deserialize, Serialize};
use std::io::{self, Read, Write};

/// Frame magic: `b"HCMD"`.
pub const MAGIC: [u8; 4] = *b"HCMD";
/// Frame version of the JSON codec (and of on-disk journal records).
pub const PROTOCOL_V1: u8 = 1;
/// Frame version of the binary hot-path codec.
pub const PROTOCOL_V2: u8 = 2;
/// Frame version of the shard-aware binary codec: the same payload
/// encoding as v2 plus the shard message family (`ShardMap`,
/// `Redirect`, steering gossip). The version byte doubles as the
/// capability signal — a server only ever sends shard messages on
/// connections whose peer framed with v3, so v1/v2 single-shard agents
/// keep working against a sharded server unchanged.
pub const PROTOCOL_V3: u8 = 3;
/// Frame version of the campaign-aware binary codec: the v3 payload
/// encoding plus multi-campaign fields — `Hello` carries the agent's
/// campaign attachments, `HelloAck` the roster of hosted campaigns, and
/// `Assignment`/`ResultReport` a campaign index. As with v3, the
/// version byte doubles as the capability signal: a peer framing with
/// v1–v3 implicitly attaches to the default campaign and never sees a
/// campaign field, so old agents interop with a multi-campaign server
/// unchanged.
pub const PROTOCOL_V4: u8 = 4;
/// Highest protocol version this build speaks; announced to agents in
/// `HelloAck::protocol`.
pub const PROTOCOL_VERSION: u8 = PROTOCOL_V4;
/// Fixed header size: magic + version + length + checksum.
pub const HEADER_BYTES: usize = 4 + 1 + 4 + 8;
/// Hard cap on the payload size; larger frames are rejected unread.
pub const MAX_FRAME_BYTES: usize = 8 << 20;

/// The payload encoding of a frame, selected by the header version byte.
///
/// Negotiation is per direction and needs no extra round trip: each side
/// encodes with the codec it wants and replies in the codec of the frame
/// it is answering. An old v1-only agent therefore never sees a v2
/// frame, while a v2 agent learns the server's ceiling from
/// `HelloAck::protocol` (a v1-only server would instead reject its v2
/// `Hello` outright, which the agent treats as "fall back to JSON").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Codec {
    /// v1: externally-tagged JSON — the interop fallback.
    Json,
    /// v2: tag byte + fixed-width little-endian fields.
    Binary,
    /// v3: the v2 payload encoding plus shard awareness — a peer
    /// framing with v3 declares it understands `ShardMap`/`Redirect`.
    BinaryV3,
    /// v4: the v3 encoding plus campaign awareness — a peer framing
    /// with v4 declares (and reads) the multi-campaign fields.
    BinaryV4,
}

impl Codec {
    /// The header version byte this codec stamps on its frames.
    pub fn version(self) -> u8 {
        match self {
            Codec::Json => PROTOCOL_V1,
            Codec::Binary => PROTOCOL_V2,
            Codec::BinaryV3 => PROTOCOL_V3,
            Codec::BinaryV4 => PROTOCOL_V4,
        }
    }

    /// The codec for a header version byte, if supported.
    pub fn from_version(v: u8) -> Option<Self> {
        match v {
            PROTOCOL_V1 => Some(Codec::Json),
            PROTOCOL_V2 => Some(Codec::Binary),
            PROTOCOL_V3 => Some(Codec::BinaryV3),
            PROTOCOL_V4 => Some(Codec::BinaryV4),
            _ => None,
        }
    }

    /// Whether a peer framing with this codec understands the shard
    /// message family (`Redirect`, `ShardMap`).
    pub fn shard_aware(self) -> bool {
        matches!(self, Codec::BinaryV3 | Codec::BinaryV4)
    }

    /// Whether a peer framing with this codec understands the
    /// multi-campaign fields (attachments, roster, campaign indices).
    /// v1–v3 peers implicitly attach to the default campaign.
    pub fn campaign_aware(self) -> bool {
        matches!(self, Codec::BinaryV4)
    }

    /// Parses the `--codec` CLI flag value.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "json" | "v1" => Ok(Codec::Json),
            "binary" | "v2" => Ok(Codec::Binary),
            "v3" | "sharded" => Ok(Codec::BinaryV3),
            "v4" | "campaigns" => Ok(Codec::BinaryV4),
            other => Err(format!("bad codec '{other}' (json|binary|v3|v4)")),
        }
    }
}

impl std::fmt::Display for Codec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Codec::Json => "json",
            Codec::Binary => "binary",
            Codec::BinaryV3 => "binary-v3",
            Codec::BinaryV4 => "binary-v4",
        })
    }
}

/// Campaign parameters both sides must agree on. The synthetic protein
/// library is derived deterministically from `(proteins, lib_seed,
/// separation_spacing)` — the real grid ships protein data inside the
/// workunit; here the `HelloAck` ships the recipe instead, so an agent
/// can never compute against the wrong catalog.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CampaignParams {
    /// Proteins in the set (the paper's 168; tiny for loopback runs).
    pub proteins: u32,
    /// Seed of the synthetic library generator.
    pub lib_seed: u64,
    /// Target workunit duration `h`, reference-CPU seconds.
    pub h_seconds: f64,
    /// Starting-position spacing (Å) — controls `Nsep` and thereby the
    /// real compute cost per workunit.
    pub separation_spacing: f64,
    /// Minimiser iteration cap (small for loopback smoke runs).
    pub max_iterations: u32,
}

impl CampaignParams {
    /// A campaign small enough for loopback smoke tests: a few dozen
    /// workunits of real docking, seconds of total CPU.
    pub fn tiny() -> Self {
        Self {
            proteins: 2,
            lib_seed: 7,
            h_seconds: 40.0,
            separation_spacing: 30.0,
            max_iterations: 10,
        }
    }
}

/// One protocol message. Externally tagged in JSON, exactly like the
/// telemetry event log: `{"RequestWork":null}` / `{"Hello":{...}}`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Message {
    /// Agent → server, first frame on every connection.
    Hello {
        /// Agent identity (stable across reconnects).
        agent: u64,
        /// Worker threads the agent will dock with.
        threads: u32,
        /// Campaign attachments (v4): names of the hosted campaigns the
        /// agent volunteers for. Empty (and on every v1–v3 frame) means
        /// the default campaign only; the single entry `"*"` attaches
        /// to every hosted campaign; unknown names are ignored.
        #[serde(default)]
        campaigns: Vec<String>,
    },
    /// Server → agent, reply to `Hello`.
    HelloAck {
        /// Server's protocol version (for future negotiation).
        protocol: u8,
        /// The campaign recipe the agent must build locally (the
        /// default campaign when several are hosted).
        campaign: CampaignParams,
        /// Replica deadline, wall seconds — reissue after this.
        deadline_seconds: f64,
        /// Multi-campaign roster (v4): `(name, recipe)` of every hosted
        /// campaign the agent is attached to, in campaign-index order.
        /// `Assignment::campaign` indexes into this roster. Empty on
        /// v1–v3 frames and on single-campaign servers.
        #[serde(default)]
        campaigns: Vec<(String, CampaignParams)>,
    },
    /// Agent → server: "send me work" (BOINC's scheduler request).
    RequestWork,
    /// Server → agent: one replica of one workunit.
    Assignment {
        /// Replica identity (echo it back in `ResultReport`).
        replica: u64,
        /// Workunit index in the launch-ordered catalog.
        workunit: u32,
        /// Receptor protein index.
        receptor: u32,
        /// Ligand protein index.
        ligand: u32,
        /// First starting position (1-based, inclusive).
        isep_start: u32,
        /// Number of starting positions.
        positions: u32,
        /// Deadline for this replica, wall seconds from issue.
        deadline_seconds: f64,
        /// Which hosted campaign this assignment belongs to (v4): an
        /// index into the `HelloAck` roster. Always 0 — the default
        /// campaign — on v1–v3 frames.
        #[serde(default)]
        campaign: u16,
    },
    /// Server → agent: nothing issuable right now (BOINC's "no work
    /// sent, try again"); carries the per-agent backoff.
    NoWork {
        /// True once every workunit has validated — the agent should
        /// say `Bye` and exit.
        campaign_complete: bool,
        /// How long the agent must wait before asking again, ms.
        retry_after_ms: u64,
    },
    /// Server → agent on accept when the connection limit is reached
    /// (server-side fault injection); also legal as a `Hello` reply.
    Busy {
        /// Suggested reconnect delay, ms.
        retry_after_ms: u64,
    },
    /// Agent → server: a computed (or corrupted...) result.
    ResultReport {
        /// The replica this result answers.
        replica: u64,
        /// Its workunit index (redundant, cross-checked server-side).
        workunit: u32,
        /// The campaign the replica was issued from (v4): echoed from
        /// `Assignment::campaign`. Always 0 on v1–v3 frames.
        #[serde(default)]
        campaign: u16,
        /// The docking rows + work accounting — the §5.2 result file.
        output: DockingOutput,
    },
    /// Server → agent, reply to `ResultReport`.
    ResultAck {
        /// False when the result was rejected (bounds or quorum).
        accepted: bool,
        /// True when this result completed (validated) its workunit.
        completed_workunit: bool,
        /// True once the whole campaign is validated.
        campaign_complete: bool,
    },
    /// Agent → server: clean shutdown of the connection.
    Bye,
    /// Agent → server (v3): "which shards run this campaign?".
    ShardMapRequest,
    /// Server → agent (v3), reply to `ShardMapRequest`: the campaign's
    /// static shard topology. Workunit homes derive deterministically
    /// from the catalog (`shard::shard_of`), so the addresses are all
    /// an agent needs to navigate.
    ShardMap {
        /// Number of shards the catalog is split across.
        shards: u16,
        /// The replying server's shard id.
        self_shard: u16,
        /// Listen address of every shard, indexed by shard id.
        addrs: Vec<String>,
    },
    /// Server → agent (v3), reply to `RequestWork` when this shard is
    /// drained but a peer still has fresh backlog: ask there instead.
    /// An agent follows at most one redirect per work request.
    Redirect {
        /// The shard worth asking.
        shard: u16,
        /// Its listen address.
        addr: String,
    },
    /// Shard → shard steering gossip: the sender's load picture. Sent
    /// periodically to every peer; the receiver answers `LeaseGrant`
    /// (when the sender is hungry and the receiver has backlog) or
    /// `StatusAck`.
    ShardStatus {
        /// Sending shard id.
        shard: u16,
        /// Owned workunits no replica was ever issued for.
        fresh_backlog: u64,
        /// Replicas issued and not yet resolved.
        outstanding: u64,
        /// The sender's owned workunits are all validated.
        complete: bool,
        /// The sender has agents asking and nothing fresh to issue —
        /// the signal that invites a lease. Distinct from
        /// `fresh_backlog == 0`: a drained shard with *no* agent demand
        /// does not ask for work, which is what stops two idle shards
        /// ping-ponging ownership forever.
        hungry: bool,
        /// Ids of leases the sender has already adopted *from the
        /// receiving shard*, so a lessor that crashed after journaling
        /// a grant but before replying can re-send missing grants.
        leases_held: Vec<u64>,
        /// Which campaign (registry slot index) this load picture and
        /// its lease bookkeeping concern. A multi-campaign shard fleet
        /// shares one `--campaign` roster, so indices agree fleet-wide;
        /// v1–v3 peers gossip only about the default campaign (0).
        #[serde(default)]
        campaign: u16,
    },
    /// Shard → shard: a work-stealing lease. Ownership of `wus` moves
    /// from `from_shard` to the hungry receiver; both sides journal the
    /// transfer, and re-application is idempotent.
    LeaseGrant {
        /// Lease id: `from_shard` in the top 16 bits, grant sequence
        /// below — stable across replay, so duplicates are detectable.
        lease: u64,
        /// The granting (previously owning) shard.
        from_shard: u16,
        /// Leased workunits (a contiguous tail slice of the grantor's
        /// launch-ordered fresh queue).
        wus: Vec<u32>,
        /// The grantor's own completion state, piggybacked.
        complete: bool,
        /// The campaign (registry slot index) whose ownership moves.
        #[serde(default)]
        campaign: u16,
    },
    /// Shard → shard, reply to `ShardStatus` when no lease moves.
    StatusAck {
        /// Replying shard id.
        shard: u16,
        /// The replier's owned workunits are all validated.
        complete: bool,
    },
}

/// Why a buffer failed to decode.
#[derive(Debug, Clone, PartialEq)]
pub enum DecodeError {
    /// Not enough bytes yet; `needed` more would allow progress.
    Incomplete {
        /// Additional bytes required (lower bound).
        needed: usize,
    },
    /// The first four bytes are not [`MAGIC`].
    BadMagic([u8; 4]),
    /// Unknown protocol version.
    UnsupportedVersion(u8),
    /// Declared payload length exceeds [`MAX_FRAME_BYTES`].
    Oversized {
        /// The declared length.
        len: usize,
    },
    /// Payload bytes do not match the header checksum.
    Checksum {
        /// Checksum from the header.
        expected: u64,
        /// Checksum of the received payload.
        got: u64,
    },
    /// Checksummed payload is not a valid [`Message`].
    Payload(String),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Incomplete { needed } => {
                write!(f, "incomplete frame: {needed} more bytes")
            }
            DecodeError::BadMagic(m) => write!(f, "bad magic {m:02x?}"),
            DecodeError::UnsupportedVersion(v) => write!(f, "unsupported protocol version {v}"),
            DecodeError::Oversized { len } => {
                write!(f, "frame of {len} bytes exceeds the {MAX_FRAME_BYTES} cap")
            }
            DecodeError::Checksum { expected, got } => {
                write!(f, "payload checksum {got:#018x} != header {expected:#018x}")
            }
            DecodeError::Payload(e) => write!(f, "bad payload: {e}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// FNV-1a 64-bit — tiny, dependency-free, good enough to catch wire
/// corruption and to fingerprint result payloads for quorum comparison.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Frames an arbitrary payload with the standard header (magic, version
/// 1, length, FNV-1a checksum). [`encode`] uses this for JSON wire
/// messages; the journal reuses the exact same framing for its on-disk
/// records, so one reader/checksum implementation covers both.
pub fn frame_payload(payload: &[u8]) -> Bytes {
    frame_payload_versioned(PROTOCOL_V1, payload)
}

/// [`frame_payload`] with an explicit header version byte.
pub fn frame_payload_versioned(version: u8, payload: &[u8]) -> Bytes {
    assert!(
        payload.len() <= MAX_FRAME_BYTES,
        "outgoing frame of {} bytes exceeds the cap",
        payload.len()
    );
    let mut buf = BytesMut::with_capacity(HEADER_BYTES + payload.len());
    buf.put_slice(&MAGIC);
    buf.put_u8(version);
    buf.put_u32_le(payload.len() as u32);
    buf.put_u64_le(fnv1a64(payload));
    buf.put_slice(payload);
    buf.freeze()
}

/// Splits one checksum-verified payload off the front of `buf`. On
/// success returns the header version byte, the payload slice and the
/// number of bytes consumed (header + payload).
pub fn deframe(buf: &[u8]) -> Result<(u8, &[u8], usize), DecodeError> {
    if buf.len() < HEADER_BYTES {
        return Err(DecodeError::Incomplete {
            needed: HEADER_BYTES - buf.len(),
        });
    }
    let mut r: &[u8] = buf;
    let mut magic = [0u8; 4];
    r.copy_to_slice(&mut magic);
    if magic != MAGIC {
        return Err(DecodeError::BadMagic(magic));
    }
    let version = r.get_u8();
    if Codec::from_version(version).is_none() {
        return Err(DecodeError::UnsupportedVersion(version));
    }
    let len = r.get_u32_le() as usize;
    if len > MAX_FRAME_BYTES {
        return Err(DecodeError::Oversized { len });
    }
    let expected = r.get_u64_le();
    if r.remaining() < len {
        return Err(DecodeError::Incomplete {
            needed: len - r.remaining(),
        });
    }
    let payload = &buf[HEADER_BYTES..HEADER_BYTES + len];
    let got = fnv1a64(payload);
    if got != expected {
        return Err(DecodeError::Checksum { expected, got });
    }
    Ok((version, payload, HEADER_BYTES + len))
}

/// Encodes one message as a complete frame in the given codec.
pub fn encode_with(msg: &Message, codec: Codec) -> Bytes {
    match codec {
        Codec::Json => {
            let payload = serde_json::to_string(msg).expect("Message serialization cannot fail");
            frame_payload_versioned(PROTOCOL_V1, payload.as_bytes())
        }
        Codec::Binary => frame_payload_versioned(PROTOCOL_V2, &binary::encode(msg)),
        Codec::BinaryV3 => frame_payload_versioned(PROTOCOL_V3, &binary::encode(msg)),
        Codec::BinaryV4 => frame_payload_versioned(PROTOCOL_V4, &binary::encode_v4(msg)),
    }
}

/// Encodes one message as a complete JSON (v1) frame.
pub fn encode(msg: &Message) -> Bytes {
    encode_with(msg, Codec::Json)
}

/// Decodes one frame from the front of `buf`, in whichever codec its
/// header declares. On success returns the message, the number of bytes
/// consumed (header + payload), and the codec the peer used — the reply
/// should be encoded with the same codec.
pub fn decode_versioned(buf: &[u8]) -> Result<(Message, usize, Codec), DecodeError> {
    let (version, payload, consumed) = deframe(buf)?;
    let codec = Codec::from_version(version).expect("deframe only passes supported versions");
    let msg = match codec {
        Codec::Json => {
            let text = std::str::from_utf8(payload)
                .map_err(|e| DecodeError::Payload(format!("not UTF-8: {e}")))?;
            serde_json::from_str(text).map_err(|e| DecodeError::Payload(format!("{e:?}")))?
        }
        Codec::Binary | Codec::BinaryV3 => binary::decode(payload).map_err(DecodeError::Payload)?,
        Codec::BinaryV4 => binary::decode_v4(payload).map_err(DecodeError::Payload)?,
    };
    Ok((msg, consumed, codec))
}

/// Decodes one frame from the front of `buf`. On success returns the
/// message and the number of bytes consumed (header + payload).
pub fn decode(buf: &[u8]) -> Result<(Message, usize), DecodeError> {
    decode_versioned(buf).map(|(msg, consumed, _)| (msg, consumed))
}

/// Writes one framed message to a blocking stream in the given codec.
pub fn write_message_with(w: &mut impl Write, msg: &Message, codec: Codec) -> io::Result<()> {
    let frame = encode_with(msg, codec);
    w.write_all(&frame)?;
    w.flush()
}

/// Writes one framed message to a blocking stream as JSON (v1).
pub fn write_message(w: &mut impl Write, msg: &Message) -> io::Result<()> {
    write_message_with(w, msg, Codec::Json)
}

/// Reads exactly `buf.len()` bytes, treating EOF at offset 0 as a clean
/// close (`Ok(false)`) and EOF mid-buffer as an error.
fn read_full(r: &mut impl Read, buf: &mut [u8]) -> io::Result<bool> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) if filled == 0 => return Ok(false),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    format!("stream closed mid-frame ({filled}/{} bytes)", buf.len()),
                ))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            // A read timeout mid-frame keeps waiting for the rest; a
            // timeout before the first byte surfaces to the caller so
            // connection handlers can poll their shutdown flag.
            Err(e)
                if filled > 0
                    && matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) => {}
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

/// Reads one framed message from a blocking stream. `Ok(None)` means the
/// peer closed the connection cleanly between frames.
pub fn read_message(r: &mut impl Read) -> io::Result<Option<Message>> {
    let mut header = [0u8; HEADER_BYTES];
    if !read_full(r, &mut header)? {
        return Ok(None);
    }
    // Validate the header before allocating for the payload.
    let mut h: &[u8] = &header;
    let mut magic = [0u8; 4];
    h.copy_to_slice(&mut magic);
    let version = h.get_u8();
    let len = h.get_u32_le() as usize;
    if magic != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            DecodeError::BadMagic(magic).to_string(),
        ));
    }
    if Codec::from_version(version).is_none() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            DecodeError::UnsupportedVersion(version).to_string(),
        ));
    }
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            DecodeError::Oversized { len }.to_string(),
        ));
    }
    let mut frame = vec![0u8; HEADER_BYTES + len];
    frame[..HEADER_BYTES].copy_from_slice(&header);
    if !read_full(r, &mut frame[HEADER_BYTES..])? {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "stream closed before frame payload",
        ));
    }
    match decode(&frame) {
        Ok((msg, consumed)) => {
            debug_assert_eq!(consumed, frame.len());
            Ok(Some(msg))
        }
        Err(e) => Err(io::Error::new(io::ErrorKind::InvalidData, e.to_string())),
    }
}

/// The v2 payload codec: one tag byte, then fixed-width little-endian
/// fields. `DockingOutput` rows are 72-byte records (`isep`, `irot`,
/// position, orientation, `elj`, `eelec`) — f64 bit patterns travel
/// verbatim, so a binary round trip is exact by construction, and the
/// byte-level quorum fingerprint (computed over the *canonical JSON* of
/// the output, not over wire bytes) is codec-independent.
///
/// The decoder is strict: unknown tags, non-0/1 booleans, row counts
/// that disagree with the payload length, and trailing bytes are all
/// payload errors. Truncation inside the payload can only come from a
/// buggy or malicious encoder (the frame header already guaranteed the
/// byte count), so it is a payload error too, never `Incomplete`.
pub mod binary {
    use super::Message;
    use maxdo::{DockingOutput, DockingRow, EulerZyz, Vec3};

    const TAG_HELLO: u8 = 0;
    const TAG_HELLO_ACK: u8 = 1;
    const TAG_REQUEST_WORK: u8 = 2;
    const TAG_ASSIGNMENT: u8 = 3;
    const TAG_NO_WORK: u8 = 4;
    const TAG_BUSY: u8 = 5;
    const TAG_RESULT_REPORT: u8 = 6;
    const TAG_RESULT_ACK: u8 = 7;
    const TAG_BYE: u8 = 8;
    const TAG_SHARD_MAP_REQUEST: u8 = 9;
    const TAG_SHARD_MAP: u8 = 10;
    const TAG_REDIRECT: u8 = 11;
    const TAG_SHARD_STATUS: u8 = 12;
    const TAG_LEASE_GRANT: u8 = 13;
    const TAG_STATUS_ACK: u8 = 14;

    /// Bytes of one fixed-width docking row record.
    pub const ROW_BYTES: usize = 4 + 4 + 24 + 24 + 8 + 8;

    struct Writer(Vec<u8>);

    impl Writer {
        fn u8(&mut self, v: u8) {
            self.0.push(v);
        }
        fn u32(&mut self, v: u32) {
            self.0.extend_from_slice(&v.to_le_bytes());
        }
        fn u64(&mut self, v: u64) {
            self.0.extend_from_slice(&v.to_le_bytes());
        }
        fn f64(&mut self, v: f64) {
            self.0.extend_from_slice(&v.to_le_bytes());
        }
        fn flag(&mut self, v: bool) {
            self.0.push(u8::from(v));
        }
        fn u16(&mut self, v: u16) {
            self.0.extend_from_slice(&v.to_le_bytes());
        }
        fn str(&mut self, s: &str) {
            self.u32(s.len() as u32);
            self.0.extend_from_slice(s.as_bytes());
        }
        fn u32s(&mut self, v: &[u32]) {
            self.u32(v.len() as u32);
            for &x in v {
                self.u32(x);
            }
        }
        fn u64s(&mut self, v: &[u64]) {
            self.u32(v.len() as u32);
            for &x in v {
                self.u64(x);
            }
        }
        fn params(&mut self, p: &super::CampaignParams) {
            self.u32(p.proteins);
            self.u64(p.lib_seed);
            self.f64(p.h_seconds);
            self.f64(p.separation_spacing);
            self.u32(p.max_iterations);
        }
        fn row(&mut self, row: &DockingRow) {
            self.u32(row.isep);
            self.u32(row.irot);
            self.f64(row.position.x);
            self.f64(row.position.y);
            self.f64(row.position.z);
            self.f64(row.orientation.alpha);
            self.f64(row.orientation.beta);
            self.f64(row.orientation.gamma);
            self.f64(row.elj);
            self.f64(row.eelec);
        }
    }

    /// How many elements to reserve up front for a counted vector whose
    /// declared length is `count`, with `remaining` payload bytes left
    /// and a wire floor of `elem_bytes` per element.
    ///
    /// `count * elem_bytes <= remaining` has already been checked, but
    /// that bounds the *wire* bytes, not the allocation: an element's
    /// in-memory size can dwarf its wire floor (a `String` is 24 bytes
    /// of `Vec` header against a 1-byte wire floor), so reserving
    /// `count` elements could allocate ~24x the 8 MiB frame cap before
    /// a single element is read. Cap the reservation so the up-front
    /// allocation never exceeds the bytes actually present; a genuine
    /// vector longer than the cap grows amortised as it is read.
    pub(super) fn bounded_capacity<T>(count: usize, elem_bytes: usize, remaining: usize) -> usize {
        debug_assert!(count.saturating_mul(elem_bytes) <= remaining);
        count.min(remaining / std::mem::size_of::<T>().max(1))
    }

    struct Reader<'a> {
        buf: &'a [u8],
        off: usize,
    }

    impl<'a> Reader<'a> {
        fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
            let end = self
                .off
                .checked_add(n)
                .filter(|&e| e <= self.buf.len())
                .ok_or_else(|| format!("binary payload truncated at offset {}", self.off))?;
            let slice = &self.buf[self.off..end];
            self.off = end;
            Ok(slice)
        }
        fn u8(&mut self) -> Result<u8, String> {
            Ok(self.take(1)?[0])
        }
        fn u32(&mut self) -> Result<u32, String> {
            Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
        }
        fn u64(&mut self) -> Result<u64, String> {
            Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
        }
        fn f64(&mut self) -> Result<f64, String> {
            Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
        }
        fn flag(&mut self) -> Result<bool, String> {
            match self.u8()? {
                0 => Ok(false),
                1 => Ok(true),
                other => Err(format!("bad boolean byte {other:#04x}")),
            }
        }
        fn u16(&mut self) -> Result<u16, String> {
            Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
        }
        fn str(&mut self) -> Result<String, String> {
            let len = self.u32()? as usize;
            let bytes = self.take(len)?;
            String::from_utf8(bytes.to_vec()).map_err(|e| format!("bad string: {e}"))
        }
        /// Reads a counted vector, checking the count against the bytes
        /// actually present before allocating.
        fn counted<T>(
            &mut self,
            elem_bytes: usize,
            read: impl Fn(&mut Self) -> Result<T, String>,
        ) -> Result<Vec<T>, String> {
            let count = self.u32()? as usize;
            let remaining = self.buf.len() - self.off;
            if count.checked_mul(elem_bytes).is_none_or(|b| b > remaining) {
                return Err(format!(
                    "vector count {count} disagrees with {remaining} payload bytes"
                ));
            }
            let mut out = Vec::with_capacity(bounded_capacity::<T>(count, elem_bytes, remaining));
            for _ in 0..count {
                out.push(read(self)?);
            }
            Ok(out)
        }
        fn params(&mut self) -> Result<super::CampaignParams, String> {
            Ok(super::CampaignParams {
                proteins: self.u32()?,
                lib_seed: self.u64()?,
                h_seconds: self.f64()?,
                separation_spacing: self.f64()?,
                max_iterations: self.u32()?,
            })
        }
        fn row(&mut self) -> Result<DockingRow, String> {
            Ok(DockingRow {
                isep: self.u32()?,
                irot: self.u32()?,
                position: Vec3 {
                    x: self.f64()?,
                    y: self.f64()?,
                    z: self.f64()?,
                },
                orientation: EulerZyz {
                    alpha: self.f64()?,
                    beta: self.f64()?,
                    gamma: self.f64()?,
                },
                elj: self.f64()?,
                eelec: self.f64()?,
            })
        }
        fn finish(self) -> Result<(), String> {
            if self.off == self.buf.len() {
                Ok(())
            } else {
                Err(format!(
                    "{} trailing bytes after the message",
                    self.buf.len() - self.off
                ))
            }
        }
    }

    /// Encodes one message as a v2/v3 binary payload (no frame header).
    /// Campaign fields are skipped — the bytes are identical to what
    /// pre-campaign builds emitted, which is the v2/v3 interop promise.
    pub fn encode(msg: &Message) -> Vec<u8> {
        encode_versioned(msg, false)
    }

    /// Encodes one message as a v4 binary payload: the v2/v3 encoding
    /// plus the campaign fields.
    pub fn encode_v4(msg: &Message) -> Vec<u8> {
        encode_versioned(msg, true)
    }

    fn encode_versioned(msg: &Message, campaign_aware: bool) -> Vec<u8> {
        let mut w = Writer(Vec::with_capacity(64));
        match msg {
            Message::Hello {
                agent,
                threads,
                campaigns,
            } => {
                w.u8(TAG_HELLO);
                w.u64(*agent);
                w.u32(*threads);
                if campaign_aware {
                    w.u32(campaigns.len() as u32);
                    for name in campaigns {
                        w.str(name);
                    }
                }
            }
            Message::HelloAck {
                protocol,
                campaign,
                deadline_seconds,
                campaigns,
            } => {
                w.u8(TAG_HELLO_ACK);
                w.u8(*protocol);
                w.params(campaign);
                w.f64(*deadline_seconds);
                if campaign_aware {
                    w.u32(campaigns.len() as u32);
                    for (name, params) in campaigns {
                        w.str(name);
                        w.params(params);
                    }
                }
            }
            Message::RequestWork => w.u8(TAG_REQUEST_WORK),
            Message::Assignment {
                replica,
                workunit,
                receptor,
                ligand,
                isep_start,
                positions,
                deadline_seconds,
                campaign,
            } => {
                w.u8(TAG_ASSIGNMENT);
                w.u64(*replica);
                w.u32(*workunit);
                w.u32(*receptor);
                w.u32(*ligand);
                w.u32(*isep_start);
                w.u32(*positions);
                w.f64(*deadline_seconds);
                if campaign_aware {
                    w.u16(*campaign);
                }
            }
            Message::NoWork {
                campaign_complete,
                retry_after_ms,
            } => {
                w.u8(TAG_NO_WORK);
                w.flag(*campaign_complete);
                w.u64(*retry_after_ms);
            }
            Message::Busy { retry_after_ms } => {
                w.u8(TAG_BUSY);
                w.u64(*retry_after_ms);
            }
            Message::ResultReport {
                replica,
                workunit,
                campaign,
                output,
            } => {
                w.0.reserve(26 + output.rows.len() * ROW_BYTES);
                w.u8(TAG_RESULT_REPORT);
                w.u64(*replica);
                w.u32(*workunit);
                if campaign_aware {
                    w.u16(*campaign);
                }
                w.u64(output.evaluations);
                w.u32(output.rows.len() as u32);
                for row in &output.rows {
                    w.row(row);
                }
            }
            Message::ResultAck {
                accepted,
                completed_workunit,
                campaign_complete,
            } => {
                w.u8(TAG_RESULT_ACK);
                w.flag(*accepted);
                w.flag(*completed_workunit);
                w.flag(*campaign_complete);
            }
            Message::Bye => w.u8(TAG_BYE),
            Message::ShardMapRequest => w.u8(TAG_SHARD_MAP_REQUEST),
            Message::ShardMap {
                shards,
                self_shard,
                addrs,
            } => {
                w.u8(TAG_SHARD_MAP);
                w.u16(*shards);
                w.u16(*self_shard);
                w.u32(addrs.len() as u32);
                for a in addrs {
                    w.str(a);
                }
            }
            Message::Redirect { shard, addr } => {
                w.u8(TAG_REDIRECT);
                w.u16(*shard);
                w.str(addr);
            }
            Message::ShardStatus {
                shard,
                fresh_backlog,
                outstanding,
                complete,
                hungry,
                leases_held,
                campaign,
            } => {
                w.u8(TAG_SHARD_STATUS);
                w.u16(*shard);
                w.u64(*fresh_backlog);
                w.u64(*outstanding);
                w.flag(*complete);
                w.flag(*hungry);
                w.u64s(leases_held);
                if campaign_aware {
                    w.u16(*campaign);
                }
            }
            Message::LeaseGrant {
                lease,
                from_shard,
                wus,
                complete,
                campaign,
            } => {
                w.u8(TAG_LEASE_GRANT);
                w.u64(*lease);
                w.u16(*from_shard);
                w.u32s(wus);
                w.flag(*complete);
                if campaign_aware {
                    w.u16(*campaign);
                }
            }
            Message::StatusAck { shard, complete } => {
                w.u8(TAG_STATUS_ACK);
                w.u16(*shard);
                w.flag(*complete);
            }
        }
        w.0
    }

    /// Decodes one v2/v3 binary payload (no frame header) strictly.
    /// Campaign fields are absent on the wire and default (v1–v3 peers
    /// implicitly ride the default campaign).
    pub fn decode(payload: &[u8]) -> Result<Message, String> {
        decode_versioned(payload, false)
    }

    /// Decodes one v4 binary payload strictly, campaign fields included.
    pub fn decode_v4(payload: &[u8]) -> Result<Message, String> {
        decode_versioned(payload, true)
    }

    fn decode_versioned(payload: &[u8], campaign_aware: bool) -> Result<Message, String> {
        let mut r = Reader {
            buf: payload,
            off: 0,
        };
        let msg = match r.u8()? {
            TAG_HELLO => Message::Hello {
                agent: r.u64()?,
                threads: r.u32()?,
                campaigns: if campaign_aware {
                    r.counted(1, |r| r.str())?
                } else {
                    Vec::new()
                },
            },
            TAG_HELLO_ACK => Message::HelloAck {
                protocol: r.u8()?,
                campaign: r.params()?,
                deadline_seconds: r.f64()?,
                campaigns: if campaign_aware {
                    // Each roster entry is a 4-byte-prefixed name plus a
                    // 32-byte fixed params block.
                    r.counted(36, |r| Ok((r.str()?, r.params()?)))?
                } else {
                    Vec::new()
                },
            },
            TAG_REQUEST_WORK => Message::RequestWork,
            TAG_ASSIGNMENT => Message::Assignment {
                replica: r.u64()?,
                workunit: r.u32()?,
                receptor: r.u32()?,
                ligand: r.u32()?,
                isep_start: r.u32()?,
                positions: r.u32()?,
                deadline_seconds: r.f64()?,
                campaign: if campaign_aware { r.u16()? } else { 0 },
            },
            TAG_NO_WORK => Message::NoWork {
                campaign_complete: r.flag()?,
                retry_after_ms: r.u64()?,
            },
            TAG_BUSY => Message::Busy {
                retry_after_ms: r.u64()?,
            },
            TAG_RESULT_REPORT => {
                let replica = r.u64()?;
                let workunit = r.u32()?;
                let campaign = if campaign_aware { r.u16()? } else { 0 };
                let evaluations = r.u64()?;
                let count = r.u32()? as usize;
                // The row count must agree with the bytes actually
                // present before anything is allocated for the rows.
                let remaining = payload.len() - r.off;
                if count != remaining / ROW_BYTES || !remaining.is_multiple_of(ROW_BYTES) {
                    return Err(format!(
                        "row count {count} disagrees with {remaining} payload bytes"
                    ));
                }
                let mut rows = Vec::with_capacity(count);
                for _ in 0..count {
                    rows.push(r.row()?);
                }
                Message::ResultReport {
                    replica,
                    workunit,
                    campaign,
                    output: DockingOutput { rows, evaluations },
                }
            }
            TAG_RESULT_ACK => Message::ResultAck {
                accepted: r.flag()?,
                completed_workunit: r.flag()?,
                campaign_complete: r.flag()?,
            },
            TAG_BYE => Message::Bye,
            TAG_SHARD_MAP_REQUEST => Message::ShardMapRequest,
            TAG_SHARD_MAP => {
                let shards = r.u16()?;
                let self_shard = r.u16()?;
                // Addresses are variable-width; each str() re-checks the
                // remaining bytes, so a 1-byte element floor suffices.
                let addrs = r.counted(1, |r| r.str())?;
                Message::ShardMap {
                    shards,
                    self_shard,
                    addrs,
                }
            }
            TAG_REDIRECT => Message::Redirect {
                shard: r.u16()?,
                addr: r.str()?,
            },
            TAG_SHARD_STATUS => Message::ShardStatus {
                shard: r.u16()?,
                fresh_backlog: r.u64()?,
                outstanding: r.u64()?,
                complete: r.flag()?,
                hungry: r.flag()?,
                leases_held: r.counted(8, |r| r.u64())?,
                campaign: if campaign_aware { r.u16()? } else { 0 },
            },
            TAG_LEASE_GRANT => Message::LeaseGrant {
                lease: r.u64()?,
                from_shard: r.u16()?,
                wus: r.counted(4, |r| r.u32())?,
                complete: r.flag()?,
                campaign: if campaign_aware { r.u16()? } else { 0 },
            },
            TAG_STATUS_ACK => Message::StatusAck {
                shard: r.u16()?,
                complete: r.flag()?,
            },
            other => return Err(format!("unknown message tag {other:#04x}")),
        };
        r.finish()?;
        Ok(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maxdo::{DockingRow, EulerZyz, Vec3};

    fn sample_messages() -> Vec<Message> {
        vec![
            Message::Hello {
                agent: 42,
                threads: 4,
                campaigns: Vec::new(),
            },
            Message::HelloAck {
                protocol: PROTOCOL_VERSION,
                campaign: CampaignParams::tiny(),
                deadline_seconds: 3.0,
                campaigns: Vec::new(),
            },
            Message::RequestWork,
            Message::Assignment {
                replica: 7,
                workunit: 3,
                receptor: 0,
                ligand: 1,
                isep_start: 5,
                positions: 2,
                deadline_seconds: 3.0,
                campaign: 0,
            },
            Message::NoWork {
                campaign_complete: false,
                retry_after_ms: 150,
            },
            Message::Busy {
                retry_after_ms: 500,
            },
            Message::ResultReport {
                replica: 7,
                workunit: 3,
                campaign: 0,
                output: DockingOutput {
                    rows: vec![DockingRow {
                        isep: 5,
                        irot: 1,
                        position: Vec3::new(1.0, -2.0, 3.5),
                        orientation: EulerZyz::default(),
                        elj: -4.25,
                        eelec: 0.5,
                    }],
                    evaluations: 99,
                },
            },
            Message::ResultAck {
                accepted: true,
                completed_workunit: false,
                campaign_complete: false,
            },
            Message::Bye,
            Message::ShardMapRequest,
            Message::ShardMap {
                shards: 2,
                self_shard: 1,
                addrs: vec!["127.0.0.1:7070".into(), "127.0.0.1:7071".into()],
            },
            Message::Redirect {
                shard: 0,
                addr: "127.0.0.1:7070".into(),
            },
            Message::ShardStatus {
                shard: 1,
                fresh_backlog: 0,
                outstanding: 3,
                complete: false,
                hungry: true,
                leases_held: vec![(1u64 << 48) | 2],
                campaign: 0,
            },
            Message::LeaseGrant {
                lease: (0u64 << 48) | 1,
                from_shard: 0,
                wus: vec![11, 12, 13],
                complete: false,
                campaign: 0,
            },
            Message::StatusAck {
                shard: 0,
                complete: true,
            },
        ]
    }

    #[test]
    fn every_message_round_trips() {
        for msg in sample_messages() {
            let frame = encode(&msg);
            let (back, consumed) = decode(&frame).expect("decode");
            assert_eq!(back, msg);
            assert_eq!(consumed, frame.len());
        }
    }

    #[test]
    fn every_message_round_trips_in_binary() {
        for msg in sample_messages() {
            let frame = encode_with(&msg, Codec::Binary);
            assert_eq!(frame[4], PROTOCOL_V2);
            let (back, consumed, codec) = decode_versioned(&frame).expect("decode");
            assert_eq!(back, msg);
            assert_eq!(consumed, frame.len());
            assert_eq!(codec, Codec::Binary);
        }
    }

    #[test]
    fn binary_report_frames_are_smaller_than_json() {
        let report = sample_messages()
            .into_iter()
            .find(|m| matches!(m, Message::ResultReport { .. }))
            .unwrap();
        let json = encode_with(&report, Codec::Json);
        let bin = encode_with(&report, Codec::Binary);
        assert!(
            bin.len() < json.len(),
            "binary {} >= json {}",
            bin.len(),
            json.len()
        );
    }

    #[test]
    fn binary_decoder_rejects_trailing_and_truncated_payloads() {
        let payload = binary::encode(&Message::Hello {
            agent: 9,
            threads: 2,
            campaigns: Vec::new(),
        });
        // Structurally short and long payloads (with valid checksums)
        // are payload errors, not Incomplete — framing already
        // guaranteed the byte count.
        for cut in 0..payload.len() {
            let frame = frame_payload_versioned(PROTOCOL_V2, &payload[..cut]);
            assert!(
                matches!(decode(&frame), Err(DecodeError::Payload(_))),
                "cut at {cut} must be a payload error"
            );
        }
        let mut long = payload.clone();
        long.push(0);
        let frame = frame_payload_versioned(PROTOCOL_V2, &long);
        assert!(matches!(decode(&frame), Err(DecodeError::Payload(_))));
    }

    #[test]
    fn binary_boolean_bytes_are_strict() {
        let mut payload = binary::encode(&Message::ResultAck {
            accepted: true,
            completed_workunit: false,
            campaign_complete: false,
        });
        payload[1] = 2;
        let frame = frame_payload_versioned(PROTOCOL_V2, &payload);
        assert!(matches!(decode(&frame), Err(DecodeError::Payload(_))));
    }

    #[test]
    fn every_truncation_is_incomplete() {
        let frame = encode(&Message::RequestWork);
        for cut in 0..frame.len() {
            match decode(&frame[..cut]) {
                Err(DecodeError::Incomplete { needed }) => assert!(needed > 0),
                other => panic!("prefix of {cut} bytes gave {other:?}"),
            }
        }
    }

    #[test]
    fn trailing_bytes_are_left_alone() {
        let frame = encode(&Message::Bye);
        let mut buf = frame.to_vec();
        buf.extend_from_slice(b"next frame starts here");
        let (msg, consumed) = decode(&buf).unwrap();
        assert_eq!(msg, Message::Bye);
        assert_eq!(consumed, frame.len());
    }

    #[test]
    fn bad_magic_rejected() {
        let mut frame = encode(&Message::Bye).to_vec();
        frame[0] = b'X';
        assert!(matches!(decode(&frame), Err(DecodeError::BadMagic(_))));
    }

    #[test]
    fn future_version_rejected() {
        let mut frame = encode(&Message::Bye).to_vec();
        frame[4] = PROTOCOL_V4 + 1;
        assert!(matches!(
            decode(&frame),
            Err(DecodeError::UnsupportedVersion(_))
        ));
    }

    #[test]
    fn every_message_round_trips_in_v3() {
        for msg in sample_messages() {
            let frame = encode_with(&msg, Codec::BinaryV3);
            assert_eq!(frame[4], PROTOCOL_V3);
            let (back, consumed, codec) = decode_versioned(&frame).expect("decode");
            assert_eq!(back, msg);
            assert_eq!(consumed, frame.len());
            assert_eq!(codec, Codec::BinaryV3);
        }
    }

    /// The campaign-aware fields only exist on the v4 wire. Non-default
    /// values must survive a v4 round trip, and the same messages
    /// encoded as v3 must decode with the campaign fields dropped back
    /// to their defaults — that degradation is what lets v1–v3 agents
    /// keep talking to a multi-campaign server (they land on slot 0).
    #[test]
    fn campaign_fields_round_trip_in_v4_and_degrade_in_v3() {
        let samples = vec![
            Message::Hello {
                agent: 9,
                threads: 4,
                campaigns: vec!["prod".into(), "pilot".into()],
            },
            Message::HelloAck {
                protocol: PROTOCOL_VERSION,
                campaign: CampaignParams::tiny(),
                deadline_seconds: 3.0,
                campaigns: vec![
                    ("prod".into(), CampaignParams::tiny()),
                    ("pilot".into(), CampaignParams::tiny()),
                ],
            },
            Message::Assignment {
                replica: 3,
                workunit: 17,
                receptor: 0,
                ligand: 1,
                isep_start: 5,
                positions: 2,
                deadline_seconds: 9.0,
                campaign: 1,
            },
            Message::ResultReport {
                replica: 3,
                workunit: 17,
                campaign: 1,
                output: DockingOutput {
                    rows: Vec::new(),
                    evaluations: 64,
                },
            },
            Message::ShardStatus {
                shard: 1,
                fresh_backlog: 5,
                outstanding: 2,
                complete: false,
                hungry: true,
                leases_held: vec![42],
                campaign: 1,
            },
            Message::LeaseGrant {
                lease: 7,
                from_shard: 0,
                wus: vec![11, 12],
                complete: false,
                campaign: 1,
            },
        ];
        for msg in samples {
            let frame = encode_with(&msg, Codec::BinaryV4);
            assert_eq!(frame[4], PROTOCOL_V4);
            let (back, consumed, codec) = decode_versioned(&frame).expect("v4 decode");
            assert_eq!(back, msg, "v4 must preserve campaign fields");
            assert_eq!(consumed, frame.len());
            assert_eq!(codec, Codec::BinaryV4);

            let frame = encode_with(&msg, Codec::BinaryV3);
            let (back, _, codec) = decode_versioned(&frame).expect("v3 decode");
            assert_eq!(codec, Codec::BinaryV3);
            match back {
                Message::Hello { campaigns, .. } => assert!(campaigns.is_empty()),
                Message::HelloAck { campaigns, .. } => assert!(campaigns.is_empty()),
                Message::Assignment { campaign, .. }
                | Message::ResultReport { campaign, .. }
                | Message::ShardStatus { campaign, .. }
                | Message::LeaseGrant { campaign, .. } => assert_eq!(campaign, 0),
                other => panic!("unexpected decode {other:?}"),
            }
        }
    }

    /// A v3 frame of each campaign-touched message is byte-identical to
    /// what a pre-campaign build produced: the appended fields must not
    /// perturb the v1–v3 wire at all.
    #[test]
    fn v3_frames_carry_no_campaign_bytes() {
        let make = |campaign: u16| Message::Assignment {
            replica: 3,
            workunit: 17,
            receptor: 0,
            ligand: 1,
            isep_start: 5,
            positions: 2,
            deadline_seconds: 9.0,
            campaign,
        };
        let with = encode_with(&make(5), Codec::BinaryV3);
        let without = encode_with(&make(0), Codec::BinaryV3);
        assert_eq!(with, without, "campaign index leaked into the v3 wire");
    }

    #[test]
    fn shard_vector_counts_are_checked_before_allocation() {
        let payload = binary::encode(&Message::ShardStatus {
            shard: 0,
            fresh_backlog: 1,
            outstanding: 1,
            complete: false,
            hungry: false,
            leases_held: vec![7],
            campaign: 0,
        });
        // Inflate the lease count far past the payload: must be a
        // payload error, not an attempted huge allocation.
        let mut bad = payload.clone();
        let count_off = 1 + 2 + 8 + 8 + 1 + 1;
        bad[count_off..count_off + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        let frame = frame_payload_versioned(PROTOCOL_V3, &bad);
        assert!(matches!(decode(&frame), Err(DecodeError::Payload(_))));
    }

    /// A corrupt count that still passes the wire-floor check must not
    /// translate into a huge up-front allocation: the reservation is
    /// capped by the bytes actually present, measured in *in-memory*
    /// element sizes (a `String` costs 24 bytes of header against its
    /// 1-byte wire floor).
    #[test]
    fn counted_vector_reservation_is_capped_by_the_payload_remainder() {
        let remaining = MAX_FRAME_BYTES;
        // Worst case: `ShardMap` address strings — count can legally be
        // as large as the remainder, but each `String` is 24 in-memory
        // bytes, so an uncapped reservation would be ~24x the frame cap.
        let cap = binary::bounded_capacity::<String>(remaining, 1, remaining);
        assert!(
            cap * std::mem::size_of::<String>() <= remaining,
            "up-front reservation {} bytes exceeds the {remaining}-byte remainder",
            cap * std::mem::size_of::<String>()
        );
        // Honest small vectors still reserve exactly their length.
        assert_eq!(binary::bounded_capacity::<u64>(3, 8, 24), 3);
        assert_eq!(binary::bounded_capacity::<u32>(13, 4, 52), 13);
        assert_eq!(binary::bounded_capacity::<String>(0, 1, 0), 0);
    }

    /// End to end: a ShardMap frame whose address count is inflated to
    /// the maximum value the wire-floor check accepts decodes to a clean
    /// payload error (the first element read runs out of bytes) without
    /// ballooning memory first.
    #[test]
    fn inflated_string_count_is_a_payload_error_not_an_allocation() {
        let payload = binary::encode(&Message::ShardMap {
            shards: 2,
            self_shard: 0,
            addrs: vec!["127.0.0.1:7070".into()],
        });
        let mut bad = payload.clone();
        let count_off = 1 + 2 + 2; // tag + shards + self_shard
        let remaining = bad.len() - count_off - 4;
        bad[count_off..count_off + 4].copy_from_slice(&(remaining as u32).to_le_bytes());
        let frame = frame_payload_versioned(PROTOCOL_V3, &bad);
        assert!(matches!(decode(&frame), Err(DecodeError::Payload(_))));
    }

    #[test]
    fn oversized_length_rejected_before_payload() {
        let mut frame = encode(&Message::Bye).to_vec();
        let bad = (MAX_FRAME_BYTES as u32 + 1).to_le_bytes();
        frame[5..9].copy_from_slice(&bad);
        // Only the header is present — the declared length alone must
        // trigger the rejection, not an attempt to buffer 8 MiB.
        assert!(matches!(
            decode(&frame[..HEADER_BYTES]),
            Err(DecodeError::Oversized { .. })
        ));
    }

    #[test]
    fn flipped_payload_bit_fails_the_checksum() {
        let mut frame = encode(&Message::Hello {
            agent: 1,
            threads: 1,
            campaigns: Vec::new(),
        })
        .to_vec();
        let last = frame.len() - 1;
        frame[last] ^= 0x10;
        assert!(matches!(decode(&frame), Err(DecodeError::Checksum { .. })));
    }

    #[test]
    fn valid_checksum_with_garbage_json_is_a_payload_error() {
        let payload = b"{\"NotAMessage\":1}";
        let mut frame = Vec::new();
        frame.extend_from_slice(&MAGIC);
        frame.push(PROTOCOL_V1);
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&fnv1a64(payload).to_le_bytes());
        frame.extend_from_slice(payload);
        assert!(matches!(decode(&frame), Err(DecodeError::Payload(_))));
    }

    #[test]
    fn stream_round_trip_over_a_cursor() {
        let msgs = sample_messages();
        let mut wire = Vec::new();
        for m in &msgs {
            write_message(&mut wire, m).unwrap();
        }
        let mut r: &[u8] = &wire;
        for m in &msgs {
            let got = read_message(&mut r).unwrap().expect("message");
            assert_eq!(&got, m);
        }
        assert_eq!(read_message(&mut r).unwrap(), None, "clean EOF");
    }
}

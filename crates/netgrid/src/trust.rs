//! Per-agent trust tracking for adaptive replication.
//!
//! The paper's fixed-quorum policy (§5.2) pays two results for every
//! workunit no matter who computes them; Fig. 6b shows that redundancy
//! eating a large slice of the donated CPU. BOINC's adaptive
//! replication and the prime-hunter reliability heuristic both observe
//! that most volunteers are boringly honest: score each agent by its
//! accept/reject history and spend redundancy only where the history
//! says it pays.
//!
//! The policy here is a three-band ladder driven by the accept ratio
//! `accepted / (accepted + rejected)` over a minimum sample:
//!
//! * **Trusted** (ratio ≥ [`TrustConfig::trusted_threshold`], sample ≥
//!   [`TrustConfig::min_samples`]): single-replica issues, backed by
//!   deterministic seeded spot-checks — a configurable fraction of the
//!   agent's accepted singles is recomputed by an independent agent,
//!   and a byte-level mismatch craters the agent to zero and
//!   retroactively re-replicates everything of theirs that was never
//!   independently confirmed.
//! * **Probation** (everyone else, and every newcomer): the paper's
//!   standard quorum.
//! * **Untrusted** (ratio < [`TrustConfig::untrusted_threshold`] over
//!   the sample): still quorum, but a run of consecutive rejections
//!   trips **quarantine** — work requests get pure backoff until an
//!   exponentially growing re-admission timer expires, so a saboteur
//!   stops burning replicas at all. Each quarantine resets the scoring
//!   window: re-admitted agents re-earn a band from scratch, and repeat
//!   offenders wait twice as long each time.
//!
//! All of this state is deliberately plain old data (`Copy`, serde,
//! `PartialEq`): it rides inside `GridSnapshot` through the journal, so
//! trust survives `kill -9` exactly like the scheduler state does.

use crate::protocol::fnv1a64;
use serde::{Deserialize, Serialize};

/// Tuning knobs for the trust policy. Lives inside
/// [`crate::ServerFaults`], which puts it in the journal header
/// identity: a journal written under one trust policy refuses to replay
/// under another.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrustConfig {
    /// Master switch; `false` reproduces the fixed-quorum behaviour of
    /// every prior PR bit-for-bit.
    pub enabled: bool,
    /// Accept ratio at or above which a sampled agent is Trusted.
    pub trusted_threshold: f64,
    /// Accept ratio below which a sampled agent is Untrusted.
    pub untrusted_threshold: f64,
    /// Minimum accepted+rejected results before the ratio means
    /// anything; below this every agent is Probation.
    pub min_samples: u32,
    /// Fraction of a trusted agent's single-replica accepts that get
    /// re-issued to an independent agent for byte-level comparison.
    pub spot_check_rate: f64,
    /// Seed for the deterministic spot-check draw (hashed with the
    /// workunit id, so selection is a pure function of (seed, wu)).
    pub spot_seed: u64,
    /// Consecutive rejections that trip quarantine.
    pub quarantine_after: u32,
    /// First quarantine duration; doubles per offence.
    pub quarantine_base_s: f64,
    /// Quarantine duration cap.
    pub quarantine_max_s: f64,
}

impl TrustConfig {
    /// Trust disabled: the fixed-quorum policy of PRs 4–7.
    pub fn off() -> Self {
        Self {
            enabled: false,
            ..Self::on()
        }
    }

    /// Trust enabled with the prime-hunter-style defaults.
    pub fn on() -> Self {
        Self {
            enabled: true,
            trusted_threshold: 0.95,
            untrusted_threshold: 0.80,
            min_samples: 5,
            spot_check_rate: 0.25,
            spot_seed: 0x5d0c_beef,
            quarantine_after: 4,
            quarantine_base_s: 30.0,
            quarantine_max_s: 3600.0,
        }
    }
}

impl Default for TrustConfig {
    fn default() -> Self {
        Self::off()
    }
}

/// The band an agent's history currently earns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TrustBand {
    /// Single-replica issues + spot-checks.
    Trusted,
    /// Standard quorum (newcomers and middling histories).
    Probation,
    /// Standard quorum, one reject away from quarantine.
    Untrusted,
    /// No work at all until the re-admission timer expires.
    Quarantined,
}

/// One agent's journaled trust ledger. `accepted`/`rejected` count the
/// *current scoring window* — quarantine resets them so a re-admitted
/// agent starts from scratch — while the spot-check and quarantine
/// counters are lifetime totals.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct AgentTrust {
    /// Validated results in the current scoring window.
    pub accepted: u64,
    /// Rejected results (quorum or bounds) in the current window.
    pub rejected: u64,
    /// Current run of back-to-back rejections.
    pub consecutive_rejects: u32,
    /// Server-clock instant the current quarantine lifts; 0 if never
    /// quarantined or already served.
    pub quarantined_until_s: f64,
    /// Lifetime quarantine count (drives the exponential timer).
    pub quarantine_count: u32,
    /// Lifetime spot-checks of this agent's singles that byte-matched.
    pub spot_passed: u64,
    /// Lifetime spot-checks that mismatched (each one craters trust).
    pub spot_failed: u64,
}

impl AgentTrust {
    /// Accept ratio over the current window; 1.0 for an empty window so
    /// a fresh agent is not instantly Untrusted (the `min_samples`
    /// guard keeps it at Probation anyway).
    pub fn score(&self) -> f64 {
        let total = self.accepted + self.rejected;
        if total == 0 {
            1.0
        } else {
            self.accepted as f64 / total as f64
        }
    }

    /// The band this history earns at server-clock `now_s`.
    pub fn band(&self, now_s: f64, cfg: &TrustConfig) -> TrustBand {
        if now_s < self.quarantined_until_s {
            return TrustBand::Quarantined;
        }
        let total = self.accepted + self.rejected;
        if total < u64::from(cfg.min_samples) {
            return TrustBand::Probation;
        }
        let score = self.score();
        if score >= cfg.trusted_threshold {
            TrustBand::Trusted
        } else if score < cfg.untrusted_threshold {
            TrustBand::Untrusted
        } else {
            TrustBand::Probation
        }
    }

    /// Credits a validated result and clears the rejection run.
    pub fn record_accept(&mut self) {
        self.accepted += 1;
        self.consecutive_rejects = 0;
    }

    /// Debits a rejected result; returns `true` if the run of
    /// consecutive rejections just tripped quarantine (the caller
    /// then invokes [`Self::quarantine`]).
    pub fn record_reject(&mut self, cfg: &TrustConfig) -> bool {
        self.rejected += 1;
        self.consecutive_rejects += 1;
        self.consecutive_rejects >= cfg.quarantine_after
    }

    /// Starts (or extends) quarantine at `now_s`: exponential duration
    /// per lifetime offence, window counters reset so the agent
    /// re-earns a band from scratch on re-admission.
    pub fn quarantine(&mut self, now_s: f64, cfg: &TrustConfig) {
        let exp = self.quarantine_count.min(16);
        let dur = (cfg.quarantine_base_s * f64::from(1u32 << exp)).min(cfg.quarantine_max_s);
        self.quarantined_until_s = now_s + dur;
        self.quarantine_count += 1;
        self.accepted = 0;
        self.rejected = 0;
        self.consecutive_rejects = 0;
    }

    /// A spot-check of this agent's single-replica result mismatched:
    /// trust craters to zero and the agent goes straight to quarantine.
    pub fn crater(&mut self, now_s: f64, cfg: &TrustConfig) {
        self.spot_failed += 1;
        self.quarantine(now_s, cfg);
    }

    /// Seconds of quarantine left at `now_s` (0 when admitted).
    pub fn quarantine_remaining_s(&self, now_s: f64) -> f64 {
        (self.quarantined_until_s - now_s).max(0.0)
    }
}

/// Deterministic spot-check draw: a pure function of (seed, workunit),
/// so the journal replay, the parity harness, and the live server all
/// select the same workunits without a shared RNG stream. `rate` is
/// quantized to 1/10000ths.
pub fn spot_selected(seed: u64, workunit: u32, rate: f64) -> bool {
    if rate <= 0.0 {
        return false;
    }
    let mut bytes = [0u8; 12];
    bytes[..8].copy_from_slice(&seed.to_le_bytes());
    bytes[8..].copy_from_slice(&workunit.to_le_bytes());
    let threshold = (rate.min(1.0) * 10_000.0).round() as u64;
    fnv1a64(&bytes) % 10_000 < threshold
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> TrustConfig {
        TrustConfig::on()
    }

    #[test]
    fn fresh_agent_is_probation_not_untrusted() {
        let t = AgentTrust::default();
        assert_eq!(t.band(0.0, &cfg()), TrustBand::Probation);
        assert_eq!(t.score(), 1.0);
    }

    #[test]
    fn bands_follow_the_thresholds_over_the_minimum_sample() {
        let c = cfg();
        let mut t = AgentTrust::default();
        for _ in 0..4 {
            t.record_accept();
        }
        // 4 accepts: still under min_samples.
        assert_eq!(t.band(0.0, &c), TrustBand::Probation);
        t.record_accept();
        // 5/5 = 1.0 ≥ 0.95.
        assert_eq!(t.band(0.0, &c), TrustBand::Trusted);
        // 5 accepts + 2 rejects = 0.714 < 0.80.
        t.record_reject(&c);
        t.record_reject(&c);
        assert_eq!(t.band(0.0, &c), TrustBand::Untrusted);
        // 16/18 ≈ 0.889: between the thresholds → Probation.
        for _ in 0..11 {
            t.record_accept();
        }
        assert_eq!(t.band(0.0, &c), TrustBand::Probation);
    }

    #[test]
    fn consecutive_rejects_trip_quarantine_and_accepts_clear_the_run() {
        let c = cfg();
        let mut t = AgentTrust::default();
        for _ in 0..c.quarantine_after - 1 {
            assert!(!t.record_reject(&c));
        }
        t.record_accept(); // run cleared
        for _ in 0..c.quarantine_after - 1 {
            assert!(!t.record_reject(&c));
        }
        assert!(
            t.record_reject(&c),
            "quarantine_after-th straight reject trips"
        );
    }

    #[test]
    fn quarantine_is_exponential_capped_and_resets_the_window() {
        let c = cfg();
        let mut t = AgentTrust::default();
        t.accepted = 3;
        t.rejected = 9;
        t.quarantine(100.0, &c);
        assert_eq!(t.quarantined_until_s, 100.0 + c.quarantine_base_s);
        assert_eq!((t.accepted, t.rejected, t.consecutive_rejects), (0, 0, 0));
        assert_eq!(t.band(100.0, &c), TrustBand::Quarantined);
        assert_eq!(
            t.band(100.0 + c.quarantine_base_s, &c),
            TrustBand::Probation
        );

        // Second offence doubles; the cap holds for serial offenders.
        t.quarantine(200.0, &c);
        assert_eq!(t.quarantined_until_s, 200.0 + 2.0 * c.quarantine_base_s);
        for _ in 0..40 {
            t.quarantine(300.0, &c);
        }
        assert_eq!(t.quarantined_until_s, 300.0 + c.quarantine_max_s);
    }

    #[test]
    fn crater_counts_the_spot_failure_and_quarantines_immediately() {
        let c = cfg();
        let mut t = AgentTrust::default();
        for _ in 0..10 {
            t.record_accept();
        }
        assert_eq!(t.band(0.0, &c), TrustBand::Trusted);
        t.crater(50.0, &c);
        assert_eq!(t.spot_failed, 1);
        assert_eq!(t.band(50.0, &c), TrustBand::Quarantined);
        assert_eq!(t.accepted, 0, "trust cratered to zero, not merely dented");
    }

    #[test]
    fn spot_selection_is_deterministic_and_tracks_the_rate() {
        let hits: Vec<u32> = (0..10_000)
            .filter(|&wu| spot_selected(42, wu, 0.25))
            .collect();
        let again: Vec<u32> = (0..10_000)
            .filter(|&wu| spot_selected(42, wu, 0.25))
            .collect();
        assert_eq!(hits, again, "pure function of (seed, wu)");
        // FNV over 10k consecutive ids lands close to the nominal rate.
        assert!(
            (2_000..3_000).contains(&(hits.len() as u32)),
            "hit count {} way off a 25% rate",
            hits.len()
        );
        // A different seed draws a different subset.
        let other: Vec<u32> = (0..10_000)
            .filter(|&wu| spot_selected(43, wu, 0.25))
            .collect();
        assert_ne!(hits, other);
        // Rate 0 selects nothing; rate 1 selects everything.
        assert!(!spot_selected(42, 7, 0.0));
        assert!(spot_selected(42, 7, 1.0));
    }
}
